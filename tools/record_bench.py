#!/usr/bin/env python
"""Record the simulator's headline performance numbers.

Measures, on the current machine:

* cycle-simulator throughput (cycles/second) with the scalar kernels
  and with the vectorized numpy lanes (``vector_lanes=True``),
* the cycle-skipping fast path's wall-clock speedup on the channel-bound
  Fig 7 workload (reference loop vs skipping loop),
* exhaustive vs surrogate-pruned FIFO-sizing sweep wall time,
* the surrogate's maximum leave-one-out relative error on the honesty
  calibration set.

Writes ``BENCH_simulator.json`` (committed at the repo root so number
drift shows up in review; CI uploads the freshly measured file as an
artifact)::

    PYTHONPATH=src python tools/record_bench.py [-o BENCH_simulator.json]

``--suite serving`` records the serving-tier latency baseline instead
(``BENCH_serving.json``): the offered-load sweep of the sharded tier on
the virtual clock — p50/p99 latency, shed breakdown and goodput per
step.  Everything under ``"steps"`` is a pure function of the pinned
seed (byte-reproducible); only the environment header and
``wall_seconds`` vary per machine::

    PYTHONPATH=src python tools/record_bench.py --suite serving

``--to-db FILE`` additionally stores each measured block as a ``done``
row in a :mod:`repro.campaign` sqlite store (campaign
``bench-<suite>``, payload ``{"bench": <block>, "suite": <suite>}``),
and ``--from-db FILE`` *renders* the record from those rows instead of
re-measuring — the BENCH trajectory as a query, not a re-run::

    PYTHONPATH=src python tools/record_bench.py --suite serving --to-db bench.sqlite
    PYTHONPATH=src python tools/record_bench.py --suite serving --from-db bench.sqlite
    PYTHONPATH=src python tools/check_bench.py  --suite serving --from-db bench.sqlite
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import platform
import sys
import time


def _best_of(fn, n=3):
    """(best wall seconds, last return value) over ``n`` runs."""
    best, value = float("inf"), None
    for _ in range(n):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def bench_lane_throughput() -> dict:
    """Scalar vs vectorized simulation of the same decoupled region."""
    from repro.core.decoupled import DecoupledConfig, DecoupledWorkItems
    from repro.core.kernel import GammaKernelConfig

    config = DecoupledConfig(
        n_work_items=6,
        kernel=GammaKernelConfig(
            limit_main=512, sector_variances=(1.39, 0.5)
        ),
    )
    scalar_s, scalar = _best_of(
        lambda: DecoupledWorkItems(config).run()
    )
    vector_s, vector = _best_of(
        lambda: DecoupledWorkItems(
            dataclasses.replace(config, vector_lanes=True)
        ).run()
    )
    assert vector.cycles == scalar.cycles, "lanes must be bit-identical"
    return {
        "cycles": scalar.cycles,
        "scalar_ms": round(1e3 * scalar_s, 1),
        "vector_ms": round(1e3 * vector_s, 1),
        "scalar_cycles_per_s": round(scalar.cycles / scalar_s),
        "vector_cycles_per_s": round(vector.cycles / vector_s),
        "vector_speedup": round(scalar_s / vector_s, 2),
    }


def bench_fastpath() -> dict:
    """Reference loop vs cycle-skipping loop on the Fig 7 workload."""
    from repro.core.decoupled import build_transfer_only_region

    kwargs = dict(
        n_work_items=6, values_per_item=4096, burst_words=1, stream_depth=2
    )

    def run(fast_path):
        region, _, _ = build_transfer_only_region(**kwargs)
        report = region.run(fast_path=fast_path)
        return report, region.skipped_cycles

    ref_s, (ref_report, _) = _best_of(lambda: run(False))
    fast_s, (fast_report, skipped) = _best_of(lambda: run(True))
    assert fast_report.cycles == ref_report.cycles
    return {
        "cycles": ref_report.cycles,
        "skipped_cycles": skipped,
        "reference_ms": round(1e3 * ref_s, 1),
        "fast_ms": round(1e3 * fast_s, 1),
        "speedup": round(ref_s / fast_s, 2),
    }


def bench_pruned_sweep() -> dict:
    """Exhaustive vs surrogate-pruned FIFO sizing over the same grid."""
    from repro.core.decoupled import DecoupledWorkItems
    from repro.core.fifo_sizing import advise_stream_depth
    from repro.harness.sweeps import PRUNE_BASE_CONFIG, PRUNE_DEPTHS
    from repro.surrogate import pruned_stream_depth_sweep

    depths = PRUNE_DEPTHS + (96, 128)
    full_s, full = _best_of(
        lambda: advise_stream_depth(
            lambda depth: DecoupledWorkItems(
                dataclasses.replace(
                    PRUNE_BASE_CONFIG, stream_depth=depth
                )
            ).region,
            depths=depths,
        )
    )
    pruned_s, pruned = _best_of(
        lambda: pruned_stream_depth_sweep(PRUNE_BASE_CONFIG, depths=depths)
    )
    assert pruned.recommended_depth == full.recommended_depth
    return {
        "grid_points": len(depths),
        "simulated_points_pruned": len(pruned.simulated_depths),
        "recommended_depth": pruned.recommended_depth,
        "exhaustive_ms": round(1e3 * full_s, 1),
        "pruned_ms": round(1e3 * pruned_s, 1),
        "speedup": round(full_s / pruned_s, 2),
    }


def bench_surrogate_error() -> dict:
    """Max LOOCV relative error on the honesty calibration set."""
    from repro.core.decoupled import DecoupledWorkItems
    from repro.surrogate import (
        DEFAULT_ERROR_BOUND,
        CycleSurrogate,
        ReportCalibration,
        config_features,
    )

    sys.path.insert(0, "tests")
    from surrogate.test_model_honesty import CALIBRATION_CONFIGS

    configs = list(CALIBRATION_CONFIGS.values())
    results = [DecoupledWorkItems(c).run() for c in configs]
    calibration = ReportCalibration.from_result(results[0])
    fit = CycleSurrogate().fit(
        [config_features(c, calibration) for c in configs],
        [r.cycles for r in results],
    )
    assert fit.max_relative_error < DEFAULT_ERROR_BOUND
    return {
        "calibration_configs": len(configs),
        "max_loo_relative_error": round(fit.max_relative_error, 4),
        "documented_bound": DEFAULT_ERROR_BOUND,
    }


def bench_pipeline() -> dict:
    """Pipe-connected 3-region pipeline: overlap + channel affinity.

    Everything except ``pipelined_ms`` is a deterministic function of
    the pinned configs: cycle counts, the overlap ratio (pipelined
    makespan over the stage-sequential sum), the channel-affinity gain
    on the transfer-bound variant, and the pruned sweep's pipe-depth
    recommendation.
    """
    from repro.core.pricing import (
        PricingPipelineConfig,
        build_pricing_pipeline,
        run_pricing_pipeline,
    )
    from repro.harness.pipelines import (
        PIPE_SWEEP_DEPTHS,
        TRANSFER_BOUND_CONFIG,
    )
    from repro.surrogate import pruned_pipe_depth_sweep

    cfg = PricingPipelineConfig()
    pipelined_s, pipelined = _best_of(lambda: run_pricing_pipeline(cfg))
    fused = run_pricing_pipeline(cfg, mode="fused")
    sequential = run_pricing_pipeline(cfg, mode="sequential")
    assert pipelined.portfolio_total == fused.portfolio_total
    overlap = pipelined.cycles / sequential.cycles
    assert overlap < 0.85, "co-scheduling must hide stage latency"

    one = run_pricing_pipeline(TRANSFER_BOUND_CONFIG)
    two = run_pricing_pipeline(
        dataclasses.replace(
            TRANSFER_BOUND_CONFIG, n_channels=2, channel_affinity=(0, 1)
        )
    )
    sweep = pruned_pipe_depth_sweep(
        lambda depth: build_pricing_pipeline(cfg, pipe_depth=depth).runner,
        depths=PIPE_SWEEP_DEPTHS,
    )
    return {
        "pipelined_cycles": pipelined.cycles,
        "fused_cycles": fused.cycles,
        "sequential_cycles": sequential.cycles,
        "overlap_ratio": round(overlap, 4),
        "skipped_cycles": pipelined.skipped_cycles,
        "portfolio_total": round(pipelined.portfolio_total, 6),
        "transfer_bound_1ch_cycles": one.cycles,
        "transfer_bound_2ch_cycles": two.cycles,
        "channel_gain": round(one.cycles / two.cycles, 2),
        "recommended_pipe_depth": sweep.recommended_depth,
        "pipelined_ms": round(1e3 * pipelined_s, 1),
    }


def bench_serving() -> dict:
    """Offered-load sweep of the sharded tier (virtual clock).

    The per-step series is deterministic under the pinned seed; only
    ``wall_seconds`` (how long the simulation itself took) varies.
    """
    from repro.serve.bench import run_serve_tier

    wall_s, result = _best_of(lambda: run_serve_tier(), n=1)
    return {
        "wall_seconds": round(wall_s, 2),
        "experiment": result.experiment,
        "workload": result.series["workload"],
        "tier": result.series["tier"],
        "steps": result.series["steps"],
    }


#: block name → measuring function, per suite.  The campaign store's
#: ``{"bench": <block>}`` payloads resolve through this table too
#: (:func:`repro.campaign.campaign.execute_payload`), so a campaign
#: worker and ``--to-db`` record exactly the same numbers.
SUITE_BENCHES: dict = {
    "simulator": {
        "lane_throughput": bench_lane_throughput,
        "fastpath": bench_fastpath,
        "pruned_sweep": bench_pruned_sweep,
        "surrogate": bench_surrogate_error,
        "pipeline": bench_pipeline,
    },
    "serving": {
        "serving": bench_serving,
    },
}

BENCHES: dict = {
    name: fn
    for blocks in SUITE_BENCHES.values()
    for name, fn in blocks.items()
}


def _env_header() -> dict:
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def measure_suite(suite: str) -> dict:
    """Measure every block of a suite (env header included)."""
    record = _env_header()
    for name, fn in SUITE_BENCHES[suite].items():
        record[name] = fn()
    return record


def store_record(db_path: str, suite: str, record: dict) -> None:
    """Persist a measured record's blocks as done campaign rows.

    One row per block in campaign ``bench-<suite>``; re-recording the
    same block replaces the previous result (latest wins) and the env
    header lands in the campaign's meta table.
    """
    from repro.campaign.store import CampaignStore

    store = CampaignStore(db_path, campaign=f"bench-{suite}")
    for name in SUITE_BENCHES[suite]:
        store.record_done({"bench": name, "suite": suite}, record[name])
    store.set_meta("python", record["python"])
    store.set_meta("machine", record["machine"])


def record_from_db(db_path: str, suite: str) -> dict:
    """Render a suite record from campaign rows (no re-measurement).

    Raises ``LookupError`` naming the missing blocks when the database
    has not recorded the full suite yet.
    """
    from repro.campaign.store import CampaignStore

    store = CampaignStore(db_path, campaign=f"bench-{suite}")
    by_block = {
        row.payload.get("bench"): row
        for row in store.rows(status="done")
        if row.payload.get("suite") == suite
    }
    missing = [n for n in SUITE_BENCHES[suite] if n not in by_block]
    if missing:
        raise LookupError(
            f"campaign 'bench-{suite}' in {db_path!r} has no done rows "
            f"for block(s): {', '.join(missing)} — record with "
            f"`record_bench.py --suite {suite} --to-db {db_path}` first"
        )
    record = {
        "python": store.get_meta("python") or platform.python_version(),
        "machine": store.get_meta("machine") or platform.machine(),
    }
    for name in SUITE_BENCHES[suite]:
        record[name] = by_block[name].result
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output", default=None,
        help="output path (default: BENCH_<suite>.json)",
    )
    parser.add_argument(
        "--suite", choices=("simulator", "serving"), default="simulator",
        help="benchmark suite to record (default: %(default)s)",
    )
    parser.add_argument(
        "--to-db", metavar="FILE", default=None,
        help="also store each measured block as a done campaign row",
    )
    parser.add_argument(
        "--from-db", metavar="FILE", default=None,
        help="render the record from campaign rows instead of measuring",
    )
    args = parser.parse_args(argv)
    if args.from_db and args.to_db:
        parser.error("--from-db and --to-db are mutually exclusive")
    if args.from_db:
        try:
            record = record_from_db(args.from_db, args.suite)
        except LookupError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    else:
        record = measure_suite(args.suite)
        if args.to_db:
            store_record(args.to_db, args.suite, record)
            print(f"stored {args.suite} blocks -> {args.to_db}",
                  file=sys.stderr)
    # with --to-db the store is the destination: only write the JSON
    # file when asked explicitly, so a CI `--to-db` run cannot clobber
    # the committed BENCH_<suite>.json baseline it will be gated against
    if args.output is None and args.to_db:
        return 0
    output = args.output or f"BENCH_{args.suite}.json"
    with open(output, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))
    print(f"\nwrote {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
