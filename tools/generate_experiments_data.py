#!/usr/bin/env python
"""Regenerate the measured tables embedded in EXPERIMENTS.md.

Runs every harness driver and prints the artifacts both as plain text
and as GitHub-flavored markdown, so documentation updates never involve
retyping numbers::

    python tools/generate_experiments_data.py            # text
    python tools/generate_experiments_data.py --markdown # markdown
"""

from __future__ import annotations

import argparse
import sys

from repro import harness
from repro.harness.reporting import to_markdown

DRIVERS = (
    harness.run_table1,
    harness.run_table2,
    harness.run_table3,
    harness.run_fig2,
    harness.run_fig5a,
    harness.run_fig5b,
    harness.run_fig6,
    harness.run_fig7,
    harness.run_fig9,
    harness.run_eq1,
    harness.run_rejection_rates,
    harness.run_buffer_combining,
    harness.run_variance_sweep,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--markdown", action="store_true",
                        help="emit GitHub-flavored markdown tables")
    args = parser.parse_args(argv)
    for driver in DRIVERS:
        result = driver()
        if args.markdown:
            print(to_markdown(result.headers, result.rows,
                              title=result.experiment))
        else:
            print(result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
