#!/usr/bin/env python
"""Regression gate over the committed ``BENCH_*.json`` baselines.

``tools/record_bench.py`` records two kinds of numbers side by side:
deterministic outputs (cycle counts, recommended depths, the entire
serving-tier step series under its pinned seed) and machine-dependent
wall-clock measurements (``*_ms``, ``*_per_s``, ``wall_seconds``,
speedups).  This gate re-measures a suite and diffs it against the
committed baseline with **per-metric tolerance bands**: deterministic
values must match to float precision, wall-time-derived ratios get a
wide band, and raw timings are skipped entirely (they say more about
the CI machine than about the code).

Usage::

    PYTHONPATH=src python tools/check_bench.py --suite serving
    PYTHONPATH=src python tools/check_bench.py --suite simulator --report-only
    PYTHONPATH=src python tools/check_bench.py --suite serving --fresh new.json

Without ``--fresh`` the suite is re-run in process (same code path as
``record_bench.py``).  ``--report-only`` prints the full comparison but
always exits 0 — the mode CI uses while a baseline is being reworked.

Tolerance bands (first match on the dotted metric path wins)::

    python, machine, *wall_seconds, *_ms, *_per_s   skipped
    *speedup*                                       rel <= 0.75
    *max_loo_relative_error                         rel <= 0.05
    * (everything else)                             rel <= 1e-6 / exact
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import math
import os
import sys

__all__ = ["DEFAULT_RULES", "compare_records", "main", "tolerance_for"]

#: (path glob, rule) pairs; rule is "skip", "exact", or a max relative
#: error.  Paths are dotted (list indices included): e.g.
#: ``serving.steps.3.latency_s.p99`` or ``fastpath.speedup``.
DEFAULT_RULES: tuple = (
    ("python", "skip"),
    ("machine", "skip"),
    ("*wall_seconds", "skip"),
    ("*_ms", "skip"),
    ("*_per_s", "skip"),
    # the pipeline block is deterministic end to end (cycle counts and
    # ratios of cycle counts), so it gets the exact band — except the
    # raw timing, which the *_ms rule above already skips
    ("pipeline.*", 1e-6),
    ("*speedup*", 0.75),
    # deterministic given the data, but the lstsq fit runs through BLAS
    ("*max_loo_relative_error", 0.05),
    ("*", 1e-6),
)


def tolerance_for(path: str, rules=DEFAULT_RULES):
    """First matching rule for a dotted metric path (None == no rule)."""
    for pattern, rule in rules:
        if fnmatch.fnmatchcase(path, pattern):
            return rule
    return None


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _numbers_match(baseline: float, fresh: float, tol: float) -> bool:
    if math.isnan(baseline) or math.isnan(fresh):
        return math.isnan(baseline) and math.isnan(fresh)
    if baseline == fresh:
        return True
    scale = max(abs(baseline), abs(fresh), 1e-12)
    return abs(fresh - baseline) / scale <= tol


def compare_records(baseline, fresh, rules=DEFAULT_RULES) -> list:
    """Diff two benchmark records; one finding dict per violation.

    Findings carry ``path``, ``kind`` (``missing``/``extra``/
    ``mismatch``/``type``), the two values and the applied tolerance.
    Skipped paths produce no findings; structure changes always do —
    a metric vanishing from the record is drift worth reviewing even
    when its values were exempt.
    """
    findings: list = []

    def visit(path: str, base, new) -> None:
        rule = tolerance_for(path, rules) if path else None
        if rule == "skip":
            return
        if isinstance(base, dict) and isinstance(new, dict):
            for key in base:
                child = f"{path}.{key}" if path else str(key)
                if key not in new:
                    if tolerance_for(child, rules) != "skip":
                        findings.append(
                            {"path": child, "kind": "missing",
                             "baseline": base[key], "fresh": None}
                        )
                else:
                    visit(child, base[key], new[key])
            for key in new:
                child = f"{path}.{key}" if path else str(key)
                if key not in base and tolerance_for(child, rules) != "skip":
                    findings.append(
                        {"path": child, "kind": "extra",
                         "baseline": None, "fresh": new[key]}
                    )
            return
        if isinstance(base, list) and isinstance(new, list):
            if len(base) != len(new):
                findings.append(
                    {"path": path, "kind": "mismatch",
                     "baseline": f"len {len(base)}", "fresh": f"len {len(new)}"}
                )
                return
            for i, (b, n) in enumerate(zip(base, new)):
                visit(f"{path}.{i}", b, n)
            return
        if _is_number(base) and _is_number(new):
            tol = rule if isinstance(rule, (int, float)) else 0.0
            if not _numbers_match(float(base), float(new), float(tol)):
                findings.append(
                    {"path": path, "kind": "mismatch",
                     "baseline": base, "fresh": new, "tolerance": tol}
                )
            return
        if type(base) is not type(new):
            findings.append(
                {"path": path, "kind": "type",
                 "baseline": base, "fresh": new}
            )
            return
        if base != new:
            findings.append(
                {"path": path, "kind": "mismatch",
                 "baseline": base, "fresh": new}
            )

    visit("", baseline, fresh)
    return findings


def _measure_suite(suite: str) -> dict:
    """Re-run a suite in process, mirroring ``record_bench.main``."""
    import platform

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    import record_bench

    record = {
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    if suite == "simulator":
        record.update(
            lane_throughput=record_bench.bench_lane_throughput(),
            fastpath=record_bench.bench_fastpath(),
            pruned_sweep=record_bench.bench_pruned_sweep(),
            surrogate=record_bench.bench_surrogate_error(),
            pipeline=record_bench.bench_pipeline(),
        )
    else:
        record["serving"] = record_bench.bench_serving()
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--suite", choices=("simulator", "serving"), default="simulator",
        help="benchmark suite to check (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="committed baseline (default: BENCH_<suite>.json)",
    )
    parser.add_argument(
        "--fresh", default=None,
        help="pre-recorded fresh run to compare instead of re-measuring",
    )
    parser.add_argument(
        "--report-only", action="store_true",
        help="print the comparison but exit 0 regardless of drift",
    )
    args = parser.parse_args(argv)
    baseline_path = args.baseline or f"BENCH_{args.suite}.json"
    try:
        with open(baseline_path, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read baseline {baseline_path!r}: {exc}",
              file=sys.stderr)
        return 2
    if args.fresh is not None:
        try:
            with open(args.fresh, encoding="utf-8") as fh:
                fresh = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read fresh record {args.fresh!r}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        fresh = _measure_suite(args.suite)

    findings = compare_records(baseline, fresh)
    checked = args.suite
    if not findings:
        print(f"check_bench[{checked}]: OK — fresh run matches "
              f"{baseline_path} within tolerance")
        return 0
    print(f"check_bench[{checked}]: {len(findings)} metric(s) drifted "
          f"from {baseline_path}:")
    for f in findings:
        tol = f.get("tolerance")
        band = f" (tol {tol:g})" if tol is not None else ""
        print(f"  {f['kind']:<8} {f['path']}: "
              f"baseline={f['baseline']!r} fresh={f['fresh']!r}{band}")
    if args.report_only:
        print("report-only: not failing the build")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
