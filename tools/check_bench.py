#!/usr/bin/env python
"""Regression gate over the committed ``BENCH_*.json`` baselines.

``tools/record_bench.py`` records two kinds of numbers side by side:
deterministic outputs (cycle counts, recommended depths, the entire
serving-tier step series under its pinned seed) and machine-dependent
wall-clock measurements (``*_ms``, ``*_per_s``, ``wall_seconds``,
speedups).  This gate re-measures a suite and diffs it against the
committed baseline with **per-metric tolerance bands**: deterministic
values must match to float precision, wall-time-derived ratios get a
wide band, and raw timings are skipped entirely (they say more about
the CI machine than about the code).

Usage::

    PYTHONPATH=src python tools/check_bench.py --suite serving
    PYTHONPATH=src python tools/check_bench.py --suite simulator --report-only
    PYTHONPATH=src python tools/check_bench.py --suite serving --fresh new.json
    PYTHONPATH=src python tools/check_bench.py --suite serving --from-db bench.sqlite

Without ``--fresh``/``--from-db`` the suite is re-run in process (same
code path as ``record_bench.py``).  ``--from-db`` renders the fresh
record from a :mod:`repro.campaign` sqlite store instead (rows written
by ``record_bench.py --to-db``), so the gate runs without repeating the
measurement.  ``--report-only`` prints the full comparison but always
exits 0 — the mode CI uses while a baseline is being reworked.

Tolerance bands (first match on the dotted metric path wins, so the
metric-shaped rules — skips, speedups, the LOO error — come before the
block-scoped catch-alls)::

    python, machine, *wall_seconds, *_ms, *_per_s   skipped
    *speedup*                                       rel <= 0.75
    *max_loo_relative_error                         rel <= 0.05
    pipeline.* and everything else                  rel <= 1e-6 / exact
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import math
import os
import sys

__all__ = ["DEFAULT_RULES", "compare_records", "main", "tolerance_for"]

#: (path glob, rule) pairs; rule is "skip", "exact", or a max relative
#: error.  Paths are dotted (list indices included): e.g.
#: ``serving.steps.3.latency_s.p99`` or ``fastpath.speedup``.
DEFAULT_RULES: tuple = (
    ("python", "skip"),
    ("machine", "skip"),
    ("*wall_seconds", "skip"),
    ("*_ms", "skip"),
    ("*_per_s", "skip"),
    # metric-shaped rules must precede block-scoped catch-alls:
    # first match wins, so with `pipeline.*` ahead of `*speedup*` a
    # future pipeline speedup metric would silently inherit the exact
    # band instead of the wall-clock one (regression-tested in
    # tests/tools/test_check_bench.py::TestRulePrecedence)
    ("*speedup*", 0.75),
    # deterministic given the data, but the lstsq fit runs through BLAS
    ("*max_loo_relative_error", 0.05),
    # the rest of the pipeline block is deterministic end to end
    # (cycle counts and ratios of cycle counts): the exact band
    ("pipeline.*", 1e-6),
    ("*", 1e-6),
)


def tolerance_for(path: str, rules=DEFAULT_RULES):
    """First matching rule for a dotted metric path (None == no rule)."""
    for pattern, rule in rules:
        if fnmatch.fnmatchcase(path, pattern):
            return rule
    return None


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _subtree_flaggable(path: str, value, rules) -> bool:
    """Would any leaf under ``path`` produce a finding if it drifted?

    An absent key is only worth a ``missing``/``extra`` finding when
    the vanished subtree contains at least one non-skipped leaf.  This
    check recurses, so the verdict for a key is identical whether its
    subtree disappears wholesale or leaf by leaf — and it is applied to
    baseline-only and fresh-only keys alike.
    """
    if tolerance_for(path, rules) == "skip":
        return False
    if isinstance(value, dict):
        return any(
            _subtree_flaggable(f"{path}.{key}", child, rules)
            for key, child in value.items()
        )
    if isinstance(value, list):
        return any(
            _subtree_flaggable(f"{path}.{i}", item, rules)
            for i, item in enumerate(value)
        )
    return True


def _numbers_match(baseline: float, fresh: float, tol: float) -> bool:
    if math.isnan(baseline) or math.isnan(fresh):
        return math.isnan(baseline) and math.isnan(fresh)
    if baseline == fresh:
        return True
    scale = max(abs(baseline), abs(fresh), 1e-12)
    return abs(fresh - baseline) / scale <= tol


def compare_records(baseline, fresh, rules=DEFAULT_RULES) -> list:
    """Diff two benchmark records; one finding dict per violation.

    Findings carry ``path``, ``kind`` (``missing``/``extra``/
    ``mismatch``/``type``), the two values and the applied tolerance.
    Skipped paths produce no findings; structure changes do — a metric
    vanishing from the record is drift worth reviewing even when its
    values were exempt.  Absent-key detection is symmetric: a
    baseline-only key flags ``missing`` and a fresh-only key flags
    ``extra`` under exactly the same rule — the finding is suppressed
    only when *every* leaf of the vanished subtree is skipped (so
    dropping ``{"wall_seconds": …}`` wholesale is as silent as
    dropping its one skipped leaf).
    """
    findings: list = []

    def flag_absent(child: str, kind: str, base, new) -> None:
        value = base if kind == "missing" else new
        if _subtree_flaggable(child, value, rules):
            findings.append(
                {"path": child, "kind": kind, "baseline": base, "fresh": new}
            )

    def visit(path: str, base, new) -> None:
        rule = tolerance_for(path, rules) if path else None
        if rule == "skip":
            return
        if isinstance(base, dict) and isinstance(new, dict):
            for key in base:
                child = f"{path}.{key}" if path else str(key)
                if key not in new:
                    flag_absent(child, "missing", base[key], None)
                else:
                    visit(child, base[key], new[key])
            for key in new:
                child = f"{path}.{key}" if path else str(key)
                if key not in base:
                    flag_absent(child, "extra", None, new[key])
            return
        if isinstance(base, list) and isinstance(new, list):
            if len(base) != len(new):
                findings.append(
                    {"path": path, "kind": "mismatch",
                     "baseline": f"len {len(base)}", "fresh": f"len {len(new)}"}
                )
                return
            for i, (b, n) in enumerate(zip(base, new)):
                visit(f"{path}.{i}", b, n)
            return
        if _is_number(base) and _is_number(new):
            tol = rule if isinstance(rule, (int, float)) else 0.0
            if not _numbers_match(float(base), float(new), float(tol)):
                findings.append(
                    {"path": path, "kind": "mismatch",
                     "baseline": base, "fresh": new, "tolerance": tol}
                )
            return
        if type(base) is not type(new):
            findings.append(
                {"path": path, "kind": "type",
                 "baseline": base, "fresh": new}
            )
            return
        if base != new:
            findings.append(
                {"path": path, "kind": "mismatch",
                 "baseline": base, "fresh": new}
            )

    visit("", baseline, fresh)
    return findings


def _record_bench():
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    import record_bench

    return record_bench


def _measure_suite(suite: str) -> dict:
    """Re-run a suite in process, mirroring ``record_bench.main``."""
    return _record_bench().measure_suite(suite)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--suite", choices=("simulator", "serving"), default="simulator",
        help="benchmark suite to check (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="committed baseline (default: BENCH_<suite>.json)",
    )
    parser.add_argument(
        "--fresh", default=None,
        help="pre-recorded fresh run to compare instead of re-measuring",
    )
    parser.add_argument(
        "--from-db", metavar="FILE", default=None,
        help="render the fresh record from a campaign sqlite store "
        "(rows written by record_bench.py --to-db) instead of "
        "re-measuring",
    )
    parser.add_argument(
        "--report-only", action="store_true",
        help="print the comparison but exit 0 regardless of drift",
    )
    args = parser.parse_args(argv)
    if args.fresh is not None and args.from_db is not None:
        parser.error("--fresh and --from-db are mutually exclusive")
    baseline_path = args.baseline or f"BENCH_{args.suite}.json"
    try:
        with open(baseline_path, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read baseline {baseline_path!r}: {exc}",
              file=sys.stderr)
        return 2
    if args.fresh is not None:
        try:
            with open(args.fresh, encoding="utf-8") as fh:
                fresh = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read fresh record {args.fresh!r}: {exc}",
                  file=sys.stderr)
            return 2
    elif args.from_db is not None:
        try:
            fresh = _record_bench().record_from_db(args.from_db, args.suite)
        except (LookupError, OSError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
    else:
        fresh = _measure_suite(args.suite)

    findings = compare_records(baseline, fresh)
    checked = args.suite
    if not findings:
        print(f"check_bench[{checked}]: OK — fresh run matches "
              f"{baseline_path} within tolerance")
        return 0
    print(f"check_bench[{checked}]: {len(findings)} metric(s) drifted "
          f"from {baseline_path}:")
    for f in findings:
        tol = f.get("tolerance")
        band = f" (tol {tol:g})" if tol is not None else ""
        print(f"  {f['kind']:<8} {f['path']}: "
              f"baseline={f['baseline']!r} fresh={f['fresh']!r}{band}")
    if args.report_only:
        print("report-only: not failing the build")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
