"""Bounded job queue: backpressure, shedding, close semantics, stats."""

import threading
import time

import pytest

from repro.core import FifoStats, Stream
from repro.engine import (
    BoundedJobQueue,
    GammaJob,
    JobQueueClosed,
    JobQueueFull,
    SubmitTimeout,
)


def _job(seed=1, variance=1.39):
    return GammaJob(n_samples=8, seed=seed, variance=variance)


class TestAdmission:
    def test_depth_validation(self):
        with pytest.raises(ValueError, match="depth"):
            BoundedJobQueue(depth=0)

    def test_put_get_roundtrip(self):
        q = BoundedJobQueue(depth=4)
        job = _job()
        q.put(job)
        assert q.occupancy == 1
        assert q.get_batch(1) == [job]
        assert q.occupancy == 0

    def test_shed_policy_raises_typed_error(self):
        q = BoundedJobQueue(depth=2)
        q.put(_job(1))
        q.put(_job(2))
        with pytest.raises(JobQueueFull):
            q.put(_job(3), block=False)
        assert q.stats.write_stalls == 1

    def test_blocking_put_times_out(self):
        q = BoundedJobQueue(depth=1)
        q.put(_job(1))
        t0 = time.monotonic()
        with pytest.raises(SubmitTimeout):
            q.put(_job(2), block=True, timeout=0.05)
        assert time.monotonic() - t0 >= 0.04

    def test_blocking_put_unblocks_when_space_frees(self):
        q = BoundedJobQueue(depth=1)
        q.put(_job(1))
        admitted = threading.Event()

        def producer():
            q.put(_job(2), block=True, timeout=5.0)
            admitted.set()

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        time.sleep(0.02)
        assert not admitted.is_set()  # backpressured while full
        q.get_batch(1)
        assert admitted.wait(2.0)
        t.join(2.0)

    def test_put_after_close_raises(self):
        q = BoundedJobQueue(depth=2)
        q.close()
        with pytest.raises(JobQueueClosed):
            q.put(_job())

    def test_close_releases_blocked_producer(self):
        q = BoundedJobQueue(depth=1)
        q.put(_job(1))
        errors = []

        def producer():
            try:
                q.put(_job(2), block=True, timeout=5.0)
            except JobQueueClosed as exc:
                errors.append(exc)

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        time.sleep(0.02)
        q.close()
        t.join(2.0)
        assert len(errors) == 1


class TestBatchDrain:
    def test_get_batch_coalesces_equal_keys(self):
        q = BoundedJobQueue(depth=8)
        a = [_job(i, variance=1.39) for i in range(3)]
        b = _job(9, variance=0.35)
        for job in (a[0], a[1], b, a[2]):
            q.put(job)
        batch = q.get_batch(max_size=4)
        assert batch == a  # same-key jobs coalesce across the stranger
        assert q.get_batch(max_size=4) == [b]

    def test_get_batch_respects_max_size(self):
        q = BoundedJobQueue(depth=8)
        jobs = [_job(i) for i in range(5)]
        for job in jobs:
            q.put(job)
        assert q.get_batch(max_size=2) == jobs[:2]
        assert q.get_batch(max_size=2) == jobs[2:4]

    def test_closed_and_empty_returns_empty(self):
        q = BoundedJobQueue(depth=2)
        q.close()
        assert q.get_batch(1, timeout=0.01) == []

    def test_close_leaves_pending_readable(self):
        q = BoundedJobQueue(depth=2)
        job = _job()
        q.put(job)
        q.close()
        assert q.get_batch(1) == [job]
        assert q.get_batch(1, timeout=0.01) == []

    def test_get_matching_skips_other_keys(self):
        q = BoundedJobQueue(depth=8)
        a = _job(1, variance=1.39)
        b = _job(2, variance=0.35)
        q.put(a)
        q.put(b)
        got = q.get_matching(b.batch_key(), max_size=2, timeout=0.01)
        assert got == [b]
        assert q.get_batch(1) == [a]  # untouched, order preserved


class TestWaitDeadlines:
    """Regressions for the timeout-drift family: every blocking wait
    holds one monotonic deadline across wakeups instead of restarting
    (or abandoning) its timeout on each one."""

    def test_get_matching_waits_through_non_matching_puts(self):
        # the old single-wait get_matching returned [] as soon as ANY
        # put woke it, even one with the wrong key — a reader asking
        # for key B must keep waiting until B arrives or time runs out
        q = BoundedJobQueue(depth=8)
        b = _job(9, variance=0.35)
        got = []

        def reader():
            got.extend(q.get_matching(b.batch_key(), max_size=1, timeout=2.0))

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        time.sleep(0.02)
        q.put(_job(1, variance=1.39))  # wrong key: wakes, must not satisfy
        time.sleep(0.05)
        assert t.is_alive()  # still waiting, not returned-empty
        q.put(b)
        t.join(2.0)
        assert got == [b]

    def test_get_batch_survives_spurious_wakeup(self):
        q = BoundedJobQueue(depth=4)
        job = _job()
        got = []

        def reader():
            got.extend(q.get_batch(1, timeout=2.0))

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        time.sleep(0.02)
        with q._not_empty:  # spurious wakeup, no data
            q._not_empty.notify_all()
        time.sleep(0.05)
        assert t.is_alive()  # kept waiting instead of returning []
        q.put(job)
        t.join(2.0)
        assert got == [job]

    def test_get_batch_timeout_is_a_deadline_not_a_restart(self):
        # wakeups must not extend the total wait: hammer the condition
        # with notifies and check the empty return lands near the
        # requested timeout, neither early nor drifting late
        q = BoundedJobQueue(depth=4)
        stop = threading.Event()

        def poker():
            while not stop.is_set():
                with q._not_empty:
                    q._not_empty.notify_all()
                time.sleep(0.005)

        t = threading.Thread(target=poker, daemon=True)
        t.start()
        t0 = time.monotonic()
        assert q.get_batch(1, timeout=0.15) == []
        elapsed = time.monotonic() - t0
        stop.set()
        t.join(2.0)
        assert 0.13 <= elapsed < 1.0

    def test_put_prefers_closed_over_timeout(self):
        # when the queue closes while a blocked put's timeout is also
        # expiring, the producer must see the terminal JobQueueClosed
        # (retrying is pointless), not the transient SubmitTimeout
        q = BoundedJobQueue(depth=1)
        q.put(_job(1))
        errors = []

        def producer():
            try:
                q.put(_job(2), block=True, timeout=0.08)
            except (JobQueueClosed, SubmitTimeout) as exc:
                errors.append(exc)

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        time.sleep(0.03)
        q.close()
        t.join(2.0)
        assert len(errors) == 1
        assert isinstance(errors[0], JobQueueClosed)

    def test_close_wakes_both_producers_and_consumers(self):
        # a producer blocked on a full queue (waits on not_full) and a
        # consumer blocked on a key that never arrives (waits on
        # not_empty) must BOTH wake promptly when close() fires — it
        # has to notify both conditions
        q = BoundedJobQueue(depth=1)
        q.put(_job(1, variance=1.39))
        absent_key = _job(9, variance=0.35).batch_key()
        outcomes = []

        def producer():
            try:
                q.put(_job(2), block=True, timeout=10.0)
            except JobQueueClosed:
                outcomes.append("producer-closed")

        def consumer():
            outcomes.append(
                ("consumer", q.get_matching(absent_key, 1, timeout=10.0))
            )

        threads = [
            threading.Thread(target=producer, daemon=True),
            threading.Thread(target=consumer, daemon=True),
        ]
        for t in threads:
            t.start()
        time.sleep(0.05)
        q.close()
        t0 = time.monotonic()
        for t in threads:
            t.join(2.0)
        assert time.monotonic() - t0 < 1.0  # woken by close, not timeout
        assert not any(t.is_alive() for t in threads)
        assert "producer-closed" in outcomes
        assert ("consumer", []) in outcomes


class TestSharedFifoAccounting:
    """The queue reports the same FifoStats vocabulary as core Stream."""

    def test_stats_type_shared_with_stream(self):
        q = BoundedJobQueue(depth=4, name="q")
        s = Stream("s", depth=4)
        assert isinstance(q.stats, FifoStats)
        assert isinstance(s.stats, FifoStats)
        assert type(q.stats) is type(s.stats)

    def test_high_water_and_counts(self):
        q = BoundedJobQueue(depth=4)
        for i in range(3):
            q.put(_job(i))
        q.get_batch(max_size=2)
        st = q.stats
        assert st.high_water == 3
        assert st.total_writes == 3
        assert st.total_reads == 2
        assert st.occupancy == 1
        assert st.headroom == 1
        assert st.utilization == pytest.approx(0.75)

    def test_stream_stats_snapshot_matches_counters(self):
        s = Stream("s", depth=2)
        s.write("x")
        s.write("y")
        s.can_write()  # full -> stall tallied
        s.read()
        st = s.stats
        assert (st.total_writes, st.total_reads) == (2, 1)
        assert st.write_stalls == 1
        assert st.high_water == 2

    def test_empty_poll_counts_read_stall(self):
        q = BoundedJobQueue(depth=2)
        q.get_batch(1, timeout=0.01)
        assert q.stats.read_stalls == 1
