"""Chaos acceptance: the engine under the seeded fault plan.

The scenario the resilience layer exists for: three workers, one
killed mid-run by the plan, ~5% of batches wedged, ~5% of jobs failed.
The properties asserted — every submitted job terminates with a result
or a typed error, no engine thread survives shutdown, breaker
transitions land in the exported metrics and trace — are the
acceptance criteria of the fault-injection PR, marked ``chaos`` so CI
can run them as a dedicated job (``pytest -m chaos``) with a pinned
``REPRO_CHAOS_SEED``.
"""

import threading
import time

import pytest

from repro.engine import (
    EngineError,
    ExecutionEngine,
    FaultPlan,
    FaultRule,
    GammaJob,
    RetryPolicy,
    default_chaos_plan,
    run_chaos,
)
from repro.obs import ChromeTracer

pytestmark = pytest.mark.chaos

SEED = 20170529


def _jobs(n=48, samples=256):
    return [
        GammaJob(
            n_samples=samples,
            seed=SEED + i,
            variance=(1.39, 0.35)[i % 2],
        )
        for i in range(n)
    ]


def _chaos_plan():
    return FaultPlan(
        rules=[
            FaultRule(scope="worker", mode="kill", match="w1", after_batches=2),
            FaultRule(scope="batch", mode="wedge", probability=0.05, wedge_s=0.15),
            FaultRule(scope="job", mode="fail", probability=0.05),
        ],
        seed=SEED,
    )


class TestChaosRun:
    def test_every_job_terminates_and_no_thread_hangs(self):
        before = {t.ident for t in threading.enumerate()}
        tracer = ChromeTracer()
        plan = _chaos_plan()
        eng = ExecutionEngine(
            n_workers=3,
            max_batch=4,
            queue_depth=64,
            policy="least-loaded",
            faults=plan,
            default_deadline_s=20.0,
            retry=RetryPolicy(max_attempts=3, base_s=0.01, jitter=0.5),
            breaker_config={"failure_threshold": 2, "cooldown_s": 0.2},
            tracer=tracer,
        )
        jobs = _jobs()
        outcomes = {"result": 0, "typed_error": 0}
        with eng:
            handles = [eng.submit(job) for job in jobs]
            for handle in handles:
                try:
                    handle.result(timeout=30.0)
                    outcomes["result"] += 1
                except EngineError:
                    outcomes["typed_error"] += 1
                # anything else (TimeoutError, bare exception) fails the test

        # 1. every job terminated, one way or the other
        assert sum(outcomes.values()) == len(jobs)
        assert outcomes["result"] > 0  # the pool survived the chaos

        # 2. the kill really happened and drove retries + a breaker trip
        stats = eng.stats()
        assert stats.faults_injected["kill"] == 1
        assert stats.retries > 0
        assert stats.breakers["w1"]["times_opened"] >= 1

        # 3. breaker transitions are visible in the exported metrics...
        snap = eng.metrics.snapshot()
        assert snap["engine.breaker_transitions"] >= 1
        assert snap["engine.breaker_to_open"] >= 1

        # ...and in the trace event stream
        names = {e.get("name") for e in tracer.events()}
        assert "breaker:w1" in names

        # 4. no engine thread outlives shutdown
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            leftover = [
                t
                for t in threading.enumerate()
                if t.ident not in before and t.is_alive()
            ]
            if not leftover:
                break
            time.sleep(0.01)
        assert not leftover, f"threads survived shutdown: {leftover}"

    def test_chaos_replays_identically(self):
        # same plan seed, same job seeds => the same faults fire, so
        # the same set of job seeds fails on both runs
        def run_once():
            plan = _chaos_plan()
            eng = ExecutionEngine(
                n_workers=3,
                max_batch=4,
                policy="least-loaded",
                faults=plan,
                retry=RetryPolicy(max_attempts=3, base_s=0.01, jitter=0.0),
                breaker_config={"failure_threshold": 2, "cooldown_s": 0.2},
            )
            failed_seeds = set()
            with eng:
                handles = [(job, eng.submit(job)) for job in _jobs(n=32)]
                for job, handle in handles:
                    try:
                        handle.result(timeout=30.0)
                    except EngineError:
                        failed_seeds.add(job.seed)
            return failed_seeds

        assert run_once() == run_once()

    def test_run_chaos_driver_reports_full_termination(self):
        result = run_chaos(n_jobs=48, n_samples=256, seed=SEED)
        row = dict(zip(result.headers, result.rows[0]))
        assert row["terminated"] == row["jobs"] == 48
        assert row["completed"] > 0
        outcomes = result.series["outcomes"]
        assert sum(outcomes.values()) == 48
        assert result.series["faults_injected"]["kill"] == 1
        assert "w1" in result.series["breakers"]
        assert result.series["plan"]["seed"] == SEED

    def test_default_plan_honors_seed_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_SEED", "12345")
        assert default_chaos_plan().seed == 12345
        monkeypatch.delenv("REPRO_CHAOS_SEED")
        assert default_chaos_plan(seed=7).seed == 7

    def test_wedged_worker_cannot_outlive_shutdown(self):
        # a 30s wedge on every batch: shutdown must still complete
        # quickly because it releases the plan and force-resolves
        plan = FaultPlan([FaultRule(scope="batch", mode="wedge", wedge_s=30.0)])
        eng = ExecutionEngine(
            n_workers=1, faults=plan, breakers=False
        ).start()
        handle = eng.submit(GammaJob(n_samples=16, seed=1))
        time.sleep(0.05)  # the worker is now wedged mid-batch
        t0 = time.monotonic()
        eng.shutdown(drain=True, timeout=10.0)
        assert time.monotonic() - t0 < 5.0
        assert handle.done  # resolved (result or typed error), not hung
