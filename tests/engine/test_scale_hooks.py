"""Elastic worker hooks + handle callbacks (the serve tier's substrate)."""

import threading

import pytest

from repro.engine.engine import ExecutionEngine
from repro.engine.jobs import GammaJob


def _jobs(n, seed0=0, samples=256):
    return [
        GammaJob(config="Config1", n_samples=samples, seed=seed0 + i)
        for i in range(n)
    ]


class TestAddWorker:
    def test_add_while_running(self):
        with ExecutionEngine(n_workers=1) as engine:
            assert engine.n_active_workers == 1
            name = engine.add_worker()
            assert name == "w1"
            assert engine.n_active_workers == 2
            results = engine.run(_jobs(16))
            assert len(results) == 16
        stats = engine.stats()
        assert {w.name for w in stats.workers} == {"w0", "w1"}

    def test_added_worker_gets_breaker_and_fault_plan(self):
        with ExecutionEngine(n_workers=1) as engine:
            engine.add_worker()
            assert set(engine.pool.breakers) == {"w0", "w1"}

    def test_duplicate_name_rejected(self):
        from repro.engine.pool import DeviceWorker

        with ExecutionEngine(n_workers=1) as engine:
            with pytest.raises(ValueError):
                engine.pool.add_worker(DeviceWorker("w0"))

    def test_add_before_start_counts(self):
        engine = ExecutionEngine(n_workers=1)
        engine.add_worker()
        with engine:
            assert len(engine.run(_jobs(8))) == 8

    def test_auto_inflight_tracks_pool(self):
        with ExecutionEngine(n_workers=1) as engine:
            base = engine.pool.max_inflight
            engine.add_worker()
            assert engine.pool.max_inflight == base + 2


class TestRemoveWorker:
    def test_remove_drains_gracefully(self):
        with ExecutionEngine(n_workers=2) as engine:
            removed = engine.remove_worker()
            assert engine.n_active_workers == 1
            assert removed in {"w0", "w1"}
            results = engine.run(_jobs(12))
            assert len(results) == 12
        # the retired worker got no work after retirement completed

    def test_cannot_remove_last_worker(self):
        with ExecutionEngine(n_workers=1) as engine:
            with pytest.raises(ValueError):
                engine.remove_worker()

    def test_remove_by_name(self):
        with ExecutionEngine(n_workers=2) as engine:
            assert engine.remove_worker("w1") == "w1"
            active = {w.name for w in engine.pool.active_workers}
            assert active == {"w0"}

    def test_unknown_name_rejected(self):
        with ExecutionEngine(n_workers=2) as engine:
            with pytest.raises(ValueError):
                engine.remove_worker("nope")

    def test_add_back_after_remove(self):
        with ExecutionEngine(n_workers=2) as engine:
            engine.remove_worker("w1")
            name = engine.add_worker()
            assert name == "w2"
            assert engine.n_active_workers == 2
            assert len(engine.run(_jobs(10))) == 10


class TestDoneCallbacks:
    def test_callback_fires_on_completion(self):
        fired = threading.Event()
        seen = []
        with ExecutionEngine(n_workers=1) as engine:
            handle = engine.submit(_jobs(1)[0])
            handle.add_done_callback(
                lambda h: (seen.append(h), fired.set())
            )
            handle.result(timeout=30)
            assert fired.wait(5)
        assert seen[0] is handle
        assert seen[0].error is None

    def test_callback_after_done_fires_immediately(self):
        with ExecutionEngine(n_workers=1) as engine:
            handle = engine.submit(_jobs(1)[0])
            handle.result(timeout=30)
            seen = []
            handle.add_done_callback(seen.append)
            assert seen == [handle]

    def test_callback_exception_is_swallowed(self):
        with ExecutionEngine(n_workers=1) as engine:
            handle = engine.submit(_jobs(1)[0])

            def _boom(h):
                raise RuntimeError("observer bug")

            handle.add_done_callback(_boom)
            # the resolving thread must not be wedged by the bad observer
            assert handle.result(timeout=30) is not None

    def test_error_visible_to_callback(self):
        from repro.engine.resilience import FaultPlan, FaultRule, WorkerFault

        plan = FaultPlan(
            rules=[FaultRule(scope="job", mode="fail", probability=1.0)],
            seed=3,
        )
        done = threading.Event()
        captured = []
        with ExecutionEngine(n_workers=1, faults=plan) as engine:
            handle = engine.submit(_jobs(1, seed0=3)[0])
            handle.add_done_callback(
                lambda h: (captured.append(h.error), done.set())
            )
            assert done.wait(10)
        assert isinstance(captured[0], WorkerFault)
