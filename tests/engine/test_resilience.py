"""Resilience layer: retry backoff, breakers, fault plans, deadlines.

All timing-sensitive state machines run against injectable clocks
(:class:`repro.engine.ManualClock`) or pure functions
(:meth:`RetryPolicy.delay_s`), so none of these tests sleep to observe
a transition.
"""

import threading
import time

import pytest

from repro.engine import (
    CircuitBreaker,
    ExecutionEngine,
    FaultPlan,
    FaultRule,
    GammaJob,
    InjectedFault,
    JobDeadlineExceeded,
    ManualClock,
    RetryPolicy,
    TimerThread,
    WorkerFault,
)
from repro.engine.queue import EngineError
from repro.engine.resilience import unit_draw


def _jobs(n=8, samples=64, base_seed=900):
    return [
        GammaJob(
            n_samples=samples,
            seed=base_seed + i,
            variance=(1.39, 0.35)[i % 2],
        )
        for i in range(n)
    ]


class SlowJob(GammaJob):
    delay_s = 0.08

    def compute(self):
        time.sleep(self.delay_s)
        return super().compute()


class TestUnitDraw:
    def test_deterministic(self):
        assert unit_draw(7, "a", 1) == unit_draw(7, "a", 1)
        assert unit_draw(7, "a", 1) != unit_draw(8, "a", 1)

    def test_roughly_uniform_over_sequential_keys(self):
        # sequential keys (job seeds, batch ids) must still spread: a
        # p=0.05 rule over ~200 entities should fire a plausible number
        # of times, not zero (the failure mode of checksum-based draws)
        draws = [unit_draw(0, "job", "fail", 1000 + i) for i in range(200)]
        hits = sum(d < 0.05 for d in draws)
        assert 1 <= hits <= 30
        assert 0.3 < sum(draws) / len(draws) < 0.7


class TestRetryPolicy:
    def test_exponential_growth_without_jitter(self):
        p = RetryPolicy(base_s=0.1, multiplier=2.0, max_s=10.0, jitter=0.0)
        assert p.delay_s(1) == pytest.approx(0.1)
        assert p.delay_s(2) == pytest.approx(0.2)
        assert p.delay_s(3) == pytest.approx(0.4)

    def test_cap_at_max_s(self):
        p = RetryPolicy(base_s=1.0, multiplier=10.0, max_s=2.5, jitter=0.0)
        assert p.delay_s(5) == pytest.approx(2.5)

    def test_jitter_bounds_and_determinism(self):
        p = RetryPolicy(base_s=0.1, multiplier=2.0, jitter=0.5)
        for attempt in (1, 2, 3):
            raw = min(p.max_s, p.base_s * p.multiplier ** (attempt - 1))
            d1 = p.delay_s(attempt, key=42)
            d2 = p.delay_s(attempt, key=42)
            assert d1 == d2  # pure function of (attempt, key)
            assert raw * 0.5 <= d1 <= raw
        # different keys de-synchronize (spread a retry storm)
        assert p.delay_s(1, key=1) != p.delay_s(1, key=2)

    def test_retryable_only_worker_faults(self):
        p = RetryPolicy()
        assert p.retryable(WorkerFault("x"))
        assert p.retryable(InjectedFault("x"))
        assert not p.retryable(RuntimeError("x"))
        assert not p.retryable(JobDeadlineExceeded("x"))

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay_s(0)


class TestCircuitBreaker:
    def _breaker(self, clock, **kw):
        kw.setdefault("failure_threshold", 2)
        kw.setdefault("cooldown_s", 1.0)
        return CircuitBreaker(clock=clock, **kw)

    def test_opens_after_consecutive_failures(self):
        clock = ManualClock()
        b = self._breaker(clock)
        b.record_failure()
        assert b.state == CircuitBreaker.CLOSED
        b.record_failure()
        assert b.state == CircuitBreaker.OPEN
        assert not b.can_admit()
        assert b.times_opened == 1

    def test_success_resets_the_consecutive_count(self):
        clock = ManualClock()
        b = self._breaker(clock)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == CircuitBreaker.CLOSED  # never 2 in a row

    def test_cooldown_moves_open_to_half_open(self):
        clock = ManualClock()
        b = self._breaker(clock)
        b.record_failure()
        b.record_failure()
        clock.advance(0.99)
        assert b.state == CircuitBreaker.OPEN
        clock.advance(0.02)
        assert b.state == CircuitBreaker.HALF_OPEN

    def test_half_open_admits_limited_probes(self):
        clock = ManualClock()
        b = self._breaker(clock, half_open_probes=1)
        b.record_failure()
        b.record_failure()
        clock.advance(1.1)
        assert b.admit()  # the probe
        assert not b.admit()  # probe slot taken
        assert not b.can_admit()

    def test_probe_success_closes(self):
        clock = ManualClock()
        b = self._breaker(clock)
        b.record_failure()
        b.record_failure()
        clock.advance(1.1)
        assert b.admit()
        b.record_success()
        assert b.state == CircuitBreaker.CLOSED
        assert b.can_admit()

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock = ManualClock()
        b = self._breaker(clock)
        b.record_failure()
        b.record_failure()
        clock.advance(1.1)
        assert b.admit()
        b.record_failure()
        assert b.state == CircuitBreaker.OPEN
        assert b.times_opened == 2
        clock.advance(0.5)
        assert b.state == CircuitBreaker.OPEN  # cooldown restarted
        clock.advance(0.6)
        assert b.state == CircuitBreaker.HALF_OPEN

    def test_transition_hook_sees_every_change(self):
        clock = ManualClock()
        seen = []
        b = self._breaker(clock)
        b.on_transition = lambda old, new: seen.append((old, new))
        b.record_failure()
        b.record_failure()
        clock.advance(1.1)
        assert b.admit()
        b.record_success()
        assert seen == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]
        assert b.transitions == 3

    def test_snapshot_fields(self):
        b = self._breaker(ManualClock())
        b.record_failure()
        snap = b.snapshot()
        assert snap["state"] == "closed"
        assert snap["failures"] == 1
        assert snap["consecutive_failures"] == 1
        assert set(snap) >= {"successes", "times_opened", "transitions"}


class TestFaultPlan:
    def test_rule_validation(self):
        with pytest.raises(ValueError, match="scope"):
            FaultRule(scope="universe")
        with pytest.raises(ValueError, match="mode"):
            FaultRule(mode="explode")
        with pytest.raises(ValueError):
            FaultRule(probability=1.5)
        with pytest.raises(ValueError):
            FaultRule(scope="job", mode="kill")
        with pytest.raises(ValueError):
            FaultRule(scope="job", mode="wedge")

    def test_json_roundtrip(self, tmp_path):
        plan = FaultPlan(
            rules=[
                FaultRule(scope="worker", mode="kill", match="w1", after_batches=2),
                FaultRule(scope="job", mode="fail", probability=0.25),
            ],
            seed=99,
        )
        path = tmp_path / "plan.json"
        import json

        path.write_text(json.dumps(plan.to_dict()))
        loaded = FaultPlan.from_json(str(path))
        assert loaded.seed == 99
        assert loaded.rules == plan.rules

    def test_job_fault_is_deterministic_and_seed_keyed(self):
        plan = FaultPlan([FaultRule(scope="job", mode="fail", probability=0.3)])
        jobs = _jobs(n=40)
        first = [plan.job_fault("w0", j) is not None for j in jobs]
        # same decision on any worker, any call: keyed on the job seed
        second = [plan.job_fault("w7", j) is not None for j in jobs]
        assert first == second
        assert any(first) and not all(first)

    def test_kill_arms_after_batches_and_stays_dead(self):
        plan = FaultPlan(
            [FaultRule(scope="worker", mode="kill", match="w0", after_batches=2)]
        )

        class FakeBatch:
            batch_id = 1
            attempt = 1

        plan.before_batch("w0", FakeBatch(), batches_done=0)  # not armed yet
        plan.before_batch("w0", FakeBatch(), batches_done=1)
        with pytest.raises(InjectedFault):
            plan.before_batch("w0", FakeBatch(), batches_done=2)
        with pytest.raises(InjectedFault):  # dead forever
            plan.before_batch("w0", FakeBatch(), batches_done=0)
        plan.before_batch("w1", FakeBatch(), batches_done=9)  # others fine
        assert plan.injected["kill"] == 1

    def test_release_unblocks_a_wedge(self):
        plan = FaultPlan([FaultRule(scope="batch", mode="wedge", wedge_s=30.0)])

        class FakeBatch:
            batch_id = 5
            attempt = 1

        done = threading.Event()

        def wedged():
            plan.before_batch("w0", FakeBatch(), batches_done=0)
            done.set()

        t = threading.Thread(target=wedged, daemon=True)
        t.start()
        assert not done.wait(0.05)  # genuinely wedged
        plan.release()
        assert done.wait(2.0)
        t.join(2.0)
        assert plan.injected["wedge"] == 1


class TestTimerThread:
    def test_callbacks_fire_in_due_order(self):
        timer = TimerThread().start()
        fired = []
        done = threading.Event()
        now = time.monotonic()
        timer.schedule(now + 0.05, lambda: fired.append("b"))
        timer.schedule(now + 0.01, lambda: fired.append("a"))
        timer.schedule(now + 0.08, lambda: (fired.append("c"), done.set()))
        assert done.wait(2.0)
        assert fired == ["a", "b", "c"]
        timer.stop()

    def test_stop_cancels_pending(self):
        timer = TimerThread().start()
        timer.schedule(time.monotonic() + 60.0, lambda: None)
        timer.schedule(time.monotonic() + 61.0, lambda: None)
        assert timer.pending == 2
        assert timer.stop(timeout=2.0) == 2
        assert timer.pending == 0

    def test_callback_exception_counted_not_fatal(self):
        timer = TimerThread().start()
        done = threading.Event()

        def boom():
            raise RuntimeError("kaput")

        timer.schedule(time.monotonic(), boom)
        timer.schedule(time.monotonic() + 0.01, done.set)
        assert done.wait(2.0)  # the thread survived the exception
        assert timer.errors == 1
        timer.stop()


class TestDeadlines:
    def test_job_deadline_stamped_at_admission(self):
        with ExecutionEngine(n_workers=1, default_deadline_s=5.0) as eng:
            job = GammaJob(n_samples=16, seed=1)
            handle = eng.submit(job)
            assert job.deadline_at is not None
            assert job.deadline_s == 5.0
            handle.result(10.0)

    def test_own_deadline_beats_the_default(self):
        with ExecutionEngine(n_workers=1, default_deadline_s=5.0) as eng:
            job = GammaJob(n_samples=16, seed=1, deadline_s=9.0)
            eng.submit(job).result(10.0)
            assert job.deadline_s == 9.0

    def test_expired_mid_queue_jobs_are_shed_typed(self):
        # one worker pinned by slow jobs; the tail of the queue cannot
        # possibly meet a short deadline and must shed, not compute
        eng = ExecutionEngine(n_workers=1, max_batch=1, queue_depth=64)
        with eng:
            blockers = [eng.submit(SlowJob(n_samples=32, seed=i)) for i in range(3)]
            doomed = [
                eng.submit(GammaJob(n_samples=16, seed=100 + i, deadline_s=0.05))
                for i in range(4)
            ]
            for h in blockers:
                h.result(30.0)
            shed = 0
            for h in doomed:
                with pytest.raises(JobDeadlineExceeded):
                    h.result(30.0)
                shed += 1
        stats = eng.stats()
        assert shed == 4
        assert stats.jobs_deadline_shed == 4
        assert eng.metrics.snapshot()["engine.jobs_deadline_shed"] == 4

    def test_deadline_shed_jobs_never_occupy_the_device(self):
        eng = ExecutionEngine(n_workers=1, max_batch=1)
        with eng:
            blocker = eng.submit(SlowJob(n_samples=32, seed=1))
            doomed = eng.submit(
                GammaJob(n_samples=16, seed=2, deadline_s=0.02)
            )
            blocker.result(30.0)
            with pytest.raises(JobDeadlineExceeded):
                doomed.result(30.0)
        stats = eng.stats()
        assert stats.jobs_completed == 1  # only the blocker ran
        assert all(r.job_id != doomed.job.job_id for r in stats.records)


class TestRetriesEndToEnd:
    def test_killed_worker_jobs_land_on_the_survivor(self):
        plan = FaultPlan(
            [FaultRule(scope="worker", mode="kill", match="w0")]
        )
        eng = ExecutionEngine(
            n_workers=2,
            max_batch=4,
            faults=plan,
            retry=RetryPolicy(max_attempts=3, base_s=0.01, jitter=0.0),
            breaker_config={"failure_threshold": 1, "cooldown_s": 30.0},
        )
        jobs = _jobs(n=12)
        with eng:
            results = eng.run(jobs, timeout=60.0)
        stats = eng.stats()
        assert len(results) == 12  # every job completed despite the kill
        by_worker = {w.name: w.jobs for w in stats.workers}
        assert by_worker["w0"] == 0  # nothing completed on the corpse
        assert by_worker["w1"] == 12
        assert stats.retries > 0
        assert stats.breakers["w0"]["state"] == "open"
        snap = eng.metrics.snapshot()
        assert snap["engine.job_retries"] >= stats.retries
        assert snap["engine.breaker_transitions"] >= 1

    def test_retries_exhaust_to_the_typed_injected_fault(self):
        # every worker fails every batch: retries run out, the typed
        # error surfaces, nothing hangs
        plan = FaultPlan([FaultRule(scope="batch", mode="fail")])
        eng = ExecutionEngine(
            n_workers=2,
            max_batch=2,
            faults=plan,
            retry=RetryPolicy(max_attempts=2, base_s=0.01, jitter=0.0),
            breaker_config={"failure_threshold": 100},
        )
        with eng:
            handles = [eng.submit(j) for j in _jobs(n=4)]
            for h in handles:
                with pytest.raises(InjectedFault):
                    h.result(30.0)
        assert eng.stats().retries == 4  # one retry per job, then done

    def test_retries_disabled_with_single_attempt(self):
        plan = FaultPlan([FaultRule(scope="batch", mode="fail")])
        eng = ExecutionEngine(
            n_workers=1,
            faults=plan,
            retry=RetryPolicy(max_attempts=1),
            breakers=False,
        )
        with eng:
            handle = eng.submit(GammaJob(n_samples=16, seed=1))
            with pytest.raises(InjectedFault):
                handle.result(30.0)
        assert eng.stats().retries == 0

    def test_faults_injected_reported_in_stats(self):
        plan = FaultPlan([FaultRule(scope="batch", mode="fail")])
        eng = ExecutionEngine(
            n_workers=1,
            faults=plan,
            retry=RetryPolicy(max_attempts=1),
            breakers=False,
        )
        with eng:
            try:
                eng.submit(GammaJob(n_samples=16, seed=1)).result(30.0)
            except EngineError:
                pass
        assert eng.stats().faults_injected["fail"] >= 1
