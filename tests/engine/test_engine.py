"""End-to-end engine behaviour: determinism, backpressure, drain."""

import time

import numpy as np
import pytest

from repro.engine import (
    ExecutionEngine,
    GammaJob,
    JobFailed,
    JobQueueClosed,
    JobQueueFull,
    PortfolioJob,
    serial_baseline,
)
from repro.finance import Obligor, Portfolio, Sector


def _jobs(n=12, samples=256, base_seed=500):
    return [
        GammaJob(
            n_samples=samples,
            seed=base_seed + i,
            variance=(1.39, 0.35)[i % 2],
        )
        for i in range(n)
    ]


class SlowJob(GammaJob):
    """A job whose compute really blocks the worker (backpressure tests)."""

    delay_s = 0.08

    def compute(self):
        time.sleep(self.delay_s)
        return super().compute()


def _payloads_by_seed(results, jobs):
    by_id = {r.job_id: r.payload for r in results}
    return {job.seed: by_id[job.job_id] for job in jobs}


class TestDeterminism:
    def test_results_identical_across_worker_counts(self):
        baselines = None
        for n_workers in (1, 3):
            jobs = _jobs()
            with ExecutionEngine(n_workers=n_workers, max_batch=4) as eng:
                results = eng.run(jobs)
            payloads = _payloads_by_seed(results, jobs)
            if baselines is None:
                baselines = payloads
            else:
                assert baselines.keys() == payloads.keys()
                for seed, payload in payloads.items():
                    np.testing.assert_array_equal(baselines[seed], payload)

    def test_results_identical_across_policies_and_batching(self):
        reference = None
        for policy, max_batch in (
            ("fifo", 1),
            ("least-loaded", 4),
            ("device-affinity", 6),
        ):
            jobs = _jobs()
            with ExecutionEngine(
                n_workers=2, max_batch=max_batch, policy=policy
            ) as eng:
                results = eng.run(jobs)
            payloads = _payloads_by_seed(results, jobs)
            if reference is None:
                reference = payloads
            else:
                for seed, payload in payloads.items():
                    np.testing.assert_array_equal(reference[seed], payload)

    def test_engine_matches_serial_payloads(self):
        jobs = _jobs(n=6)
        serial_payloads = {job.seed: job.compute() for job in _jobs(n=6)}
        with ExecutionEngine(n_workers=2, max_batch=3) as eng:
            results = eng.run(jobs)
        for seed, payload in _payloads_by_seed(results, jobs).items():
            np.testing.assert_array_equal(serial_payloads[seed], payload)


class TestBackpressure:
    def test_shed_admission_raises_typed_error(self):
        eng = ExecutionEngine(
            n_workers=1, queue_depth=2, max_batch=1, admission="shed"
        )
        with eng:
            shed = 0
            for i in range(30):
                try:
                    eng.submit(SlowJob(n_samples=32, seed=i))
                except JobQueueFull:
                    shed += 1
            assert shed > 0
        stats = eng.stats()
        assert stats.jobs_shed == shed
        assert stats.queue.write_stalls >= shed
        # everything admitted still completed (graceful drain on exit)
        assert stats.jobs_completed == 30 - shed

    def test_blocking_admission_stalls_then_completes(self):
        eng = ExecutionEngine(
            n_workers=1,
            queue_depth=1,
            max_batch=1,
            admission="block",
            submit_timeout_s=10.0,
        )
        with eng:
            handles = [eng.submit(SlowJob(n_samples=32, seed=i)) for i in range(4)]
            results = [h.result(30.0) for h in handles]
        assert len(results) == 4
        assert eng.stats().queue.write_stalls > 0

    def test_submit_after_shutdown_raises_closed(self):
        eng = ExecutionEngine(n_workers=1).start()
        eng.shutdown()
        with pytest.raises(JobQueueClosed):
            eng.submit(GammaJob(n_samples=16, seed=1))


class TestShutdown:
    def test_graceful_drain_completes_all_handles(self):
        eng = ExecutionEngine(n_workers=2, queue_depth=64, max_batch=4).start()
        handles = [eng.submit(job) for job in _jobs(n=10, samples=128)]
        eng.shutdown(drain=True)
        assert all(h.done for h in handles)
        results = [h.result(0.1) for h in handles]
        assert len({r.job_id for r in results}) == 10
        assert eng.stats().jobs_completed == 10

    def test_abandoning_shutdown_fails_pending_handles(self):
        eng = ExecutionEngine(n_workers=1, queue_depth=64, max_batch=1).start()
        handles = [
            eng.submit(SlowJob(n_samples=32, seed=i)) for i in range(12)
        ]
        eng.shutdown(drain=False)
        outcomes = {"done": 0, "abandoned": 0}
        for h in handles:
            try:
                h.result(10.0)
                outcomes["done"] += 1
            except JobQueueClosed:
                outcomes["abandoned"] += 1
        assert sum(outcomes.values()) == 12
        assert outcomes["abandoned"] > 0

    def test_shutdown_is_idempotent(self):
        eng = ExecutionEngine(n_workers=1).start()
        eng.shutdown()
        eng.shutdown()

    def test_shutdown_under_load_joins_threads_promptly(self):
        # shutdown while workers are mid-batch and the queue is full
        # must complete within a tight bound and leave no engine thread
        # behind — the hang this guards against is a worker or the
        # dispatcher waiting on a condition nobody will ever notify
        import threading

        before = {t.ident for t in threading.enumerate()}
        eng = ExecutionEngine(n_workers=2, queue_depth=32, max_batch=2).start()
        handles = [
            eng.submit(SlowJob(n_samples=32, seed=i)) for i in range(8)
        ]
        time.sleep(0.05)  # workers are now genuinely busy
        t0 = time.monotonic()
        eng.shutdown(drain=False, timeout=10.0)
        elapsed = time.monotonic() - t0
        assert elapsed < 5.0
        assert all(h.done for h in handles)  # resolved, not hung
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            leftover = [
                t
                for t in threading.enumerate()
                if t.ident not in before and t.is_alive()
            ]
            if not leftover:
                break
            time.sleep(0.01)
        assert not leftover, f"engine threads survived shutdown: {leftover}"


class TestStatsAndJobs:
    def test_stats_report_shape(self):
        jobs = _jobs(n=8)
        with ExecutionEngine(n_workers=2, max_batch=4) as eng:
            eng.run(jobs)
        stats = eng.stats()
        assert stats.jobs_completed == 8
        assert stats.batches >= 2
        assert stats.mean_batch_occupancy > 1.0
        assert stats.modeled_makespan_s > 0
        assert stats.modeled_device_seconds >= stats.modeled_makespan_s
        assert len(stats.workers) == 2
        assert sum(w.jobs for w in stats.workers) == 8
        rendered = stats.render()
        assert "jobs: 8 completed" in rendered
        assert stats.wall_throughput_jps > 0
        assert stats.modeled_throughput_jps > 0

    def test_latency_fields_populated(self):
        with ExecutionEngine(n_workers=1, max_batch=2) as eng:
            results = eng.run(_jobs(n=4))
        for r in results:
            assert r.total_s >= r.queue_wait_s >= 0
            assert r.service_s > 0
            assert r.device_seconds > 0
            assert r.batch_size >= 1

    def test_portfolio_job_roundtrip(self):
        sectors = [Sector(name="s0", variance=1.39)]
        portfolio = Portfolio(sectors=sectors)
        portfolio.add(Obligor.single_sector(100.0, 0.01, 0))
        job = PortfolioJob(portfolio=portfolio, scenarios=64, seed=3)
        twin = PortfolioJob(portfolio=portfolio, scenarios=64, seed=3)
        with ExecutionEngine(n_workers=1) as eng:
            result = eng.run([job])[0]
        np.testing.assert_array_equal(
            result.payload.losses, twin.compute().losses
        )

    def test_job_validation(self):
        with pytest.raises(ValueError):
            GammaJob(n_samples=0)
        with pytest.raises(ValueError):
            GammaJob(variance=-1.0)
        with pytest.raises(ValueError):
            GammaJob(config="Config9")
        with pytest.raises(ValueError):
            PortfolioJob()

    def test_failed_job_raises_jobfailed_with_cause(self):
        class BrokenJob(GammaJob):
            def compute(self):
                raise RuntimeError("kaput")

        with ExecutionEngine(n_workers=1) as eng:
            handle = eng.submit(BrokenJob(n_samples=16, seed=1))
            with pytest.raises(JobFailed) as excinfo:
                handle.result(10.0)
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_serial_baseline_report(self):
        stats = serial_baseline(_jobs(n=5, samples=128))
        assert stats.jobs_completed == 5
        assert stats.batches == 5
        assert stats.max_batch_occupancy == 1
        assert stats.modeled_makespan_s > 0
