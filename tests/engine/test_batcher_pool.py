"""Batcher coalescing and worker-pool scheduling policies."""

import pytest

from repro.engine import (
    Batch,
    Batcher,
    BoundedJobQueue,
    DeviceWorker,
    GammaJob,
    make_policy,
)
from repro.engine.pool import (
    DeviceAffinityPolicy,
    FifoPolicy,
    LeastLoadedPolicy,
)


def _job(seed=1, variance=1.39, n=64):
    return GammaJob(n_samples=n, seed=seed, variance=variance)


class TestBatcher:
    def test_batches_by_key(self):
        q = BoundedJobQueue(depth=16)
        a = [_job(i, 1.39) for i in range(3)]
        b = [_job(10 + i, 0.35) for i in range(2)]
        for job in (a[0], b[0], a[1], b[1], a[2]):
            q.put(job)
        batcher = Batcher(q, max_batch=8)
        first = batcher.next_batch()
        second = batcher.next_batch()
        assert [j.seed for j in first.jobs] == [0, 1, 2]
        assert [j.seed for j in second.jobs] == [10, 11]

    def test_max_batch_one_disables_coalescing(self):
        q = BoundedJobQueue(depth=8)
        for i in range(3):
            q.put(_job(i))
        batcher = Batcher(q, max_batch=1)
        assert batcher.next_batch().size == 1

    def test_empty_queue_returns_none(self):
        batcher = Batcher(BoundedJobQueue(depth=2), max_batch=4)
        assert batcher.next_batch(timeout=0.01) is None

    def test_linger_tops_up_partial_batch(self):
        import threading
        import time

        q = BoundedJobQueue(depth=8)
        q.put(_job(0))

        def late_producer():
            time.sleep(0.03)
            q.put(_job(1))

        t = threading.Thread(target=late_producer, daemon=True)
        t.start()
        batcher = Batcher(q, max_batch=4, linger_s=0.5)
        batch = batcher.next_batch()
        t.join(2.0)
        assert batch.size == 2

    def test_batch_requires_jobs(self):
        with pytest.raises(ValueError):
            Batch(jobs=[])


class TestPolicies:
    @pytest.fixture(scope="class")
    def workers(self):
        return [DeviceWorker(f"w{i}") for i in range(3)]

    def test_make_policy_names(self):
        for name, cls in (
            ("fifo", FifoPolicy),
            ("least-loaded", LeastLoadedPolicy),
            ("device-affinity", DeviceAffinityPolicy),
        ):
            assert isinstance(make_policy(name), cls)
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_policy("round-trip")

    def test_fifo_uses_shared_queue(self, workers):
        batch = Batch(jobs=[_job()])
        pending = {w.name: 0.0 for w in workers}
        assert FifoPolicy().select(batch, workers, pending) is None

    def test_least_loaded_picks_smallest_backlog(self, workers):
        batch = Batch(jobs=[_job()])
        pending = {"w0": 5.0, "w1": 0.0, "w2": 3.0}
        chosen = LeastLoadedPolicy().select(batch, workers, pending)
        assert chosen.name == "w1"

    def test_affinity_is_stable_per_key(self, workers):
        policy = DeviceAffinityPolicy()
        pending = {w.name: 0.0 for w in workers}
        first = policy.select(Batch(jobs=[_job(1)]), workers, pending)
        for seed in range(2, 6):
            batch = Batch(jobs=[_job(seed)])  # same key, different job
            assert policy.select(batch, workers, pending) is first


class TestDeviceWorker:
    def test_batch_advances_device_timeline(self):
        worker = DeviceWorker("w0")
        before = worker.device_busy_s
        outcome = worker.execute(Batch(jobs=[_job(n=256)]))
        assert worker.device_busy_s > before
        assert outcome.batch_device_seconds > 0
        assert outcome.errors == [None]

    def test_batched_transaction_cheaper_than_split(self):
        """One combined transaction beats two singles on the same timeline
        (the §III-E economics: fixed costs amortize across the batch)."""
        combined = DeviceWorker("a").execute(
            Batch(jobs=[_job(1, n=256), _job(2, n=256)])
        )
        split_worker = DeviceWorker("b")
        split_worker.execute(Batch(jobs=[_job(1, n=256)]))
        split_worker.execute(Batch(jobs=[_job(2, n=256)]))
        assert combined.batch_device_seconds < split_worker.device_busy_s

    def test_job_fault_is_isolated(self):
        class BrokenJob(GammaJob):
            def compute(self):
                raise RuntimeError("boom")

        worker = DeviceWorker("w0")
        good = _job(1, n=64)
        outcome = worker.execute(
            Batch(jobs=[good, BrokenJob(n_samples=64, seed=2)])
        )
        assert outcome.errors[0] is None
        assert isinstance(outcome.errors[1], RuntimeError)
        assert outcome.payloads[0] is not None

    def test_fixed_platform_worker(self):
        worker = DeviceWorker("cpu0", device_name="CPU")
        outcome = worker.execute(Batch(jobs=[_job(n=128)]))
        assert outcome.batch_device_seconds > 0
