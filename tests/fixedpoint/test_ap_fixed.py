"""Tests for ApFixed / ApUFixed quantization and overflow semantics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint import ApFixed, ApUFixed, Overflow, Quantization


class TestLayout:
    def test_frac_bits(self):
        assert ApFixed(16, 4).frac_bits == 12

    def test_ulp(self):
        assert ApFixed(16, 4).ulp == 2.0**-12

    def test_signed_range(self):
        x = ApFixed(8, 4)  # Q4.4
        assert x.min_value == -8.0
        assert x.max_value == 8.0 - 2.0**-4

    def test_unsigned_range(self):
        x = ApUFixed(8, 4)
        assert x.min_value == 0.0
        assert x.max_value == 16.0 - 2.0**-4

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            ApFixed(0, 0)


class TestQuantization:
    def test_exact_value_preserved(self):
        assert ApFixed(16, 8, 1.5).to_float() == 1.5

    def test_truncation_toward_minus_inf(self):
        # ulp = 0.25 for <8,6>; 1.30 truncates down to 1.25
        assert ApFixed(8, 6, 1.30).to_float() == 1.25
        assert ApFixed(8, 6, -1.30).to_float() == -1.50

    def test_rounding_mode(self):
        assert ApFixed(8, 6, 1.30, quantization=Quantization.RND).to_float() == 1.25
        assert ApFixed(8, 6, 1.40, quantization=Quantization.RND).to_float() == 1.50

    def test_rnd_half_goes_up(self):
        assert ApFixed(8, 6, 1.125, quantization=Quantization.RND).to_float() == 1.25


class TestOverflow:
    def test_saturation_high(self):
        x = ApFixed(8, 4, 100.0, overflow=Overflow.SAT)
        assert x.to_float() == x.max_value

    def test_saturation_low(self):
        x = ApFixed(8, 4, -100.0, overflow=Overflow.SAT)
        assert x.to_float() == x.min_value

    def test_wrap(self):
        # Q4.4: 8.0 wraps to -8.0
        assert ApFixed(8, 4, 8.0).to_float() == -8.0

    def test_unsigned_wrap(self):
        assert ApUFixed(8, 4, 16.0).to_float() == 0.0

    def test_unsigned_sat(self):
        x = ApUFixed(8, 4, -1.0, overflow=Overflow.SAT)
        assert x.to_float() == 0.0


class TestArithmetic:
    def test_add(self):
        assert (ApFixed(16, 8, 1.5) + ApFixed(16, 8, 2.25)).to_float() == 3.75

    def test_add_float(self):
        assert (ApFixed(16, 8, 1.5) + 0.25).to_float() == 1.75

    def test_sub(self):
        assert (ApFixed(16, 8, 1.5) - 2.0).to_float() == -0.5

    def test_mul(self):
        assert (ApFixed(16, 8, 1.5) * 2).to_float() == 3.0

    def test_div(self):
        assert (ApFixed(16, 8, 3.0) / 2).to_float() == 1.5

    def test_neg_abs(self):
        assert (-ApFixed(16, 8, 1.5)).to_float() == -1.5
        assert abs(ApFixed(16, 8, -1.5)).to_float() == 1.5

    def test_result_requantized(self):
        # product 1.25*1.25 = 1.5625 needs 4 frac bits; <8,6> has 2 → truncated
        assert (ApFixed(8, 6, 1.25) * ApFixed(8, 6, 1.25)).to_float() == 1.5

    def test_comparisons(self):
        assert ApFixed(16, 8, 1.0) < ApFixed(16, 8, 2.0)
        assert ApFixed(16, 8, 1.0) == 1.0
        assert ApFixed(16, 8, 1.0) <= 1.0
        assert ApFixed(16, 8, 2.0) > 1.0


class TestRawRoundtrip:
    def test_from_raw(self):
        x = ApFixed(8, 4, 1.25)
        y = ApFixed.from_raw(8, 4, x.raw)
        assert y.to_float() == 1.25

    def test_from_raw_negative(self):
        x = ApFixed(8, 4, -1.25)
        assert ApFixed.from_raw(8, 4, x.raw).to_float() == -1.25

    def test_raw_is_unsigned_pattern(self):
        assert ApFixed(8, 4, -0.0625).raw == 0xFF


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------

fmt = st.tuples(
    st.integers(min_value=2, max_value=32),  # width
    st.integers(min_value=1, max_value=16),  # int width (kept <= width)
).map(lambda t: (max(t[0], t[1] + 1), t[1]))


@given(f=fmt, v=st.floats(min_value=-1000, max_value=1000, allow_nan=False))
def test_prop_quantization_error_bounded(f, v):
    w, i = f
    x = ApFixed(w, i, v, overflow=Overflow.SAT)
    clamped = min(max(v, x.min_value), x.max_value)
    # strict < holds in exact arithmetic; <= allows for float64 rounding of
    # the error term itself (e.g. |−0.5 − (−1e-228)| rounds to exactly 0.5)
    assert abs(x.to_float() - clamped) <= x.ulp


@given(f=fmt, v=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
def test_prop_raw_roundtrip(f, v):
    w, i = f
    x = ApFixed(w, i, v)
    assert ApFixed.from_raw(w, i, x.raw).to_float() == x.to_float()


@given(f=fmt, v=st.floats(min_value=-100, max_value=100, allow_nan=False))
def test_prop_value_in_declared_range(f, v):
    w, i = f
    x = ApFixed(w, i, v, overflow=Overflow.SAT)
    assert x.min_value <= x.to_float() <= x.max_value


@given(
    f=fmt,
    a=st.floats(min_value=-3, max_value=3, allow_nan=False),
)
def test_prop_trn_never_increases(f, a):
    w, i = f
    x = ApFixed(w, i, a, overflow=Overflow.SAT)
    clamped = min(max(a, x.min_value), x.max_value)
    assert x.to_float() <= clamped or math.isclose(x.to_float(), clamped)
