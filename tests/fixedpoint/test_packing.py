"""Tests for 512-bit word packing (Transfer block, Section III-D)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.fixedpoint import (
    FLOATS_PER_WORD,
    WORD_BITS,
    bits_to_float,
    float_to_bits,
    pack_floats,
    unpack_floats,
)


class TestConstants:
    def test_word_is_512_bits(self):
        assert WORD_BITS == 512

    def test_sixteen_floats_per_word(self):
        assert FLOATS_PER_WORD == 16


class TestBitCast:
    def test_one_point_zero(self):
        assert float_to_bits(1.0) == 0x3F800000

    def test_minus_two(self):
        assert float_to_bits(-2.0) == 0xC0000000

    def test_roundtrip(self):
        for v in [0.0, 1.5, -3.25, 1e-30, 2.5e20]:
            assert bits_to_float(float_to_bits(v)) == np.float32(v)


class TestPacking:
    def test_exact_word(self):
        vals = np.arange(16, dtype=np.float32)
        words = pack_floats(vals)
        assert len(words) == 1
        assert words[0].width == WORD_BITS

    def test_lane0_in_lsbs(self):
        vals = np.zeros(16, dtype=np.float32)
        vals[0] = 1.0
        word = pack_floats(vals)[0]
        assert int(word) & 0xFFFFFFFF == 0x3F800000

    def test_lane15_in_msbs(self):
        vals = np.zeros(16, dtype=np.float32)
        vals[15] = 1.0
        word = pack_floats(vals)[0]
        assert (int(word) >> (32 * 15)) & 0xFFFFFFFF == 0x3F800000

    def test_padding_to_word(self):
        words = pack_floats(np.ones(5, dtype=np.float32))
        assert len(words) == 1
        out = unpack_floats(words)
        assert np.all(out[:5] == 1.0)
        assert np.all(out[5:] == 0.0)

    def test_multiple_words(self):
        assert len(pack_floats(np.zeros(33))) == 3

    def test_empty(self):
        assert pack_floats(np.array([], dtype=np.float32)) == []

    def test_unpack_count(self):
        vals = np.arange(20, dtype=np.float32)
        out = unpack_floats(pack_floats(vals), count=20)
        np.testing.assert_array_equal(out, vals)

    def test_unpack_accepts_plain_ints(self):
        out = unpack_floats([0x3F800000], count=1)
        assert out[0] == 1.0


@given(
    arr=hnp.arrays(
        np.float32,
        st.integers(min_value=0, max_value=200),
        elements=st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, width=32
        ),
    )
)
def test_prop_pack_unpack_roundtrip(arr):
    out = unpack_floats(pack_floats(arr), count=arr.size)
    np.testing.assert_array_equal(out, arr)


@given(n=st.integers(min_value=0, max_value=300))
def test_prop_word_count_is_ceil(n):
    words = pack_floats(np.zeros(n, dtype=np.float32))
    assert len(words) == -(-n // FLOATS_PER_WORD)
