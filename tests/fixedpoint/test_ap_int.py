"""Unit and property tests for ApUInt / ApInt HLS semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint import ApInt, ApUInt, bit_reverse, concat


class TestApUIntConstruction:
    def test_value_masked_to_width(self):
        assert ApUInt(8, 0x1FF).value == 0xFF

    def test_zero_default(self):
        assert ApUInt(32).value == 0

    def test_negative_init_wraps(self):
        assert ApUInt(8, -1).value == 0xFF

    def test_width_one_allowed(self):
        assert ApUInt(1, 3).value == 1

    @pytest.mark.parametrize("bad", [0, -4, 1.5, "8"])
    def test_invalid_width_rejected(self, bad):
        with pytest.raises((ValueError, TypeError)):
            ApUInt(bad, 0)

    def test_init_from_other_ap_uint(self):
        assert ApUInt(4, ApUInt(8, 0xAB)).value == 0xB


class TestApUIntArithmetic:
    def test_add_wraps(self):
        assert (ApUInt(8, 250) + 10).value == 4

    def test_sub_wraps(self):
        assert (ApUInt(8, 3) - 5).value == 254

    def test_mul_wraps(self):
        assert (ApUInt(8, 16) * 16).value == 0

    def test_radd(self):
        assert (3 + ApUInt(8, 4)).value == 7

    def test_floordiv(self):
        assert (ApUInt(8, 100) // 7).value == 14

    def test_mod(self):
        assert (ApUInt(8, 100) % 7).value == 2

    def test_width_preserved(self):
        assert (ApUInt(13, 5) + 1).width == 13


class TestApUIntBitwise:
    def test_lshift_drops_msbs(self):
        assert (ApUInt(8, 0x81) << 1).value == 0x02

    def test_rshift(self):
        assert (ApUInt(8, 0x81) >> 4).value == 0x08

    def test_invert(self):
        assert (~ApUInt(8, 0x0F)).value == 0xF0

    def test_xor_and_or(self):
        a, b = ApUInt(8, 0b1100), ApUInt(8, 0b1010)
        assert (a ^ b).value == 0b0110
        assert (a & b).value == 0b1000
        assert (a | b).value == 0b1110

    def test_count_ones(self):
        assert ApUInt(16, 0xF0F0).count_ones() == 8


class TestApUIntBitAccess:
    def test_single_bit(self):
        x = ApUInt(8, 0b10000001)
        assert x[0].value == 1
        assert x[7].value == 1
        assert x[3].value == 0

    def test_single_bit_width_is_one(self):
        assert ApUInt(8, 0xFF)[5].width == 1

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            ApUInt(8, 0)[8]

    def test_range_hls_order(self):
        x = ApUInt(8, 0b1011_0110)
        assert x[7:4].value == 0b1011
        assert x[3:0].value == 0b0110

    def test_range_width(self):
        assert ApUInt(32, 0)[19:4].width == 16

    def test_range_method_matches_slice(self):
        x = ApUInt(12, 0xABC)
        assert x.range(11, 8).value == x[11:8].value == 0xA

    def test_range_step_rejected(self):
        with pytest.raises(ValueError):
            ApUInt(8, 0)[7:0:2]

    def test_set_bit(self):
        assert ApUInt(8, 0).set_bit(3, 1).value == 8
        assert ApUInt(8, 0xFF).set_bit(0, 0).value == 0xFE

    def test_set_range(self):
        assert ApUInt(8, 0).set_range(7, 4, 0xA).value == 0xA0

    def test_bits_lsb_first(self):
        assert list(ApUInt(4, 0b1010).bits()) == [0, 1, 0, 1]


class TestApUIntConversion:
    def test_resize_zero_extend(self):
        assert ApUInt(4, 0xF).resize(8).value == 0x0F

    def test_resize_truncate(self):
        assert ApUInt(8, 0xAB).resize(4).value == 0xB

    def test_int_and_index(self):
        assert int(ApUInt(8, 42)) == 42
        assert [10, 20, 30][ApUInt(8, 1)] == 20

    def test_bool(self):
        assert not ApUInt(8, 0)
        assert ApUInt(8, 1)


class TestApInt:
    def test_signed_interpretation(self):
        assert ApInt(8, 0xFF).value == -1
        assert ApInt(8, 0x80).value == -128
        assert ApInt(8, 0x7F).value == 127

    def test_wrapping_add(self):
        assert (ApInt(8, 127) + 1).value == -128

    def test_arithmetic_right_shift(self):
        assert (ApInt(8, -8) >> 2).value == -2

    def test_resize_sign_extends(self):
        assert ApInt(4, -3).resize(8).value == -3
        assert ApInt(4, -3).resize(8).raw == 0xFD

    def test_comparison_signed(self):
        assert ApInt(8, -1) < ApInt(8, 0)
        assert ApInt(8, -1) < 1

    def test_repr_roundtrip_value(self):
        assert "ApInt(8, -5)" == repr(ApInt(8, -5))


class TestConcat:
    def test_two_parts_msb_first(self):
        assert concat(ApUInt(4, 0xA), ApUInt(4, 0xB)).value == 0xAB

    def test_width_sums(self):
        assert concat(ApUInt(3, 0), ApUInt(5, 0), ApUInt(8, 0)).width == 16

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            concat()

    def test_non_ap_rejected(self):
        with pytest.raises(TypeError):
            concat(ApUInt(4, 1), 3)


class TestBitReverse:
    def test_simple(self):
        assert bit_reverse(ApUInt(4, 0b0001)).value == 0b1000

    def test_palindrome(self):
        assert bit_reverse(ApUInt(4, 0b1001)).value == 0b1001


# ---------------------------------------------------------------------------
# property-based tests
# ---------------------------------------------------------------------------

widths = st.integers(min_value=1, max_value=512)


@given(w=widths, v=st.integers())
def test_prop_value_always_in_range(w, v):
    x = ApUInt(w, v)
    assert 0 <= x.value < (1 << w)


@given(w=widths, a=st.integers(), b=st.integers())
def test_prop_add_is_modular(w, a, b):
    assert (ApUInt(w, a) + ApUInt(w, b)).value == (a + b) % (1 << w)


@given(w=widths, v=st.integers())
def test_prop_double_invert_identity(w, v):
    x = ApUInt(w, v)
    assert (~~x).value == x.value


@given(w=widths, v=st.integers())
def test_prop_bit_reverse_involution(w, v):
    x = ApUInt(w, v)
    assert bit_reverse(bit_reverse(x)).value == x.value


@given(w=st.integers(min_value=2, max_value=128), v=st.integers())
def test_prop_concat_of_halves_identity(w, v):
    x = ApUInt(w, v)
    hi = x[w - 1 : w // 2]
    lo = x[w // 2 - 1 : 0]
    assert concat(hi, lo).value == x.value


@given(w=widths, v=st.integers(), data=st.data())
def test_prop_set_then_get_bit(w, v, data):
    i = data.draw(st.integers(min_value=0, max_value=w - 1))
    b = data.draw(st.integers(min_value=0, max_value=1))
    assert ApUInt(w, v).set_bit(i, b)[i].value == b


@given(w=widths, v=st.integers())
def test_prop_signed_unsigned_same_bits(w, v):
    assert ApInt(w, v).raw == ApUInt(w, v).value
