"""Stall attribution: classification, the Fig 3 overlap, trace round-trip."""

import pytest

from repro.core.decoupled import DecoupledConfig, DecoupledWorkItems
from repro.core.kernel import GammaKernelConfig
from repro.core.schedule import trace_region
from repro.obs import ChromeTracer, use_tracer
from repro.obs.stall import (
    COMPUTE,
    FIFO_EMPTY,
    FIFO_FULL,
    MEMORY,
    STATES,
    TRANSFER,
    StallAttribution,
    StallReport,
    report_from_trace,
    reports_from_trace,
)


def _run_traced(n_work_items=4, limit_main=64, stream_depth=2):
    tracer = ChromeTracer()
    sim = DecoupledWorkItems(
        DecoupledConfig(
            n_work_items=n_work_items,
            burst_words=1,
            stream_depth=stream_depth,
            kernel=GammaKernelConfig(limit_main=limit_main),
        )
    )
    report = sim.region.run(tracer=tracer)
    return tracer, report


class TestAttribution:
    def test_record_and_report(self):
        att = StallAttribution("r")
        for c in range(4):
            att.record_cycle(
                c,
                {"a": COMPUTE if c % 2 == 0 else FIFO_EMPTY, "b": TRANSFER},
                [True],
            )
        rep = att.report()
        assert rep.cycles == 4
        assert rep.per_process["a"] == {COMPUTE: 2, FIFO_EMPTY: 2}
        assert rep.per_process["b"] == {TRANSFER: 4}
        assert rep.channel_busy_cycles == [4]
        assert rep.overlap_cycles == 2
        assert rep.overlap_fraction() == 0.5

    def test_live_cycles_partition(self):
        """Every live cycle of every process lands in exactly one class."""
        _, report = _run_traced()
        stall = report.stall_report
        for name, counts in stall.per_process.items():
            assert set(counts) <= set(STATES)
            live = sum(counts.values())
            assert live == report.process_stats[name].cycles, name

    def test_decoupled_region_shows_fig3_overlap(self):
        """>0% compute/transfer overlap — the acceptance criterion."""
        _, report = _run_traced()
        assert report.stall_report.overlap_fraction() > 0.0
        # the transfer engines spend real time contending for the channel
        transfer_waits = sum(
            counts.get(MEMORY, 0)
            for name, counts in report.stall_report.per_process.items()
            if name.startswith("Transfer")
        )
        assert transfer_waits > 0

    def test_shallow_streams_show_write_stalls(self):
        _, report = _run_traced(stream_depth=2)
        fifo_full = sum(
            c.get(FIFO_FULL, 0)
            for c in report.stall_report.per_process.values()
        )
        assert fifo_full > 0

    def test_render_is_a_table(self):
        _, report = _run_traced(n_work_items=2, limit_main=32)
        text = report.stall_report.render()
        assert "stall attribution" in text
        assert "compute/transfer overlap" in text
        for state in STATES:
            assert state in text


class TestTraceRoundTrip:
    def test_report_rebuilt_from_exported_json(self, tmp_path):
        tracer, report = _run_traced()
        path = tmp_path / "trace.json"
        tracer.export(str(path))
        rebuilt = report_from_trace(str(path))
        live = report.stall_report
        assert rebuilt.region == live.region
        assert rebuilt.cycles == live.cycles
        assert rebuilt.per_process == live.per_process
        assert rebuilt.channel_busy_cycles == live.channel_busy_cycles
        assert rebuilt.overlap_cycles == live.overlap_cycles

    def test_engine_only_trace_has_no_reports(self):
        tracer = ChromeTracer()
        tracer.complete(tracer.track("engine", "jobs"), "job1", 0, 5)
        assert reports_from_trace(tracer.to_dict()) == []
        with pytest.raises(ValueError):
            report_from_trace(tracer.to_dict())

    def test_to_dict_is_jsonable(self):
        _, report = _run_traced(n_work_items=2, limit_main=32)
        d = report.stall_report.to_dict()
        import json

        json.dumps(d)
        assert d["overlap_fraction"] == pytest.approx(
            report.stall_report.overlap_fraction()
        )


class TestScheduleTraceEquivalence:
    def test_lanes_match_attribution_states(self):
        """trace_region's C/T/w/. lanes and the stall report come from
        the same instrumented loop, so they must agree cycle for cycle."""
        sim = DecoupledWorkItems(
            DecoupledConfig(
                n_work_items=2,
                burst_words=1,
                kernel=GammaKernelConfig(limit_main=32),
            )
        )
        with use_tracer(ChromeTracer()):
            trace = trace_region(sim.region)
        stall = trace.report.stall_report
        assert isinstance(stall, StallReport)
        for name, lane in trace.lanes.items():
            assert lane.count("C") == stall.per_process[name].get(COMPUTE, 0)
            assert lane.count("T") == stall.per_process[name].get(TRANSFER, 0)
            assert len(lane) == stall.cycles
