"""Request-trace log mechanics: sampling, retention, critical path.

These tests drive :mod:`repro.obs.rtrace` directly with synthetic
chains (no engine) — the invariants the serving-tier integration in
``tests/serve/test_request_tracing.py`` builds on: one terminal per
chain, deterministic sampling, always-on error capture, bounded
memory and an exactly-partitioning latency decomposition.
"""

import json

import pytest

from repro.obs.rtrace import (
    RequestTraceLog,
    critical_path,
    critical_path_report,
    derive_trace_id,
    request_trace_from_json,
)


def _complete_chain(log, key, latency=1.0, t0=0.0, service=0.2):
    """One admit→enqueue→batch→execute→complete chain, ``latency`` long."""
    ctx = log.mint(key, tenant="t0", batch_key="k", deadline_s=None)
    ctx.emit("gateway", "admit", t=t0)
    ctx.emit("queue", "enqueue", t=t0)
    dequeue = t0 + latency - service - 0.01
    ctx.emit("batch", "batch", t=dequeue, batch_id=1, size=1)
    ctx.emit(
        "worker", "execute", t=t0 + latency - service, dur=service,
        worker="w0", attempt=1,
    )
    ctx.emit(
        "request", "complete", t=t0 + latency, status="ok",
        terminal=True, latency_s=latency,
    )
    return ctx


class TestTraceContext:
    def test_linear_parentage(self):
        log = RequestTraceLog()
        ctx = log.mint("r1")
        s1 = ctx.emit("gateway", "admit", t=0.0)
        s2 = ctx.emit("shard", "route", t=0.1)
        s3 = ctx.emit("request", "complete", t=0.2, terminal=True)
        events = log.chains()[ctx.trace_id]
        assert [e.span_id for e in events] == [s1, s2, s3]
        assert [e.parent_id for e in events] == [None, s1, s2]

    def test_parent_override(self):
        log = RequestTraceLog()
        ctx = log.mint("r1")
        root = ctx.emit("gateway", "admit", t=0.0)
        ctx.emit("worker", "execute", t=0.1)
        retry = ctx.emit("retry", "retry_scheduled", t=0.2, parent=root)
        ctx.emit("request", "complete", t=0.3, terminal=True)
        events = log.chains()[ctx.trace_id]
        assert events[2].span_id == retry
        assert events[2].parent_id == root

    def test_terminal_closes_the_chain(self):
        log = RequestTraceLog()
        ctx = log.mint("r1")
        ctx.emit("gateway", "admit", t=0.0)
        ctx.emit("request", "complete", t=1.0, terminal=True)
        # post-terminal emits are dropped, not appended
        assert ctx.emit("worker", "execute", t=2.0) is None
        assert len(log.chains()[ctx.trace_id]) == 2

    def test_duplicate_terminal_first_wins(self):
        log = RequestTraceLog()
        ctx = log.mint("r1")
        ctx.emit("gateway", "admit", t=0.0)
        ctx.emit("request", "complete", t=1.0, terminal=True)
        # the belt-and-braces second closer (gateway catch-all) is
        # counted and dropped — the chain keeps its first terminal
        assert ctx.emit(
            "gateway", "queue_full", t=1.1, terminal=True
        ) is None
        assert log.terminal_counts() == {"complete": 1}
        assert log.snapshot()["duplicate_terminals"] == 1

    def test_baggage_carried(self):
        log = RequestTraceLog()
        ctx = log.mint("r1", tenant=7, batch_key="bk", deadline_s=0.5)
        assert (ctx.tenant, ctx.batch_key, ctx.deadline_s) == (7, "bk", 0.5)
        assert ctx.log is log


class TestSampling:
    def test_trace_id_is_deterministic(self):
        a = RequestTraceLog(seed=3).mint("r1").trace_id
        b = RequestTraceLog(seed=3).mint("r1").trace_id
        assert a == b == derive_trace_id(3, "r1")
        assert derive_trace_id(4, "r1") != a

    def test_unsampled_success_dropped(self):
        log = RequestTraceLog(sample_rate=0.0)
        _complete_chain(log, "r1")
        assert log.chains() == {}
        snap = log.snapshot()
        assert snap["dropped_unsampled"] == 1
        assert snap["terminals"] == {"complete": 1}  # counted anyway

    def test_errors_always_captured(self):
        log = RequestTraceLog(sample_rate=0.0)
        for kind, status in [
            ("failed", "error"), ("deadline", "shed"),
            ("queue_full", "shed"), ("throttled", "shed"),
        ]:
            ctx = log.mint(("r", kind))
            ctx.emit("gateway", "admit", t=0.0)
            ctx.emit("request", kind, t=1.0, status=status, terminal=True)
        assert len(log.chains()) == 4

    def test_sampling_decision_is_deterministic_per_trace(self):
        keeps = [
            {
                key
                for key in range(200)
                if RequestTraceLog(sample_rate=0.3, seed=11)
                .mint(key)
                .sampled
            }
            for _ in range(2)
        ]
        assert keeps[0] == keeps[1]
        assert 20 < len(keeps[0]) < 120  # roughly 30% of 200

    def test_sample_rate_validated(self):
        with pytest.raises(ValueError):
            RequestTraceLog(sample_rate=1.5)
        with pytest.raises(ValueError):
            RequestTraceLog(capacity=0)


class TestRetention:
    def test_ring_is_bounded(self):
        log = RequestTraceLog(capacity=4)
        for i in range(10):
            _complete_chain(log, ("r", i))
        snap = log.snapshot()
        assert snap["committed"] == 4
        assert snap["minted"] == 10
        # the ring keeps the newest chains
        kept = set(log.chains())
        assert derive_trace_id(0, ("r", 9)) in kept
        assert derive_trace_id(0, ("r", 0)) not in kept

    def test_unfinished_chains_stay_out_of_the_log(self):
        # in-flight chains live in their own context, not the log: an
        # abandoned request is freed with its job and only the counter
        # math (minted - terminated) remembers it was ever open
        log = RequestTraceLog()
        for i in range(3):
            log.mint(("r", i)).emit("gateway", "admit", t=0.0)
        snap = log.snapshot()
        assert snap["pending"] == 3
        assert snap["committed"] == 0
        assert log.chains() == {}
        log.mint(("r", 99)).emit(
            "request", "complete", t=1.0, terminal=True
        )
        snap = log.snapshot()
        assert snap["pending"] == 3
        assert snap["committed"] == 1


class TestExemplars:
    def test_slowest_k_kept_even_unsampled(self):
        log = RequestTraceLog(sample_rate=0.0, exemplar_k=3)
        for i, latency in enumerate([0.1, 0.9, 0.3, 0.7, 0.5]):
            _complete_chain(log, ("r", i), latency=latency)
        top = log.exemplars()
        assert [round(ex["latency_s"], 1) for ex in top] == [0.9, 0.7, 0.5]
        assert log.chains() == {}  # head sampling still dropped the ring

    def test_only_completions_enter_the_reservoir(self):
        log = RequestTraceLog(exemplar_k=4)
        ctx = log.mint("err")
        ctx.emit("gateway", "admit", t=0.0)
        ctx.emit("request", "failed", t=99.0, status="error", terminal=True)
        _complete_chain(log, "ok", latency=0.2)
        assert [ex["trace_id"] for ex in log.exemplars()] == [
            derive_trace_id(0, "ok")
        ]


class TestCriticalPath:
    def test_segments_partition_exactly(self):
        log = RequestTraceLog()
        ctx = log.mint("r1")
        ctx.emit("gateway", "admit", t=0.0)
        ctx.emit("queue", "enqueue", t=0.0)
        ctx.emit("batch", "batch", t=0.4)  # 0.4 s queued
        ctx.emit("worker", "execute", t=0.5, dur=0.2, attempt=1)
        ctx.emit("retry", "retry_scheduled", t=0.7, attempt=2)
        ctx.emit("worker", "execute", t=0.8, dur=0.3, attempt=2)
        ctx.emit("request", "complete", t=1.15, terminal=True)
        seg = critical_path(log.chains()[ctx.trace_id])
        assert seg["attempts"] == 2
        assert seg["queue_s"] == pytest.approx(0.4)
        assert seg["retry_s"] == pytest.approx(0.3)  # first→last start
        assert seg["execute_s"] == pytest.approx(0.3)  # final attempt
        assert seg["total_s"] == pytest.approx(1.15)
        assert (
            seg["queue_s"] + seg["batch_s"] + seg["retry_s"]
            + seg["execute_s"]
        ) == pytest.approx(seg["total_s"])

    def test_chain_without_execute_is_all_queue(self):
        log = RequestTraceLog()
        ctx = log.mint("r1")
        ctx.emit("gateway", "admit", t=0.0)
        ctx.emit(
            "shard", "queue_full", t=0.3, status="shed", terminal=True
        )
        seg = critical_path(log.chains()[ctx.trace_id])
        assert seg["attempts"] == 0
        assert seg["queue_s"] == pytest.approx(0.3)
        assert seg["total_s"] == pytest.approx(0.3)

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            critical_path([])

    def test_report_rows_slowest_first(self):
        log = RequestTraceLog()
        for i, latency in enumerate([0.2, 0.8, 0.5]):
            _complete_chain(log, ("r", i), latency=latency)
        rows = critical_path_report(log, top=2)
        assert [round(r["latency_s"], 1) for r in rows] == [0.8, 0.5]
        for row in rows:
            assert row["terminal"] == "complete"
            assert (
                row["queue_s"] + row["batch_s"] + row["retry_s"]
                + row["execute_s"]
            ) == pytest.approx(row["total_s"])


class TestSerialization:
    def test_json_roundtrip(self, tmp_path):
        log = RequestTraceLog(seed=5)
        _complete_chain(log, "r1", latency=0.7)
        ctx = log.mint("r2")
        ctx.emit("gateway", "admit", t=0.0, tenant=3)
        ctx.emit("request", "failed", t=0.4, status="error", terminal=True)
        path = tmp_path / "rt.json"
        assert log.export(str(path)) == 2
        parsed = request_trace_from_json(path.read_text())
        assert parsed["request_trace"]["minted"] == 2
        assert parsed["chains"].keys() == log.chains().keys()
        tid = derive_trace_id(5, "r1")
        assert parsed["chains"][tid] == log.chains()[tid]
        # the report works identically on the parsed payload
        assert critical_path_report(parsed) == critical_path_report(log)

    def test_from_json_rejects_foreign_payloads(self):
        with pytest.raises(ValueError):
            request_trace_from_json(json.dumps({"traceEvents": []}))

    def test_chrome_export(self, tmp_path):
        log = RequestTraceLog()
        _complete_chain(log, "r1", latency=0.5)
        path = tmp_path / "chrome.json"
        log.export_chrome(str(path))
        events = json.loads(path.read_text())["traceEvents"]
        request_events = [e for e in events if e.get("cat") == "request"]
        assert request_events
        assert {e["name"] for e in request_events} >= {
            "gateway:admit", "worker:execute", "request:complete"
        }
        tid = derive_trace_id(0, "r1")
        assert all(
            e["args"]["trace_id"] == tid for e in request_events
        )
        # execute has duration -> a complete ("X") span, in microseconds
        execute = next(
            e for e in request_events if e["name"] == "worker:execute"
        )
        assert execute["ph"] == "X"
        assert execute["dur"] == pytest.approx(0.2e6)
