"""Counters, gauges, histograms and the registry."""

import random
import threading

import pytest

from repro.obs.metrics import (
    BoundedHistogram,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc(self):
        c = Counter("jobs")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_negative_increment_rejected(self):
        c = Counter("jobs")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_thread_safety(self):
        c = Counter("jobs")
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("occupancy")
        g.set(4.0)
        g.add(-1.5)
        assert g.value == 2.5


class TestHistogram:
    def test_observe_and_snapshot(self):
        h = Histogram("latency")
        h.observe(1.0)
        h.observe_many([2.0, 3.0])
        assert h.count == 3
        snap = h.snapshot()
        assert snap["count"] == 3.0
        assert snap["sum"] == 6.0
        assert snap["mean"] == 2.0

    def test_empty_snapshot(self):
        snap = Histogram("empty").snapshot()
        assert snap["count"] == 0.0
        assert snap["p95"] == 0.0


class TestBoundedHistogram:
    def test_count_sum_min_max_are_exact(self):
        h = BoundedHistogram("latency")
        values = [0.001, 0.5, 2.0, 0.003, 7.5]
        h.observe_many(values)
        snap = h.snapshot()
        assert snap["count"] == 5.0
        assert snap["sum"] == pytest.approx(sum(values))
        assert snap["mean"] == pytest.approx(sum(values) / 5)
        assert snap["max"] == 7.5

    def test_quantiles_within_the_bucket_error_bound(self):
        # quarter-octave buckets bound the relative error at ~half a
        # bucket width; check against the exact backend on a skewed
        # latency-like distribution
        rng = random.Random(7)
        values = [rng.lognormvariate(-5.0, 1.2) for _ in range(20_000)]
        exact = Histogram("e")
        bounded = BoundedHistogram("b")
        exact.observe_many(values)
        bounded.observe_many(values)
        es, bs = exact.snapshot(), bounded.snapshot()
        for q in ("p50", "p95", "p99"):
            assert bs[q] == pytest.approx(es[q], rel=0.10), q

    def test_memory_stays_flat_on_a_soak(self):
        # the exact histogram holds every observation; the bounded one
        # must hold only its fixed bucket array no matter the volume
        h = BoundedHistogram("soak")
        baseline_buckets = len(h._counts)
        rng = random.Random(3)
        for _ in range(100_000):
            h.observe(rng.expovariate(100.0))
        assert len(h._counts) == baseline_buckets
        assert h.count == 100_000
        assert len(h.buckets()) <= baseline_buckets

    def test_under_and_overflow_observations_kept(self):
        h = BoundedHistogram("x", lo=1e-3, hi=1e3)
        h.observe(0.0)       # underflow bucket
        h.observe(-1.0)      # negative → underflow
        h.observe(1e6)       # overflow bucket
        snap = h.snapshot()
        assert snap["count"] == 3.0
        assert snap["max"] == 1e6
        # quantiles clamp to the observed range, never a bucket edge
        assert -1.0 <= snap["p50"] <= 1e6

    def test_empty_snapshot(self):
        snap = BoundedHistogram("empty").snapshot()
        assert snap["count"] == 0.0
        assert snap["p99"] == 0.0

    def test_raw_values_are_gone(self):
        h = BoundedHistogram("x")
        h.observe(1.0)
        with pytest.raises(TypeError):
            h.values()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BoundedHistogram("x", lo=0.0)
        with pytest.raises(ValueError):
            BoundedHistogram("x", growth=1.0)


class TestMetricsRegistry:
    def test_get_or_create_shares_instances(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_is_plain_and_prefixed(self):
        reg = MetricsRegistry(prefix="engine.")
        reg.counter("jobs").inc(3)
        reg.gauge("inflight").set(2.0)
        reg.histogram("wait").observe(1.0)
        snap = reg.snapshot()
        assert snap["engine.jobs"] == 3
        assert snap["engine.inflight"] == 2.0
        assert snap["engine.wait"]["count"] == 1.0
        assert reg.names() == ["inflight", "jobs", "wait"]

    def test_bounded_backend_selection(self):
        reg = MetricsRegistry(bounded_histograms=True)
        assert isinstance(reg.histogram("h"), BoundedHistogram)
        # per-call override beats the registry default
        assert not isinstance(
            reg.histogram("exact", bounded=False), BoundedHistogram
        )
        exact_reg = MetricsRegistry()
        assert not isinstance(exact_reg.histogram("h"), BoundedHistogram)
        assert isinstance(
            exact_reg.histogram("b", bounded=True), BoundedHistogram
        )

    def test_first_creator_decides_the_backend(self):
        reg = MetricsRegistry()
        first = reg.histogram("h", bounded=True)
        # later callers share the instance regardless of their flag
        assert reg.histogram("h") is first
        assert reg.histogram("h", bounded=False) is first

    def test_expose_text_format(self):
        reg = MetricsRegistry(prefix="engine.")
        reg.counter("jobs").inc(3)
        reg.gauge("inflight").set(2.0)
        reg.histogram("wait", bounded=True).observe_many([0.1, 0.2, 0.3])
        text = reg.expose_text()
        lines = text.splitlines()
        assert "# TYPE engine_jobs counter" in lines
        assert "engine_jobs_total 3" in lines
        assert "engine_inflight 2.0" in lines
        assert "engine_wait_count 3" in lines
        assert any(
            line.startswith('engine_wait{quantile="0.95"}')
            for line in lines
        )
        # exposition names stay in [a-zA-Z0-9_:]
        for line in lines:
            name = line.split("{")[0].split()[1 if line.startswith("#") else 0]
            assert all(
                c.isalnum() or c in "_:" for c in name.replace("# TYPE ", "")
            ), line

    def test_serving_registries_default_to_bounded(self):
        """Gateway/tier/engine registries hold flat memory on soaks."""
        from repro.engine.engine import ExecutionEngine
        from repro.serve.gateway import AdmissionGateway
        from repro.serve.sharding import ShardedEngine

        tier = ShardedEngine(n_shards=1, n_workers=1)
        gateway = AdmissionGateway(tier)
        assert gateway.metrics.bounded_histograms
        assert tier.metrics.bounded_histograms
        engine = ExecutionEngine(n_workers=1)
        assert isinstance(
            engine.metrics.histogram("queue_wait_s"), BoundedHistogram
        )

    def test_engine_populates_metrics(self):
        """The execution engine feeds its registry during a run."""
        from repro.engine.bench import make_job_mix
        from repro.engine.engine import ExecutionEngine

        with ExecutionEngine(n_workers=1, max_batch=4) as engine:
            engine.run(make_job_mix(n_jobs=4, n_samples=64))
        snap = engine.metrics.snapshot()
        assert snap["engine.jobs_submitted"] == 4
        assert snap["engine.jobs_completed"] == 4
        assert snap["engine.batches"] >= 1
        assert snap["engine.queue_wait_s"]["count"] == 4.0
