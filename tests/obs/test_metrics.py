"""Counters, gauges, histograms and the registry."""

import threading

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc(self):
        c = Counter("jobs")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_negative_increment_rejected(self):
        c = Counter("jobs")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_thread_safety(self):
        c = Counter("jobs")
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("occupancy")
        g.set(4.0)
        g.add(-1.5)
        assert g.value == 2.5


class TestHistogram:
    def test_observe_and_snapshot(self):
        h = Histogram("latency")
        h.observe(1.0)
        h.observe_many([2.0, 3.0])
        assert h.count == 3
        snap = h.snapshot()
        assert snap["count"] == 3.0
        assert snap["sum"] == 6.0
        assert snap["mean"] == 2.0

    def test_empty_snapshot(self):
        snap = Histogram("empty").snapshot()
        assert snap["count"] == 0.0
        assert snap["p95"] == 0.0


class TestMetricsRegistry:
    def test_get_or_create_shares_instances(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_is_plain_and_prefixed(self):
        reg = MetricsRegistry(prefix="engine.")
        reg.counter("jobs").inc(3)
        reg.gauge("inflight").set(2.0)
        reg.histogram("wait").observe(1.0)
        snap = reg.snapshot()
        assert snap["engine.jobs"] == 3
        assert snap["engine.inflight"] == 2.0
        assert snap["engine.wait"]["count"] == 1.0
        assert reg.names() == ["inflight", "jobs", "wait"]

    def test_engine_populates_metrics(self):
        """The execution engine feeds its registry during a run."""
        from repro.engine.bench import make_job_mix
        from repro.engine.engine import ExecutionEngine

        with ExecutionEngine(n_workers=1, max_batch=4) as engine:
            engine.run(make_job_mix(n_jobs=4, n_samples=64))
        snap = engine.metrics.snapshot()
        assert snap["engine.jobs_submitted"] == 4
        assert snap["engine.jobs_completed"] == 4
        assert snap["engine.batches"] >= 1
        assert snap["engine.queue_wait_s"]["count"] == 4.0
