"""The --trace flag and trace-report subcommand of ``python -m repro``."""

import json

import pytest

from repro.__main__ import main, trace_report
from repro.obs import NullTracer, get_tracer


class TestTraceFlag:
    def test_trace_writes_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["--trace", str(out), "fig3"]) == 0
        captured = capsys.readouterr()
        assert f"-> {out}" in captured.err
        data = json.loads(out.read_text())
        events = data["traceEvents"]
        assert events and all("ph" in e for e in events)
        # the experiment span on the harness track
        harness = [e for e in events if e["ph"] == "X" and e["name"] == "fig3"]
        assert len(harness) == 1
        # region cycle events made it through the global tracer
        assert any(e.get("cat") == "cycle" for e in events)

    def test_global_tracer_restored_after_run(self, tmp_path, capsys):
        assert main(["--trace", str(tmp_path / "t.json"), "eq1"]) == 0
        capsys.readouterr()
        assert isinstance(get_tracer(), NullTracer)

    def test_json_record_includes_series(self, capsys):
        assert main(["--json", "fig3"]) == 0
        (record,) = json.loads(capsys.readouterr().out)
        assert "lanes" in record["series"]


class TestTraceReport:
    def test_report_from_region_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["--trace", str(out), "fig3"]) == 0
        capsys.readouterr()
        assert main(["trace-report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "stall attribution" in text
        assert "compute/transfer overlap" in text

    def test_missing_file(self, capsys):
        assert trace_report("/nonexistent/trace.json") == 2
        assert "cannot read" in capsys.readouterr().err

    def test_trace_without_cycle_events(self, tmp_path, capsys):
        path = tmp_path / "engine.json"
        path.write_text(json.dumps({"traceEvents": []}))
        assert trace_report(str(path)) == 1
        assert "no cycle-attribution" in capsys.readouterr().err

    def test_usage_error_without_path(self):
        with pytest.raises(SystemExit):
            main(["trace-report"])
