"""Tracer semantics: no-op default, Chrome export, cycle determinism."""

import json

from repro.core.decoupled import DecoupledConfig, DecoupledWorkItems
from repro.core.kernel import GammaKernelConfig
from repro.obs import (
    ChromeTracer,
    NullTracer,
    get_tracer,
    set_tracer,
    use_tracer,
)


def _small_config():
    return DecoupledConfig(
        n_work_items=2,
        burst_words=1,
        kernel=GammaKernelConfig(limit_main=32),
    )


class TestNullTracer:
    def test_disabled_and_inert(self):
        t = NullTracer()
        assert not t.enabled
        track = t.track("p", "t")
        t.complete(track, "x", 0, 1)
        t.instant(track, "x")
        t.counter(track, "x", {"v": 1})
        with t.span(track, "x"):
            pass
        assert t.wall_us() == 0.0


class TestGlobalTracer:
    def test_default_is_null(self):
        assert isinstance(get_tracer(), NullTracer)

    def test_set_and_restore(self):
        t = ChromeTracer()
        previous = set_tracer(t)
        try:
            assert get_tracer() is t
        finally:
            set_tracer(previous)
        assert get_tracer() is previous

    def test_use_tracer_scopes(self):
        t = ChromeTracer()
        before = get_tracer()
        with use_tracer(t) as active:
            assert active is t
            assert get_tracer() is t
        assert get_tracer() is before


class TestChromeTracer:
    def test_track_metadata_events(self):
        t = ChromeTracer()
        a = t.track("region", "p0")
        b = t.track("region", "p1")
        again = t.track("region", "p0")
        assert a == again
        assert a.pid == b.pid and a.tid != b.tid
        meta = [e for e in t.events() if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "region") in names
        assert ("thread_name", "p0") in names

    def test_complete_event_shape(self):
        t = ChromeTracer()
        track = t.track("r", "p")
        t.complete(track, "compute", ts_us=10, dur_us=5, cat="cycle",
                   args={"k": 1})
        (event,) = [e for e in t.events() if e["ph"] == "X"]
        assert event == {
            "name": "compute", "ph": "X", "pid": track.pid,
            "tid": track.tid, "ts": 10.0, "dur": 5.0, "cat": "cycle",
            "args": {"k": 1},
        }

    def test_export_round_trips(self, tmp_path):
        t = ChromeTracer()
        t.complete(t.track("r", "p"), "x", 0, 1, cat="cycle")
        path = tmp_path / "trace.json"
        count = t.export(str(path))
        assert count == len(t)
        data = json.loads(path.read_text())
        assert isinstance(data["traceEvents"], list)
        assert data["displayTimeUnit"] == "ms"

    def test_span_measures_wall_time(self):
        t = ChromeTracer()
        with t.span(t.track("r", "p"), "block"):
            pass
        (event,) = [e for e in t.events() if e["ph"] == "X"]
        assert event["name"] == "block"
        assert event["dur"] >= 0.0


class TestCycleDeterminism:
    def test_identical_runs_export_identical_json(self):
        """Same seed + config ⇒ byte-identical cycle-domain trace.

        Region traces carry only ``cat="cycle"`` events with explicit
        simulated timestamps, so the whole export is deterministic —
        the property that makes traces diffable across refactors.
        """
        payloads = []
        for _ in range(2):
            tracer = ChromeTracer()
            sim = DecoupledWorkItems(_small_config())
            sim.region.run(tracer=tracer)
            payloads.append(tracer.to_json())
        assert payloads[0] == payloads[1]
        assert '"cat":"cycle"' in payloads[0]

    def test_stall_report_only_on_instrumented_runs(self):
        report = DecoupledWorkItems(_small_config()).region.run()
        assert report.stall_report is None
        traced = DecoupledWorkItems(_small_config()).region.run(
            tracer=ChromeTracer()
        )
        assert traced.stall_report is not None
        assert traced.stall_report.cycles == report.cycles


class TestDisabledOverhead:
    def test_untraced_run_not_slowed(self):
        """Uninstrumented runs stay on the fast path (relaxed tier-1
        guard; benchmarks/test_obs_overhead.py holds the <10% bound)."""
        import time

        def best_of(f, n=3):
            times = []
            for _ in range(n):
                sim = DecoupledWorkItems(_small_config())
                t0 = time.perf_counter()
                f(sim)
                times.append(time.perf_counter() - t0)
            return min(times)

        baseline = best_of(lambda sim: sim.region.run())
        explicit_null = best_of(
            lambda sim: sim.region.run(tracer=NullTracer())
        )
        assert explicit_null < baseline * 1.5 + 0.01
