"""The shared percentile estimator — and the engine summarize fix."""

import statistics

import pytest

from repro.obs.percentiles import percentile, summarize


class TestPercentile:
    def test_median_matches_statistics_on_even_lengths(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == statistics.median(values) == 2.5

    def test_median_matches_statistics_on_odd_lengths(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.5) == statistics.median(values) == 3.0

    def test_p95_interpolates_instead_of_returning_max(self):
        # the old nearest-above-rank index returned the max for any
        # series shorter than 21 entries
        values = [float(i) for i in range(1, 11)]  # 1..10
        p95 = percentile(values, 0.95)
        assert p95 == pytest.approx(9.55)
        assert p95 < max(values)

    def test_extremes(self):
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 3.0

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0, 3.0, 7.0], 0.5) == 5.0

    def test_single_value(self):
        assert percentile([42.0], 0.95) == 42.0

    def test_empty_returns_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_out_of_range_quantile_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)


class TestSummarize:
    def test_keys_and_values(self):
        out = summarize([1.0, 2.0, 3.0, 4.0])
        assert out == {
            "count": 4,
            "mean": 2.5,
            "p50": 2.5,
            "p95": pytest.approx(3.85),
            "p99": pytest.approx(3.97),
            "max": 4.0,
        }

    def test_empty_safe(self):
        # zero-filled shape, but count says "no evidence": consumers
        # feeding control loops must not read the 0.0 p99 as fast
        assert summarize([]) == {
            "count": 0,
            "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
        }

    def test_p99_sits_between_p95_and_max(self):
        # the serving SLO tail: tighter than max, beyond p95
        values = [float(i) for i in range(1, 101)]
        out = summarize(values)
        assert out["p95"] < out["p99"] < out["max"]
        assert out["p99"] == pytest.approx(99.01)

    def test_engine_summarize_delegates(self):
        """The engine's summarize is the shared estimator (the p50
        upper-median bias and p95-hits-max bug of the old index math)."""
        from repro.engine.stats import summarize as engine_summarize

        values = [1.0, 2.0, 3.0, 4.0]
        out = engine_summarize(values)
        assert out["p50"] == 2.5  # old code returned 3.0 (upper median)
        assert out["p95"] < 4.0  # old code returned the max
        assert engine_summarize([]) == summarize([])

    def test_histogram_snapshot_uses_same_estimator(self):
        from repro.obs.metrics import Histogram

        h = Histogram("lat")
        h.observe_many([1.0, 2.0, 3.0, 4.0])
        snap = h.snapshot()
        assert snap["p50"] == 2.5
        assert snap["p95"] == pytest.approx(3.85)
        assert snap["p99"] == pytest.approx(3.97)
        assert snap["count"] == 4.0
