"""Tests for the Box-Muller kernel transform (the §II-D2 baseline)."""

import numpy as np
import pytest
from scipy import stats

from repro.core import GammaKernelConfig, GammaRNGProcess, Stream
from repro.rng.mersenne import MT521_PARAMS


def _run(transform, limit_main=512, seed=5):
    cfg = GammaKernelConfig(
        transform=transform, mt_params=MT521_PARAMS,
        limit_main=limit_main, seed=seed,
    )
    sink = Stream("g", depth=100000)
    k = GammaRNGProcess("k", 0, cfg, sink)
    c = 0
    while not k.done():
        k.tick(c)
        c += 1
    return k, np.array(list(sink.drain())), c


class TestBoxMullerTransform:
    def test_listed_in_transforms(self):
        from repro.core import TRANSFORMS

        assert "box_muller" in TRANSFORMS

    def test_gamma_distribution_correct(self):
        _, samples, _ = _run("box_muller")
        p = stats.kstest(samples, "gamma", args=(1 / 1.39, 0, 1.39)).pvalue
        assert p > 1e-3

    def test_rejection_free_normal_stage(self):
        """Box-Muller never rejects; only the gamma step does, so the
        combined rejection sits at the ICDF-config level, not the MB one."""
        k_bm, _, _ = _run("box_muller")
        k_mb, _, _ = _run("marsaglia_bray")
        assert k_bm.measured_rejection_rate < 0.10
        assert k_mb.measured_rejection_rate > 2 * k_bm.measured_rejection_rate

    def test_fewer_attempts_than_mb(self):
        k_bm, _, cycles_bm = _run("box_muller", limit_main=256)
        k_mb, _, cycles_mb = _run("marsaglia_bray", limit_main=256)
        assert k_bm.attempts < k_mb.attempts
        assert cycles_bm < cycles_mb

    def test_consumes_two_uniform_streams(self):
        k, _, _ = _run("box_muller", limit_main=64)
        assert k.mt_norm_a.steps == k.mt_norm_b.steps > 0
