"""Tests for GlobalMemory, MemoryChannel and the analytic transfer model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    BurstRequest,
    GlobalMemory,
    MemoryChannel,
    MemoryChannelConfig,
    build_transfer_only_region,
    transfer_only_cycles,
)
from repro.fixedpoint import FLOATS_PER_WORD, pack_floats


class TestChannelConfig:
    def test_burst_cycles(self):
        cfg = MemoryChannelConfig(setup_cycles=10, cycles_per_word=2)
        assert cfg.burst_cycles(5) == 20

    def test_burst_cycles_validation(self):
        with pytest.raises(ValueError):
            MemoryChannelConfig().burst_cycles(0)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            MemoryChannelConfig(setup_cycles=-1)
        with pytest.raises(ValueError):
            MemoryChannelConfig(cycles_per_word=0)

    def test_effective_bandwidth_monotone_in_burst(self):
        cfg = MemoryChannelConfig(setup_cycles=48, cycles_per_word=2)
        bws = [cfg.effective_bandwidth(b, 200e6) for b in (1, 4, 16, 64, 256)]
        assert all(b2 > b1 for b1, b2 in zip(bws, bws[1:]))

    def test_bandwidth_saturates_at_peak(self):
        cfg = MemoryChannelConfig(setup_cycles=48, cycles_per_word=2)
        peak = cfg.peak_bandwidth(200e6)
        assert cfg.effective_bandwidth(4096, 200e6) < peak
        assert cfg.effective_bandwidth(4096, 200e6) > 0.95 * peak

    def test_peak_bandwidth_value(self):
        # 512 bit = 64 B per word at 200 MHz, 1 cycle/word → 12.8 GB/s
        cfg = MemoryChannelConfig(setup_cycles=0, cycles_per_word=1)
        assert cfg.peak_bandwidth(200e6) == pytest.approx(12.8e9)


class TestGlobalMemory:
    def test_write_read_roundtrip(self):
        mem = GlobalMemory(4)
        values = np.arange(16, dtype=np.float32)
        word = pack_floats(values)[0]
        mem.write_word(2, word)
        np.testing.assert_array_equal(mem.read_floats(2, 16), values)

    def test_write_burst(self):
        mem = GlobalMemory(8)
        values = np.arange(32, dtype=np.float32) + 1
        mem.write_burst(1, pack_floats(values))
        np.testing.assert_array_equal(mem.read_floats(1, 32), values)

    def test_address_bounds(self):
        mem = GlobalMemory(2)
        with pytest.raises(IndexError):
            mem.write_word(2, 0)
        with pytest.raises(IndexError):
            mem.read_floats(1, 32)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            GlobalMemory(0)

    def test_words_written_counter(self):
        mem = GlobalMemory(4)
        mem.write_burst(0, [0, 0, 0])
        assert mem.words_written == 3

    def test_vectorized_lane_split_matches_reference_loop(self):
        """The numpy lane split must be byte-identical to the original
        per-lane shift-mask loop for arbitrary 512-bit payloads."""
        rng = np.random.default_rng(7)
        for _ in range(20):
            word = int.from_bytes(rng.bytes(64), "little")
            fast = GlobalMemory(1)
            fast.write_word(0, word)
            reference = np.array(
                [(word >> (32 * lane)) & 0xFFFFFFFF for lane in range(16)],
                dtype=np.uint32,
            )
            np.testing.assert_array_equal(fast._data, reference)
            np.testing.assert_array_equal(
                fast.read_floats(0, 16), reference.view(np.float32)
            )

    def test_vectorized_write_accepts_ap_uint(self):
        mem = GlobalMemory(1)
        values = np.linspace(-2.0, 2.0, 16, dtype=np.float32)
        mem.write_word(0, pack_floats(values)[0])
        np.testing.assert_array_equal(mem.read_floats(0, 16), values)


class TestMemoryChannel:
    def test_single_burst_timing(self):
        cfg = MemoryChannelConfig(setup_cycles=3, cycles_per_word=2)
        mem = GlobalMemory(4)
        chan = MemoryChannel(cfg, mem)
        req = chan.submit(BurstRequest("wi0", 0, [1, 2], submitted_cycle=0))
        cycles = 0
        while not req.done:
            chan.tick(cycles)
            cycles += 1
        assert cycles == cfg.burst_cycles(2)
        assert mem.words_written == 2

    def test_fifo_arbitration(self):
        chan = MemoryChannel(MemoryChannelConfig(setup_cycles=1, cycles_per_word=1))
        r1 = chan.submit(BurstRequest("a", 0, [1]))
        r2 = chan.submit(BurstRequest("b", 1, [2]))
        for c in range(10):
            chan.tick(c)
        assert r1.completed_cycle < r2.completed_cycle
        assert r2.started_cycle > r1.completed_cycle - 1

    def test_idle_accounting(self):
        chan = MemoryChannel(MemoryChannelConfig(setup_cycles=1, cycles_per_word=1))
        chan.tick(0)
        assert chan.stats.idle_cycles == 1
        chan.submit(BurstRequest("a", 0, [1]))
        chan.tick(1)
        chan.tick(2)
        assert chan.stats.busy_cycles == 2
        assert chan.stats.bursts == 1

    def test_queue_latency_recorded(self):
        chan = MemoryChannel(MemoryChannelConfig(setup_cycles=0, cycles_per_word=5))
        r1 = chan.submit(BurstRequest("a", 0, [1], submitted_cycle=0))
        r2 = chan.submit(BurstRequest("b", 1, [2], submitted_cycle=0))
        c = 0
        while not r2.done:
            chan.tick(c)
            c += 1
        assert r2.queue_latency == 5

    def test_utilization(self):
        chan = MemoryChannel(MemoryChannelConfig(setup_cycles=0, cycles_per_word=1))
        chan.submit(BurstRequest("a", 0, [1]))
        chan.tick(0)
        chan.tick(1)  # idle
        assert chan.stats.utilization == pytest.approx(0.5)


class TestChannelFastPath:
    """Units for the channel side of the cycle-skipping fast path."""

    CFG = MemoryChannelConfig(setup_cycles=3, cycles_per_word=2)

    def test_predict_done_matches_ticked_completion(self):
        ticked = MemoryChannel(self.CFG)
        predicted = MemoryChannel(self.CFG)
        reqs_t, reqs_p = [], []
        for chan, reqs in ((ticked, reqs_t), (predicted, reqs_p)):
            for i, words in enumerate(([1], [2, 3], [4])):
                reqs.append(
                    chan.submit(BurstRequest(f"wi{i}", i, list(words)))
                )
        for c in range(100):
            ticked.tick(c)
        for req_t, req_p in zip(reqs_t, reqs_p):
            assert predicted.predict_done(req_p, 0) == req_t.completed_cycle

    def test_predict_done_cached_and_unknown_request_none(self):
        chan = MemoryChannel(self.CFG)
        req = chan.submit(BurstRequest("a", 0, [1]))
        first = chan.predict_done(req, 0)
        assert chan.predict_done(req, 0) == first  # cached, O(1)
        foreign = BurstRequest("x", 0, [1])
        assert chan.predict_done(foreign, 0) is None

    def test_next_event_is_completion_observation_cycle(self):
        chan = MemoryChannel(self.CFG)
        assert chan.next_event(0) == float("inf")  # idle, empty queue
        req = chan.submit(BurstRequest("a", 0, [1]))
        cost = self.CFG.burst_cycles(1)
        assert chan.next_event(0) == cost  # grant at 0, done at cost-1
        chan.tick(0)
        assert chan.next_event(1) == cost  # one beat drained
        while not req.done:
            chan.tick(chan.stats.busy_cycles)

    @pytest.mark.parametrize("span", [1, 2, 4, 7])
    def test_skip_cycles_equals_n_ticks(self, span):
        for chunks in ([(0, [1])], [(0, [1, 2]), (2, [3])], []):
            ticked = MemoryChannel(self.CFG, GlobalMemory(8))
            skipped = MemoryChannel(self.CFG, GlobalMemory(8))
            for chan in (ticked, skipped):
                for addr, words in chunks:
                    chan.submit(BurstRequest("a", addr, list(words)))
            for c in range(span):
                ticked.tick(c)
            skipped.skip_cycles(0, span)
            assert vars(ticked.stats) == vars(skipped.stats)
            assert (
                ticked.memory.as_float_array()
                == skipped.memory.as_float_array()
            ).all()


class TestAnalyticModel:
    def test_matches_simulation_exactly(self):
        for n_wi, burst, values in [(1, 2, 256), (4, 4, 1024), (6, 8, 2048)]:
            region, _, _ = build_transfer_only_region(n_wi, values, burst)
            sim = region.run().cycles
            model = transfer_only_cycles(values, n_wi, burst)
            assert sim == model, (n_wi, burst, values)

    def test_longer_bursts_fewer_cycles(self):
        cycles = [
            transfer_only_cycles(4096, 4, b) for b in (1, 2, 4, 8, 16, 32)
        ]
        assert all(c2 <= c1 for c1, c2 in zip(cycles, cycles[1:]))

    def test_more_work_items_more_channel_pressure(self):
        per_item = 4096
        c1 = transfer_only_cycles(per_item, 1, 4)
        c8 = transfer_only_cycles(per_item, 8, 4)
        assert c8 > c1  # same per-item data, shared channel serializes

    def test_engine_bound_regime(self):
        """With one work-item and tiny setup, packing dominates: the
        channel hides entirely behind the 1-value-per-cycle packer."""
        cfg = MemoryChannelConfig(setup_cycles=0, cycles_per_word=1)
        c = transfer_only_cycles(1024, 1, 4, config=cfg)
        bursts = 1024 // (4 * FLOATS_PER_WORD)
        assert c == bursts * (4 * FLOATS_PER_WORD + cfg.burst_cycles(4))


@given(
    n_wi=st.integers(min_value=1, max_value=6),
    burst=st.sampled_from([1, 2, 4, 8]),
    bursts_per_item=st.integers(min_value=1, max_value=6),
    setup=st.integers(min_value=0, max_value=40),
)
@settings(max_examples=25, deadline=None)
def test_prop_analytic_model_matches_cycle_sim(n_wi, burst, bursts_per_item, setup):
    """The closed-form Fig 7 model must track the cycle-accurate region.

    The model is exact when one bound clearly dominates; in the mixed
    regime (pack time ≈ serialized burst time) the queueing interaction
    adds a bounded stagger the closed form does not capture, so the
    tolerance widens there."""
    cfg = MemoryChannelConfig(setup_cycles=setup, cycles_per_word=2)
    values = bursts_per_item * burst * FLOATS_PER_WORD
    region, _, _ = build_transfer_only_region(
        n_wi, values, burst, channel_config=cfg
    )
    sim = region.run().cycles
    model = transfer_only_cycles(values, n_wi, burst, config=cfg)
    pack = values  # 1 value/cycle
    burst_cost = cfg.burst_cycles(burst)
    channel_time = n_wi * bursts_per_item * burst_cost
    engine_time = bursts_per_item * (values // bursts_per_item + burst_cost)
    # near the boundary the engines' bursts still collide occasionally,
    # so only call a regime "dominated" beyond a 3x separation
    dominated = max(channel_time, engine_time) >= 3 * min(channel_time, engine_time)
    # absolute floor covers warm-up effects on tiny runs (<100 cycles)
    tolerance = max(16, 0.10 * sim) if dominated else max(16, 0.30 * sim)
    assert abs(sim - model) <= tolerance
