"""Tests for the DATAFLOW region co-simulation."""

import pytest

from repro.core import (
    DataflowError,
    DataflowRegion,
    DeadlockError,
    Process,
    Stream,
)


class Producer(Process):
    def __init__(self, name, sink, count):
        super().__init__(name)
        self.sink = sink
        self.remaining = count

    def outputs(self):
        return (self.sink,)

    def done(self):
        return self.remaining == 0

    def tick(self, cycle):
        if self.remaining and self.sink.can_write():
            self.sink.write(self.remaining)
            self.remaining -= 1
            return self._account(True)
        return self._account(False)


class Consumer(Process):
    def __init__(self, name, source, count):
        super().__init__(name)
        self.source = source
        self.remaining = count
        self.received = []

    def inputs(self):
        return (self.source,)

    def done(self):
        return self.remaining == 0

    def tick(self, cycle):
        if self.remaining and self.source.can_read():
            self.received.append(self.source.read())
            self.remaining -= 1
            return self._account(True)
        return self._account(False)


class Relay(Process):
    """One-in one-out forwarding process (for chains)."""

    def __init__(self, name, source, sink, count):
        super().__init__(name)
        self.source = source
        self.sink = sink
        self.remaining = count

    def inputs(self):
        return (self.source,)

    def outputs(self):
        return (self.sink,)

    def done(self):
        return self.remaining == 0

    def tick(self, cycle):
        if self.remaining and self.source.can_read() and self.sink.can_write():
            self.sink.write(self.source.read())
            self.remaining -= 1
            return self._account(True)
        return self._account(False)


class Stuck(Process):
    """Never progresses — deadlock fixture."""

    def __init__(self, name, source):
        super().__init__(name)
        self.source = source

    def inputs(self):
        return (self.source,)

    def done(self):
        return False

    def tick(self, cycle):
        return self._account(False)


def _pipe(count=10, depth=2):
    s = Stream("s", depth=depth)
    region = DataflowRegion("t")
    prod = region.add(Producer("prod", s, count))
    cons = region.add(Consumer("cons", s, count))
    return region, prod, cons


class TestWiringValidation:
    def test_duplicate_process_name_rejected(self):
        region, _, _ = _pipe()
        with pytest.raises(DataflowError):
            region.add(Producer("prod", Stream("x"), 1))

    def test_two_producers_rejected(self):
        s = Stream("s")
        region = DataflowRegion("t")
        region.add(Producer("p1", s, 1))
        region.add(Producer("p2", s, 1))
        region.add(Consumer("c", s, 2))
        with pytest.raises(DataflowError, match="two producers"):
            region.run()

    def test_two_consumers_rejected(self):
        s = Stream("s")
        region = DataflowRegion("t")
        region.add(Producer("p", s, 2))
        region.add(Consumer("c1", s, 1))
        region.add(Consumer("c2", s, 1))
        with pytest.raises(DataflowError, match="two consumers"):
            region.run()

    def test_cycle_rejected(self):
        a, b = Stream("a"), Stream("b")
        region = DataflowRegion("t")
        region.add(Relay("r1", a, b, 1))
        region.add(Relay("r2", b, a, 1))
        with pytest.raises(DataflowError, match="cycle"):
            region.run()

    def test_empty_region_rejected(self):
        with pytest.raises(DataflowError):
            DataflowRegion("t").run()


class TestExecution:
    def test_all_tokens_delivered_in_order(self):
        region, _, cons = _pipe(count=25)
        region.run()
        assert cons.received == list(range(25, 0, -1))

    def test_same_cycle_handoff(self):
        """Producer ticked before consumer: a token written in cycle t is
        readable in cycle t — pipe of N tokens finishes in ~N+1 cycles."""
        region, _, _ = _pipe(count=50, depth=2)
        report = region.run()
        assert report.cycles <= 52

    def test_backpressure_with_shallow_stream(self):
        s = Stream("s", depth=1)
        region = DataflowRegion("t")
        prod = region.add(Producer("p", s, 30))
        # consumer that reads every other cycle
        class SlowConsumer(Consumer):
            def tick(self, cycle):
                if cycle % 2 == 0:
                    return self._account(False)
                return super().tick(cycle)

        region.add(SlowConsumer("c", s, 30))
        region.run()
        assert prod.stats.stall_cycles > 0  # producer was backpressured

    def test_chain_of_relays(self):
        a, b, c = Stream("a"), Stream("b"), Stream("c")
        region = DataflowRegion("chain")
        region.add(Producer("p", a, 10))
        region.add(Relay("r1", a, b, 10))
        region.add(Relay("r2", b, c, 10))
        cons = region.add(Consumer("cons", c, 10))
        region.run()
        assert cons.received == list(range(10, 0, -1))

    def test_registration_order_irrelevant(self):
        """Topological ordering makes consumer-first registration work."""
        s = Stream("s")
        region = DataflowRegion("t")
        cons = region.add(Consumer("c", s, 10))
        region.add(Producer("p", s, 10))
        report = region.run()
        assert len(cons.received) == 10
        assert report.cycles <= 12

    def test_deadlock_detected(self):
        s = Stream("s")
        region = DataflowRegion("t")
        region.add(Stuck("stuck", s))
        with pytest.raises(DeadlockError, match="stuck"):
            region.run()

    def test_max_cycles_guard(self):
        region, _, _ = _pipe(count=1000)
        with pytest.raises(RuntimeError, match="exceeded"):
            region.run(max_cycles=5)


class TestReport:
    def test_report_contents(self):
        region, prod, cons = _pipe(count=10)
        report = region.run()
        assert report.process_stats["prod"].iterations == 0  # Producer sets none
        assert report.stream_stats["s"]["total_writes"] == 10
        assert report.stream_stats["s"]["total_reads"] == 10
        assert report.stream_stats["s"]["high_water"] <= 2

    def test_runtime_conversion(self):
        region, *_ = _pipe(count=10)
        report = region.run()
        assert report.runtime_ms(200e6) == pytest.approx(
            report.cycles / 200e6 * 1e3
        )
        with pytest.raises(ValueError):
            report.runtime_seconds(0)


def _channel_region():
    from repro.core.memory import GlobalMemory, MemoryChannel, MemoryChannelConfig
    from repro.core.transfer import DummySource, TransferEngine

    memory = GlobalMemory(8)
    region = DataflowRegion("chan")
    for i in range(2):
        region.attach_memory_channel(MemoryChannel(MemoryChannelConfig(), memory))
    for wid in range(2):
        s = Stream(f"s{wid}", depth=16)
        region.add(DummySource(f"src{wid}", s, 16))
        region.add(
            TransferEngine(
                f"eng{wid}", wid, s, region.memory_channels[wid],
                burst_words=1, bursts_per_sector=1, sectors=1, block_offset=1,
            )
        )
    return region


class TestChannelStatsAlias:
    """Regression: the legacy ``__memory_channel__`` key must resolve to
    channel 0 but never appear in iteration — consumers aggregating over
    ``process_stats`` used to double-count the first channel."""

    def test_legacy_key_resolves_to_channel_zero(self):
        region = _channel_region()
        report = region.run()
        assert (
            report.process_stats["__memory_channel__"]
            is report.process_stats["__memory_channel_0__"]
        )
        assert "__memory_channel__" in report.process_stats
        assert report.process_stats.get("__memory_channel__") is not None

    def test_alias_excluded_from_iteration(self):
        region = _channel_region()
        report = region.run()
        keys = list(report.process_stats)
        assert "__memory_channel__" not in keys
        assert "__memory_channel_0__" in keys
        assert "__memory_channel_1__" in keys
        # each ChannelStats object appears exactly once in values()
        channel_stats = [ch.stats for ch in region.memory_channels]
        seen = [v for v in report.process_stats.values() if v in channel_stats]
        assert len(seen) == len(channel_stats)

    def test_no_channel_no_alias(self):
        region, *_ = _pipe(count=4)
        report = region.run()
        assert "__memory_channel__" not in report.process_stats
        assert report.process_stats.get("__memory_channel__") is None
        with pytest.raises(KeyError):
            report.process_stats["__memory_channel__"]


class TestAbortPathAttribution:
    """Regression: both abort paths close the attribution at the same
    boundary (the last recorded cycle), so aborted runs round-trip
    through StallReport without one-cycle-short spans."""

    @staticmethod
    def _run_aborted(abort):
        from repro.obs.stall import StallAttribution
        from repro.obs.tracer import ChromeTracer

        tracer = ChromeTracer()
        region = DataflowRegion("abort")
        s = Stream("s")
        if abort == "deadlock":
            region.add(Stuck("stuck", s))
            expected_cycles = 1  # one recorded zero-progress cycle
            raises = DeadlockError
        else:
            region.add(Producer("p", s, 1000))
            region.add(Consumer("c", s, 1000))
            expected_cycles = 7
            raises = RuntimeError
        attribution = StallAttribution(region.name, tracer=tracer)
        with pytest.raises(raises):
            region.run(
                max_cycles=7 if abort == "max_cycles" else 100,
                attribution=attribution,
            )
        return attribution, tracer, expected_cycles

    @pytest.mark.parametrize("abort", ["deadlock", "max_cycles"])
    def test_abort_report_covers_every_recorded_cycle(self, abort):
        attribution, _, expected = self._run_aborted(abort)
        report = attribution.report()
        assert report.cycles == expected
        for counts in report.per_process.values():
            assert sum(counts.values()) == expected

    @pytest.mark.parametrize("abort", ["deadlock", "max_cycles"])
    def test_abort_trace_round_trips(self, abort):
        from repro.obs.stall import reports_from_trace

        attribution, tracer, expected = self._run_aborted(abort)
        direct = attribution.report()
        rebuilt = reports_from_trace(tracer.to_dict())
        assert len(rebuilt) == 1
        assert rebuilt[0].cycles == direct.cycles == expected
        assert rebuilt[0].per_process == direct.per_process
