"""Tests for the DATAFLOW region co-simulation."""

import pytest

from repro.core import (
    DataflowError,
    DataflowRegion,
    DeadlockError,
    Process,
    Stream,
)


class Producer(Process):
    def __init__(self, name, sink, count):
        super().__init__(name)
        self.sink = sink
        self.remaining = count

    def outputs(self):
        return (self.sink,)

    def done(self):
        return self.remaining == 0

    def tick(self, cycle):
        if self.remaining and self.sink.can_write():
            self.sink.write(self.remaining)
            self.remaining -= 1
            return self._account(True)
        return self._account(False)


class Consumer(Process):
    def __init__(self, name, source, count):
        super().__init__(name)
        self.source = source
        self.remaining = count
        self.received = []

    def inputs(self):
        return (self.source,)

    def done(self):
        return self.remaining == 0

    def tick(self, cycle):
        if self.remaining and self.source.can_read():
            self.received.append(self.source.read())
            self.remaining -= 1
            return self._account(True)
        return self._account(False)


class Relay(Process):
    """One-in one-out forwarding process (for chains)."""

    def __init__(self, name, source, sink, count):
        super().__init__(name)
        self.source = source
        self.sink = sink
        self.remaining = count

    def inputs(self):
        return (self.source,)

    def outputs(self):
        return (self.sink,)

    def done(self):
        return self.remaining == 0

    def tick(self, cycle):
        if self.remaining and self.source.can_read() and self.sink.can_write():
            self.sink.write(self.source.read())
            self.remaining -= 1
            return self._account(True)
        return self._account(False)


class Stuck(Process):
    """Never progresses — deadlock fixture."""

    def __init__(self, name, source):
        super().__init__(name)
        self.source = source

    def inputs(self):
        return (self.source,)

    def done(self):
        return False

    def tick(self, cycle):
        return self._account(False)


def _pipe(count=10, depth=2):
    s = Stream("s", depth=depth)
    region = DataflowRegion("t")
    prod = region.add(Producer("prod", s, count))
    cons = region.add(Consumer("cons", s, count))
    return region, prod, cons


class TestWiringValidation:
    def test_duplicate_process_name_rejected(self):
        region, _, _ = _pipe()
        with pytest.raises(DataflowError):
            region.add(Producer("prod", Stream("x"), 1))

    def test_two_producers_rejected(self):
        s = Stream("s")
        region = DataflowRegion("t")
        region.add(Producer("p1", s, 1))
        region.add(Producer("p2", s, 1))
        region.add(Consumer("c", s, 2))
        with pytest.raises(DataflowError, match="two producers"):
            region.run()

    def test_two_consumers_rejected(self):
        s = Stream("s")
        region = DataflowRegion("t")
        region.add(Producer("p", s, 2))
        region.add(Consumer("c1", s, 1))
        region.add(Consumer("c2", s, 1))
        with pytest.raises(DataflowError, match="two consumers"):
            region.run()

    def test_cycle_rejected(self):
        a, b = Stream("a"), Stream("b")
        region = DataflowRegion("t")
        region.add(Relay("r1", a, b, 1))
        region.add(Relay("r2", b, a, 1))
        with pytest.raises(DataflowError, match="cycle"):
            region.run()

    def test_empty_region_rejected(self):
        with pytest.raises(DataflowError):
            DataflowRegion("t").run()


class TestExecution:
    def test_all_tokens_delivered_in_order(self):
        region, _, cons = _pipe(count=25)
        region.run()
        assert cons.received == list(range(25, 0, -1))

    def test_same_cycle_handoff(self):
        """Producer ticked before consumer: a token written in cycle t is
        readable in cycle t — pipe of N tokens finishes in ~N+1 cycles."""
        region, _, _ = _pipe(count=50, depth=2)
        report = region.run()
        assert report.cycles <= 52

    def test_backpressure_with_shallow_stream(self):
        s = Stream("s", depth=1)
        region = DataflowRegion("t")
        prod = region.add(Producer("p", s, 30))
        # consumer that reads every other cycle
        class SlowConsumer(Consumer):
            def tick(self, cycle):
                if cycle % 2 == 0:
                    return self._account(False)
                return super().tick(cycle)

        region.add(SlowConsumer("c", s, 30))
        region.run()
        assert prod.stats.stall_cycles > 0  # producer was backpressured

    def test_chain_of_relays(self):
        a, b, c = Stream("a"), Stream("b"), Stream("c")
        region = DataflowRegion("chain")
        region.add(Producer("p", a, 10))
        region.add(Relay("r1", a, b, 10))
        region.add(Relay("r2", b, c, 10))
        cons = region.add(Consumer("cons", c, 10))
        region.run()
        assert cons.received == list(range(10, 0, -1))

    def test_registration_order_irrelevant(self):
        """Topological ordering makes consumer-first registration work."""
        s = Stream("s")
        region = DataflowRegion("t")
        cons = region.add(Consumer("c", s, 10))
        region.add(Producer("p", s, 10))
        report = region.run()
        assert len(cons.received) == 10
        assert report.cycles <= 12

    def test_deadlock_detected(self):
        s = Stream("s")
        region = DataflowRegion("t")
        region.add(Stuck("stuck", s))
        with pytest.raises(DeadlockError, match="stuck"):
            region.run()

    def test_max_cycles_guard(self):
        region, _, _ = _pipe(count=1000)
        with pytest.raises(RuntimeError, match="exceeded"):
            region.run(max_cycles=5)


class TestReport:
    def test_report_contents(self):
        region, prod, cons = _pipe(count=10)
        report = region.run()
        assert report.process_stats["prod"].iterations == 0  # Producer sets none
        assert report.stream_stats["s"]["total_writes"] == 10
        assert report.stream_stats["s"]["total_reads"] == 10
        assert report.stream_stats["s"]["high_water"] <= 2

    def test_runtime_conversion(self):
        region, *_ = _pipe(count=10)
        report = region.run()
        assert report.runtime_ms(200e6) == pytest.approx(
            report.cycles / 200e6 * 1e3
        )
        with pytest.raises(ValueError):
            report.runtime_seconds(0)
