"""Integration tests for the full decoupled-work-items region (Listing 1)."""

import numpy as np
import pytest
from scipy import stats

from repro.core import (
    DecoupledConfig,
    DecoupledWorkItems,
    GammaKernelConfig,
    MemoryChannelConfig,
)
from repro.rng import MT521_PARAMS


def _config(n_wi=2, limit_main=64, sectors=(1.39,), transform="marsaglia_bray",
            burst_words=2, **kw):
    return DecoupledConfig(
        n_work_items=n_wi,
        kernel=GammaKernelConfig(
            transform=transform,
            mt_params=MT521_PARAMS,
            sector_variances=tuple(sectors),
            limit_main=limit_main,
        ),
        burst_words=burst_words,
        **kw,
    )


class TestConfigValidation:
    def test_zero_work_items_rejected(self):
        with pytest.raises(ValueError):
            _config(n_wi=0)

    def test_limit_main_burst_divisibility(self):
        with pytest.raises(ValueError, match="multiple"):
            _config(limit_main=40, burst_words=2)  # 40 % 32 != 0

    def test_derived_quantities(self):
        cfg = _config(n_wi=3, limit_main=64, sectors=(1.0, 2.0), burst_words=2)
        assert cfg.bursts_per_sector == 2
        assert cfg.words_per_item == 2 * 2 * 2
        assert cfg.total_words == 24


class TestEndToEnd:
    def test_all_outputs_reach_memory(self):
        cfg = _config(n_wi=3, limit_main=64)
        res = DecoupledWorkItems(cfg).run()
        g = res.gammas()
        assert g.shape == (3 * 64,)
        assert np.all(g > 0)

    def test_memory_matches_kernel_produced(self):
        """Device memory must contain exactly what each kernel produced,
        in order, at its own blockOffset — Section III-E-2."""
        cfg = _config(n_wi=4, limit_main=64)
        res = DecoupledWorkItems(cfg).run()
        for wid, kernel in enumerate(res.kernels):
            np.testing.assert_allclose(
                res.gammas(wid),
                np.array(kernel.produced, dtype=np.float32),
                rtol=1e-6,
            )

    def test_work_items_independent_streams(self):
        cfg = _config(n_wi=3, limit_main=64)
        res = DecoupledWorkItems(cfg).run()
        a, b = res.gammas(0), res.gammas(1)
        assert not np.array_equal(a, b)

    def test_gammas_wid_bounds(self):
        res = DecoupledWorkItems(_config()).run()
        with pytest.raises(IndexError):
            res.gammas(99)

    def test_multi_sector(self):
        cfg = _config(n_wi=2, limit_main=32, sectors=(1.39, 0.5, 2.0))
        res = DecoupledWorkItems(cfg).run()
        assert res.gammas().shape == (2 * 3 * 32,)

    @pytest.mark.parametrize("transform", ["marsaglia_bray", "icdf_fpga"])
    def test_distribution_preserved_through_memory(self, transform):
        v = 1.39
        cfg = _config(
            n_wi=2, limit_main=512, sectors=(v,), transform=transform
        )
        res = DecoupledWorkItems(cfg).run()
        p = stats.kstest(res.gammas(), "gamma", args=(1 / v, 0, v)).pvalue
        assert p > 1e-4


class TestScheduleProperties:
    def test_decoupling_no_cross_stall(self):
        """A slow (high-rejection) work-item must not slow a fast one:
        every kernel's active cycles stay close to its own attempts."""
        cfg = _config(n_wi=4, limit_main=128)
        res = DecoupledWorkItems(cfg).run()
        for k in res.kernels:
            # stalls only from backpressure, not from other work-items'
            # divergence; with ample stream depth they are few
            assert k.stats.active_cycles >= k.attempts

    def test_runtime_dominated_by_slowest_path(self):
        cfg = _config(n_wi=2, limit_main=128)
        res = DecoupledWorkItems(cfg).run()
        slowest = max(k.stats.cycles for k in res.kernels)
        assert res.cycles >= slowest

    def test_transfers_overlap_compute(self):
        """Fig 3: with several work-items the channel should be busy
        while kernels are still computing — overall cycles far below
        the serialized sum."""
        cfg = _config(n_wi=4, limit_main=256, burst_words=2)
        res = DecoupledWorkItems(cfg).run()
        chan = res.report.process_stats["__memory_channel__"]
        serial = sum(k.stats.cycles for k in res.kernels) + chan.busy_cycles
        assert res.cycles < 0.7 * serial

    def test_work_item_scaling_compute_bound(self):
        """With a fast channel the region is compute-bound and throughput
        scales with the number of decoupled pipelines (Fig 2c)."""
        fast = MemoryChannelConfig(setup_cycles=8, cycles_per_word=1)
        r1 = DecoupledWorkItems(
            _config(n_wi=1, limit_main=128, channel=fast)
        ).run()
        r4 = DecoupledWorkItems(
            _config(n_wi=4, limit_main=128, channel=fast)
        ).run()
        assert (
            r4.throughput_rns_per_second() > 2.5 * r1.throughput_rns_per_second()
        )

    def test_work_item_scaling_saturates_when_transfer_bound(self):
        """With the default (realistic) channel the single memory port
        saturates — the effect that caps the paper's FPGA runtimes."""
        r1 = DecoupledWorkItems(_config(n_wi=1, limit_main=128)).run()
        r4 = DecoupledWorkItems(_config(n_wi=4, limit_main=128)).run()
        speedup = r4.throughput_rns_per_second() / r1.throughput_rns_per_second()
        assert 0.8 < speedup < 2.5

    def test_rejection_rate_reported(self):
        res = DecoupledWorkItems(_config(n_wi=2, limit_main=256)).run()
        assert 0.1 < res.rejection_rate < 0.4  # MB+MT combined regime

    def test_transfer_bound_with_slow_channel(self):
        """A throttled channel makes the run transfer-bound: cycles track
        the channel busy time, not the compute time (Table III FPGA rows)."""
        slow = MemoryChannelConfig(setup_cycles=100, cycles_per_word=8)
        cfg = _config(n_wi=4, limit_main=128, channel=slow)
        res = DecoupledWorkItems(cfg).run()
        chan = res.report.process_stats["__memory_channel__"]
        assert chan.busy_cycles > 0.8 * res.cycles

    def test_runtime_ms_uses_frequency(self):
        cfg = _config(frequency_hz=100e6)
        res = DecoupledWorkItems(cfg).run()
        assert res.runtime_ms == pytest.approx(res.cycles / 100e6 * 1e3)
