"""Failure-injection tests: the region must fail loudly, not hang.

Hardware dataflow designs hang silently when a producer underdelivers
or a consumer never drains; the simulator turns each of those into a
diagnosable DeadlockError (or a clean result when the design tolerates
the fault)."""

import numpy as np
import pytest

from repro.core import (
    DataflowRegion,
    DeadlockError,
    DecoupledConfig,
    DecoupledWorkItems,
    GammaKernelConfig,
    MemoryChannel,
    MemoryChannelConfig,
    Stream,
    TransferEngine,
    GlobalMemory,
)
from repro.core.transfer import DummySource
from repro.rng.mersenne import MT521_PARAMS


class TestProducerUnderdelivery:
    def test_kernel_limit_max_starves_transfer_engine(self):
        """If limitMax caps the kernel before the output quota is met,
        the Transfer engine waits forever for stream data — the region
        must detect the hang and name the stuck engine."""
        cfg = DecoupledConfig(
            n_work_items=1,
            kernel=GammaKernelConfig(
                mt_params=MT521_PARAMS,
                limit_main=64,
                limit_max=70,  # ~23 % rejection → cannot reach 64 outputs
            ),
            burst_words=2,
        )
        with pytest.raises(DeadlockError, match="Transfer0"):
            DecoupledWorkItems(cfg).run()

    def test_short_dummy_source_starves_engine(self):
        values = 64  # engine expects 2 bursts = 64 values... but only 32 sent
        memory = GlobalMemory(4)
        channel = MemoryChannel(MemoryChannelConfig(), memory)
        region = DataflowRegion("starved")
        region.attach_memory_channel(channel)
        s = Stream("s", depth=8)
        region.add(DummySource("src", s, 32))
        region.add(TransferEngine(
            "eng", 0, s, channel, burst_words=2, bursts_per_sector=2,
            sectors=1, block_offset=4,
        ))
        with pytest.raises(DeadlockError, match="eng"):
            region.run()


class TestConsumerMissing:
    def test_kernel_with_no_consumer_blocks(self):
        """A kernel whose stream nobody drains fills the FIFO and blocks
        — detected instead of spinning forever."""
        from repro.core import GammaRNGProcess

        region = DataflowRegion("noconsumer")
        sink = Stream("g", depth=2)
        region.add(GammaRNGProcess(
            "k", 0, GammaKernelConfig(mt_params=MT521_PARAMS, limit_main=64),
            sink,
        ))
        with pytest.raises(DeadlockError, match="k"):
            region.run()


class TestRecoverableFaults:
    def test_minimum_stream_depth_still_correct(self):
        """Depth-1 FIFOs maximize backpressure but must not lose data."""
        cfg = DecoupledConfig(
            n_work_items=2,
            kernel=GammaKernelConfig(mt_params=MT521_PARAMS, limit_main=64),
            burst_words=2,
            stream_depth=1,
        )
        res = DecoupledWorkItems(cfg).run()
        for wid, kernel in enumerate(res.kernels):
            np.testing.assert_allclose(
                res.gammas(wid),
                np.array(kernel.produced, dtype=np.float32),
                rtol=1e-6,
            )

    def test_glacial_channel_still_completes(self):
        """A pathologically slow channel stretches, but never wedges,
        the schedule."""
        cfg = DecoupledConfig(
            n_work_items=2,
            kernel=GammaKernelConfig(mt_params=MT521_PARAMS, limit_main=32),
            burst_words=2,
            channel=MemoryChannelConfig(setup_cycles=5000, cycles_per_word=50),
        )
        res = DecoupledWorkItems(cfg).run()
        assert res.gammas().size == 64
        chan = res.report.process_stats["__memory_channel__"]
        assert chan.busy_cycles > 0.9 * res.cycles

    def test_limit_max_generous_enough_completes(self):
        cfg = DecoupledConfig(
            n_work_items=1,
            kernel=GammaKernelConfig(
                mt_params=MT521_PARAMS, limit_main=32, limit_max=512
            ),
            burst_words=2,
        )
        res = DecoupledWorkItems(cfg).run()
        assert res.gammas().size == 32


class TestMtFamilyKernel:
    def test_family_kernel_produces_valid_gammas(self):
        from scipy import stats

        cfg = DecoupledConfig(
            n_work_items=2,
            kernel=GammaKernelConfig(
                mt_params=MT521_PARAMS, limit_main=512, mt_family=True
            ),
            burst_words=2,
        )
        res = DecoupledWorkItems(cfg).run()
        p = stats.kstest(res.gammas(), "gamma", args=(1 / 1.39, 0, 1.39)).pvalue
        assert p > 1e-3

    def test_family_twisters_have_distinct_params(self):
        from repro.core import GammaRNGProcess

        cfg = GammaKernelConfig(
            mt_params=MT521_PARAMS, limit_main=32, mt_family=True
        )
        k = GammaRNGProcess("k", 0, cfg, Stream("s", depth=64))
        a_values = {
            k.mt_norm_a.params.a, k.mt_norm_b.params.a,
            k.mt_reject.params.a, k.mt_correct.params.a,
        }
        assert len(a_values) == 4

    def test_family_differs_from_shared_params_stream(self):
        from repro.core import GammaRNGProcess

        outs = []
        for family in (False, True):
            cfg = GammaKernelConfig(
                mt_params=MT521_PARAMS, limit_main=64, mt_family=family
            )
            sink = Stream("s", depth=1000)
            k = GammaRNGProcess("k", 0, cfg, sink)
            c = 0
            while not k.done():
                k.tick(c)
                c += 1
            outs.append(list(sink.drain()))
        assert outs[0] != outs[1]
