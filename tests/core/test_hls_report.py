"""Tests for the HLS-style synthesis report — asserted against the
cycle simulator, so the report cannot drift from the models."""

import pytest

from repro.core import DecoupledConfig, DecoupledWorkItems, GammaKernelConfig
from repro.core.hls_report import synthesize_report
from repro.rng.mersenne import MT521_PARAMS


def _config(**kernel_kw):
    return DecoupledConfig(
        n_work_items=2,
        kernel=GammaKernelConfig(
            mt_params=MT521_PARAMS, limit_main=128, **kernel_kw
        ),
        burst_words=2,
    )


class TestReportContents:
    def test_mainloop_ii_one_by_default(self):
        report = synthesize_report(_config())
        assert report.main_loop().ii == 1
        assert report.main_loop().pipelined

    def test_naive_exit_raises_ii(self):
        report = synthesize_report(_config(use_delayed_counter=False))
        assert report.main_loop().ii == 2

    def test_naive_mt_raises_ii(self):
        report = synthesize_report(_config(adapted_mt=False))
        assert report.main_loop().ii >= 2

    def test_streams_listed(self):
        report = synthesize_report(_config())
        assert len(report.streams) == 2
        assert report.streams[0]["width_bits"] == 32

    def test_resources_scale_with_work_items(self):
        small = synthesize_report(_config())
        assert (
            small.resources_total["Slice"]
            == 2 * small.resources_per_item["Slice"]
        )

    def test_render_sections(self):
        out = synthesize_report(_config()).render()
        assert "Synthesis report" in out
        assert "MAINLOOP" in out and "TLOOP" in out
        assert "resource estimate" in out

    def test_dynamic_trip_count_annotated(self):
        report = synthesize_report(_config())
        assert "dynamic" in report.main_loop().trip_count


class TestReportAgreesWithSimulator:
    @pytest.mark.parametrize("use_delayed", [True, False])
    def test_reported_ii_predicts_cycles(self, use_delayed):
        """cycles/attempt in the simulator must match the reported II."""
        cfg = _config(use_delayed_counter=use_delayed)
        report = synthesize_report(cfg)
        result = DecoupledWorkItems(cfg).run()
        kernel = result.kernels[0]
        # kernel busy cycles ≈ attempts * II (+ small sector overhead);
        # measure active+stall cycles attributable to the pipeline
        cycles_per_attempt = (
            kernel.stats.cycles - kernel.stats.stall_cycles * 0
        ) / kernel.attempts
        # backpressure stalls are excluded by using a fast channel? keep
        # loose: the ratio of the two designs is the real check
        assert cycles_per_attempt >= report.main_loop().ii * 0.9

    def test_ii_ratio_matches_simulated_ratio(self):
        from repro.core import MemoryChannelConfig

        fast_channel = MemoryChannelConfig(setup_cycles=8, cycles_per_word=1)

        def run(use_delayed):
            cfg = DecoupledConfig(
                n_work_items=1,
                kernel=GammaKernelConfig(
                    mt_params=MT521_PARAMS, limit_main=256,
                    use_delayed_counter=use_delayed,
                ),
                burst_words=2,
                channel=fast_channel,
            )
            return synthesize_report(cfg), DecoupledWorkItems(cfg).run()

        rep_fast, res_fast = run(True)
        rep_slow, res_slow = run(False)
        ii_ratio = rep_slow.main_loop().ii / rep_fast.main_loop().ii
        cycle_ratio = res_slow.cycles / res_fast.cycles
        assert cycle_ratio == pytest.approx(ii_ratio, rel=0.15)

    def test_report_resources_match_table2_model(self):
        from repro.resources import ResourceModel

        cfg = _config()
        report = synthesize_report(cfg)
        placement = ResourceModel().estimate("Config2", 1)
        static = ResourceModel().static_region
        assert report.resources_per_item["Slice"] == pytest.approx(
            placement.totals.slices - static.slices, rel=0.01
        )
