"""Tests for the DEPENDENCE-false pragma ablation (Listing 4)."""

import numpy as np
import pytest

from repro.core import (
    DataflowRegion,
    GlobalMemory,
    MemoryChannel,
    MemoryChannelConfig,
    Stream,
    TransferEngine,
)
from repro.core.transfer import DummySource


def _run(dependence_false, values=256, burst_words=2):
    memory = GlobalMemory(values // 16)
    channel = MemoryChannel(MemoryChannelConfig(setup_cycles=4, cycles_per_word=1),
                            memory)
    region = DataflowRegion("t")
    region.attach_memory_channel(channel)
    s = Stream("s", depth=8)
    region.add(DummySource("src", s, values))
    engine = TransferEngine(
        "eng", 0, s, channel,
        burst_words=burst_words,
        bursts_per_sector=values // (burst_words * 16),
        sectors=1,
        block_offset=values // 16,
        dependence_false=dependence_false,
    )
    region.add(engine)
    report = region.run()
    return report.cycles, memory


class TestDependencePragma:
    def test_default_is_paper_design(self):
        eng = TransferEngine(
            "e", 0, Stream("s"), MemoryChannel(),
            burst_words=1, bursts_per_sector=1, sectors=1, block_offset=1,
        )
        assert eng.dependence_false is True

    def test_without_pragma_packing_halves_throughput(self):
        fast, _ = _run(dependence_false=True)
        slow, _ = _run(dependence_false=False)
        assert slow > 1.6 * fast

    def test_data_identical_either_way(self):
        _, mem_fast = _run(dependence_false=True)
        _, mem_slow = _run(dependence_false=False)
        np.testing.assert_array_equal(
            mem_fast.as_float_array(), mem_slow.as_float_array()
        )

    def test_ii_constant(self):
        assert TransferEngine.NAIVE_PACK_II == 2
