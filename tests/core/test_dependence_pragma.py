"""Tests for the DEPENDENCE-false pragma ablation (Listing 4)."""

import numpy as np
import pytest

from repro.core import (
    DataflowRegion,
    GlobalMemory,
    MemoryChannel,
    MemoryChannelConfig,
    Stream,
    TransferEngine,
)
from repro.core.transfer import DummySource


CHANNEL_CONFIG = MemoryChannelConfig(setup_cycles=4, cycles_per_word=1)


def _run_full(dependence_false, values=256, burst_words=2):
    memory = GlobalMemory(values // 16)
    channel = MemoryChannel(CHANNEL_CONFIG, memory)
    region = DataflowRegion("t")
    region.attach_memory_channel(channel)
    s = Stream("s", depth=8)
    region.add(DummySource("src", s, values))
    engine = TransferEngine(
        "eng", 0, s, channel,
        burst_words=burst_words,
        bursts_per_sector=values // (burst_words * 16),
        sectors=1,
        block_offset=values // 16,
        dependence_false=dependence_false,
    )
    region.add(engine)
    report = region.run()
    return report, engine, memory


def _run(dependence_false, values=256, burst_words=2):
    report, _, memory = _run_full(dependence_false, values, burst_words)
    return report.cycles, memory


class TestDependencePragma:
    def test_default_is_paper_design(self):
        eng = TransferEngine(
            "e", 0, Stream("s"), MemoryChannel(),
            burst_words=1, bursts_per_sector=1, sectors=1, block_offset=1,
        )
        assert eng.dependence_false is True

    def test_without_pragma_packing_halves_throughput(self):
        fast, _ = _run(dependence_false=True)
        slow, _ = _run(dependence_false=False)
        assert slow > 1.6 * fast

    def test_data_identical_either_way(self):
        _, mem_fast = _run(dependence_false=True)
        _, mem_slow = _run(dependence_false=False)
        np.testing.assert_array_equal(
            mem_fast.as_float_array(), mem_slow.as_float_array()
        )

    def test_ii_constant(self):
        assert TransferEngine.NAIVE_PACK_II == 2


class TestBubbleAccounting:
    """Regression: TLOOP II bubbles used to be booked as stall cycles
    while the tick reported progress — utilization and deadlock
    detection disagreed about the same cycle.  Bubbles now land in the
    dedicated ``pipeline_cycles`` bucket."""

    VALUES = 256
    BURST_WORDS = 2

    def test_buckets_disjoint_and_complete(self):
        _, engine, _ = _run_full(dependence_false=False)
        st = engine.stats
        assert st.cycles == (
            st.active_cycles + st.stall_cycles + st.pipeline_cycles
        )

    def test_ii2_pipeline_bucket_closed_form(self):
        """One bubble per packed value; the last one never drains
        because the engine observes its final burst and finishes."""
        _, engine, _ = _run_full(dependence_false=False)
        bursts = self.VALUES // (self.BURST_WORDS * 16)
        assert engine.stats.pipeline_cycles == self.VALUES - 1
        assert engine.stats.active_cycles == self.VALUES + bursts

    def test_ii1_has_no_pipeline_cycles(self):
        _, engine, _ = _run_full(dependence_false=True)
        assert engine.stats.pipeline_cycles == 0

    def test_utilization_matches_ii2_closed_form(self):
        from repro.core.memory import transfer_only_cycles

        report, engine, _ = _run_full(dependence_false=False)
        closed = transfer_only_cycles(
            self.VALUES, 1, self.BURST_WORDS, CHANNEL_CONFIG,
            pack_cycles_per_value=TransferEngine.NAIVE_PACK_II,
        )
        assert report.cycles == pytest.approx(closed, abs=2)
        bursts = self.VALUES // (self.BURST_WORDS * 16)
        assert engine.stats.utilization == pytest.approx(
            (self.VALUES + bursts) / closed, rel=0.01
        )
        # utilization halves versus the paper's II=1 design
        _, fast_engine, _ = _run_full(dependence_false=True)
        assert engine.stats.utilization < 0.6 * fast_engine.stats.utilization
