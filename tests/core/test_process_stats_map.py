"""Regression tests for the ``__memory_channel__`` legacy alias.

Seed-era callers addressed the single channel's stats as
``report.process_stats["__memory_channel__"]``.  Multi-channel reports
index channels (``__memory_channel_0__``, …) and keep the legacy key as
a *resolve-only* alias of channel 0: every read-style access works, but
the alias is never stored, so iteration and aggregation see channel 0
exactly once.
"""

import pytest

from repro.core.dataflow import LEGACY_CHANNEL_KEY, _ProcessStatsMap
from repro.core.kernel import GammaKernelConfig
from repro.core.pricing import PricingPipelineConfig, run_pricing_pipeline
from repro.core.decoupled import DecoupledConfig, DecoupledWorkItems


@pytest.fixture
def stats_map():
    return _ProcessStatsMap(
        {"GammaRNG0": "rng-stats", "__memory_channel_0__": "ch0-stats"}
    )


class TestAliasSurface:
    def test_getitem(self, stats_map):
        assert stats_map[LEGACY_CHANNEL_KEY] == "ch0-stats"
        assert stats_map[LEGACY_CHANNEL_KEY] is stats_map["__memory_channel_0__"]

    def test_getitem_missing_channel_raises(self):
        empty = _ProcessStatsMap({"GammaRNG0": "rng-stats"})
        with pytest.raises(KeyError):
            empty[LEGACY_CHANNEL_KEY]

    def test_get(self, stats_map):
        assert stats_map.get(LEGACY_CHANNEL_KEY) == "ch0-stats"
        assert stats_map.get("__no_such_key__", "fallback") == "fallback"
        no_channel = _ProcessStatsMap({"a": 1})
        assert no_channel.get(LEGACY_CHANNEL_KEY, "fallback") == "fallback"

    def test_contains(self, stats_map):
        assert LEGACY_CHANNEL_KEY in stats_map
        assert "__memory_channel_0__" in stats_map
        assert LEGACY_CHANNEL_KEY not in _ProcessStatsMap({"a": 1})

    def test_alias_not_stored(self, stats_map):
        assert LEGACY_CHANNEL_KEY not in list(stats_map)
        assert len(stats_map) == 2
        # aggregations over values() count channel 0 exactly once
        assert list(stats_map.values()).count("ch0-stats") == 1

    def test_pop_alias_pops_canonical(self, stats_map):
        assert stats_map.pop(LEGACY_CHANNEL_KEY) == "ch0-stats"
        assert "__memory_channel_0__" not in stats_map
        assert LEGACY_CHANNEL_KEY not in stats_map

    def test_pop_alias_default(self):
        empty = _ProcessStatsMap()
        assert empty.pop(LEGACY_CHANNEL_KEY, "fallback") == "fallback"
        with pytest.raises(KeyError):
            empty.pop(LEGACY_CHANNEL_KEY)

    def test_pop_ordinary_key(self, stats_map):
        assert stats_map.pop("GammaRNG0") == "rng-stats"
        with pytest.raises(KeyError):
            stats_map.pop("GammaRNG0")

    def test_setdefault_absent_stores_canonical(self):
        m = _ProcessStatsMap()
        assert m.setdefault(LEGACY_CHANNEL_KEY, "fresh") == "fresh"
        assert list(m) == ["__memory_channel_0__"]
        assert m[LEGACY_CHANNEL_KEY] == "fresh"

    def test_setdefault_present_returns_channel_zero(self, stats_map):
        assert (
            stats_map.setdefault(LEGACY_CHANNEL_KEY, "ignored") == "ch0-stats"
        )
        assert len(stats_map) == 2  # nothing stored under the alias

    def test_copy_is_alias_aware(self, stats_map):
        clone = stats_map.copy()
        assert isinstance(clone, _ProcessStatsMap)
        assert clone[LEGACY_CHANNEL_KEY] == "ch0-stats"
        assert clone == stats_map
        clone.pop(LEGACY_CHANNEL_KEY)
        assert stats_map[LEGACY_CHANNEL_KEY] == "ch0-stats"  # independent

    def test_plain_dict_copy_counts_channel_once(self, stats_map):
        plain = dict(stats_map)
        assert LEGACY_CHANNEL_KEY not in plain
        assert list(plain.values()).count("ch0-stats") == 1


class TestSeedEraCallPatterns:
    """The alias as real reports expose it, end to end."""

    def test_decoupled_kernel_report(self):
        report = DecoupledWorkItems(
            DecoupledConfig(
                n_work_items=1, kernel=GammaKernelConfig(limit_main=64)
            )
        ).run().report
        stats = report.process_stats
        assert stats[LEGACY_CHANNEL_KEY] is stats["__memory_channel_0__"]
        assert stats[LEGACY_CHANNEL_KEY].bursts > 0
        assert LEGACY_CHANNEL_KEY in stats

    def test_pipeline_report(self):
        report = run_pricing_pipeline(PricingPipelineConfig()).report
        stats = report.process_stats
        assert stats[LEGACY_CHANNEL_KEY] is stats["__memory_channel_0__"]

    def test_multi_channel_alias_is_channel_zero(self):
        report = run_pricing_pipeline(
            PricingPipelineConfig(n_channels=2, channel_affinity=(0, 1))
        ).report
        stats = report.process_stats
        assert stats[LEGACY_CHANNEL_KEY] is stats["__memory_channel_0__"]
        assert stats[LEGACY_CHANNEL_KEY] is not stats["__memory_channel_1__"]
