"""Tests for the stream-depth sizing advisor."""

import pytest

from repro.core import (
    DecoupledConfig,
    DecoupledWorkItems,
    GammaKernelConfig,
    MemoryChannelConfig,
    advise_stream_depth,
)
from repro.rng.mersenne import MT521_PARAMS


def _builder(depth):
    return DecoupledWorkItems(
        DecoupledConfig(
            n_work_items=2,
            kernel=GammaKernelConfig(mt_params=MT521_PARAMS, limit_main=128),
            burst_words=2,
            stream_depth=depth,
            channel=MemoryChannelConfig(setup_cycles=40, cycles_per_word=2),
        )
    ).region


class TestAdviseStreamDepth:
    @pytest.fixture(scope="class")
    def result(self):
        return advise_stream_depth(_builder, depths=(1, 2, 4, 8, 16, 32))

    def test_all_depths_measured(self, result):
        assert [p.depth for p in result.points] == [1, 2, 4, 8, 16, 32]

    def test_runtime_monotone_non_increasing(self, result):
        cycles = [p.cycles for p in result.points]
        assert all(b <= a for a, b in zip(cycles, cycles[1:]))

    def test_high_water_bounded_by_depth(self, result):
        for p in result.points:
            assert p.max_high_water <= p.depth

    def test_stalls_shrink_with_depth(self, result):
        assert result.points[0].total_write_stalls >= (
            result.points[-1].total_write_stalls
        )

    def test_recommendation_within_tolerance(self, result):
        best = result.points[-1].cycles
        chosen = next(
            p for p in result.points if p.depth == result.recommended_depth
        )
        assert chosen.cycles <= best * (1 + result.tolerance)

    def test_recommendation_is_minimal(self, result):
        best = result.points[-1].cycles
        for p in result.points:
            if p.depth >= result.recommended_depth:
                break
            assert p.cycles > best * (1 + result.tolerance)

    def test_table(self, result):
        rows = result.table()
        assert len(rows) == 6 and len(rows[0]) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            advise_stream_depth(_builder, depths=(4, 2))
        with pytest.raises(ValueError):
            advise_stream_depth(_builder, depths=(2,), tolerance=-1)


class TestMarkdownReporting:
    def test_to_markdown(self):
        from repro.harness.reporting import to_markdown

        md = to_markdown(["a", "b"], [[1, 2.5]], title="T")
        assert "**T**" in md
        assert "| a | b |" in md
        assert "| 1 | 2.50 |" in md
