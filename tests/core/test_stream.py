"""Tests for the hls::stream model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Stream, StreamEmpty, StreamFull
from repro.core.stream import StreamClosed


class TestBasics:
    def test_fifo_order(self):
        s = Stream("s", depth=4)
        for v in [1, 2, 3]:
            s.write(v)
        assert [s.read() for _ in range(3)] == [1, 2, 3]

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            Stream("s", depth=0)

    def test_default_depth_is_two(self):
        # HLS streams default to depth 2
        assert Stream("s").depth == 2

    def test_full_and_empty(self):
        s = Stream("s", depth=2)
        assert s.empty() and not s.full()
        s.write(1)
        s.write(2)
        assert s.full() and not s.empty()

    def test_write_full_raises(self):
        s = Stream("s", depth=1)
        s.write(1)
        with pytest.raises(StreamFull):
            s.write(2)

    def test_read_empty_raises(self):
        with pytest.raises(StreamEmpty):
            Stream("s").read()

    def test_peek(self):
        s = Stream("s")
        s.write(42)
        assert s.peek() == 42
        assert len(s) == 1
        assert s.read() == 42

    def test_peek_empty_raises(self):
        with pytest.raises(StreamEmpty):
            Stream("s").peek()

    def test_closed_write_raises(self):
        s = Stream("s")
        s.close()
        with pytest.raises(StreamClosed):
            s.write(1)

    def test_drained(self):
        s = Stream("s")
        s.write(1)
        s.close()
        assert not s.drained()
        s.read()
        assert s.drained()

    def test_drain_iterates_all(self):
        s = Stream("s", depth=8)
        for v in range(5):
            s.write(v)
        assert list(s.drain()) == [0, 1, 2, 3, 4]


class TestPolling:
    def test_can_write_counts_stalls(self):
        s = Stream("s", depth=1)
        s.write(1)
        assert not s.can_write()
        assert not s.can_write()
        assert s.write_stalls == 2

    def test_can_read_counts_stalls(self):
        s = Stream("s")
        assert not s.can_read()
        assert s.read_stalls == 1

    def test_successful_polls_not_counted(self):
        s = Stream("s")
        s.write(1)
        assert s.can_read()
        assert s.can_write()
        assert s.read_stalls == 0 and s.write_stalls == 0


class TestPollIdempotence:
    """Regression: the stall counters feed per-cycle analyses, so a
    process polling twice within one tick must count a single stall."""

    def test_double_write_poll_same_cycle_counts_once(self):
        s = Stream("s", depth=1)
        s.write(1)
        assert not s.can_write(cycle=3)
        assert not s.can_write(cycle=3)
        assert s.write_stalls == 1

    def test_double_read_poll_same_cycle_counts_once(self):
        s = Stream("s")
        assert not s.can_read(cycle=3)
        assert not s.can_read(cycle=3)
        assert s.read_stalls == 1

    def test_distinct_cycles_count_separately(self):
        s = Stream("s")
        for cycle in range(5):
            assert not s.can_read(cycle=cycle)
        assert s.read_stalls == 5

    def test_stalls_equal_stalled_cycles(self):
        """Even with multiple polls per cycle, stalls == stalled cycles."""
        s = Stream("s", depth=1)
        s.write(1)
        stalled_cycles = 0
        for cycle in range(10):
            polls = 1 + cycle % 3  # 1..3 polls in the same cycle
            blocked = [not s.can_write(cycle=cycle) for _ in range(polls)]
            if all(blocked):
                stalled_cycles += 1
        assert s.write_stalls == stalled_cycles == 10

    def test_legacy_cycleless_polls_still_count_each(self):
        s = Stream("s", depth=1)
        s.write(1)
        assert not s.can_write()
        assert not s.can_write()
        assert s.write_stalls == 2

    def test_credit_bulk_stalls(self):
        s = Stream("s", depth=1)
        s.write(1)
        assert not s.can_write(cycle=0)
        s.credit_write_stalls(5, last_cycle=5)
        assert s.write_stalls == 6
        # the stamp prevents double-counting at the window boundary
        assert not s.can_write(cycle=5)
        assert s.write_stalls == 6
        assert not s.can_write(cycle=6)
        assert s.write_stalls == 7
        empty = Stream("empty")
        assert not empty.can_read(cycle=0)
        empty.credit_read_stalls(3, last_cycle=2)
        assert empty.read_stalls == 4


class TestAccounting:
    def test_high_water(self):
        s = Stream("s", depth=8)
        for v in range(5):
            s.write(v)
        for _ in range(3):
            s.read()
        s.write(9)
        assert s.high_water == 5

    def test_totals(self):
        s = Stream("s", depth=4)
        for v in range(4):
            s.write(v)
        for _ in range(2):
            s.read()
        assert s.total_writes == 4 and s.total_reads == 2


@given(
    depth=st.integers(min_value=1, max_value=16),
    ops=st.lists(st.booleans(), max_size=200),
)
@settings(max_examples=100)
def test_prop_occupancy_bounded_and_fifo(depth, ops):
    """Under any poll-guarded write/read interleaving the occupancy stays
    in [0, depth] and tokens come out in order."""
    s = Stream("p", depth=depth)
    next_token = 0
    expected = 0
    for is_write in ops:
        if is_write:
            if s.can_write():
                s.write(next_token)
                next_token += 1
        else:
            if s.can_read():
                assert s.read() == expected
                expected += 1
        assert 0 <= s.occupancy <= depth
    assert s.total_writes - s.total_reads == s.occupancy
