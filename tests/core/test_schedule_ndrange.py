"""Tests for schedule tracing (Fig 3), NDRange mapping and multi-channel."""

import pytest

from repro.core import (
    DecoupledConfig,
    DecoupledWorkItems,
    MemoryChannelConfig,
    NDRangeMapping,
    equivalent_task_form,
    map_ndrange,
    trace_region,
)
from repro.harness.configs import CONFIGURATIONS
from repro.opencl import NDRange


def _dwi(n_work_items=3, limit_main=64, burst_words=1, **kw):
    return DecoupledWorkItems(
        DecoupledConfig(
            n_work_items=n_work_items,
            kernel=CONFIGURATIONS["Config2"].kernel_config(limit_main=limit_main),
            burst_words=burst_words,
            **kw,
        )
    )


class TestScheduleTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return trace_region(_dwi().region)

    def test_lane_per_process(self, trace):
        assert set(trace.lanes) == {
            "GammaRNG0", "GammaRNG1", "GammaRNG2",
            "Transfer0", "Transfer1", "Transfer2",
        }

    def test_lanes_cover_all_cycles(self, trace):
        for lane in trace.lanes.values():
            assert len(lane) == trace.cycles

    def test_all_work_items_start_together(self, trace):
        """Fig 3: 'all work-items are triggered at t0'."""
        for wid in range(3):
            assert trace.lanes[f"GammaRNG{wid}"][0] == "C"

    def test_transfers_phase_shift(self, trace):
        """Fig 3: 'at a later time t_X the work-items become shifted in
        time' — the first channel grants are staggered."""
        shifts = trace.phase_shift()
        assert len(set(shifts.values())) == len(shifts)  # all distinct

    def test_compute_overlaps_transfers(self, trace):
        assert trace.overlap_fraction() > 0.1

    def test_symbols_valid(self, trace):
        for lane in trace.lanes.values():
            assert set(lane) <= {"C", "T", "w", "."}

    def test_render_windows(self, trace):
        out = trace.render(max_width=20)
        assert "GammaRNG0" in out
        assert "|" in out

    def test_trace_report_matches_plain_run(self):
        a = _dwi().run()
        trace = trace_region(_dwi().region)
        assert trace.report.cycles == a.cycles

    def test_runaway_guard(self):
        with pytest.raises(RuntimeError):
            trace_region(_dwi().region, max_cycles=3)


class TestMultiChannel:
    def test_more_channels_never_slower(self):
        cycles = [
            _dwi(n_work_items=6, limit_main=256, burst_words=2,
                 n_channels=nc).run().cycles
            for nc in (1, 2, 4)
        ]
        assert cycles[1] < cycles[0]
        assert cycles[2] <= cycles[1]

    def test_results_identical_regardless_of_channels(self):
        import numpy as np

        a = _dwi(n_work_items=4, burst_words=2, n_channels=1).run()
        b = _dwi(n_work_items=4, burst_words=2, n_channels=2).run()
        np.testing.assert_allclose(a.gammas(), b.gammas())

    def test_channel_count_validated(self):
        with pytest.raises(ValueError):
            _dwi(n_channels=0)

    def test_per_channel_stats_reported(self):
        res = _dwi(n_work_items=4, n_channels=2).run()
        assert "__memory_channel_0__" in res.report.process_stats
        assert "__memory_channel_1__" in res.report.process_stats


class TestNDRangeMapping:
    def test_groups_per_cu(self):
        m = map_ndrange(NDRange(64, 8), compute_units=4)
        assert m.groups_per_cu == 2

    def test_groups_per_cu_ceil(self):
        m = map_ndrange(NDRange(72, 8), compute_units=4)
        assert m.groups_per_cu == 3

    def test_assignments_cover_all_groups(self):
        m = map_ndrange(NDRange(64, 8), compute_units=3)
        assigned = [g for groups in m.assignments().values() for g in groups]
        assert sorted(assigned) == sorted(NDRange(64, 8).work_groups())

    def test_cycles_scale_with_groups(self):
        few = map_ndrange(NDRange(64, 8), 8).cycles(10)
        many = map_ndrange(NDRange(64, 8), 2).cycles(10)
        assert many > few

    def test_task_equivalence_at_equal_pipelines(self):
        """§III-A: 'what directly affects the overall runtime is the
        number of pipelines (work-groups) instantiated in parallel'."""
        ndrange_form = map_ndrange(NDRange(4096, 64), compute_units=8)
        task_form = equivalent_task_form(ndrange_form)
        assert task_form.ndrange.work_group_size == 1  # localSize = 1
        assert task_form.fused
        a = ndrange_form.cycles(4)
        b = task_form.cycles(4)
        # same work at the same pipeline count; only the fill/flush
        # accounting differs (paid per group vs once per fused loop)
        assert b == pytest.approx(a, rel=0.15)
        assert b <= a  # fusing never loses

    def test_validation(self):
        with pytest.raises(ValueError):
            NDRangeMapping(NDRange(8, 8), compute_units=0)
        with pytest.raises(ValueError):
            NDRangeMapping(NDRange(8, 8), compute_units=1, ii=0)
        with pytest.raises(ValueError):
            map_ndrange(NDRange(8, 8), 1).cycles(0)
