"""Tests for the GammaRNG kernel process (Listing 2 semantics)."""

import numpy as np
import pytest
from scipy import stats

from repro.core import (
    GammaKernelConfig,
    GammaRNGProcess,
    NAIVE_EXIT_II,
    Stream,
)
from repro.rng import (
    MT521_PARAMS,
    MarsagliaBray,
    MarsagliaTsangGamma,
    MersenneTwister,
)


def _run_kernel(cfg, depth=10_000):
    """Run a kernel to completion against an effectively unbounded sink."""
    sink = Stream("g", depth=depth)
    k = GammaRNGProcess("k", 0, cfg, sink)
    cycle = 0
    while not k.done():
        k.tick(cycle)
        cycle += 1
        assert cycle < 10_000_000
    return k, sink, cycle


class TestConfigValidation:
    def test_unknown_transform(self):
        with pytest.raises(ValueError, match="transform"):
            GammaKernelConfig(transform="warp_shuffle")

    def test_empty_variances(self):
        with pytest.raises(ValueError):
            GammaKernelConfig(sector_variances=())

    def test_negative_variance(self):
        with pytest.raises(ValueError):
            GammaKernelConfig(sector_variances=(1.0, -2.0))

    def test_limit_max_below_limit_main(self):
        with pytest.raises(ValueError):
            GammaKernelConfig(limit_main=10, limit_max=5)

    def test_ii_from_exit_style(self):
        assert GammaKernelConfig().ii == 1
        assert GammaKernelConfig(use_delayed_counter=False).ii == NAIVE_EXIT_II

    def test_totals(self):
        cfg = GammaKernelConfig(sector_variances=(1.0, 2.0), limit_main=32)
        assert cfg.sectors == 2
        assert cfg.total_outputs == 64


class TestOutputQuota:
    @pytest.mark.parametrize("transform", ["marsaglia_bray", "icdf_fpga", "icdf_cuda"])
    def test_exact_quota_per_sector(self, transform):
        cfg = GammaKernelConfig(
            transform=transform,
            mt_params=MT521_PARAMS,
            sector_variances=(1.39, 0.7),
            limit_main=48,
        )
        k, sink, _ = _run_kernel(cfg)
        assert k.outputs_produced == cfg.total_outputs
        assert sink.total_writes == cfg.total_outputs

    def test_outputs_positive(self):
        cfg = GammaKernelConfig(mt_params=MT521_PARAMS, limit_main=64)
        k, sink, _ = _run_kernel(cfg)
        assert all(v > 0 for v in sink.drain())

    def test_limit_max_caps_attempts(self):
        # impossible quota with a tight cap: kernel must still terminate
        cfg = GammaKernelConfig(
            mt_params=MT521_PARAMS, limit_main=64, limit_max=70
        )
        k, _, _ = _run_kernel(cfg)
        assert k.attempts <= 70 * cfg.sectors + cfg.sectors

    def test_overrun_iterations_bounded_by_delay(self):
        cfg = GammaKernelConfig(
            transform="icdf_cuda",  # rejection-free -> deterministic overrun
            mt_params=MT521_PARAMS,
            limit_main=32,
            break_id=0,
        )
        k, _, _ = _run_kernel(cfg)
        # every sector overruns by exactly break_id + 1 iterations, and
        # gamma rejection may drop some of those overruns below ok
        assert k.overrun_iterations <= (cfg.break_id + 1) * cfg.sectors


class TestPipelineTiming:
    def test_ii1_cycles_close_to_attempts(self):
        cfg = GammaKernelConfig(mt_params=MT521_PARAMS, limit_main=128)
        k, _, cycles = _run_kernel(cfg)
        # II=1: one attempt per cycle plus sector bookkeeping cycles
        assert cycles <= k.attempts + 3 * cfg.sectors + 5

    def test_naive_exit_doubles_cycles(self):
        base = GammaKernelConfig(mt_params=MT521_PARAMS, limit_main=128, seed=5)
        slow = GammaKernelConfig(
            mt_params=MT521_PARAMS, limit_main=128, seed=5,
            use_delayed_counter=False,
        )
        _, _, fast_cycles = _run_kernel(base)
        _, _, slow_cycles = _run_kernel(slow)
        assert slow_cycles > 1.8 * fast_cycles

    def test_naive_mt_pays_bubbles_on_rejection(self):
        base = GammaKernelConfig(mt_params=MT521_PARAMS, limit_main=128, seed=5)
        naive = GammaKernelConfig(
            mt_params=MT521_PARAMS, limit_main=128, seed=5, adapted_mt=False
        )
        _, _, fast_cycles = _run_kernel(base)
        k, _, slow_cycles = _run_kernel(naive)
        assert slow_cycles > fast_cycles  # ~21.5 % of attempts gate mt_reject
        assert k.outputs_produced == k.config.total_outputs  # same function

    def test_backpressure_freezes_pipeline(self):
        cfg = GammaKernelConfig(mt_params=MT521_PARAMS, limit_main=16)
        sink = Stream("g", depth=1)  # tiny FIFO, nobody draining
        k = GammaRNGProcess("k", 0, cfg, sink)
        for cycle in range(2000):
            if k.done():
                break
            k.tick(cycle)
        assert not k.done()
        assert sink.full()
        # pipeline must not have over-produced into the void
        assert k.outputs_produced <= cfg.limit_main * cfg.sectors

    def test_backpressure_resume_loses_nothing(self):
        cfg = GammaKernelConfig(mt_params=MT521_PARAMS, limit_main=32)
        sink = Stream("g", depth=2)
        k = GammaRNGProcess("k", 0, cfg, sink)
        received = []
        cycle = 0
        while not k.done():
            k.tick(cycle)
            if cycle % 5 == 0 and sink.can_read():  # slow consumer
                received.append(sink.read())
            cycle += 1
        received.extend(sink.drain())
        assert received == k.produced


class TestStatisticalCorrectness:
    def test_gamma_distribution_from_pipeline(self):
        v = 1.39
        cfg = GammaKernelConfig(
            mt_params=MT521_PARAMS, sector_variances=(v,) * 4, limit_main=512
        )
        k, sink, _ = _run_kernel(cfg)
        samples = np.array(list(sink.drain()))
        p = stats.kstest(samples, "gamma", args=(1 / v, 0, v)).pvalue
        assert p > 1e-4

    def test_distinct_work_items_draw_distinct_streams(self):
        cfg = GammaKernelConfig(mt_params=MT521_PARAMS, limit_main=64)
        outs = []
        for wid in range(2):
            sink = Stream("g", depth=1000)
            k = GammaRNGProcess("k", wid, cfg, sink)
            cycle = 0
            while not k.done():
                k.tick(cycle)
                cycle += 1
            outs.append(list(sink.drain()))
        assert outs[0] != outs[1]

    def test_rejection_rate_mb_vs_icdf(self):
        """Section IV-E: the Marsaglia-Bray path rejects far more than the
        ICDF path — the driver of the Table III crossover."""
        mb_cfg = GammaKernelConfig(
            transform="marsaglia_bray", mt_params=MT521_PARAMS, limit_main=1024
        )
        icdf_cfg = GammaKernelConfig(
            transform="icdf_fpga", mt_params=MT521_PARAMS, limit_main=1024
        )
        k_mb, _, _ = _run_kernel(mb_cfg)
        k_icdf, _, _ = _run_kernel(icdf_cfg)
        assert k_mb.measured_rejection_rate > 0.15
        assert k_icdf.measured_rejection_rate < 0.10
        assert k_mb.measured_rejection_rate > 2 * k_icdf.measured_rejection_rate


class TestGoldenEquivalence:
    def test_pipeline_matches_host_reference(self):
        """The cycle-level kernel must reproduce, bit-for-bit, the host-side
        nested generator when fed the same seeds — proving the gating
        (Listing 3) discards nothing."""
        v = 1.39
        cfg = GammaKernelConfig(
            mt_params=MT521_PARAMS,
            sector_variances=(v,),
            limit_main=256,
            seed=777,
        )
        sink = Stream("g", depth=10000)
        k = GammaRNGProcess("k", 0, cfg, sink)
        cycle = 0
        while not k.done():
            k.tick(cycle)
            cycle += 1
        pipeline_out = np.array(list(sink.drain()))

        base = cfg.seed  # wid = 0
        mb = MarsagliaBray(
            MersenneTwister(MT521_PARAMS, seed=base + 1),
            MersenneTwister(MT521_PARAMS, seed=base + 2),
        )
        golden = MarsagliaTsangGamma(
            alpha=1 / v,
            normal_source=mb.attempt,
            mt_reject=MersenneTwister(MT521_PARAMS, seed=base + 3),
            mt_correct=MersenneTwister(MT521_PARAMS, seed=base + 4),
            scale=v,
        )
        golden_out = golden.samples(cfg.limit_main)
        np.testing.assert_allclose(pipeline_out, golden_out, rtol=1e-6)
