"""Tests for the Transfer engine (Listing 4) and the word packer."""

import numpy as np
import pytest

from repro.core import (
    DataflowRegion,
    GlobalMemory,
    MemoryChannel,
    MemoryChannelConfig,
    Stream,
    TransferEngine,
    DummySource,
    WordPacker,
)
from repro.fixedpoint import FLOATS_PER_WORD


class TestWordPacker:
    def test_flag_every_16th(self):
        p = WordPacker()
        flags = [p.push(float(i))[1] for i in range(32)]
        assert flags == [False] * 15 + [True] + [False] * 15 + [True]

    def test_word_contents(self):
        p = WordPacker()
        word = None
        for i in range(16):
            word, flag = p.push(float(i))
        raw = int(word)
        lanes = [(raw >> (32 * k)) & 0xFFFFFFFF for k in range(16)]
        floats = np.array(lanes, dtype=np.uint32).view(np.float32)
        np.testing.assert_array_equal(floats, np.arange(16, dtype=np.float32))

    def test_lane_counter_resets(self):
        p = WordPacker()
        for i in range(16):
            p.push(1.0)
        assert p.lane == 0


def _run_engine(n_values, burst_words, sectors=1, channel_cfg=None, wid=0,
                n_items=1):
    """Drive one dummy-source → engine pair and return (memory, report)."""
    values_per_burst = burst_words * FLOATS_PER_WORD
    bursts = n_values // values_per_burst
    words_per_item = bursts * burst_words * sectors
    memory = GlobalMemory(words_per_item * max(n_items, wid + 1))
    channel = MemoryChannel(channel_cfg or MemoryChannelConfig(), memory)
    region = DataflowRegion("t")
    region.attach_memory_channel(channel)
    stream = Stream("s", depth=8)

    class SeqSource(DummySource):
        def __init__(self, name, sink, count):
            super().__init__(name, sink, count)
            self._i = 0

        def tick(self, cycle):
            if self.remaining and self.sink.can_write():
                self.sink.write(float(self._i))
                self._i += 1
                self.remaining -= 1
                return self._account(True)
            return self._account(False)

    region.add(SeqSource("src", stream, n_values * sectors))
    engine = TransferEngine(
        "eng", wid, stream, channel,
        burst_words=burst_words,
        bursts_per_sector=bursts,
        sectors=sectors,
        block_offset=words_per_item,
    )
    region.add(engine)
    report = region.run()
    return memory, report, engine


class TestTransferEngine:
    def test_data_lands_in_memory_in_order(self):
        mem, _, _ = _run_engine(n_values=128, burst_words=2)
        np.testing.assert_array_equal(
            mem.read_floats(0, 128), np.arange(128, dtype=np.float32)
        )

    def test_wid_offset(self):
        mem, _, _ = _run_engine(n_values=64, burst_words=2, wid=1, n_items=2)
        # work-item 1 writes at blockOffset * 1
        block_words = 64 // FLOATS_PER_WORD
        np.testing.assert_array_equal(
            mem.read_floats(block_words, 64), np.arange(64, dtype=np.float32)
        )
        assert np.all(mem.read_floats(0, 64) == 0.0)

    def test_multi_sector_contiguous(self):
        mem, _, _ = _run_engine(n_values=64, burst_words=2, sectors=3)
        np.testing.assert_array_equal(
            mem.read_floats(0, 192), np.arange(192, dtype=np.float32)
        )

    def test_burst_count(self):
        _, _, engine = _run_engine(n_values=256, burst_words=4)
        assert engine.bursts_completed == 256 // (4 * FLOATS_PER_WORD)

    def test_block_offset_too_small_rejected(self):
        with pytest.raises(ValueError, match="cannot hold"):
            TransferEngine(
                "e", 0, Stream("s"), MemoryChannel(),
                burst_words=4, bursts_per_sector=2, sectors=1, block_offset=4,
            )

    @pytest.mark.parametrize("bad_kwargs", [
        dict(burst_words=0, bursts_per_sector=1, sectors=1, block_offset=64),
        dict(burst_words=1, bursts_per_sector=0, sectors=1, block_offset=64),
        dict(burst_words=1, bursts_per_sector=1, sectors=0, block_offset=64),
    ])
    def test_invalid_parameters(self, bad_kwargs):
        with pytest.raises(ValueError):
            TransferEngine("e", 0, Stream("s"), MemoryChannel(), **bad_kwargs)

    def test_engine_stalls_on_empty_stream(self):
        cfg = MemoryChannelConfig(setup_cycles=0, cycles_per_word=1)

        class Trickle(DummySource):
            def tick(self, cycle):
                if cycle % 3 == 0:
                    return super().tick(cycle)
                self._account(False)
                return True  # deliberately idle — time passing, not deadlock

        memory = GlobalMemory(2)
        channel = MemoryChannel(cfg, memory)
        region = DataflowRegion("t")
        region.attach_memory_channel(channel)
        s = Stream("s", depth=4)
        region.add(Trickle("src", s, 16))
        engine = TransferEngine(
            "eng", 0, s, channel,
            burst_words=1, bursts_per_sector=1, sectors=1, block_offset=1,
        )
        region.add(engine)
        region.run()
        assert engine.stats.stall_cycles > 0


class TestDummySource:
    def test_emits_exactly_count(self):
        s = Stream("s", depth=100)
        src = DummySource("d", s, 7)
        c = 0
        while not src.done():
            src.tick(c)
            c += 1
        assert s.total_writes == 7

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            DummySource("d", Stream("s"), -1)
