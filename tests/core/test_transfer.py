"""Tests for the Transfer engine (Listing 4) and the word packer."""

import numpy as np
import pytest

from repro.core import (
    DataflowRegion,
    GlobalMemory,
    MemoryChannel,
    MemoryChannelConfig,
    Stream,
    TransferEngine,
    DummySource,
    WordPacker,
)
from repro.fixedpoint import FLOATS_PER_WORD


class TestWordPacker:
    def test_flag_every_16th(self):
        p = WordPacker()
        flags = [p.push(float(i))[1] for i in range(32)]
        assert flags == [False] * 15 + [True] + [False] * 15 + [True]

    def test_word_contents(self):
        p = WordPacker()
        word = None
        for i in range(16):
            word, flag = p.push(float(i))
        raw = int(word)
        lanes = [(raw >> (32 * k)) & 0xFFFFFFFF for k in range(16)]
        floats = np.array(lanes, dtype=np.uint32).view(np.float32)
        np.testing.assert_array_equal(floats, np.arange(16, dtype=np.float32))

    def test_lane_counter_resets(self):
        p = WordPacker()
        for i in range(16):
            p.push(1.0)
        assert p.lane == 0


def _run_engine(n_values, burst_words, sectors=1, channel_cfg=None, wid=0,
                n_items=1):
    """Drive one dummy-source → engine pair and return (memory, report)."""
    values_per_burst = burst_words * FLOATS_PER_WORD
    bursts = n_values // values_per_burst
    words_per_item = bursts * burst_words * sectors
    memory = GlobalMemory(words_per_item * max(n_items, wid + 1))
    channel = MemoryChannel(channel_cfg or MemoryChannelConfig(), memory)
    region = DataflowRegion("t")
    region.attach_memory_channel(channel)
    stream = Stream("s", depth=8)

    class SeqSource(DummySource):
        def __init__(self, name, sink, count):
            super().__init__(name, sink, count)
            self._i = 0

        def tick(self, cycle):
            if self.remaining and self.sink.can_write():
                self.sink.write(float(self._i))
                self._i += 1
                self.remaining -= 1
                return self._account(True)
            return self._account(False)

    region.add(SeqSource("src", stream, n_values * sectors))
    engine = TransferEngine(
        "eng", wid, stream, channel,
        burst_words=burst_words,
        bursts_per_sector=bursts,
        sectors=sectors,
        block_offset=words_per_item,
    )
    region.add(engine)
    report = region.run()
    return memory, report, engine


class TestTransferEngine:
    def test_data_lands_in_memory_in_order(self):
        mem, _, _ = _run_engine(n_values=128, burst_words=2)
        np.testing.assert_array_equal(
            mem.read_floats(0, 128), np.arange(128, dtype=np.float32)
        )

    def test_wid_offset(self):
        mem, _, _ = _run_engine(n_values=64, burst_words=2, wid=1, n_items=2)
        # work-item 1 writes at blockOffset * 1
        block_words = 64 // FLOATS_PER_WORD
        np.testing.assert_array_equal(
            mem.read_floats(block_words, 64), np.arange(64, dtype=np.float32)
        )
        assert np.all(mem.read_floats(0, 64) == 0.0)

    def test_multi_sector_contiguous(self):
        mem, _, _ = _run_engine(n_values=64, burst_words=2, sectors=3)
        np.testing.assert_array_equal(
            mem.read_floats(0, 192), np.arange(192, dtype=np.float32)
        )

    def test_burst_count(self):
        _, _, engine = _run_engine(n_values=256, burst_words=4)
        assert engine.bursts_completed == 256 // (4 * FLOATS_PER_WORD)

    def test_block_offset_too_small_rejected(self):
        with pytest.raises(ValueError, match="cannot hold"):
            TransferEngine(
                "e", 0, Stream("s"), MemoryChannel(),
                burst_words=4, bursts_per_sector=2, sectors=1, block_offset=4,
            )

    @pytest.mark.parametrize("bad_kwargs", [
        dict(burst_words=0, bursts_per_sector=1, sectors=1, block_offset=64),
        dict(burst_words=1, bursts_per_sector=0, sectors=1, block_offset=64),
        dict(burst_words=1, bursts_per_sector=1, sectors=0, block_offset=64),
    ])
    def test_invalid_parameters(self, bad_kwargs):
        with pytest.raises(ValueError):
            TransferEngine("e", 0, Stream("s"), MemoryChannel(), **bad_kwargs)

    def test_engine_stalls_on_empty_stream(self):
        cfg = MemoryChannelConfig(setup_cycles=0, cycles_per_word=1)

        class Trickle(DummySource):
            def tick(self, cycle):
                if cycle % 3 == 0:
                    return super().tick(cycle)
                self._account(False)
                return True  # deliberately idle — time passing, not deadlock

        memory = GlobalMemory(2)
        channel = MemoryChannel(cfg, memory)
        region = DataflowRegion("t")
        region.attach_memory_channel(channel)
        s = Stream("s", depth=4)
        region.add(Trickle("src", s, 16))
        engine = TransferEngine(
            "eng", 0, s, channel,
            burst_words=1, bursts_per_sector=1, sectors=1, block_offset=1,
        )
        region.add(engine)
        region.run()
        assert engine.stats.stall_cycles > 0


class TestDummySource:
    def test_emits_exactly_count(self):
        s = Stream("s", depth=100)
        src = DummySource("d", s, 7)
        c = 0
        while not src.done():
            src.tick(c)
            c += 1
        assert s.total_writes == 7

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            DummySource("d", Stream("s"), -1)


class TestFastPathHints:
    """Units for the engine/source side of the cycle-skipping fast path."""

    def _engine(self, **kwargs):
        channel = MemoryChannel(
            MemoryChannelConfig(setup_cycles=2, cycles_per_word=1)
        )
        stream = Stream("s", depth=4)
        engine = TransferEngine(
            "eng", 0, stream, channel,
            burst_words=1, bursts_per_sector=2, sectors=1, block_offset=2,
            **kwargs,
        )
        return engine, stream, channel

    def test_starved_pack_is_conditional_no_self_event(self):
        from repro.core.process import NO_SELF_EVENT

        engine, stream, _ = self._engine()
        assert stream.empty()
        assert engine.next_event(5) == NO_SELF_EVENT

    def test_pack_with_data_gives_no_guarantee(self):
        engine, stream, _ = self._engine()
        stream.write(1.0)
        assert engine.next_event(0) is None

    def test_wait_burst_event_is_predicted_completion_plus_one(self):
        engine, stream, channel = self._engine()
        cycle = 0
        while engine._pending is None:
            if stream.can_write(cycle):
                stream.write(1.0)
            engine.tick(cycle)
            cycle += 1
        event = engine.next_event(cycle)
        assert event == channel.predict_done(engine._pending, cycle) + 1
        # skip right up to the event, then tick: the engine advances
        span = event - cycle
        engine.skip_cycles(cycle, span)
        channel.skip_cycles(cycle, span)
        assert engine._pending.done
        assert engine.tick(event)  # grant bookkeeping = progress

    def test_skip_matches_ticked_stall_accounting(self):
        ticked, t_stream, _ = self._engine()
        skipped, s_stream, _ = self._engine()
        for c in range(6):  # starved PACK on both
            ticked.tick(c)
        skipped.skip_cycles(0, 6)
        assert vars(ticked.stats) == vars(skipped.stats)
        assert t_stream.read_stalls == s_stream.read_stalls == 6

    def test_subclass_override_disables_hints(self):
        class CustomEngine(TransferEngine):
            def tick(self, cycle):
                return super().tick(cycle)

        engine, _, _ = self._engine()
        custom = CustomEngine(
            "c", 0, Stream("x"), MemoryChannel(),
            burst_words=1, bursts_per_sector=1, sectors=1, block_offset=1,
        )
        assert engine._hintable and not custom._hintable
        assert custom.next_event(0) is None

    def test_dummy_source_backpressure_hint(self):
        from repro.core.process import NO_SELF_EVENT

        sink = Stream("s", depth=1)
        src = DummySource("d", sink, 4)
        assert src.next_event(0) is None  # room to write: will act
        src.tick(0)
        assert sink.full()
        assert src.next_event(1) == NO_SELF_EVENT
        src.skip_cycles(1, 3)
        assert src.stats.stall_cycles == 3
        assert sink.write_stalls == 3
