"""Tests for the delayed-counter loop-exit workaround (Section III-B)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import NAIVE_EXIT_II, DelayedCounter


class TestBasics:
    def test_initial_state(self):
        c = DelayedCounter()
        assert c.value == 0 and c.delayed == 0

    def test_negative_break_id_rejected(self):
        with pytest.raises(ValueError):
            DelayedCounter(break_id=-1)

    def test_delay_is_break_id_plus_one(self):
        assert DelayedCounter(0).delay == 1
        assert DelayedCounter(3).delay == 4

    def test_break_id_zero_one_iteration_lag(self):
        """breakId = 0 'suffices ... meaning a delay of one cycle'."""
        c = DelayedCounter(break_id=0)
        c.shift()
        c.increment()
        assert c.value == 1
        assert c.delayed == 0  # not visible yet
        c.shift()
        assert c.delayed == 1  # visible one iteration later

    def test_deeper_delay_line(self):
        c = DelayedCounter(break_id=2)
        c.shift()
        c.increment()
        for expected in (0, 0, 1):
            c.shift()
            assert c.delayed in (0, 1)
        # after 3 shifts post-increment, the value must be visible
        assert c.delayed == 1

    def test_reset(self):
        c = DelayedCounter(1)
        c.shift()
        c.increment(5)
        c.reset()
        assert c.value == 0 and c.delayed == 0

    def test_increment_amount(self):
        c = DelayedCounter()
        c.increment(3)
        assert c.value == 3


class TestLoopSemantics:
    def _run_mainloop(self, break_id, limit_main, accept_pattern):
        """Emulate the MAINLOOP skeleton of Listing 2 and return
        (iterations, outputs)."""
        c = DelayedCounter(break_id)
        outputs = 0
        iterations = 0
        k = 0
        limit_max = 10_000
        while k < limit_max and c.delayed < limit_main:
            c.shift()
            ok = accept_pattern(k)
            if ok and c.value < limit_main:
                outputs += 1
                c.increment()
            iterations += 1
            k += 1
        return iterations, outputs

    def test_exact_output_quota_all_accept(self):
        iterations, outputs = self._run_mainloop(0, 10, lambda k: True)
        assert outputs == 10
        # exit observed one iteration late -> exactly delay extra iterations
        assert iterations == 10 + 1

    def test_overrun_bounded_by_delay(self):
        for break_id in range(4):
            iterations, outputs = self._run_mainloop(break_id, 8, lambda k: True)
            assert outputs == 8
            assert iterations == 8 + break_id + 1

    def test_quota_with_rejections(self):
        # accept every third attempt
        iterations, outputs = self._run_mainloop(0, 5, lambda k: k % 3 == 0)
        assert outputs == 5
        assert iterations >= 13  # ceil pattern: accepts at k=0,3,6,9,12

    def test_guard_prevents_extra_outputs(self):
        """The body guard (counter < limitMain) keeps the overrun
        iterations from emitting — the paper's correctness condition."""
        iterations, outputs = self._run_mainloop(3, 6, lambda k: True)
        assert outputs == 6  # never 6 + overrun


class TestNaiveExitConstant:
    def test_naive_ii_worse_than_workaround(self):
        assert NAIVE_EXIT_II > 1


@given(
    break_id=st.integers(min_value=0, max_value=5),
    limit=st.integers(min_value=1, max_value=40),
    pattern=st.lists(st.booleans(), min_size=400, max_size=400),
)
@settings(max_examples=60)
def test_prop_outputs_never_exceed_quota(break_id, limit, pattern):
    c = DelayedCounter(break_id)
    outputs = 0
    k = 0
    while k < len(pattern) and c.delayed < limit:
        c.shift()
        if pattern[k] and c.value < limit:
            outputs += 1
            c.increment()
        k += 1
    assert outputs <= limit
    # if enough accepts existed, the quota must be met exactly
    if sum(pattern) >= limit + break_id + 1 and outputs < limit:
        # loop ran out of pattern before filling the quota
        assert k == len(pattern)


@given(break_id=st.integers(min_value=0, max_value=6),
       increments=st.lists(st.booleans(), max_size=100))
@settings(max_examples=100)
def test_prop_delayed_equals_history(break_id, increments):
    """delayed == the value exactly (break_id + 1) shifts ago."""
    c = DelayedCounter(break_id)
    history = []
    for inc in increments:
        history.append(c.value)  # value at shift time
        c.shift()
        if inc:
            c.increment()
        lag = break_id + 1
        expected = history[-lag] if len(history) >= lag else 0
        assert c.delayed == expected
