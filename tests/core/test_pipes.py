"""Pipe-connected multi-region pipelines: wiring rules and runner
semantics (:mod:`repro.core.pipes`, :mod:`repro.core.pricing`)."""

import dataclasses

import numpy as np
import pytest

from repro.core.dataflow import DataflowRegion
from repro.core.fifo_sizing import advise_stream_depth
from repro.core.kernel import GammaKernelConfig
from repro.core.memory import GlobalMemory, MemoryChannel, MemoryChannelConfig
from repro.core.pipes import (
    MultiRegionRunner,
    Pipe,
    PipeError,
    PipelineGraph,
)
from repro.core.pricing import (
    PricingPipelineConfig,
    PricingProcess,
    build_fused_pricing_region,
    build_pricing_pipeline,
    run_pricing_pipeline,
)
from repro.core.stream import Stream
from repro.core.transfer import DummySource, TransferEngine


def _sink_region(name, stream, count=32):
    """A one-process region that drains ``stream`` via a burst engine."""
    memory = GlobalMemory(count // 16)
    channel = MemoryChannel(MemoryChannelConfig(), memory)
    region = DataflowRegion(name)
    region.add(
        TransferEngine(
            f"{name}_eng", 0, stream, channel,
            burst_words=1, bursts_per_sector=count // 16, sectors=1,
            block_offset=count // 16,
        )
    )
    region.attach_memory_channel(channel)
    return region


def _source_region(name, stream, count=32):
    region = DataflowRegion(name)
    region.add(DummySource(f"{name}_src", stream, count))
    return region


# ---------------------------------------------------------------------------
# wiring validation
# ---------------------------------------------------------------------------


class TestGraphValidation:
    def test_empty_pipeline_rejected(self):
        with pytest.raises(PipeError, match="no regions"):
            MultiRegionRunner(PipelineGraph()).run()

    def test_empty_region_rejected(self):
        graph = PipelineGraph()
        graph.add_region(DataflowRegion("empty"))
        with pytest.raises(PipeError, match="no processes"):
            graph._validate()

    def test_same_region_added_twice_rejected(self):
        graph = PipelineGraph()
        region = _source_region("a", Pipe("p"))
        graph.add_region(region)
        with pytest.raises(PipeError, match="added twice"):
            graph.add_region(region)

    def test_duplicate_region_name_rejected(self):
        graph = PipelineGraph()
        graph.add_region(_source_region("a", Pipe("p1")))
        with pytest.raises(PipeError, match="duplicate region name"):
            graph.add_region(_sink_region("a", Pipe("p2")))

    def test_duplicate_process_name_across_regions_rejected(self):
        graph = PipelineGraph()
        graph.add_region(_source_region("a", Pipe("p")))
        other = DataflowRegion("b")
        other.add(DummySource("a_src", Stream("s"), 8))  # clashes with a's
        graph.add_region(other)
        with pytest.raises(PipeError, match="duplicate process name"):
            graph._validate()

    def test_plain_stream_across_regions_rejected(self):
        stream = Stream("s", depth=4)
        graph = PipelineGraph()
        graph.add_region(_source_region("a", stream))
        graph.add_region(_sink_region("b", stream))
        with pytest.raises(PipeError, match="must be Pipes"):
            graph._validate()

    def test_intra_region_pipe_rejected(self):
        pipe = Pipe("p", depth=4)
        region = DataflowRegion("both_ends")
        region.add(DummySource("src", pipe, 16))
        memory = GlobalMemory(1)
        channel = MemoryChannel(MemoryChannelConfig(), memory)
        region.add(
            TransferEngine(
                "eng", 0, pipe, channel,
                burst_words=1, bursts_per_sector=1, sectors=1,
                block_offset=1,
            )
        )
        region.attach_memory_channel(channel)
        graph = PipelineGraph()
        graph.add_region(region)
        with pytest.raises(PipeError, match="both ends inside region"):
            graph._validate()

    def test_dangling_pipe_producer_only_rejected(self):
        graph = PipelineGraph()
        graph.add_region(_source_region("a", Pipe("p")))
        with pytest.raises(PipeError, match="no consumer"):
            graph._validate()

    def test_dangling_pipe_consumer_only_rejected(self):
        graph = PipelineGraph()
        graph.add_region(_sink_region("b", Pipe("p", depth=16), count=16))
        with pytest.raises(PipeError, match="no producer"):
            graph._validate()

    def test_region_cycle_rejected(self):
        """Two regions feeding each other is not a feed-forward DAG."""

        class Echo(DummySource):
            """Source that also nominally consumes a stream."""

            def __init__(self, name, sink, source, count):
                super().__init__(name, sink, count)
                self._source = source

            def inputs(self):
                return (self._source,)

        ab = Pipe("ab", depth=4)
        ba = Pipe("ba", depth=4)
        region_a = DataflowRegion("a")
        region_a.add(Echo("a_proc", ab, ba, 4))
        region_b = DataflowRegion("b")
        region_b.add(Echo("b_proc", ba, ab, 4))
        graph = PipelineGraph()
        graph.add_region(region_a)
        graph.add_region(region_b)
        with pytest.raises(PipeError, match="region cycle"):
            graph._validate()

    def test_valid_two_region_pipeline_passes(self):
        pipe = Pipe("p", depth=16)
        graph = PipelineGraph()
        graph.add_region(_source_region("a", pipe))
        graph.add_region(_sink_region("b", pipe))
        assert graph.pipes == (pipe,)
        assert len(graph.memory_channels) == 1

    def test_shared_channel_deduplicated(self):
        """A channel attached to two regions must appear once."""
        build = build_pricing_pipeline(
            PricingPipelineConfig()  # affinity (0, 0): one shared channel
        )
        assert len(build.graph.memory_channels) == 1

    def test_distinct_channels_kept(self):
        build = build_pricing_pipeline(
            PricingPipelineConfig(n_channels=2, channel_affinity=(0, 1))
        )
        assert len(build.graph.memory_channels) == 2


# ---------------------------------------------------------------------------
# runner semantics
# ---------------------------------------------------------------------------


class TestMultiRegionRunner:
    def test_simple_pipeline_completes(self):
        pipe = Pipe("p", depth=16)
        graph = PipelineGraph("simple")
        graph.add_region(_source_region("a", pipe))
        graph.add_region(_sink_region("b", pipe))
        report = MultiRegionRunner(graph).run()
        assert report.mode == "pipelined"
        assert report.cycles > 0
        assert set(report.region_reports) == {"a", "b"}
        assert report.pipe_stats["p"]["total_writes"] == 32

    def test_region_done_cycles_are_topological(self):
        result = run_pricing_pipeline(PricingPipelineConfig())
        done = result.report.region_done_cycles
        assert done["rng"] <= done["pricing"] <= done["aggregation"]
        assert done["aggregation"] == result.report.cycles

    def test_region_reports_end_at_region_done_cycle(self):
        result = run_pricing_pipeline(PricingPipelineConfig())
        for name, region_report in result.report.region_reports.items():
            assert (
                region_report.cycles
                == result.report.region_done_cycles[name]
            )

    def test_pipes_appear_in_stream_stats(self):
        result = run_pricing_pipeline(PricingPipelineConfig())
        stats = result.report.stream_stats
        assert "gammaPipe0" in stats and "pricedPipe0" in stats
        assert "rawStream0" in stats  # intra-region stream merged too

    def test_combined_process_stats_cover_every_region(self):
        cfg = PricingPipelineConfig()
        result = run_pricing_pipeline(cfg)
        names = set(result.report.process_stats)
        for wid in range(cfg.n_work_items):
            assert {
                f"GammaRNG{wid}",
                f"Pricer{wid}",
                f"Aggregate{wid}",
                f"Archive{wid}",
            } <= names
        assert "__memory_channel_0__" in names

    def test_legacy_channel_alias_on_pipeline_report(self):
        result = run_pricing_pipeline(PricingPipelineConfig())
        stats = result.report.process_stats
        assert (
            stats["__memory_channel__"] is stats["__memory_channel_0__"]
        )

    def test_runtime_conversion(self):
        result = run_pricing_pipeline(PricingPipelineConfig())
        assert result.report.runtime_ms(200e6) == pytest.approx(
            1e3 * result.report.cycles / 200e6
        )
        with pytest.raises(ValueError):
            result.report.runtime_seconds(0.0)

    def test_sequential_mode_sums_region_runs(self):
        result = run_pricing_pipeline(
            PricingPipelineConfig(), mode="sequential"
        )
        assert result.report.mode == "sequential"
        done = result.report.region_done_cycles
        assert done["aggregation"] == result.report.cycles
        # done cycles are cumulative: each stage finishes strictly after
        # the previous one (regions run back to back, never overlapping)
        assert 0 < done["rng"] < done["pricing"] < done["aggregation"]

    def test_pipelined_beats_sequential(self):
        pipelined = run_pricing_pipeline(PricingPipelineConfig())
        sequential = run_pricing_pipeline(
            PricingPipelineConfig(), mode="sequential"
        )
        assert pipelined.cycles < sequential.cycles

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            run_pricing_pipeline(PricingPipelineConfig(), mode="warp")


# ---------------------------------------------------------------------------
# numerical equivalence: pipelined == fused == sequential
# ---------------------------------------------------------------------------


class TestNumericalEquivalence:
    @pytest.fixture(scope="class")
    def results(self):
        cfg = PricingPipelineConfig()
        return {
            mode: run_pricing_pipeline(cfg, mode=mode)
            for mode in ("pipelined", "fused", "sequential")
        }

    def test_device_memory_identical(self, results):
        base = results["pipelined"].memory.as_float_array()
        for mode in ("fused", "sequential"):
            assert (
                base == results[mode].memory.as_float_array()
            ).all()

    def test_priced_and_raw_readbacks_identical(self, results):
        for mode in ("fused", "sequential"):
            assert np.array_equal(
                results["pipelined"].priced(), results[mode].priced()
            )
            assert np.array_equal(
                results["pipelined"].raw(), results[mode].raw()
            )

    def test_aggregate_totals_identical(self, results):
        base = results["pipelined"].aggregate_totals
        for mode in ("fused", "sequential"):
            assert results[mode].aggregate_totals == base

    def test_prices_match_payoff_of_raw(self, results):
        """Each archived variate prices to the matching payoff.

        The pricer evaluates the payoff on the full-precision variate
        before float32 storage, while ``raw()`` reads back the float32
        archive — so recomputing from the archive matches to float32
        epsilon, with the zero (out-of-the-money) lanes exact.
        """
        cfg = results["pipelined"].config
        raw = results["pipelined"].raw(0).astype(np.float64)
        priced = results["pipelined"].priced(0)
        expected = cfg.discount * np.maximum(raw - cfg.strike, 0.0)
        assert np.array_equal(priced == 0.0, expected == 0.0)
        # atol absorbs the cancellation near the strike, where the
        # float32 rounding of the variate dominates max(x - K, 0)
        assert np.allclose(priced, expected, rtol=1e-5, atol=1e-6)

    def test_fused_region_has_no_pipes(self, results):
        build = build_fused_pricing_region(PricingPipelineConfig())
        for proc in build.region.processes:
            for stream in (*proc.inputs(), *proc.outputs()):
                assert not isinstance(stream, Pipe)


# ---------------------------------------------------------------------------
# multi-channel affinity
# ---------------------------------------------------------------------------


class TestChannelAffinity:
    def test_two_channels_split_traffic(self):
        cfg = PricingPipelineConfig(n_channels=2, channel_affinity=(0, 1))
        result = run_pricing_pipeline(cfg)
        stats = [c.stats for c in result.build.channels]
        assert all(s.bursts > 0 for s in stats)

    def test_second_channel_speeds_up_transfer_bound_config(self):
        """The multi-channel EXPERIMENTS.md finding as pipeline config:
        a transfer-bound pipeline runs ~2x faster on two channels."""
        base = PricingPipelineConfig(
            n_work_items=4,
            kernel=GammaKernelConfig(limit_main=64),
            burst_words=2,
        )
        one = run_pricing_pipeline(base)
        two = run_pricing_pipeline(
            dataclasses.replace(
                base, n_channels=2, channel_affinity=(0, 1)
            )
        )
        speedup = one.cycles / two.cycles
        assert speedup > 1.75
        assert np.array_equal(one.priced(), two.priced())
        assert np.array_equal(one.raw(), two.raw())

    def test_affinity_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            PricingPipelineConfig(channel_affinity=(0, 1))  # n_channels=1

    def test_affinity_must_have_two_entries(self):
        with pytest.raises(ValueError, match="channel_affinity"):
            PricingPipelineConfig(n_channels=2, channel_affinity=(0,))


# ---------------------------------------------------------------------------
# pipe-depth sizing compatibility
# ---------------------------------------------------------------------------


class TestPipeDepthSizing:
    def test_advise_stream_depth_accepts_runner(self):
        """The single-region depth advisor consumes a MultiRegionRunner
        unchanged — PipelineReport exposes the same report surface."""
        cfg = PricingPipelineConfig()
        sizing = advise_stream_depth(
            lambda depth: build_pricing_pipeline(
                cfg, pipe_depth=depth
            ).runner,
            depths=(2, 8, 32),
        )
        assert sizing.recommended_depth in (2, 8, 32)
        assert [p.depth for p in sizing.points] == [2, 8, 32]
        assert all(p.cycles > 0 for p in sizing.points)

    def test_deeper_pipes_never_slower(self):
        cfg = PricingPipelineConfig(
            n_work_items=1, kernel=GammaKernelConfig(limit_main=64)
        )
        cycles = [
            build_pricing_pipeline(cfg, pipe_depth=d).runner.run().cycles
            for d in (1, 4, 64)
        ]
        assert cycles[0] >= cycles[1] >= cycles[2]


# ---------------------------------------------------------------------------
# PricingProcess unit behavior
# ---------------------------------------------------------------------------


class TestPricingProcess:
    def test_payoff(self):
        proc = PricingProcess(
            "p", 0, Stream("in"), Stream("a"), Stream("b"),
            count=4, strike=1.0, discount=0.5,
        )
        assert proc.price(3.0) == pytest.approx(1.0)
        assert proc.price(0.5) == 0.0  # out of the money

    def test_count_validation(self):
        with pytest.raises(ValueError, match="count"):
            PricingProcess(
                "p", 0, Stream("in"), Stream("a"), Stream("b"), count=0
            )

    def test_closes_sinks_when_done(self):
        source = Stream("in", depth=4)
        priced = Stream("a", depth=4)
        raw = Stream("b", depth=4)
        proc = PricingProcess("p", 0, source, priced, raw, count=2)
        source.write(2.0)
        source.write(3.0)
        cycle = 0
        while not proc.done():
            proc.tick(cycle)
            cycle += 1
        assert priced.closed and raw.closed
        assert proc.stats.iterations == 2

    def test_early_close_propagates(self):
        """A producer closing early (limit_max cap) terminates the
        pricer without deadlocking the downstream stages."""
        source = Stream("in", depth=4)
        priced = Stream("a", depth=4)
        raw = Stream("b", depth=4)
        proc = PricingProcess("p", 0, source, priced, raw, count=100)
        source.write(2.0)
        source.close()  # only one value ever arrives
        cycle = 0
        while not proc.done() and cycle < 50:
            proc.tick(cycle)
            cycle += 1
        assert proc.done()
        assert priced.closed and raw.closed
        assert proc.stats.iterations == 1
