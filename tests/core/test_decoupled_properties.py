"""Hypothesis invariants of the decoupled-work-items region.

Randomized configurations must always satisfy the design's contracts:
exact output quotas, device memory == produced values, no cross-item
interference, runtime bounded below by both the compute and the channel
bound.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    DecoupledConfig,
    DecoupledWorkItems,
    GammaKernelConfig,
    MemoryChannelConfig,
)
from repro.fixedpoint import FLOATS_PER_WORD
from repro.rng.mersenne import MT521_PARAMS

configs = st.builds(
    lambda n_wi, bursts, burst_words, sectors, depth, setup, cpw, seed: DecoupledConfig(
        n_work_items=n_wi,
        kernel=GammaKernelConfig(
            mt_params=MT521_PARAMS,
            limit_main=bursts * burst_words * FLOATS_PER_WORD,
            sector_variances=(1.39,) * sectors,
            seed=seed,
        ),
        burst_words=burst_words,
        stream_depth=depth,
        channel=MemoryChannelConfig(setup_cycles=setup, cycles_per_word=cpw),
    ),
    n_wi=st.integers(min_value=1, max_value=4),
    bursts=st.integers(min_value=1, max_value=3),
    burst_words=st.sampled_from([1, 2, 4]),
    sectors=st.integers(min_value=1, max_value=2),
    depth=st.sampled_from([1, 2, 8, 32]),
    setup=st.integers(min_value=0, max_value=60),
    cpw=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=1, max_value=10_000),
)


@given(cfg=configs)
@settings(max_examples=25, deadline=None)
def test_prop_output_quota_exact(cfg):
    res = DecoupledWorkItems(cfg).run()
    for kernel in res.kernels:
        assert kernel.outputs_produced == cfg.kernel.total_outputs


@given(cfg=configs)
@settings(max_examples=25, deadline=None)
def test_prop_memory_equals_produced(cfg):
    res = DecoupledWorkItems(cfg).run()
    for wid, kernel in enumerate(res.kernels):
        np.testing.assert_allclose(
            res.gammas(wid),
            np.array(kernel.produced, dtype=np.float32),
            rtol=1e-6,
        )


@given(cfg=configs)
@settings(max_examples=25, deadline=None)
def test_prop_runtime_at_least_both_bounds(cfg):
    res = DecoupledWorkItems(cfg).run()
    slowest_kernel_attempts = max(k.attempts for k in res.kernels)
    total_words = cfg.total_words
    bursts = total_words // cfg.burst_words
    channel_bound = bursts * cfg.channel.burst_cycles(cfg.burst_words)
    assert res.cycles >= slowest_kernel_attempts  # II = 1 floor
    assert res.cycles >= channel_bound / max(cfg.n_channels, 1)


@given(cfg=configs, seed2=st.integers(min_value=10_001, max_value=20_000))
@settings(max_examples=15, deadline=None)
def test_prop_schedule_independent_of_values(cfg, seed2):
    """Decoupling invariant: kernel *data* changes (different seeds)
    leave every work-item's output count and memory layout intact."""
    res_a = DecoupledWorkItems(cfg).run()
    cfg_b = DecoupledConfig(
        n_work_items=cfg.n_work_items,
        kernel=GammaKernelConfig(
            mt_params=cfg.kernel.mt_params,
            limit_main=cfg.kernel.limit_main,
            sector_variances=cfg.kernel.sector_variances,
            seed=seed2,
        ),
        burst_words=cfg.burst_words,
        stream_depth=cfg.stream_depth,
        channel=cfg.channel,
    )
    res_b = DecoupledWorkItems(cfg_b).run()
    assert res_a.gammas().shape == res_b.gammas().shape
    for ka, kb in zip(res_a.kernels, res_b.kernels):
        assert ka.outputs_produced == kb.outputs_produced
