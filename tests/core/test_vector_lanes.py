"""Differential bit-identity: vectorized lanes vs the scalar kernel.

The contract of :mod:`repro.core.lanes` is *bit-for-bit equivalence*:
``DecoupledConfig(vector_lanes=True)`` must produce the same device
memory contents, the same ``RegionReport`` (cycles, per-process
buckets, stream counters), the same RNG statistics, and the same
produced values as the scalar ``GammaRNGProcess`` — across sector
counts, exit-condition styles, gated-MT ablations, ``break_id`` depths,
and Mersenne-Twister parameterizations.
"""

import dataclasses

import pytest

from repro.core.decoupled import DecoupledConfig, DecoupledWorkItems
from repro.core.kernel import GammaKernelConfig
from repro.core.lanes import GammaLaneStream, VectorGammaRNGProcess
from repro.core.stream import Stream
from repro.rng.mersenne import MT521_PARAMS

from .test_fastpath_equivalence import channel_fields, report_fields

LANE_CONFIGS = {
    "default": DecoupledConfig(
        n_work_items=3, kernel=GammaKernelConfig(limit_main=64)
    ),
    "multi_sector": DecoupledConfig(
        n_work_items=2,
        kernel=GammaKernelConfig(limit_main=64, sector_variances=(1.39, 0.5, 2.0)),
    ),
    "low_variance_unboosted": DecoupledConfig(
        n_work_items=2,
        kernel=GammaKernelConfig(limit_main=64, sector_variances=(0.7,)),
    ),
    "naive_exit": DecoupledConfig(
        n_work_items=2,
        kernel=GammaKernelConfig(limit_main=64, use_delayed_counter=False),
    ),
    "naive_mt": DecoupledConfig(
        n_work_items=2,
        kernel=GammaKernelConfig(limit_main=64, adapted_mt=False),
    ),
    "break_id2": DecoupledConfig(
        n_work_items=2, kernel=GammaKernelConfig(limit_main=64, break_id=2)
    ),
    "depth1_streams": DecoupledConfig(
        n_work_items=2, kernel=GammaKernelConfig(limit_main=64), stream_depth=1
    ),
    "two_channels": DecoupledConfig(
        n_work_items=4, kernel=GammaKernelConfig(limit_main=64), n_channels=2
    ),
    "mt521": DecoupledConfig(
        n_work_items=2,
        kernel=GammaKernelConfig(limit_main=64, mt_params=MT521_PARAMS),
    ),
    "mt_family": DecoupledConfig(
        n_work_items=2,
        kernel=GammaKernelConfig(
            limit_main=64, mt_params=MT521_PARAMS, mt_family=True
        ),
    ),
}


def run_pair(config, fast_path=True):
    scalar = DecoupledWorkItems(config)
    vector = DecoupledWorkItems(
        dataclasses.replace(config, vector_lanes=True)
    )
    return (
        (scalar, scalar.run(fast_path=fast_path)),
        (vector, vector.run(fast_path=fast_path)),
    )


@pytest.mark.parametrize("name", sorted(LANE_CONFIGS))
def test_lane_configs_bit_identical(name):
    (s_items, s_res), (v_items, v_res) = run_pair(LANE_CONFIGS[name])
    assert report_fields(s_res.report) == report_fields(v_res.report)
    assert channel_fields(s_items.region) == channel_fields(v_items.region)
    assert (
        s_res.memory.as_float_array() == v_res.memory.as_float_array()
    ).all()
    for s_k, v_k in zip(s_items.kernels, v_items.kernels):
        assert s_k.produced == v_k.produced  # exact float equality
        assert (s_k.attempts, s_k.accepts, s_k.overrun_iterations) == (
            v_k.attempts,
            v_k.accepts,
            v_k.overrun_iterations,
        )
        assert s_k.measured_rejection_rate == v_k.measured_rejection_rate


def test_gated_twister_statistics_identical():
    """steps/held of every facade twister match the scalar gating."""
    (s_items, _), (v_items, _) = run_pair(LANE_CONFIGS["default"])
    for s_k, v_k in zip(s_items.kernels, v_items.kernels):
        for role in ("mt_norm_a", "mt_norm_b", "mt_reject", "mt_correct"):
            s_mt, v_mt = getattr(s_k, role), getattr(v_k, role)
            assert (s_mt.steps, s_mt.held) == (v_mt.steps, v_mt.held)
            assert s_mt.hold_fraction == v_mt.hold_fraction


def test_vector_lanes_on_reference_loop_identical():
    """Bit-identity holds on the reference loop too (no fast path)."""
    (s_items, s_res), (v_items, v_res) = run_pair(
        LANE_CONFIGS["default"], fast_path=False
    )
    assert report_fields(s_res.report) == report_fields(v_res.report)
    assert s_items.region.skipped_cycles == 0
    assert v_items.region.skipped_cycles == 0


def test_vector_process_keeps_fast_path_hints():
    """The overridden tick re-arms the inherited hints: runs still skip."""
    vector = DecoupledWorkItems(
        dataclasses.replace(LANE_CONFIGS["depth1_streams"], vector_lanes=True)
    )
    vector.run()
    assert vector.region.skipped_cycles > 0


def test_vector_lanes_instrumented_run_consistent():
    from repro.obs.stall import StallAttribution

    vector = DecoupledWorkItems(
        dataclasses.replace(LANE_CONFIGS["default"], vector_lanes=True)
    )
    attribution = StallAttribution(vector.region.name)
    report = vector.region.run(attribution=attribution)
    assert report.stall_report.consistent_with(report.process_stats) == []


def test_vector_lanes_rejects_other_transforms():
    with pytest.raises(ValueError, match="marsaglia_bray"):
        DecoupledConfig(
            n_work_items=1,
            kernel=GammaKernelConfig(transform="icdf_fpga", limit_main=64),
            vector_lanes=True,
        )
    with pytest.raises(ValueError, match="marsaglia_bray"):
        GammaLaneStream(
            GammaKernelConfig(transform="box_muller", limit_main=64), ()
        )


def test_vector_process_direct_construction():
    """The process is usable standalone, like GammaRNGProcess."""
    sink = Stream("out", depth=4)
    proc = VectorGammaRNGProcess(
        "k", 0, GammaKernelConfig(limit_main=64), sink
    )
    cycle = 0
    while not proc.done():
        proc.tick(cycle)
        while not sink.empty():
            sink.read()
        cycle += 1
    assert proc.outputs_produced == 64
    assert len(proc.produced) == 64
