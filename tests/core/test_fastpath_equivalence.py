"""Differential equivalence: cycle-skipping fast path vs reference loop.

The fast path's contract is *bit-for-bit accounting equivalence*: for
any region, ``run(fast_path=True)`` must produce a ``RegionReport``
that is field-for-field identical to ``run(fast_path=False)`` — same
cycle count, same per-process cycle buckets, same stream stall/total
counters, same channel stats, same device-memory contents — while
jumping over the dead windows the reference loop ticks through.

Every paper-figure configuration goes through both paths here:

* Fig 3 — the decoupled work-items kernel (several knob settings),
* Fig 7 — the transfers-only region over a burst-length × work-item
  grid,
* Table 3 — the four Table I configurations at reduced scale,

plus the abort paths (deadlock, max-cycles runaway) and the ablation
knobs that change cycle accounting (``dependence_false``,
``use_delayed_counter``, ``adapted_mt``).
"""

import pytest

from repro.core.dataflow import DataflowRegion, DeadlockError
from repro.core.decoupled import (
    DecoupledConfig,
    DecoupledWorkItems,
    build_transfer_only_region,
)
from repro.core.kernel import GammaKernelConfig
from repro.core.memory import GlobalMemory, MemoryChannel, MemoryChannelConfig
from repro.core.stream import Stream
from repro.core.transfer import DummySource, TransferEngine
from repro.harness.configs import CONFIGURATIONS


def report_fields(report):
    """Every RegionReport field, flattened to plain comparable values."""
    return {
        "cycles": report.cycles,
        "process_stats": {
            name: vars(stats) for name, stats in report.process_stats.items()
        },
        "stream_stats": report.stream_stats,
        "stall_report": report.stall_report,
    }


def channel_fields(region):
    return [vars(ch.stats) for ch in region.memory_channels]


def run_both_transfer_only(**kwargs):
    """Build the Fig 7 region twice and run each path once."""
    out = []
    for fast in (False, True):
        region, memory, _channel = build_transfer_only_region(**kwargs)
        report = region.run(fast_path=fast)
        out.append((region, memory, report))
    return out


# ---------------------------------------------------------------------------
# Fig 7: transfers-only grid
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("burst_words", [1, 2, 4])
@pytest.mark.parametrize("n_work_items", [1, 3, 6])
def test_fig7_grid_identical_reports(burst_words, n_work_items):
    (ref_region, ref_mem, ref_rep), (fp_region, fp_mem, fp_rep) = (
        run_both_transfer_only(
            n_work_items=n_work_items,
            values_per_item=512,
            burst_words=burst_words,
            stream_depth=2,
        )
    )
    assert report_fields(ref_rep) == report_fields(fp_rep)
    assert channel_fields(ref_region) == channel_fields(fp_region)
    assert (ref_mem.as_float_array() == fp_mem.as_float_array()).all()
    # the reference loop never skips; the fast path must actually skip
    assert ref_region.skipped_cycles == 0
    assert fp_region.skipped_cycles > 0


def test_fig7_deep_streams_identical():
    (_, _, ref_rep), (fp_region, _, fp_rep) = run_both_transfer_only(
        n_work_items=4, values_per_item=1024, burst_words=4, stream_depth=16
    )
    assert report_fields(ref_rep) == report_fields(fp_rep)
    assert fp_region.skipped_cycles > 0


# ---------------------------------------------------------------------------
# Fig 3: the decoupled kernel
# ---------------------------------------------------------------------------


def run_both_decoupled(config, max_cycles=100_000_000):
    out = []
    for fast in (False, True):
        items = DecoupledWorkItems(config)
        result = items.run(max_cycles=max_cycles, fast_path=fast)
        out.append((items, result))
    return out


FIG3_CONFIGS = {
    "default": DecoupledConfig(
        n_work_items=3, kernel=GammaKernelConfig(limit_main=64)
    ),
    "channel_bound": DecoupledConfig(
        n_work_items=4,
        kernel=GammaKernelConfig(limit_main=64),
        burst_words=1,
        stream_depth=2,
    ),
    "depth1_streams": DecoupledConfig(
        n_work_items=2,
        kernel=GammaKernelConfig(limit_main=64),
        stream_depth=1,
    ),
    "multi_sector": DecoupledConfig(
        n_work_items=2,
        kernel=GammaKernelConfig(
            limit_main=64, sector_variances=(1.39, 0.5, 2.0)
        ),
    ),
    "two_channels": DecoupledConfig(
        n_work_items=4, kernel=GammaKernelConfig(limit_main=64), n_channels=2
    ),
    # accounting-sensitive ablations: II bubbles and gated-MT flushes
    "naive_exit": DecoupledConfig(
        n_work_items=2,
        kernel=GammaKernelConfig(limit_main=64, use_delayed_counter=False),
    ),
    "naive_mt": DecoupledConfig(
        n_work_items=2,
        kernel=GammaKernelConfig(limit_main=64, adapted_mt=False),
    ),
}


@pytest.mark.parametrize("name", sorted(FIG3_CONFIGS))
def test_fig3_configs_identical_reports(name):
    config = FIG3_CONFIGS[name]
    (ref_items, ref_res), (fp_items, fp_res) = run_both_decoupled(config)
    assert report_fields(ref_res.report) == report_fields(fp_res.report)
    assert channel_fields(ref_items.region) == channel_fields(fp_items.region)
    assert (ref_res.gammas() == fp_res.gammas()).all()
    assert fp_items.region.skipped_cycles > 0


def test_fig3_dependence_false_ablation_identical():
    """The II=2 TLOOP ablation flips engines into pipeline bubbles."""
    out = []
    for fast in (False, True):
        items = DecoupledWorkItems(
            DecoupledConfig(n_work_items=2, kernel=GammaKernelConfig(limit_main=64))
        )
        for engine in items.engines:
            engine.dependence_false = False
        out.append(items.run(fast_path=fast))
    ref_res, fp_res = out
    assert report_fields(ref_res.report) == report_fields(fp_res.report)
    # the bubbles land in the dedicated bucket on both paths
    assert all(
        ref_res.report.process_stats[e.name].pipeline_cycles > 0
        for e in ref_res.engines
    )


# ---------------------------------------------------------------------------
# Table 3: the four Table I configurations at reduced scale
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(CONFIGURATIONS))
def test_table3_configs_identical_reports(name):
    config = DecoupledConfig(
        n_work_items=2,
        kernel=CONFIGURATIONS[name].kernel_config(limit_main=64),
    )
    (ref_items, ref_res), (fp_items, fp_res) = run_both_decoupled(config)
    assert report_fields(ref_res.report) == report_fields(fp_res.report)
    assert (ref_res.gammas() == fp_res.gammas()).all()
    assert fp_items.region.skipped_cycles > 0


# ---------------------------------------------------------------------------
# abort paths: deadlock and max-cycles must be indistinguishable too
# ---------------------------------------------------------------------------


def build_starved_region():
    """Source supplies fewer values than one burst: the engine starves."""
    memory = GlobalMemory(16)
    channel = MemoryChannel(MemoryChannelConfig(), memory)
    region = DataflowRegion("starved")
    region.attach_memory_channel(channel)
    stream = Stream("s", depth=4)
    region.add(DummySource("src", stream, 8))  # burst needs 16 values
    region.add(
        TransferEngine(
            "eng", 0, stream, channel,
            burst_words=1, bursts_per_sector=1, sectors=1, block_offset=1,
        )
    )
    return region


def test_deadlock_identical_on_both_paths():
    messages, stats = [], []
    for fast in (False, True):
        region = build_starved_region()
        with pytest.raises(DeadlockError) as excinfo:
            region.run(fast_path=fast)
        messages.append(str(excinfo.value))
        stats.append({p.name: vars(p.stats) for p in region.processes})
    assert messages[0] == messages[1]
    assert stats[0] == stats[1]


@pytest.mark.parametrize("max_cycles", [137, 4999, 5000, 5001])
def test_max_cycles_abort_identical(max_cycles):
    """The runaway guard fires at the same cycle with the same stats,
    even when it lands mid-window (the fast path clamps its jumps)."""
    snap = []
    for fast in (False, True):
        region, _, _ = build_transfer_only_region(
            n_work_items=4, values_per_item=2048, burst_words=1, stream_depth=2
        )
        with pytest.raises(RuntimeError) as excinfo:
            region.run(max_cycles=max_cycles, fast_path=fast)
        snap.append(
            (
                str(excinfo.value),
                {p.name: vars(p.stats) for p in region.processes},
                channel_fields(region),
                {
                    s.name: vars(s.stats)
                    for p in region.processes
                    for s in (*p.inputs(), *p.outputs())
                },
                region.skipped_cycles if fast else None,
            )
        )
    ref, fast = snap
    assert ref[:4] == fast[:4]
    assert fast[4] > 0  # the guard interrupted a genuinely skipping run


# ---------------------------------------------------------------------------
# instrumented runs skip too — with identical attribution
# ---------------------------------------------------------------------------


def run_both_instrumented(build, keep_lanes=False, tracer=None):
    """Run ``build()``'s region through both instrumented paths."""
    from repro.obs.stall import StallAttribution

    out = []
    for fast in (False, True):
        region = build()
        attribution = StallAttribution(
            region.name,
            keep_lanes=keep_lanes,
            tracer=tracer() if tracer is not None else None,
        )
        report = region.run(attribution=attribution, fast_path=fast)
        out.append((region, attribution, report))
    return out


def test_instrumented_run_skips_and_matches_reference():
    def build():
        region, _, _ = build_transfer_only_region(
            n_work_items=2, values_per_item=512, burst_words=1, stream_depth=2
        )
        return region

    (ref_region, _, ref_rep), (fp_region, _, fp_rep) = run_both_instrumented(
        build
    )
    # the instrumented fast path genuinely skips now
    assert ref_region.skipped_cycles == 0
    assert fp_region.skipped_cycles > 0
    # ... with a field-for-field identical report and stall attribution
    assert report_fields(ref_rep) == report_fields(fp_rep)
    assert ref_rep.stall_report.to_dict() == fp_rep.stall_report.to_dict()
    for report in (ref_rep, fp_rep):
        assert report.stall_report.consistent_with(report.process_stats) == []


def test_instrumented_lanes_identical():
    """The per-cycle Fig 3 symbol lanes match cycle for cycle."""

    def build():
        region, _, _ = build_transfer_only_region(
            n_work_items=3, values_per_item=512, burst_words=2, stream_depth=2
        )
        return region

    (_, ref_att, _), (fp_region, fp_att, _) = run_both_instrumented(
        build, keep_lanes=True
    )
    assert fp_region.skipped_cycles > 0
    assert ref_att.lanes == fp_att.lanes


def test_instrumented_trace_spans_identical():
    """The exported Chrome trace is event-for-event identical."""
    from repro.obs.stall import reports_from_trace
    from repro.obs.tracer import ChromeTracer

    def build():
        region, _, _ = build_transfer_only_region(
            n_work_items=2, values_per_item=512, burst_words=1, stream_depth=2
        )
        return region

    (_, ref_att, _), (fp_region, fp_att, _) = run_both_instrumented(
        build, tracer=ChromeTracer
    )
    assert fp_region.skipped_cycles > 0
    ref_events = ref_att.tracer.to_dict()
    fp_events = fp_att.tracer.to_dict()
    assert ref_events == fp_events
    ref_reports = reports_from_trace(ref_events)
    fp_reports = reports_from_trace(fp_events)
    assert [r.to_dict() for r in ref_reports] == [
        r.to_dict() for r in fp_reports
    ]


@pytest.mark.parametrize(
    "name", ["default", "channel_bound", "depth1_streams", "naive_mt"]
)
def test_fig3_instrumented_fastpath_identical(name):
    from repro.obs.stall import StallAttribution

    config = FIG3_CONFIGS[name]
    reports, skipped = [], []
    for fast in (False, True):
        items = DecoupledWorkItems(config)
        attribution = StallAttribution(items.region.name, keep_lanes=True)
        report = items.region.run(attribution=attribution, fast_path=fast)
        reports.append((report, attribution.lanes))
        skipped.append(items.region.skipped_cycles)
    (ref_rep, ref_lanes), (fp_rep, fp_lanes) = reports
    assert report_fields(ref_rep) == report_fields(fp_rep)
    assert ref_lanes == fp_lanes
    assert skipped[0] == 0 and skipped[1] > 0
    assert fp_rep.stall_report.consistent_with(fp_rep.process_stats) == []


def test_traced_report_matches_fast_path_report():
    from repro.obs.stall import StallAttribution

    fields = []
    for instrumented in (True, False):
        region, _, _ = build_transfer_only_region(
            n_work_items=3, values_per_item=512, burst_words=2, stream_depth=2
        )
        if instrumented:
            report = region.run(attribution=StallAttribution(region.name))
            report.stall_report = None  # only the instrumented run has one
        else:
            report = region.run(fast_path=True)
        fields.append(report_fields(report))
    assert fields[0] == fields[1]


# ---------------------------------------------------------------------------
# opting out
# ---------------------------------------------------------------------------


def test_fast_path_false_is_pure_reference():
    region, _, _ = build_transfer_only_region(
        n_work_items=2, values_per_item=512, burst_words=1, stream_depth=2
    )
    region.run(fast_path=False)
    assert region.skipped_cycles == 0


def test_subclassed_tick_disables_hints():
    """A Process subclass overriding tick() must fall back to the
    reference loop (its inherited hints would lie about the new tick)."""

    class Throttled(DummySource):
        def tick(self, cycle):  # writes every other cycle
            if cycle % 2:
                return self._account(False)
            return super().tick(cycle)

    source = Throttled("src", Stream("s", depth=2), 8)
    assert source.next_event(0) is None


# ---------------------------------------------------------------------------
# pipe-connected topologies: the fast path must compose across regions
# ---------------------------------------------------------------------------

from repro.core.pipes import MultiRegionRunner, Pipe, PipelineGraph
from repro.core.pricing import PricingPipelineConfig, run_pricing_pipeline


def pipeline_report_fields(report):
    """Every PipelineReport field, flattened to plain comparable values."""
    return {
        "cycles": report.cycles,
        "mode": report.mode,
        "region_done_cycles": report.region_done_cycles,
        "pipe_stats": report.pipe_stats,
        "process_stats": {
            name: vars(stats) for name, stats in report.process_stats.items()
        },
        "region_reports": {
            name: report_fields(rep)
            for name, rep in report.region_reports.items()
        },
        "stream_stats": report.stream_stats,
    }


PIPELINE_CONFIGS = {
    "default": PricingPipelineConfig(),
    "shallow_pipes": PricingPipelineConfig(pipe_depth=2, stream_depth=2),
    "two_channels": PricingPipelineConfig(
        n_channels=2, channel_affinity=(0, 1)
    ),
    "multi_sector": PricingPipelineConfig(
        kernel=GammaKernelConfig(
            limit_main=64, sector_variances=(1.39, 0.5)
        )
    ),
    "four_items": PricingPipelineConfig(n_work_items=4),
}


@pytest.mark.parametrize("name", sorted(PIPELINE_CONFIGS))
def test_pipeline_identical_reports(name):
    config = PIPELINE_CONFIGS[name]
    ref = run_pricing_pipeline(config, fast_path=False)
    fp = run_pricing_pipeline(config, fast_path=True)
    assert pipeline_report_fields(ref.report) == pipeline_report_fields(
        fp.report
    )
    assert [vars(c.stats) for c in ref.build.channels] == [
        vars(c.stats) for c in fp.build.channels
    ]
    assert (
        ref.memory.as_float_array() == fp.memory.as_float_array()
    ).all()
    assert ref.skipped_cycles == 0
    assert fp.skipped_cycles > 0


def build_starved_pipeline():
    """Producer region supplies fewer values than one burst: the
    consumer region's engine starves — a deadlock spanning two regions."""
    memory = GlobalMemory(16)
    channel = MemoryChannel(MemoryChannelConfig(), memory)
    pipe = Pipe("p", depth=4)
    producer = DataflowRegion("producer")
    producer.add(DummySource("src", pipe, 8))  # burst needs 16 values
    consumer = DataflowRegion("consumer")
    consumer.add(
        TransferEngine(
            "eng", 0, pipe, channel,
            burst_words=1, bursts_per_sector=1, sectors=1, block_offset=1,
        )
    )
    consumer.attach_memory_channel(channel)
    graph = PipelineGraph("starved_pipeline")
    graph.add_region(producer)
    graph.add_region(consumer)
    return MultiRegionRunner(graph)


def test_cross_region_deadlock_identical_on_both_paths():
    messages, stats = [], []
    for fast in (False, True):
        runner = build_starved_pipeline()
        with pytest.raises(DeadlockError) as excinfo:
            runner.run(fast_path=fast)
        messages.append(str(excinfo.value))
        stats.append(
            {
                p.name: vars(p.stats)
                for r in runner.graph.regions
                for p in r.processes
            }
        )
    assert messages[0] == messages[1]
    # the finished producer region is omitted; the stuck one is named
    assert "starved_pipeline" in messages[0]
    assert "region 'consumer'" in messages[0]
    assert stats[0] == stats[1]


@pytest.mark.parametrize("max_cycles", [100, 137, 350, 437])
def test_pipeline_max_cycles_abort_identical(max_cycles):
    """The runaway guard fires at the same cycle with the same stats
    across both paths, even mid-window, with the abort spanning regions
    (stage two and three are still live when the guard fires)."""
    config = PIPELINE_CONFIGS["default"]
    snap = []
    for fast in (False, True):
        result_stats = None
        from repro.core.pricing import build_pricing_pipeline

        build = build_pricing_pipeline(config)
        runner = build.runner
        with pytest.raises(RuntimeError) as excinfo:
            runner.run(max_cycles=max_cycles, fast_path=fast)
        result_stats = {
            p.name: vars(p.stats)
            for r in runner.graph.regions
            for p in r.processes
        }
        streams = {
            s.name: vars(s.stats)
            for r in runner.graph.regions
            for p in r.processes
            for s in (*p.inputs(), *p.outputs())
        }
        snap.append(
            (
                str(excinfo.value),
                result_stats,
                [vars(c.stats) for c in build.channels],
                streams,
                runner.skipped_cycles if fast else None,
            )
        )
    ref, fast = snap
    assert ref[:4] == fast[:4]
    if max_cycles > 137:
        # below ~100 cycles the RNG stage keeps every region live, so
        # there is no dead window yet; past that the guard must have
        # interrupted a genuinely skipping run
        assert fast[4] > 0
