"""Tests for the lockstep divergence/straggler mathematics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.devices import (
    attempt_cycles_decoupled,
    attempt_cycles_lockstep,
    attempt_profile,
    divergence_factor,
    expected_max_geometric,
    partition_branch_probability,
    straggler_factor,
)


class TestBranchProbability:
    def test_certain_branch(self):
        assert partition_branch_probability(1.0, 32) == 1.0

    def test_never_branch(self):
        assert partition_branch_probability(0.0, 32) == 0.0

    def test_width_one_is_lane_probability(self):
        assert partition_branch_probability(0.3, 1) == pytest.approx(0.3)

    def test_rare_branch_near_certain_for_warps(self):
        """A 5 % per-lane branch fires for 80 % of 32-wide warps — the
        Fig 2b amplification."""
        assert partition_branch_probability(0.05, 32) > 0.8

    def test_monotone_in_width(self):
        ps = [partition_branch_probability(0.1, w) for w in (1, 2, 8, 32, 64)]
        assert all(b > a for a, b in zip(ps, ps[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_branch_probability(0.5, 0)
        with pytest.raises(ValueError):
            partition_branch_probability(1.5, 4)


class TestExpectedMaxGeometric:
    def test_p_one(self):
        assert expected_max_geometric(1.0, 32) == 1.0

    def test_width_one_is_geometric_mean(self):
        assert expected_max_geometric(0.25, 1) == pytest.approx(4.0, rel=1e-6)

    def test_monte_carlo_agreement(self):
        rng = np.random.default_rng(5)
        p, w = 0.767, 8
        samples = rng.geometric(p, size=(200_000, w)).max(axis=1).mean()
        assert expected_max_geometric(p, w) == pytest.approx(samples, rel=0.01)

    def test_monotone_in_width(self):
        vals = [expected_max_geometric(0.767, w) for w in (1, 8, 16, 32, 64)]
        assert all(b > a for a, b in zip(vals, vals[1:]))

    def test_monotone_in_rejection(self):
        assert expected_max_geometric(0.5, 16) > expected_max_geometric(0.9, 16)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_max_geometric(0.0, 8)
        with pytest.raises(ValueError):
            expected_max_geometric(0.5, 0)


class TestLockstepCycles:
    def test_decoupled_is_width_one(self):
        p = attempt_profile("marsaglia_bray", 1.39)
        assert attempt_cycles_decoupled("CPU", p) == pytest.approx(
            attempt_cycles_lockstep("CPU", p, 1)
        )

    def test_lockstep_cost_grows_with_width(self):
        p = attempt_profile("marsaglia_bray", 1.39)
        costs = [attempt_cycles_lockstep("GPU", p, w) for w in (1, 4, 16, 64)]
        assert all(b >= a for a, b in zip(costs, costs[1:]))

    def test_divergence_factor_at_least_one(self):
        p = attempt_profile("marsaglia_bray", 1.39)
        for dev in ("CPU", "GPU", "PHI"):
            for w in (1, 8, 32):
                assert divergence_factor(dev, p, w) >= 1.0

    def test_divergence_factor_larger_for_mb_than_icdf(self):
        """Divergent-branch inflation is what separates the transforms."""
        mb = attempt_profile("marsaglia_bray", 1.39)
        ic = attempt_profile("icdf", 1.39)
        assert divergence_factor("GPU", mb, 32) > divergence_factor("GPU", ic, 32)


class TestStragglerFactor:
    def test_width_one_is_one(self):
        assert straggler_factor(1, 100, 0.7) == 1.0

    def test_accept_one_is_one(self):
        assert straggler_factor(32, 100, 1.0) == 1.0

    def test_grows_with_width(self):
        f8 = straggler_factor(8, 50, 0.7)
        f64 = straggler_factor(64, 50, 0.7)
        assert 1.0 < f8 < f64

    def test_shrinks_with_quota(self):
        # relative fluctuation of the sum shrinks as quota grows
        f_small = straggler_factor(16, 5, 0.7)
        f_large = straggler_factor(16, 500, 0.7)
        assert f_large < f_small

    def test_deterministic(self):
        assert straggler_factor(16, 50, 0.7) == straggler_factor(16, 50, 0.7)

    def test_validation(self):
        with pytest.raises(ValueError):
            straggler_factor(0, 10, 0.5)
        with pytest.raises(ValueError):
            straggler_factor(4, 0, 0.5)
        with pytest.raises(ValueError):
            straggler_factor(4, 10, 0.0)


@given(
    p=st.floats(min_value=0.05, max_value=1.0),
    w=st.integers(min_value=1, max_value=128),
)
@settings(max_examples=100)
def test_prop_max_geometric_at_least_mean(p, w):
    # >= the single-lane mean, up to the series truncation tolerance
    assert expected_max_geometric(p, w) >= (1.0 / p) * (1.0 - 1e-7)


@given(
    lane_p=st.floats(min_value=0.0, max_value=1.0),
    w=st.integers(min_value=1, max_value=256),
)
@settings(max_examples=100)
def test_prop_branch_probability_bounds(lane_p, w):
    pp = partition_branch_probability(lane_p, w)
    assert lane_p - 1e-12 <= pp <= 1.0
