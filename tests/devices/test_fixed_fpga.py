"""Tests for the fixed-architecture and FPGA runtime models."""

import pytest

from repro.devices import (
    DEFAULT_CALIBRATIONS,
    DeviceCalibration,
    FixedArchitectureModel,
    FpgaModel,
    attempt_profile,
    eq1_theoretical_runtime,
    fit_all,
    measured_path_rates,
)
from repro.core.memory import MemoryChannelConfig
from repro.opencl import NDRange, PAPER_DEVICES
from repro.paper import (
    FPGA_WORK_ITEMS,
    OPTIMAL_LOCAL_SIZES,
    SETUP,
    TABLE3_RUNTIME_MS,
)


def _estimate(dev, transform, style, state_words, local=None):
    model = FixedArchitectureModel(PAPER_DEVICES[dev])
    prof = attempt_profile(transform, SETUP.sector_variance, icdf_style=style)
    nd = NDRange(SETUP.global_size, local or OPTIMAL_LOCAL_SIZES[dev])
    return model.estimate(prof, nd, SETUP.outputs_per_work_item, state_words)


class TestCalibration:
    def test_shipped_constants_are_reproducible(self):
        """Provenance: DEFAULT_CALIBRATIONS must equal a fresh fit."""
        fresh = fit_all()
        for name, cal in DEFAULT_CALIBRATIONS.items():
            assert cal.eta == pytest.approx(fresh[name].eta, rel=1e-9)
            assert cal.kappa == pytest.approx(fresh[name].kappa, rel=1e-9, abs=1e-12)

    def test_calibrated_cells_match_paper(self):
        for cfg, transform, style, words in [
            ("Config1", "marsaglia_bray", "cuda", 624),
            ("Config3_cuda", "icdf", "cuda", 624),
        ]:
            for dev in ("CPU", "GPU", "PHI"):
                est = _estimate(dev, transform, style, words)
                paper = TABLE3_RUNTIME_MS[cfg][dev]
                # CPU fits both cells exactly (two free scalars); GPU/PHI
                # clamp kappa at 0 and split the residual geometrically,
                # so their two cells sit up to ~20 % off individually
                assert est.milliseconds == pytest.approx(paper, rel=0.20), (
                    cfg, dev,
                )

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceCalibration(eta=0.0, kappa=1.0)
        with pytest.raises(ValueError):
            DeviceCalibration(eta=0.5, kappa=-1.0)


class TestPredictions:
    """The non-calibrated Table III cells are genuine predictions; allow a
    2x band (paper absolute numbers came from a 2017 testbed)."""

    @pytest.mark.parametrize("cfg,transform,style,words", [
        ("Config2", "marsaglia_bray", "cuda", 17),
        ("Config4_cuda", "icdf", "cuda", 17),
        ("Config3_fpga_style", "icdf", "fpga", 624),
        ("Config4_fpga_style", "icdf", "fpga", 17),
    ])
    @pytest.mark.parametrize("dev", ["CPU", "GPU", "PHI"])
    def test_predicted_cells_within_2x(self, cfg, transform, style, words, dev):
        est = _estimate(dev, transform, style, words)
        paper = TABLE3_RUNTIME_MS[cfg][dev]
        assert 0.5 < est.milliseconds / paper < 2.0, (cfg, dev, est.milliseconds)

    def test_fpga_style_icdf_slow_on_cpu_phi_not_gpu(self):
        """§II-D3/§IV-E: bit-level ICDF is 3-5x slower on CPU and PHI but
        costs nothing extra on the GPU."""
        for dev, lo, hi in [("CPU", 2.5, 6.0), ("PHI", 3.5, 8.0)]:
            cuda = _estimate(dev, "icdf", "cuda", 624).milliseconds
            fpga = _estimate(dev, "icdf", "fpga", 624).milliseconds
            assert lo < fpga / cuda < hi, dev
        gpu_ratio = (
            _estimate("GPU", "icdf", "fpga", 624).milliseconds
            / _estimate("GPU", "icdf", "cuda", 624).milliseconds
        )
        assert 0.9 < gpu_ratio < 1.3

    def test_small_twister_helps_gpu_most(self):
        """Config1→Config2 speedup: big on GPU (state traffic), none on CPU."""
        gpu = (
            _estimate("GPU", "marsaglia_bray", "cuda", 624).milliseconds
            / _estimate("GPU", "marsaglia_bray", "cuda", 17).milliseconds
        )
        cpu = (
            _estimate("CPU", "marsaglia_bray", "cuda", 624).milliseconds
            / _estimate("CPU", "marsaglia_bray", "cuda", 17).milliseconds
        )
        assert gpu > 2.0
        assert cpu < 1.2


class TestFig5Shapes:
    @pytest.mark.parametrize("dev", ["CPU", "GPU", "PHI"])
    def test_optimal_local_size_matches_fig5a(self, dev):
        sweep = {
            ls: _estimate(dev, "marsaglia_bray", "cuda", 624, local=ls).seconds
            for ls in (1, 2, 4, 8, 16, 32, 64, 128, 256)
        }
        best = min(sweep, key=sweep.get)
        assert best == OPTIMAL_LOCAL_SIZES[dev]

    @pytest.mark.parametrize("dev", ["CPU", "GPU", "PHI"])
    def test_curve_is_u_shaped(self, dev):
        opt = OPTIMAL_LOCAL_SIZES[dev]
        t_opt = _estimate(dev, "marsaglia_bray", "cuda", 624, local=opt).seconds
        t_lo = _estimate(dev, "marsaglia_bray", "cuda", 624, local=1).seconds
        t_hi = _estimate(dev, "marsaglia_bray", "cuda", 624, local=256).seconds
        assert t_lo > 1.5 * t_opt
        assert t_hi >= t_opt

    def test_global_size_saturation_fig5b(self):
        """Fixed total work: runtime falls with globalSize then flattens."""
        model = FixedArchitectureModel(PAPER_DEVICES["GPU"])
        prof = attempt_profile("marsaglia_bray", SETUP.sector_variance)
        total = SETUP.total_outputs
        times = {}
        for gs in (1024, 4096, 16384, 65536, 262144):
            nd = NDRange(gs, 64)
            times[gs] = model.estimate(prof, nd, total // gs, 624).seconds
        assert times[1024] > 2 * times[65536]
        assert times[262144] == pytest.approx(times[65536], rel=0.3)


class TestModelValidation:
    def test_fpga_device_rejected(self):
        with pytest.raises(ValueError, match="FpgaModel"):
            FixedArchitectureModel(PAPER_DEVICES["FPGA"])

    def test_outputs_validated(self):
        model = FixedArchitectureModel(PAPER_DEVICES["CPU"])
        prof = attempt_profile("marsaglia_bray", 1.39)
        with pytest.raises(ValueError):
            model.estimate(prof, NDRange(64, 8), 0, 624)


class TestFpgaModel:
    def _rejection(self, transform):
        key = "marsaglia_bray" if transform == "marsaglia_bray" else "icdf_fpga"
        return 1.0 - measured_path_rates(key, SETUP.sector_variance).combined_accept

    def test_config12_runtime_band(self):
        m = FpgaModel(n_work_items=FPGA_WORK_ITEMS["Config1"])
        est = m.estimate(SETUP.total_outputs, SETUP.num_sectors,
                         self._rejection("marsaglia_bray"))
        assert est.milliseconds == pytest.approx(
            TABLE3_RUNTIME_MS["Config1"]["FPGA"], rel=0.2
        )

    def test_config34_runtime_band_and_transfer_bound(self):
        m = FpgaModel(n_work_items=FPGA_WORK_ITEMS["Config3"])
        est = m.estimate(SETUP.total_outputs, SETUP.num_sectors,
                         self._rejection("icdf"))
        assert est.milliseconds == pytest.approx(
            TABLE3_RUNTIME_MS["Config3_cuda"]["FPGA"], rel=0.15
        )
        assert est.bound == "transfer"  # §IV-E's central finding

    def test_effective_bandwidth_matches_section_ive(self):
        m = FpgaModel(n_work_items=8)
        est = m.estimate(SETUP.total_outputs, SETUP.num_sectors,
                         self._rejection("icdf"))
        assert est.effective_bandwidth_bps == pytest.approx(3.94e9, rel=0.05)

    def test_eq1_quotes(self):
        """Eq (1) with the paper's own rejection rates reproduces the
        683 ms / 422 ms quotes."""
        t12 = eq1_theoretical_runtime(
            SETUP.num_scenarios, SETUP.num_sectors, 6, 200e6, 0.303
        )
        t34 = eq1_theoretical_runtime(
            SETUP.num_scenarios, SETUP.num_sectors, 8, 200e6, 0.074
        )
        assert t12 * 1e3 == pytest.approx(683, rel=0.01)
        assert t34 * 1e3 == pytest.approx(422, rel=0.01)

    def test_eq1_underestimates_transfer_bound_config(self):
        """§IV-E: Eq (1) is close for Config1,2 but ~35 % low for
        Config3,4 because it ignores the transfer bottleneck."""
        m = FpgaModel(n_work_items=8)
        r = self._rejection("icdf")
        est = m.estimate(SETUP.total_outputs, SETUP.num_sectors, r)
        eq1 = eq1_theoretical_runtime(
            SETUP.num_scenarios, SETUP.num_sectors, 8, 200e6, r
        )
        assert eq1 < 0.8 * est.seconds

    def test_naive_ii_slows_compute(self):
        r = self._rejection("marsaglia_bray")
        fast = FpgaModel(n_work_items=6, ii=1)
        slow = FpgaModel(n_work_items=6, ii=2)
        t_fast = fast.estimate(SETUP.total_outputs, SETUP.num_sectors, r)
        t_slow = slow.estimate(SETUP.total_outputs, SETUP.num_sectors, r)
        assert t_slow.seconds > 1.5 * t_fast.seconds

    def test_longer_bursts_reduce_transfer_bound(self):
        short = FpgaModel(n_work_items=8, burst_words=4)
        long_ = FpgaModel(n_work_items=8, burst_words=256)
        r = self._rejection("icdf")
        assert (
            long_.estimate(SETUP.total_outputs, SETUP.num_sectors, r).seconds
            < short.estimate(SETUP.total_outputs, SETUP.num_sectors, r).seconds
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            FpgaModel(n_work_items=0)
        with pytest.raises(ValueError):
            FpgaModel(ii=0)
        with pytest.raises(ValueError):
            eq1_theoretical_runtime(1, 1, 1, 1e6, 1.0)
        with pytest.raises(ValueError):
            FpgaModel().estimate(0, 1, 0.1)


class TestSpeedupShape:
    def test_config1_fpga_beats_everyone(self):
        """Table III headline: FPGA wins Config1 with ~5.5x over CPU."""
        r = 1.0 - measured_path_rates(
            "marsaglia_bray", SETUP.sector_variance
        ).combined_accept
        fpga = FpgaModel(n_work_items=6).estimate(
            SETUP.total_outputs, SETUP.num_sectors, r
        ).seconds
        cpu = _estimate("CPU", "marsaglia_bray", "cuda", 624).seconds
        gpu = _estimate("GPU", "marsaglia_bray", "cuda", 624).seconds
        phi = _estimate("PHI", "marsaglia_bray", "cuda", 624).seconds
        assert cpu / fpga > 4.0  # paper: 5.5x
        assert gpu / fpga > 2.5  # paper: 3.5x
        assert phi / fpga > 1.1  # paper: 1.4x

    def test_config4_phi_gpu_overtake_fpga(self):
        """Table III crossover: with the low-rejection ICDF and the small
        twister, PHI and GPU catch up to / beat the transfer-bound FPGA."""
        r = 1.0 - measured_path_rates(
            "icdf_fpga", SETUP.sector_variance
        ).combined_accept
        fpga = FpgaModel(n_work_items=8).estimate(
            SETUP.total_outputs, SETUP.num_sectors, r
        ).seconds
        gpu = _estimate("GPU", "icdf", "cuda", 17).seconds
        phi = _estimate("PHI", "icdf", "cuda", 17).seconds
        assert gpu < 1.1 * fpga  # paper: FPGA at 0.8x of GPU
        assert phi < 1.0 * fpga  # paper: FPGA at 0.7x of PHI
