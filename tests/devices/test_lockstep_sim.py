"""Cross-validation of the closed-form lockstep model via simulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.devices import expected_max_geometric, render_fig2, simulate_partition


class TestSimulatePartition:
    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_partition(0, 4, 0.5)
        with pytest.raises(ValueError):
            simulate_partition(4, 0, 0.5)
        with pytest.raises(ValueError):
            simulate_partition(4, 4, 0.0)

    def test_deterministic(self):
        a = simulate_partition(8, 4, 0.7, runs=16, seed=3)
        b = simulate_partition(8, 4, 0.7, runs=16, seed=3)
        np.testing.assert_array_equal(a.iterations, b.iterations)

    def test_no_rejection_takes_exactly_quota(self):
        res = simulate_partition(8, 5, 1.0, runs=8)
        assert np.all(res.iterations == 5)
        assert res.efficiency == 1.0

    def test_width_one_efficiency_is_acceptance_rate(self):
        res = simulate_partition(1, 16, 0.7, runs=600, seed=2)
        assert res.efficiency == pytest.approx(0.7, abs=0.02)

    def test_every_lane_reaches_quota(self):
        res = simulate_partition(8, 4, 0.7, runs=1)
        for lane in res.lane_activity:
            assert lane.count("A") == 4

    def test_idle_lanes_appear_with_rejection(self):
        res = simulate_partition(16, 4, 0.5, runs=1, seed=5)
        assert any("." in lane for lane in res.lane_activity)
        assert res.efficiency < 1.0

    def test_width_one_never_idles(self):
        res = simulate_partition(1, 8, 0.5, runs=4)
        assert all("." not in lane for lane in res.lane_activity)

    def test_lane_symbols(self):
        res = simulate_partition(4, 3, 0.6, runs=1)
        for lane in res.lane_activity:
            assert set(lane) <= {"A", "r", "."}


class TestClosedFormCrossValidation:
    @pytest.mark.parametrize("width,p", [(8, 0.767), (32, 0.767), (16, 0.977)])
    def test_mean_iterations_match_e_max_geometric(self, width, p):
        """For quota=1 the simulated mean partition iterations must match
        E[max of W geometrics] — the formula the runtime models use."""
        res = simulate_partition(width, 1, p, runs=6000, seed=11)
        analytic = expected_max_geometric(p, width)
        assert res.mean_iterations == pytest.approx(analytic, rel=0.03)

    def test_quota_scaling_sublinear_straggler(self):
        """Straggler overhead per output shrinks as the quota grows
        (fluctuations average out) — the straggler_factor behaviour."""
        p = 0.767
        per_output_small = simulate_partition(8, 1, p, runs=2000).mean_iterations
        res_large = simulate_partition(8, 64, p, runs=300, seed=3)
        per_output_large = res_large.mean_iterations / 64
        assert per_output_large < per_output_small
        assert per_output_large > 1.0 / p  # but never below the mean

    def test_efficiency_decreases_with_width(self):
        effs = [
            simulate_partition(w, 8, 0.767, runs=400, seed=9).efficiency
            for w in (1, 8, 32)
        ]
        assert effs[0] > effs[1] > effs[2]


class TestFig2Rendering:
    def test_three_panels(self):
        out = render_fig2()
        assert "(a) lockstep, no divergence" in out
        assert "(b) lockstep with rejection" in out
        assert "(c) decoupled" in out

    def test_panel_a_all_useful(self):
        out = render_fig2()
        panel_a = out.split("(b)")[0]
        bodies = [
            line.split("|")[1]
            for line in panel_a.splitlines()
            if line.count("|") == 2
        ]
        assert bodies, "panel (a) rendered no lanes"
        for body in bodies:
            assert set(body) == {"A"}  # no rejections, no idle markers

    def test_panel_b_has_red_dots(self):
        out = render_fig2(accept_prob=0.5, quota=3, seed=2)
        panel_b = out.split("(b)")[1].split("(c)")[0]
        lane_bodies = [l.split("|")[1] for l in panel_b.splitlines() if "|" in l]
        assert any("." in body for body in lane_bodies)

    def test_panel_c_no_idles(self):
        out = render_fig2()
        panel_c = out.split("(c)")[1]
        lane_bodies = [l.split("|")[1] for l in panel_c.splitlines() if "|" in l]
        assert all("." not in body for body in lane_bodies)


@given(
    width=st.integers(min_value=1, max_value=32),
    quota=st.integers(min_value=1, max_value=8),
    p=st.floats(min_value=0.2, max_value=1.0),
)
@settings(max_examples=30, deadline=None)
def test_prop_iterations_at_least_quota(width, quota, p):
    res = simulate_partition(width, quota, p, runs=8, seed=1)
    assert np.all(res.iterations >= quota)
    assert 0.0 < res.efficiency <= 1.0
