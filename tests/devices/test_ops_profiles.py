"""Tests for op cost tables and kernel attempt profiles."""

import math

import pytest

from repro.devices import (
    AttemptProfile,
    Segment,
    attempt_profile,
    measured_path_rates,
    op_cost,
    segment_cost,
)
from repro.devices.ops import OP_COSTS, OP_KINDS
from repro.rng.marsaglia_bray import POLAR_ACCEPTANCE


class TestOpCosts:
    def test_all_devices_cover_all_kinds(self):
        for dev, table in OP_COSTS.items():
            assert set(table) == set(OP_KINDS), dev

    def test_positive_costs(self):
        for table in OP_COSTS.values():
            assert all(c > 0 for c in table.values())

    def test_lookup(self):
        assert op_cost("CPU", "flop") == 0.5

    def test_unknown_device(self):
        with pytest.raises(KeyError, match="no op-cost table"):
            op_cost("TPU", "flop")

    def test_unknown_op(self):
        with pytest.raises(KeyError, match="unknown op"):
            op_cost("CPU", "tensor_core")

    def test_segment_cost_sums(self):
        assert segment_cost("GPU", {"flop": 2, "log": 1}) == 2 * 1.0 + 4.0

    def test_gpu_lzc_native_cheap(self):
        # the reason FPGA-style ICDF is NOT slow on the GPU (Table III)
        assert op_cost("GPU", "lzc") < op_cost("CPU", "lzc")
        assert op_cost("GPU", "lzc") < op_cost("PHI", "lzc")


class TestSegment:
    def test_probability_validated(self):
        with pytest.raises(ValueError):
            Segment("s", {"flop": 1}, lane_probability=1.5)

    def test_default_vectorizable(self):
        assert Segment("s", {"flop": 1}).vectorizable


class TestMeasuredRates:
    def test_mb_normal_accept_near_pi_over_4(self):
        rates = measured_path_rates("marsaglia_bray", 1.39)
        assert rates.normal_accept == pytest.approx(POLAR_ACCEPTANCE, abs=0.01)

    def test_icdf_rejection_free(self):
        rates = measured_path_rates("icdf_cuda", 1.39)
        assert rates.normal_accept == 1.0

    def test_combined_accept_ordering(self):
        """§IV-E: the MB path rejects far more than the ICDF path."""
        mb = measured_path_rates("marsaglia_bray", 1.39)
        ic = measured_path_rates("icdf_cuda", 1.39)
        assert 1 - mb.combined_accept > 0.15
        assert 1 - ic.combined_accept < 0.10

    def test_gamma_rejection_grows_with_variance(self):
        lo = measured_path_rates("icdf_cuda", 0.1)
        hi = measured_path_rates("icdf_cuda", 100.0)
        assert hi.gamma_accept < lo.gamma_accept

    def test_erfinv_tail_rare(self):
        rates = measured_path_rates("icdf_cuda", 1.39)
        assert 0.0 < rates.erfinv_tail < 0.01

    def test_unknown_transform(self):
        with pytest.raises(ValueError):
            measured_path_rates("box_muller_gpu", 1.39)

    def test_cached(self):
        a = measured_path_rates("marsaglia_bray", 1.39)
        b = measured_path_rates("marsaglia_bray", 1.39)
        assert a is b


class TestAttemptProfile:
    def test_mb_profile_structure(self):
        p = attempt_profile("marsaglia_bray", 1.39)
        names = [s.name for s in p.segments]
        assert "mb_always" in names and "mb_accept" in names
        assert "correction" in names  # alpha = 1/1.39 < 1 → boosted

    def test_no_correction_for_small_variance(self):
        # v = 0.5 → alpha = 2 >= 1 → no correction segment
        p = attempt_profile("marsaglia_bray", 0.5)
        assert "correction" not in [s.name for s in p.segments]

    def test_icdf_styles_differ(self):
        cuda = attempt_profile("icdf", 1.39, icdf_style="cuda")
        fpga = attempt_profile("icdf", 1.39, icdf_style="fpga")
        assert cuda.name != fpga.name
        assert any(not s.vectorizable for s in fpga.segments)
        assert all(s.vectorizable for s in cuda.segments)

    def test_accept_prob_consistent_with_rates(self):
        p = attempt_profile("marsaglia_bray", 1.39)
        rates = measured_path_rates("marsaglia_bray", 1.39)
        assert p.accept_prob == pytest.approx(rates.combined_accept)

    def test_attempts_per_output(self):
        p = attempt_profile("icdf", 1.39)
        assert p.attempts_per_output == pytest.approx(1 / p.accept_prob)
        assert math.isclose(p.rejection_rate, 1 - p.accept_prob)

    def test_invalid_transform(self):
        with pytest.raises(ValueError):
            attempt_profile("sobol", 1.39)

    def test_invalid_icdf_style(self):
        with pytest.raises(ValueError):
            attempt_profile("icdf", 1.39, icdf_style="metal")

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            AttemptProfile("p", (), accept_prob=0.0)
