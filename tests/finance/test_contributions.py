"""Tests for the analytic variance decomposition and risk contributions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.finance import (
    MonteCarloEngine,
    Obligor,
    Portfolio,
    Sector,
    analytic_loss_distribution,
    granular_portfolio,
    concentrated_portfolio,
    variance_decomposition,
)


def _unit_portfolio(n=40, sectors=(1.39, 0.8), seed=3):
    """Integer exposures so the Panjer comparison is banding-exact."""
    port = Portfolio([Sector(f"s{i}", v) for i, v in enumerate(sectors)])
    rng = np.random.default_rng(seed)
    for i in range(n):
        port.add(
            Obligor.single_sector(
                float(rng.integers(1, 5)),
                float(rng.uniform(0.005, 0.03)),
                i % len(sectors),
            )
        )
    return port


class TestDecomposition:
    def test_expected_loss_matches_portfolio(self):
        port = _unit_portfolio()
        d = variance_decomposition(port)
        assert d.expected_loss == pytest.approx(port.expected_loss)

    def test_parts_sum_to_variance(self):
        d = variance_decomposition(_unit_portfolio())
        assert d.variance == pytest.approx(
            d.idiosyncratic_variance + d.systematic_variance
        )
        assert d.systematic_variance == pytest.approx(
            float(np.sum(d.sector_systematic))
        )

    def test_contributions_sum_exactly_to_variance(self):
        d = variance_decomposition(_unit_portfolio())
        assert float(np.sum(d.obligor_contributions)) == pytest.approx(
            d.variance, rel=1e-12
        )

    def test_matches_panjer_variance(self):
        """Two independent analytic routes to Var(L) must agree."""
        port = _unit_portfolio()
        d = variance_decomposition(port)
        pmf = analytic_loss_distribution(port, 1.0, 500)
        grid = np.arange(pmf.size, dtype=np.float64)
        mean = float(pmf @ grid)
        var = float(pmf @ grid**2) - mean**2
        assert d.variance == pytest.approx(var, rel=1e-4)

    def test_matches_monte_carlo(self):
        port = _unit_portfolio()
        d = variance_decomposition(port)
        mc = MonteCarloEngine(port, seed=7).run(scenarios=60_000)
        assert mc.loss_std == pytest.approx(d.loss_std, rel=0.05)

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError):
            variance_decomposition(Portfolio([Sector("a", 1.0)]))


class TestRiskReading:
    def test_higher_variance_sector_dominates(self):
        port = Portfolio([Sector("calm", 0.1), Sector("wild", 5.0)])
        for k in (0, 1):
            for _ in range(20):
                port.add(Obligor.single_sector(1.0, 0.02, k))
        d = variance_decomposition(port)
        assert d.sector_systematic[1] > 10 * d.sector_systematic[0]

    def test_concentrated_book_less_diversified(self):
        g = variance_decomposition(granular_portfolio(seed=4))
        c = variance_decomposition(concentrated_portfolio(seed=4))
        # concentration inflates the idiosyncratic share
        assert (
            c.idiosyncratic_variance / c.variance
            > g.idiosyncratic_variance / g.variance
        )

    def test_top_contributors_are_largest_names(self):
        port = concentrated_portfolio(n_obligors=50, seed=6)
        d = variance_decomposition(port)
        top_idx = d.top_contributors(1)[0][0]
        assert port.exposures()[top_idx] == pytest.approx(
            port.exposures().max()
        )

    def test_diversification_ratio_bounds(self):
        d = variance_decomposition(_unit_portfolio())
        assert 0.0 < d.diversification_ratio < 1.0


@given(
    v=st.floats(min_value=0.05, max_value=5.0),
    n=st.integers(min_value=1, max_value=25),
    pd_=st.floats(min_value=0.001, max_value=0.08),
)
@settings(max_examples=30, deadline=None)
def test_prop_decomposition_consistent_with_panjer(v, n, pd_):
    port = Portfolio([Sector("a", v)])
    for _ in range(n):
        port.add(Obligor.single_sector(1.0, pd_, 0))
    d = variance_decomposition(port)
    pmf = analytic_loss_distribution(port, 1.0, 60 + 12 * n)
    grid = np.arange(pmf.size, dtype=np.float64)
    mean = float(pmf @ grid)
    var = float(pmf @ grid**2) - mean**2
    # truncation can clip a sliver of the tail; allow a small relative gap
    assert d.variance == pytest.approx(var, rel=5e-3)
    assert float(np.sum(d.obligor_contributions)) == pytest.approx(d.variance)
