"""Tests for synthetic portfolio generators and concentration metrics."""

import numpy as np
import pytest

from repro.finance import (
    MonteCarloEngine,
    concentrated_portfolio,
    effective_number_of_obligors,
    granular_portfolio,
    herfindahl_index,
    portfolio_summary,
    value_at_risk,
)


class TestGenerators:
    def test_granular_structure(self):
        p = granular_portfolio(n_obligors=100, n_sectors=4)
        assert len(p.obligors) == 100
        assert len(p.sectors) == 4
        exposures = p.exposures()
        assert exposures.max() / exposures.min() < 2.0  # similar sizes

    def test_concentrated_structure(self):
        p = concentrated_portfolio(n_obligors=100, pareto_alpha=1.2, seed=5)
        exposures = p.exposures()
        assert exposures.max() / np.median(exposures) > 5.0

    def test_deterministic(self):
        a = granular_portfolio(seed=3)
        b = granular_portfolio(seed=3)
        np.testing.assert_array_equal(a.exposures(), b.exposures())

    def test_validation(self):
        with pytest.raises(ValueError):
            granular_portfolio(n_obligors=0)
        with pytest.raises(ValueError):
            concentrated_portfolio(pareto_alpha=1.0)


class TestConcentrationMetrics:
    def test_hhi_equal_book(self):
        p = granular_portfolio(n_obligors=50)
        # near-equal exposures → HHI near 1/n
        assert herfindahl_index(p) == pytest.approx(1 / 50, rel=0.1)

    def test_effective_obligors_inverse(self):
        p = granular_portfolio(n_obligors=80)
        assert effective_number_of_obligors(p) == pytest.approx(
            1 / herfindahl_index(p)
        )

    def test_concentrated_has_fewer_effective_names(self):
        g = granular_portfolio(n_obligors=100, seed=2)
        c = concentrated_portfolio(n_obligors=100, seed=2)
        assert effective_number_of_obligors(c) < 0.6 * effective_number_of_obligors(g)

    def test_summary_fields(self):
        s = portfolio_summary(granular_portfolio(n_obligors=60))
        assert s["obligors"] == 60
        assert 0 < s["largest_share"] < 0.1
        assert s["effective_obligors"] <= 60

    def test_empty_rejected(self):
        from repro.finance import Portfolio, Sector

        with pytest.raises(ValueError):
            herfindahl_index(Portfolio([Sector("a", 1.0)]))


class TestConcentrationDrivesTail:
    def test_concentrated_book_has_fatter_tail(self):
        """Same expected loss basis, very different 99.9% quantile —
        the risk phenomenon CreditRisk+ exists to quantify."""
        g = granular_portfolio(n_obligors=150, n_sectors=2, seed=9)
        c = concentrated_portfolio(n_obligors=150, n_sectors=2, seed=9)
        mc_g = MonteCarloEngine(g, seed=1).run(scenarios=20_000)
        mc_c = MonteCarloEngine(c, seed=1).run(scenarios=20_000)
        # ELs comparable by construction
        assert mc_c.expected_loss == pytest.approx(mc_g.expected_loss, rel=0.4)
        rel_tail_g = value_at_risk(mc_g.losses, 0.999) / max(mc_g.expected_loss, 1e-9)
        rel_tail_c = value_at_risk(mc_c.losses, 0.999) / max(mc_c.expected_loss, 1e-9)
        assert rel_tail_c > 1.2 * rel_tail_g
