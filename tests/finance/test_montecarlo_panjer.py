"""Tests for the Monte-Carlo engine, the analytic baseline and risk measures."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.finance import (
    MonteCarloEngine,
    Obligor,
    Portfolio,
    Sector,
    analytic_loss_distribution,
    expected_shortfall,
    loss_statistics,
    quantile_from_pmf,
    value_at_risk,
)
from repro.finance.panjer import exp_series, log_series_neg


def _small_portfolio(n=40, sectors=(1.39, 0.8), seed=3):
    port = Portfolio([Sector(f"s{i}", v) for i, v in enumerate(sectors)])
    rng = np.random.default_rng(seed)
    for i in range(n):
        port.add(
            Obligor.single_sector(
                float(rng.integers(1, 5)),
                float(rng.uniform(0.005, 0.03)),
                i % len(sectors),
            )
        )
    return port


class TestSeriesPrimitives:
    def test_log_series_matches_scalar_log(self):
        # q(z) = 0.3 z: -log(1 - 0.3 z) = sum (0.3 z)^m / m
        q = np.zeros(8)
        q[1] = 0.3
        a = log_series_neg(q)
        expected = [0.3**m / m for m in range(1, 8)]
        np.testing.assert_allclose(a[1:], expected)

    def test_log_series_rejects_constant(self):
        with pytest.raises(ValueError):
            log_series_neg(np.array([0.1, 0.2]))

    def test_exp_series_matches_exp(self):
        # l(z) = z: exp(z) coefficients are 1/n!
        l = np.zeros(10)
        l[1] = 1.0
        g = exp_series(l)
        import math

        np.testing.assert_allclose(g, [1 / math.factorial(n) for n in range(10)])

    def test_exp_series_constant(self):
        g = exp_series(np.zeros(4), constant=np.log(2.0))
        np.testing.assert_allclose(g, [2.0, 0, 0, 0])

    def test_exp_log_roundtrip(self):
        rng = np.random.default_rng(1)
        q = np.zeros(30)
        q[1:6] = rng.uniform(0, 0.1, 5)
        g = exp_series(log_series_neg(q))
        # exp(-log(1-q)) = 1/(1-q): verify via (1-q) * g == 1
        one = np.convolve(np.concatenate([[1.0], -q[1:]]), g)[:30]
        np.testing.assert_allclose(one, np.eye(30)[0], atol=1e-12)


class TestAnalyticDistribution:
    def test_pmf_is_distribution(self):
        pmf = analytic_loss_distribution(_small_portfolio(), 1.0, 300)
        assert np.all(pmf >= 0)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)

    def test_mean_matches_expected_loss(self):
        port = _small_portfolio()
        pmf = analytic_loss_distribution(port, 1.0, 300)
        mean = float(np.dot(pmf, np.arange(pmf.size)))
        assert mean == pytest.approx(port.expected_loss, rel=1e-6)

    def test_zero_loss_probability(self):
        """P(loss = 0) = prod_k ((1-d_k)/(1-d_k P_k(0)))^(1/v_k)."""
        port = Portfolio([Sector("a", 1.0)])
        port.add(Obligor.single_sector(1.0, 0.01, 0))
        pmf = analytic_loss_distribution(port, 1.0, 50)
        # single obligor, mu = 0.01, d = 0.01/1.01
        d = 0.01 / 1.01
        assert pmf[0] == pytest.approx((1 - d) ** 1.0, rel=1e-9)

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError):
            analytic_loss_distribution(Portfolio([Sector("a", 1.0)]), 1.0, 10)

    def test_truncation_validated(self):
        with pytest.raises(ValueError):
            analytic_loss_distribution(_small_portfolio(), 1.0, 0)

    def test_higher_variance_fattens_tail(self):
        """The paper's motivation: bigger sector variance = worse tail."""
        base = Portfolio([Sector("a", 0.1)])
        risky = Portfolio([Sector("a", 4.0)])
        for p in (base, risky):
            for _ in range(20):
                p.add(Obligor.single_sector(1.0, 0.02, 0))
        pmf_lo = analytic_loss_distribution(base, 1.0, 100)
        pmf_hi = analytic_loss_distribution(risky, 1.0, 100)
        assert quantile_from_pmf(pmf_hi, 1.0, 0.999) > quantile_from_pmf(
            pmf_lo, 1.0, 0.999
        )


class TestMonteCarlo:
    def test_el_matches_analytic(self):
        port = _small_portfolio()
        res = MonteCarloEngine(port, seed=5).run(scenarios=30_000)
        assert res.expected_loss == pytest.approx(port.expected_loss, rel=0.05)

    def test_mc_matches_panjer_distribution(self):
        """The headline cross-validation: simulated losses against the
        analytic PGF distribution (mean, std and a far quantile)."""
        port = _small_portfolio()
        pmf = analytic_loss_distribution(port, 1.0, 400)
        res = MonteCarloEngine(port, seed=11).run(scenarios=60_000)
        grid = np.arange(pmf.size)
        mean_a = float(np.dot(pmf, grid))
        var_a = float(np.dot(pmf, grid**2)) - mean_a**2
        assert res.expected_loss == pytest.approx(mean_a, rel=0.05)
        assert res.loss_std == pytest.approx(np.sqrt(var_a), rel=0.08)
        q_a = quantile_from_pmf(pmf, 1.0, 0.99)
        q_mc = value_at_risk(res.losses, 0.99)
        assert q_mc == pytest.approx(q_a, rel=0.15)

    def test_external_sector_draws(self):
        port = _small_portfolio()
        eng = MonteCarloEngine(port, seed=5)
        draws = eng.draw_sectors(5000)
        res = eng.run(sector_draws=draws)
        assert res.scenarios == 5000
        assert res.sector_draw_stats["mean_factor"] == pytest.approx(1.0, abs=0.1)

    def test_both_inputs_rejected(self):
        eng = MonteCarloEngine(_small_portfolio())
        with pytest.raises(ValueError):
            eng.run()
        with pytest.raises(ValueError):
            eng.run(scenarios=10, sector_draws=np.ones((10, 2)))

    def test_draw_shape_validated(self):
        eng = MonteCarloEngine(_small_portfolio())
        with pytest.raises(ValueError):
            eng.run(sector_draws=np.ones((10, 7)))

    def test_negative_factors_rejected(self):
        eng = MonteCarloEngine(_small_portfolio())
        with pytest.raises(ValueError):
            eng.run(sector_draws=-np.ones((10, 2)))

    def test_bernoulli_mode(self):
        port = _small_portfolio()
        res = MonteCarloEngine(port, poisson_defaults=False, seed=9).run(
            scenarios=20_000
        )
        assert res.expected_loss == pytest.approx(port.expected_loss, rel=0.08)

    def test_reproducible(self):
        port = _small_portfolio()
        a = MonteCarloEngine(port, seed=3).run(scenarios=1000)
        b = MonteCarloEngine(port, seed=3).run(scenarios=1000)
        np.testing.assert_array_equal(a.losses, b.losses)

    def test_bad_scenario_factor_state(self):
        """A bad economy scenario (large sector draw) must raise losses —
        'the larger the simulated gamma variable is, the worse is this
        financial sector' (§II-D4)."""
        port = _small_portfolio(sectors=(1.39,))
        eng = MonteCarloEngine(port, seed=5)
        calm = eng.run(sector_draws=np.full((4000, 1), 0.2))
        crisis = eng.run(sector_draws=np.full((4000, 1), 5.0))
        assert crisis.expected_loss > 10 * calm.expected_loss


class TestRiskMeasures:
    def test_var_quantile(self):
        losses = np.arange(1000, dtype=np.float64)
        assert value_at_risk(losses, 0.99) == pytest.approx(989.01)

    def test_es_above_var(self):
        rng = np.random.default_rng(2)
        losses = rng.exponential(1.0, 50_000)
        var = value_at_risk(losses, 0.99)
        es = expected_shortfall(losses, 0.99)
        assert es > var

    def test_level_validation(self):
        with pytest.raises(ValueError):
            value_at_risk(np.ones(10), 1.0)
        with pytest.raises(ValueError):
            expected_shortfall(np.ones(10), 0.0)

    def test_empty_sample(self):
        with pytest.raises(ValueError):
            value_at_risk(np.array([]), 0.5)
        with pytest.raises(ValueError):
            loss_statistics(np.array([]))

    def test_statistics_block(self):
        stats = loss_statistics(np.arange(100, dtype=np.float64))
        assert stats["scenarios"] == 100
        assert stats["expected_loss"] == pytest.approx(49.5)
        assert stats["var_99"] >= stats["expected_loss"]

    def test_quantile_from_pmf_degenerate(self):
        pmf = np.array([0.0, 1.0, 0.0])
        assert quantile_from_pmf(pmf, 2.0, 0.5) == 2.0


@given(
    v=st.floats(min_value=0.05, max_value=5.0),
    p_def=st.floats(min_value=0.001, max_value=0.1),
    n=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=30, deadline=None)
def test_prop_analytic_mean_equals_expected_loss(v, p_def, n):
    port = Portfolio([Sector("a", v)])
    for _ in range(n):
        port.add(Obligor.single_sector(1.0, p_def, 0))
    pmf = analytic_loss_distribution(port, 1.0, 40 + 8 * n)
    mean = float(np.dot(pmf, np.arange(pmf.size)))
    assert mean == pytest.approx(port.expected_loss, rel=1e-3)
