"""Tests for sectors, obligors, portfolios and banding."""

import numpy as np
import pytest

from repro.finance import Obligor, Portfolio, Sector, gamma_parameters
from repro.finance.sectors import paper_sectors


class TestSector:
    def test_gamma_parameterization(self):
        """Section II-D4: a_k = 1/v_k, b_k = v_k, E = 1, Var = v."""
        s = Sector("s", 1.39)
        assert s.shape == pytest.approx(1 / 1.39)
        assert s.scale == 1.39
        assert s.mean == pytest.approx(1.0)

    def test_gamma_parameters_function(self):
        a, b = gamma_parameters(2.0)
        assert (a, b) == (0.5, 2.0)
        with pytest.raises(ValueError):
            gamma_parameters(0.0)

    def test_invalid_variance(self):
        with pytest.raises(ValueError):
            Sector("bad", -1.0)

    def test_paper_sectors(self):
        secs = paper_sectors()
        assert len(secs) == 240
        assert all(s.variance == 1.39 for s in secs)


class TestObligor:
    def test_single_sector_constructor(self):
        o = Obligor.single_sector(100.0, 0.01, 3)
        assert o.sector_weights == ((3, 1.0),)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            Obligor(100.0, 0.01, ((0, 0.5), (1, 0.3)))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Obligor(100.0, 0.01, ((0, 1.5), (1, -0.5)))

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            Obligor(100.0, 0.0, ((0, 1.0),))
        with pytest.raises(ValueError):
            Obligor(100.0, 1.0, ((0, 1.0),))

    def test_positive_exposure(self):
        with pytest.raises(ValueError):
            Obligor(0.0, 0.01, ((0, 1.0),))

    def test_multi_sector_weights(self):
        o = Obligor(50.0, 0.02, ((0, 0.6), (2, 0.4)))
        assert dict(o.sector_weights) == {0: 0.6, 2: 0.4}


class TestPortfolio:
    def _portfolio(self):
        p = Portfolio([Sector("a", 1.0), Sector("b", 2.0)])
        p.add(Obligor.single_sector(10.0, 0.01, 0))
        p.add(Obligor.single_sector(20.0, 0.02, 1))
        return p

    def test_totals(self):
        p = self._portfolio()
        assert p.total_exposure == 30.0
        assert p.expected_loss == pytest.approx(10 * 0.01 + 20 * 0.02)

    def test_sector_reference_validated(self):
        p = self._portfolio()
        with pytest.raises(ValueError, match="references sector"):
            p.add(Obligor.single_sector(10.0, 0.01, 7))

    def test_weight_matrix(self):
        w = self._portfolio().weight_matrix()
        np.testing.assert_array_equal(w, [[1.0, 0.0], [0.0, 1.0]])

    def test_vector_views(self):
        p = self._portfolio()
        np.testing.assert_array_equal(p.exposures(), [10.0, 20.0])
        np.testing.assert_array_equal(p.default_probabilities(), [0.01, 0.02])


class TestBanding:
    def test_bands_preserve_expected_loss(self):
        p = Portfolio([Sector("a", 1.0)])
        p.add(Obligor.single_sector(17.3, 0.01, 0))
        p.add(Obligor.single_sector(4.9, 0.02, 0))
        bands, p_adj = p.bands(loss_unit=5.0)
        el_banded = np.sum(bands * 5.0 * p_adj)
        assert el_banded == pytest.approx(p.expected_loss)

    def test_minimum_band_is_one(self):
        p = Portfolio([Sector("a", 1.0)])
        p.add(Obligor.single_sector(0.4, 0.01, 0))
        bands, _ = p.bands(loss_unit=5.0)
        assert bands[0] == 1

    def test_invalid_loss_unit(self):
        p = Portfolio([Sector("a", 1.0)])
        p.add(Obligor.single_sector(1.0, 0.01, 0))
        with pytest.raises(ValueError):
            p.bands(0.0)

    def test_probability_overflow_detected(self):
        # band rounds 1.49 down to 1 unit; preserving the expected loss
        # would need p_adj = 0.7 * 1.49 > 1
        p = Portfolio([Sector("a", 1.0)])
        p.add(Obligor.single_sector(1.49, 0.7, 0))
        with pytest.raises(ValueError, match="above 1"):
            p.bands(loss_unit=1.0)
