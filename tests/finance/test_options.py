"""Tests for Monte-Carlo option pricing on generated normals."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.finance import (
    GBMParams,
    black_scholes_price,
    price_asian,
    price_european,
    simulate_gbm_paths,
)
from repro.rng import MarsagliaBray, MersenneTwister
from repro.rng.mersenne import MT521_PARAMS

PARAMS = GBMParams(spot=100.0, rate=0.03, volatility=0.25, maturity=1.0)


class TestBlackScholes:
    def test_atm_call_value(self):
        # standard reference: S=100, K=100, r=3%, sigma=25%, T=1
        price = black_scholes_price(PARAMS, 100.0, call=True)
        assert price == pytest.approx(11.35, abs=0.05)

    def test_put_call_parity(self):
        k = 95.0
        call = black_scholes_price(PARAMS, k, call=True)
        put = black_scholes_price(PARAMS, k, call=False)
        parity = PARAMS.spot - k * math.exp(-PARAMS.rate * PARAMS.maturity)
        assert call - put == pytest.approx(parity, abs=1e-9)

    def test_deep_itm_call_near_forward(self):
        call = black_scholes_price(PARAMS, 1.0, call=True)
        assert call == pytest.approx(
            PARAMS.spot - math.exp(-PARAMS.rate) * 1.0, abs=0.01
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            black_scholes_price(PARAMS, 0.0)
        with pytest.raises(ValueError):
            GBMParams(spot=-1, rate=0.0, volatility=0.2, maturity=1.0)
        with pytest.raises(ValueError):
            GBMParams(spot=1, rate=0.0, volatility=0.0, maturity=1.0)


class TestGBMPaths:
    def test_shape(self):
        z = np.zeros((10, 4))
        paths = simulate_gbm_paths(PARAMS, z)
        assert paths.shape == (10, 4)

    def test_zero_noise_is_deterministic_drift(self):
        z = np.zeros((1, 1))
        terminal = simulate_gbm_paths(PARAMS, z)[0, -1]
        expected = PARAMS.spot * math.exp(
            (PARAMS.rate - 0.5 * PARAMS.volatility**2) * PARAMS.maturity
        )
        assert terminal == pytest.approx(expected)

    def test_martingale_property(self):
        """Discounted terminal expectation equals the spot (risk-neutral)."""
        rng = np.random.default_rng(5)
        z = rng.standard_normal((400_000, 1))
        terminal = simulate_gbm_paths(PARAMS, z)[:, -1]
        disc = math.exp(-PARAMS.rate * PARAMS.maturity)
        assert disc * terminal.mean() == pytest.approx(PARAMS.spot, rel=2e-3)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            simulate_gbm_paths(PARAMS, np.zeros(5))


class TestEuropeanPricing:
    def test_converges_to_black_scholes(self):
        rng = np.random.default_rng(11)
        z = rng.standard_normal(400_000)
        for strike in (80.0, 100.0, 120.0):
            mc = price_european(PARAMS, strike, z)
            ref = black_scholes_price(PARAMS, strike)
            assert mc.contains(ref), (strike, mc.price, ref)

    def test_put_pricing(self):
        rng = np.random.default_rng(13)
        z = rng.standard_normal(300_000)
        mc = price_european(PARAMS, 100.0, z, call=False)
        ref = black_scholes_price(PARAMS, 100.0, call=False)
        assert mc.contains(ref)

    def test_multistep_consistent_with_single_step(self):
        rng = np.random.default_rng(17)
        single = price_european(PARAMS, 100.0, rng.standard_normal(200_000))
        multi = price_european(
            PARAMS, 100.0, rng.standard_normal((200_000, 8))
        )
        assert multi.price == pytest.approx(single.price, abs=4 * (
            single.std_error + multi.std_error
        ))

    def test_pipeline_normals_price_correctly(self):
        """The paper-grade loop: Marsaglia-Bray normals out of our own
        twisters price the option to within Monte-Carlo error of
        Black-Scholes."""
        mb = MarsagliaBray(
            MersenneTwister(MT521_PARAMS, seed=21),
            MersenneTwister(MT521_PARAMS, seed=22),
        )
        z = mb.normals(150_000).astype(np.float64)
        mc = price_european(PARAMS, 100.0, z)
        ref = black_scholes_price(PARAMS, 100.0)
        assert mc.contains(ref, z=4.0)


class TestAsianPricing:
    def test_asian_below_european(self):
        """Averaging reduces effective volatility: the arithmetic Asian
        call is cheaper than the European at the same strike."""
        rng = np.random.default_rng(19)
        z = rng.standard_normal((150_000, 12))
        asian = price_asian(PARAMS, 100.0, z)
        euro = black_scholes_price(PARAMS, 100.0)
        assert asian.price < euro

    def test_asian_put(self):
        rng = np.random.default_rng(23)
        z = rng.standard_normal((50_000, 12))
        put = price_asian(PARAMS, 100.0, z, call=False)
        assert put.price > 0

    def test_needs_paths(self):
        with pytest.raises(ValueError):
            price_asian(PARAMS, 100.0, np.zeros(10))
        with pytest.raises(ValueError):
            price_asian(PARAMS, 100.0, np.zeros((10, 1)))


class TestOptionResult:
    def test_confidence_interval(self):
        from repro.finance import OptionResult

        r = OptionResult(price=10.0, std_error=0.5, paths=100)
        lo, hi = r.confidence_interval()
        assert lo == pytest.approx(10.0 - 1.96 * 0.5)
        assert r.contains(10.5)
        assert not r.contains(13.0)


@given(
    strike=st.floats(min_value=50.0, max_value=200.0),
    sigma=st.floats(min_value=0.05, max_value=0.8),
)
@settings(max_examples=50)
def test_prop_put_call_parity(strike, sigma):
    params = GBMParams(spot=100.0, rate=0.02, volatility=sigma, maturity=0.5)
    call = black_scholes_price(params, strike, call=True)
    put = black_scholes_price(params, strike, call=False)
    parity = 100.0 - strike * math.exp(-0.02 * 0.5)
    assert call - put == pytest.approx(parity, abs=1e-8)


@given(strike=st.floats(min_value=60.0, max_value=150.0))
@settings(max_examples=30)
def test_prop_call_price_bounds(strike):
    call = black_scholes_price(PARAMS, strike)
    lower = max(
        0.0, PARAMS.spot - strike * math.exp(-PARAMS.rate * PARAMS.maturity)
    )
    assert lower - 1e-9 <= call <= PARAMS.spot
