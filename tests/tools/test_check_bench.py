"""The BENCH_*.json regression gate: tolerance bands + CLI exit codes."""

import json
import os
import sys

import pytest

sys.path.insert(
    0,
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "tools"),
)
import check_bench  # noqa: E402
from check_bench import compare_records, tolerance_for  # noqa: E402


class TestToleranceRules:
    def test_environment_and_timings_skipped(self):
        for path in (
            "python",
            "machine",
            "serving.wall_seconds",
            "fastpath.reference_ms",
            "lane_throughput.vector_cycles_per_s",
        ):
            assert tolerance_for(path) == "skip"

    def test_speedups_get_the_wide_band(self):
        assert tolerance_for("fastpath.speedup") == 0.75
        assert tolerance_for("lane_throughput.vector_speedup") == 0.75

    def test_everything_else_is_tight(self):
        assert tolerance_for("serving.steps.3.latency_s.p99") == 1e-6
        assert tolerance_for("fastpath.cycles") == 1e-6


class TestRulePrecedence:
    """First fnmatch wins: metric-shaped rules must beat block globs.

    With ``pipeline.*`` ahead of ``*speedup*`` a pipeline speedup
    metric would silently inherit the exact band instead of the
    wall-clock one — the ordering bug DEFAULT_RULES documents.
    """

    def test_pipeline_speedup_gets_the_wide_band_not_exact(self):
        assert tolerance_for("pipeline.speedup") == 0.75

    def test_pipeline_timings_stay_skipped(self):
        assert tolerance_for("pipeline.pipelined_ms") == "skip"
        assert tolerance_for("pipeline.monolithic_ms") == "skip"

    def test_pipeline_deterministic_leaves_stay_exact(self):
        assert tolerance_for("pipeline.overlap_ratio") == 1e-6
        assert tolerance_for("pipeline.stage_cycles.0") == 1e-6

    def test_loo_error_band_beats_block_globs(self):
        assert tolerance_for("pipeline.max_loo_relative_error") == 0.05
        assert tolerance_for("surrogate.max_loo_relative_error") == 0.05

    def test_custom_rules_respect_declaration_order(self):
        rules = (("a.*", "skip"), ("*", 1e-6))
        assert tolerance_for("a.b", rules) == "skip"
        # same patterns reversed: the catch-all shadows the skip
        assert tolerance_for("a.b", tuple(reversed(rules))) == 1e-6


class TestCompareRecords:
    BASE = {
        "python": "3.11.1",
        "serving": {
            "wall_seconds": 3.4,
            "steps": [{"completed": 2000, "latency_s": {"p99": 0.011}}],
        },
    }

    def test_identical_records_match(self):
        assert compare_records(self.BASE, json.loads(json.dumps(self.BASE))) \
            == []

    def test_skipped_paths_never_flag(self):
        fresh = json.loads(json.dumps(self.BASE))
        fresh["python"] = "3.12.0"
        fresh["serving"]["wall_seconds"] = 99.0
        assert compare_records(self.BASE, fresh) == []

    def test_deterministic_drift_flags(self):
        fresh = json.loads(json.dumps(self.BASE))
        fresh["serving"]["steps"][0]["completed"] = 1999
        findings = compare_records(self.BASE, fresh)
        assert [f["path"] for f in findings] == [
            "serving.steps.0.completed"
        ]
        assert findings[0]["kind"] == "mismatch"

    def test_within_tolerance_passes(self):
        base = {"fastpath": {"speedup": 10.0}}
        assert compare_records(base, {"fastpath": {"speedup": 14.0}}) == []
        findings = compare_records(base, {"fastpath": {"speedup": 60.0}})
        assert findings and findings[0]["tolerance"] == 0.75

    def test_missing_and_extra_keys(self):
        fresh = json.loads(json.dumps(self.BASE))
        del fresh["serving"]["steps"][0]["completed"]
        fresh["serving"]["novel"] = 1
        kinds = {f["path"]: f["kind"] for f in compare_records(
            self.BASE, fresh
        )}
        assert kinds == {
            "serving.steps.0.completed": "missing",
            "serving.novel": "extra",
        }

    def test_absent_key_detection_is_symmetric(self):
        # the same key is "missing" one way and "extra" the other —
        # both directions flag, under the identical subtree rule
        base = {"fastpath": {"cycles": 10}}
        fresh = {"fastpath": {}}
        assert [
            f["kind"] for f in compare_records(base, fresh)
        ] == ["missing"]
        assert [
            f["kind"] for f in compare_records(fresh, base)
        ] == ["extra"]

    def test_all_skipped_subtree_vanishing_is_silent(self):
        # a dict whose every leaf is exempt can vanish wholesale
        # without a finding, in either direction
        base = {
            "fastpath": {
                "timings": {"setup_ms": 1.0, "run_ms": 2.0},
                "cycles": 10,
            }
        }
        fresh = {"fastpath": {"cycles": 10}}
        assert compare_records(base, fresh) == []
        assert compare_records(fresh, base) == []

    def test_mixed_subtree_vanishing_still_flags(self):
        # one non-skipped leaf inside the vanished subtree is enough
        base = {
            "fastpath": {
                "detail": {"setup_ms": 1.0, "cycles": 10},
            }
        }
        fresh = {"fastpath": {}}
        missing = compare_records(base, fresh)
        assert [f["path"] for f in missing] == ["fastpath.detail"]
        assert missing[0]["kind"] == "missing"
        extra = compare_records(fresh, base)
        assert [f["path"] for f in extra] == ["fastpath.detail"]
        assert extra[0]["kind"] == "extra"

    def test_list_length_change_flags(self):
        fresh = json.loads(json.dumps(self.BASE))
        fresh["serving"]["steps"].append({"completed": 1})
        findings = compare_records(self.BASE, fresh)
        assert findings[0]["path"] == "serving.steps"

    def test_type_change_flags(self):
        findings = compare_records({"a": {"b": "x"}}, {"a": {"b": None}})
        assert findings[0]["kind"] == "type"

    def test_string_values_exact(self):
        base = {"serving": {"experiment": "serve-tier"}}
        assert compare_records(base, json.loads(json.dumps(base))) == []
        findings = compare_records(
            base, {"serving": {"experiment": "other"}}
        )
        assert findings[0]["kind"] == "mismatch"


class TestMain:
    def _records(self, tmp_path, drift=False):
        base = {
            "python": "3.11.1",
            "serving": {"wall_seconds": 1.0, "steps": [{"completed": 5}]},
        }
        fresh = json.loads(json.dumps(base))
        fresh["serving"]["wall_seconds"] = 2.0  # exempt
        if drift:
            fresh["serving"]["steps"][0]["completed"] = 6
        baseline = tmp_path / "BENCH_serving.json"
        freshfile = tmp_path / "fresh.json"
        baseline.write_text(json.dumps(base))
        freshfile.write_text(json.dumps(fresh))
        return str(baseline), str(freshfile)

    def test_ok_exit_zero(self, tmp_path, capsys):
        baseline, fresh = self._records(tmp_path)
        rc = check_bench.main(
            ["--suite", "serving", "--baseline", baseline, "--fresh", fresh]
        )
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_drift_exit_one(self, tmp_path, capsys):
        baseline, fresh = self._records(tmp_path, drift=True)
        rc = check_bench.main(
            ["--suite", "serving", "--baseline", baseline, "--fresh", fresh]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "serving.steps.0.completed" in out

    def test_report_only_exit_zero_on_drift(self, tmp_path, capsys):
        baseline, fresh = self._records(tmp_path, drift=True)
        rc = check_bench.main(
            ["--suite", "serving", "--baseline", baseline,
             "--fresh", fresh, "--report-only"]
        )
        assert rc == 0
        assert "not failing" in capsys.readouterr().out

    def test_unreadable_baseline_exit_two(self, tmp_path):
        rc = check_bench.main(
            ["--baseline", str(tmp_path / "absent.json"),
             "--fresh", str(tmp_path / "absent.json")]
        )
        assert rc == 2

    @pytest.mark.serve_soak
    def test_gate_passes_against_the_committed_serving_baseline(self):
        """The committed BENCH_serving.json must match a live re-run."""
        root = os.path.join(
            os.path.dirname(__file__), os.pardir, os.pardir
        )
        baseline = os.path.join(root, "BENCH_serving.json")
        rc = check_bench.main(["--suite", "serving", "--baseline", baseline])
        assert rc == 0
