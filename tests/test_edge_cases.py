"""Cross-cutting edge-case tests for thinner-covered paths."""

import numpy as np
import pytest

from repro.opencl import (
    CommandType,
    Context,
    EventStatus,
    KernelHandle,
    paper_platform,
)


class TestEventEdges:
    def test_latency_includes_queue_wait(self):
        from repro.opencl.queue import CommandQueue

        ctx = Context(paper_platform(), "FPGA")
        q = CommandQueue(ctx)
        k = KernelHandle("k", time_model=lambda d, n, **a: 0.5)
        q.enqueue_task(k)
        ev2 = q.enqueue_task(k)
        # second kernel queued at ~0 but starts after the first
        assert ev2.latency >= ev2.duration

    def test_complete_validates_order(self):
        from repro.opencl.event import Event

        ev = Event(CommandType.MARKER)
        with pytest.raises(ValueError):
            ev.complete(2.0, 1.0)

    def test_incomplete_latency_raises(self):
        from repro.opencl.event import Event

        ev = Event(CommandType.MARKER)
        with pytest.raises(RuntimeError):
            _ = ev.latency

    def test_profile_skips_queued_events(self):
        from repro.opencl.event import Event
        from repro.opencl.queue import CommandQueue

        ctx = Context(paper_platform(), "FPGA")
        q = CommandQueue(ctx)
        q.enqueue_marker("m")
        q.events.append(Event(CommandType.MARKER, label="ghost"))
        prof = q.profile()
        assert [p["label"] for p in prof] == ["m"]
        assert q.events[-1].status is EventStatus.QUEUED


class TestPowerModelEdges:
    def test_first_matching_interval_wins(self):
        from repro.power import ActivityInterval, PowerModel

        model = PowerModel()
        overlapping = [
            ActivityInterval(0.0, 10.0, "FPGA"),
            ActivityInterval(5.0, 15.0, "CPU"),
        ]
        # inside the overlap, the first-listed interval defines the load
        p = model.instantaneous_dynamic(7.0, overlapping)
        assert p == model.dynamic_w["FPGA"] + model.host_active_w

    def test_interval_end_exclusive(self):
        from repro.power import ActivityInterval, PowerModel

        model = PowerModel()
        iv = [ActivityInterval(0.0, 10.0, "GPU")]
        assert model.instantaneous_dynamic(10.0, iv) == 0.0
        assert model.instantaneous_dynamic(9.999, iv) > 0.0


class TestHlsReportEdges:
    @pytest.mark.parametrize("transform", [
        "marsaglia_bray", "icdf_fpga", "icdf_cuda", "box_muller",
    ])
    def test_all_transforms_have_depths(self, transform):
        from repro.core import (
            DecoupledConfig, GammaKernelConfig, synthesize_report,
        )
        from repro.rng.mersenne import MT521_PARAMS

        report = synthesize_report(
            DecoupledConfig(
                n_work_items=1,
                kernel=GammaKernelConfig(
                    transform=transform, mt_params=MT521_PARAMS, limit_main=32
                ),
                burst_words=2,
            )
        )
        assert report.main_loop().depth > 0


class TestFpgaRuntimeEdges:
    def test_effective_bandwidth_definition(self):
        from repro.devices import FpgaModel

        est = FpgaModel(n_work_items=8).estimate(1_000_000, 1, 0.05)
        assert est.effective_bandwidth_bps == pytest.approx(
            1_000_000 * 4 / est.seconds
        )

    def test_compute_bound_label(self):
        from repro.core.memory import MemoryChannelConfig
        from repro.devices import FpgaModel

        fast_channel = MemoryChannelConfig(setup_cycles=0, cycles_per_word=1)
        est = FpgaModel(
            n_work_items=1, channel=fast_channel, burst_words=256
        ).estimate(1_000_000, 1, 0.5)
        assert est.bound == "compute"


class TestBufferEdges:
    def test_readback_destination_too_small(self):
        ctx = Context(paper_platform(), "FPGA")
        q = ctx.create_queue()
        buf = ctx.create_buffer("b", 64)
        with pytest.raises(ValueError, match="too small"):
            q.enqueue_read_buffer(buf, out=np.zeros(2, dtype=np.float32))

    def test_read_window(self):
        ctx = Context(paper_platform(), "FPGA")
        q = ctx.create_queue()
        buf = ctx.create_buffer("b", 64)
        buf.store(0, np.arange(16, dtype=np.float32))
        ev = q.enqueue_read_buffer(buf, nbytes=16, offset_bytes=16)
        np.testing.assert_array_equal(
            ev.info["data"].view(np.float32), [4, 5, 6, 7]
        )
