"""CampaignStore: the claim protocol, provenance and idempotent seeding."""

import threading

import pytest

from repro.campaign.store import CampaignStore, config_hash


@pytest.fixture
def store(tmp_path):
    return CampaignStore(tmp_path / "campaign.sqlite", campaign="test")


class TestConfigHash:
    def test_identity_is_payload_plus_seed(self):
        payload = {"experiment": "eq1", "kwargs": {}}
        assert config_hash(payload, 1) == config_hash(dict(payload), 1)
        assert config_hash(payload, 1) != config_hash(payload, 2)
        assert config_hash(payload, 1) != config_hash(
            {"experiment": "table1", "kwargs": {}}, 1
        )

    def test_key_order_is_canonicalized(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})


class TestSeeding:
    def test_add_row_is_idempotent(self, store):
        payload = {"experiment": "eq1", "kwargs": {}}
        first = store.add_row(payload, seed=7)
        second = store.add_row(payload, seed=7)
        assert first == second
        assert store.counts()["pending"] == 1

    def test_reseeding_never_resets_a_done_row(self, store):
        payload = {"experiment": "eq1", "kwargs": {}}
        row_id = store.add_row(payload, seed=7)
        store.claim("w0")
        store.finish(row_id, {"ok": True})
        store.add_row(payload, seed=7)  # re-seed the same grid
        assert store.get(row_id).status == "done"
        assert store.get(row_id).result == {"ok": True}

    def test_record_done_latest_wins_and_counts_attempts(self, store):
        payload = {"bench": "fastpath", "suite": "simulator"}
        first = store.record_done(payload, {"cycles": 1})
        second = store.record_done(payload, {"cycles": 2})
        assert first == second
        row = store.get(first)
        assert row.status == "done"
        assert row.result == {"cycles": 2}
        assert row.attempts == 2


class TestClaimProtocol:
    def test_claim_lifecycle_stamps_provenance(self, store):
        row_id = store.add_row({"experiment": "eq1"}, seed=1)
        row = store.claim("worker-a")
        assert row.id == row_id
        assert row.status == "claimed"
        assert row.worker_id == "worker-a"
        assert row.attempts == 1
        assert row.claimed_at is not None
        store.finish(row_id, {"value": 42})
        done = store.get(row_id)
        assert done.status == "done"
        assert done.result == {"value": 42}
        assert done.finished_at is not None

    def test_claim_drained_returns_none(self, store):
        row_id = store.add_row({"experiment": "eq1"})
        store.claim("w")
        store.fail(row_id, "boom")
        assert store.claim("w") is None

    def test_claims_are_lowest_id_first(self, store):
        ids = store.add_rows(
            [{"experiment": n} for n in ("eq1", "table1", "rejection")]
        )
        assert [store.claim("w").id for _ in ids] == ids

    def test_resolving_an_unclaimed_row_refuses(self, store):
        row_id = store.add_row({"experiment": "eq1"})
        with pytest.raises(RuntimeError, match="not 'claimed'"):
            store.finish(row_id, {})
        # a released claim must also refuse: the resume path took the
        # row back, a late worker result would be a double execution
        store.claim("w")
        store.release_claims()
        with pytest.raises(RuntimeError, match="released"):
            store.finish(row_id, {})

    def test_concurrent_threads_never_share_a_row(self, store):
        n_rows, n_workers = 12, 6
        store.add_rows([{"experiment": f"row{i}"} for i in range(n_rows)])
        claims: list = []
        lock = threading.Lock()
        barrier = threading.Barrier(n_workers)

        def worker(name):
            barrier.wait()
            while True:
                row = store.claim(name)
                if row is None:
                    return
                with lock:
                    claims.append(row.id)
                store.finish(row.id, {"by": name})

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",))
            for i in range(n_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert sorted(claims) == sorted(set(claims))  # no double-claims
        assert store.counts()["done"] == n_rows


class TestResumePaths:
    def test_release_claims_flips_orphans_back(self, store):
        store.add_rows([{"experiment": "eq1"}, {"experiment": "table1"}])
        store.claim("dead-worker")
        store.claim("live-worker")
        assert store.release_claims(worker_id="dead-worker") == 1
        counts = store.counts()
        assert counts == {
            "pending": 1, "claimed": 1, "done": 0, "failed": 0
        }
        assert store.release_claims() == 1  # the rest
        assert store.counts()["pending"] == 2

    def test_retry_failed(self, store):
        row_id = store.add_row({"experiment": "eq1"})
        store.claim("w")
        store.fail(row_id, "transient")
        assert store.retry_failed() == 1
        row = store.get(row_id)
        assert row.status == "pending"
        assert row.error == "transient"  # kept until the next resolve


class TestQueries:
    def test_counts_zero_filled(self, store):
        assert store.counts() == {
            "pending": 0, "claimed": 0, "done": 0, "failed": 0
        }

    def test_campaign_column_scopes_everything(self, tmp_path):
        path = tmp_path / "shared.sqlite"
        a = CampaignStore(path, campaign="a")
        b = CampaignStore(path, campaign="b")
        a.add_row({"experiment": "eq1"})
        b.add_row({"experiment": "eq1"})
        assert a.counts()["pending"] == 1
        assert a.claim("w").campaign == "a"
        assert b.counts()["claimed"] == 0
        assert sorted(a.campaigns()) == ["a", "b"]

    def test_get_unknown_row_raises(self, store):
        with pytest.raises(KeyError):
            store.get(999)

    def test_rows_filter_by_status(self, store):
        ids = store.add_rows([{"experiment": "eq1"}, {"experiment": "fig2"}])
        store.claim("w")
        store.finish(ids[0], {})
        assert [r.id for r in store.rows(status="done")] == [ids[0]]
        assert [r.id for r in store.rows()] == ids


class TestStepsAndMeta:
    def test_step_state_round_trip(self, store):
        assert store.step_record("calibrate") is None
        store.start_step("calibrate")
        assert store.step_statuses() == {"calibrate": "running"}
        store.finish_step("calibrate", {"cycles": 10})
        record = store.step_record("calibrate")
        assert record["status"] == "done"
        assert record["state"] == {"cycles": 10}
        store.fail_step("calibrate", "boom")
        assert store.step_record("calibrate")["state"] == {"error": "boom"}

    def test_meta_round_trip(self, store):
        assert store.get_meta("report") is None
        store.set_meta("report", "text v1")
        store.set_meta("report", "text v2")
        assert store.get_meta("report") == "text v2"
        assert store.get_meta("absent", default=0) == 0
