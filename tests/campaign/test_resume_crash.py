"""Crash-resume acceptance: SIGKILL a worker mid-row, resume, nothing
done is recomputed and the final report is byte-identical to an
uninterrupted run.  Plus real cross-process claim contention."""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign.campaign import CampaignPlan, run_campaign
from repro.campaign.store import CampaignStore

_PROBE = '''\
"""Campaign row probe: logs every execution, optionally blocks."""

import os
import time


def work(log, tag, block_unless=None, sleep_s=0.0):
    with open(log, "a") as fh:
        fh.write(f"{tag} pid={os.getpid()}\\n")
        fh.flush()
    if block_unless and not os.path.exists(block_unless):
        time.sleep(120)  # the SIGKILL target; never finishes naturally
    if sleep_s:
        time.sleep(sleep_s)
    return {"tag": tag}
'''


@pytest.fixture
def probe_env(tmp_path):
    """A worker-subprocess env whose PYTHONPATH can import the probe."""
    (tmp_path / "campaign_probe.py").write_text(_PROBE)
    src = os.path.join(
        os.path.dirname(__file__), os.pardir, os.pardir, "src"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(tmp_path), os.path.abspath(src), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    sys.path.insert(0, str(tmp_path))  # in-process resume imports it too
    yield env
    sys.path.remove(str(tmp_path))
    sys.modules.pop("campaign_probe", None)


def _worker_proc(db, campaign, env):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "worker",
         "--db", str(db), "--campaign", campaign],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for(predicate, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError("timed out waiting for worker progress")


def _log_counts(log):
    counts: dict = {}
    if log.exists():
        for line in log.read_text().splitlines():
            tag = line.split()[0]
            counts[tag] = counts.get(tag, 0) + 1
    return counts


def _plan(log, flag, n=4, blocking_row=2):
    grid = []
    for i in range(n):
        kwargs = {"log": str(log), "tag": f"row{i}"}
        if i == blocking_row:
            kwargs["block_unless"] = str(flag)
        grid.append({"spec": "campaign_probe:work", "kwargs": kwargs})
    return CampaignPlan(name="crash", grid=tuple(grid), calibrate=None, seed=3)


class TestSigkillResume:
    def test_resume_recomputes_nothing_and_report_is_byte_identical(
        self, tmp_path, probe_env
    ):
        log = tmp_path / "executions.log"
        flag = tmp_path / "unblock.flag"
        plan = _plan(log, flag)
        db = tmp_path / "crash.sqlite"
        run_campaign(db, plan=plan, seed_only=True)

        # a real worker process claims row0, row1, then blocks on row2
        proc = _worker_proc(db, "crash", probe_env)
        try:
            _wait_for(lambda: _log_counts(log).get("row2") == 1)
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=30)

        store = CampaignStore(db, campaign="crash")
        counts = store.counts()
        assert counts["done"] == 2  # row0, row1 finished before the kill
        assert counts["claimed"] == 1  # row2 orphaned mid-execution
        assert counts["pending"] == 1  # row3 never started

        # resume: the killed row unblocks, done rows must not re-run
        flag.touch()
        out = run_campaign(db, plan=plan, resume=True)
        assert out["counts"] == {
            "pending": 0, "claimed": 0, "done": 4, "failed": 0
        }
        executions = _log_counts(log)
        assert executions["row0"] == 1  # done before the crash: untouched
        assert executions["row1"] == 1
        assert executions["row2"] == 2  # killed mid-row, so re-executed
        assert executions["row3"] == 1
        # the orphaned claim needed a second attempt; provenance shows it
        (row2,) = [
            r for r in store.rows() if r.payload["kwargs"]["tag"] == "row2"
        ]
        assert row2.attempts == 2

        # byte-identical acceptance: the same plan run uninterrupted in
        # a fresh database renders exactly the same report
        clean_db = tmp_path / "clean.sqlite"
        run_campaign(clean_db, plan=plan)
        clean = CampaignStore(clean_db, campaign="crash")
        assert store.get_meta("report") == clean.get_meta("report")


class TestCrossProcessContention:
    def test_two_workers_split_the_grid_without_double_execution(
        self, tmp_path, probe_env
    ):
        log = tmp_path / "executions.log"
        db = tmp_path / "contend.sqlite"
        store = CampaignStore(db, campaign="contend")
        n_rows = 8
        store.add_rows(
            [
                {
                    "spec": "campaign_probe:work",
                    # a small sleep keeps both workers in the loop long
                    # enough to genuinely interleave claims
                    "kwargs": {
                        "log": str(log), "tag": f"row{i}", "sleep_s": 0.05
                    },
                }
                for i in range(n_rows)
            ]
        )
        procs = [
            _worker_proc(db, "contend", probe_env) for _ in range(2)
        ]
        assert [p.wait(timeout=60) for p in procs] == [0, 0]
        assert store.counts()["done"] == n_rows
        # the acceptance bar: every row executed exactly once
        executions = _log_counts(log)
        assert executions == {f"row{i}": 1 for i in range(n_rows)}
        # worker ids are recorded per row and name real pids
        workers = {r.worker_id for r in store.rows()}
        assert all(w and ":" in w for w in workers)
