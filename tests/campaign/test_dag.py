"""StepDAG: topological order, persisted state, resume-at-first-failure."""

import pytest

from repro.campaign.dag import Step, StepDAG
from repro.campaign.store import CampaignStore


@pytest.fixture
def store(tmp_path):
    return CampaignStore(tmp_path / "dag.sqlite", campaign="dag")


def _step(name, log, after=(), state=None, fail=False):
    def run(store, upstream):
        log.append((name, dict(upstream)))
        if fail:
            raise RuntimeError(f"{name} exploded")
        return state

    return Step(name, run, after=after)


class TestValidation:
    def test_duplicate_names_raise(self, store):
        log: list = []
        with pytest.raises(ValueError, match="duplicate"):
            StepDAG(store, [_step("a", log), _step("a", log)])

    def test_unknown_dependency_raises(self, store):
        with pytest.raises(ValueError, match="unknown step"):
            StepDAG(store, [_step("a", [], after=("ghost",))])

    def test_cycle_raises(self, store):
        log: list = []
        with pytest.raises(ValueError, match="cycle"):
            StepDAG(
                store,
                [
                    _step("a", log, after=("b",)),
                    _step("b", log, after=("a",)),
                ],
            )

    def test_declaration_order_breaks_ties(self, store):
        log: list = []
        dag = StepDAG(
            store,
            [
                _step("report", log, after=("sweep",)),
                _step("sweep", log, after=("calibrate",)),
                _step("calibrate", log),
                _step("validate", log, after=("calibrate",)),
            ],
        )
        assert [s.name for s in dag.steps] == [
            "calibrate", "sweep", "report", "validate"
        ]


class TestExecution:
    def test_upstream_states_flow_downstream(self, store):
        log: list = []
        dag = StepDAG(
            store,
            [
                _step("calibrate", log, state={"gamma": 1.39}),
                _step("sweep", log, after=("calibrate",), state={"rows": 3}),
                _step("report", log, after=("calibrate", "sweep")),
            ],
        )
        states = dag.run()
        assert states["calibrate"] == {"gamma": 1.39}
        assert log[-1] == (
            "report", {"calibrate": {"gamma": 1.39}, "sweep": {"rows": 3}}
        )
        assert dag.status() == {
            "calibrate": "done", "sweep": "done", "report": "done"
        }

    def test_resume_skips_done_steps_and_loads_state(self, store):
        log: list = []
        steps = [
            _step("a", log, state={"n": 1}),
            _step("b", log, after=("a",)),
        ]
        StepDAG(store, steps).run()
        assert [name for name, _ in log] == ["a", "b"]
        # a second run over the same store recomputes nothing, but the
        # skipped step's state is still there for downstream consumers
        states = StepDAG(store, steps).run()
        assert [name for name, _ in log] == ["a", "b"]
        assert states["a"] == {"n": 1}

    def test_failure_marks_step_and_resume_reenters_there(self, store):
        log: list = []
        failing = [
            _step("a", log, state={"n": 1}),
            _step("b", log, after=("a",), fail=True),
            _step("c", log, after=("b",)),
        ]
        with pytest.raises(RuntimeError, match="b exploded"):
            StepDAG(store, failing).run()
        assert store.step_statuses()["b"] == "failed"
        assert store.step_record("b")["state"] == {
            "error": "RuntimeError: b exploded"
        }
        # "fix" step b and resume: a is skipped, b and c run
        fixed = [
            _step("a", log, state={"n": 1}),
            _step("b", log, after=("a",), state={"ok": True}),
            _step("c", log, after=("b",)),
        ]
        StepDAG(store, fixed).run()
        assert [name for name, _ in log] == ["a", "b", "b", "c"]
        # the resumed b still saw a's persisted state
        assert log[-2] == ("b", {"a": {"n": 1}})

    def test_fresh_run_recomputes_everything(self, store):
        log: list = []
        steps = [_step("a", log), _step("b", log, after=("a",))]
        StepDAG(store, steps).run()
        StepDAG(store, steps).run(resume=False)
        assert [name for name, _ in log] == ["a", "b", "a", "b"]
