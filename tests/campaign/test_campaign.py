"""Campaign driver: payloads, the worker loop, the deterministic report."""

import json

import pytest

from repro.campaign.campaign import (
    PLANS,
    CampaignPlan,
    execute_payload,
    payload_label,
    render_report,
    result_to_json,
    run_campaign,
    run_worker,
)
from repro.campaign.store import CampaignStore

#: cheap, deterministic spec payload: config_hash is pure and imported
#: from the package under test, so no tmp module machinery is needed
GOOD = {
    "spec": "repro.campaign.store:config_hash",
    "kwargs": {"payload": {"x": 1}, "seed": 1},
}
BAD = {"spec": "repro.campaign.store:config_hash", "kwargs": {"bogus": 1}}


class TestPayloads:
    def test_spec_payload_executes(self):
        out = execute_payload(GOOD)
        assert set(out) == {"value"}  # scalar return lands under "value"
        assert isinstance(out["value"], str)

    def test_registry_payload_executes(self):
        out = execute_payload({"experiment": "eq1", "kwargs": {}})
        assert out["headers"] and out["rows"]  # ExperimentResult shape
        json.dumps(out)

    def test_bench_payload_resolves_known_blocks(self):
        from repro.campaign.campaign import _resolve_bench

        assert callable(_resolve_bench("fastpath"))
        with pytest.raises(ValueError, match="unknown bench block"):
            _resolve_bench("no-such-bench")

    def test_unknown_payload_kind_raises(self):
        with pytest.raises(ValueError, match="experiment"):
            execute_payload({"mystery": 1})

    def test_bad_spec_raises(self):
        with pytest.raises(ValueError, match="module:callable"):
            execute_payload({"spec": "no-colon"})

    def test_labels(self):
        assert payload_label({"experiment": "eq1"}) == "eq1"
        assert payload_label(
            {"experiment": "eq1", "kwargs": {"b": 2, "a": 1}}
        ) == "eq1(a=1,b=2)"
        assert payload_label(
            {"bench": "fastpath", "suite": "simulator"}
        ) == "bench:fastpath"

    def test_result_to_json_shapes(self):
        assert result_to_json({"k": 1}) == {"k": 1}
        assert result_to_json(3.5) == {"value": 3.5}


class TestWorkerLoop:
    def test_failures_do_not_wedge_the_worker(self, tmp_path):
        store = CampaignStore(tmp_path / "c.sqlite", campaign="w")
        store.add_rows([GOOD, BAD, GOOD | {"kwargs": {"payload": {}, "seed": 2}}])
        tally = run_worker(store, worker_id="w0")
        assert tally == {"done": 2, "failed": 1}
        failed = store.rows(status="failed")
        assert len(failed) == 1
        assert "TypeError" in failed[0].error  # full traceback kept
        assert failed[0].worker_id == "w0"

    def test_max_rows_stops_early(self, tmp_path):
        store = CampaignStore(tmp_path / "c.sqlite", campaign="w")
        store.add_rows(
            [GOOD | {"kwargs": {"payload": {}, "seed": s}} for s in range(4)]
        )
        tally = run_worker(store, max_rows=2)
        assert sum(tally.values()) == 2
        assert store.counts()["pending"] == 2


class TestReport:
    def test_report_is_provenance_free_and_hash_ordered(self, tmp_path):
        store = CampaignStore(tmp_path / "c.sqlite", campaign="rpt")
        store.add_rows([GOOD, {"experiment": "eq1", "kwargs": {}}])
        run_worker(store, worker_id="some-host:1234")
        text = render_report(store, calibration={"gamma": 1.39})
        assert "some-host" not in text  # no worker ids
        assert "calibration: gamma=1.39" in text
        hashes = [r.config_hash for r in store.rows()]
        first, second = sorted(hashes)
        assert text.index(first) < text.index(second)


class TestRunCampaign:
    def _plan(self, n=3):
        grid = tuple(
            {
                "spec": "repro.campaign.store:config_hash",
                "kwargs": {"payload": {"i": i}, "seed": 0},
            }
            for i in range(n)
        )
        return CampaignPlan(name="tiny", grid=grid, calibrate=None, seed=0)

    def test_seed_only_then_full_run(self, tmp_path):
        db = tmp_path / "c.sqlite"
        seeded = run_campaign(db, plan=self._plan(), seed_only=True)
        assert seeded == {
            "seeded": 3,
            "counts": {"pending": 3, "claimed": 0, "done": 0, "failed": 0},
        }
        out = run_campaign(db, plan=self._plan())
        assert out["counts"]["done"] == 3
        assert out["steps"] == {
            "calibrate": "done", "sweep": "done",
            "validate": "done", "report": "done",
        }
        store = CampaignStore(db, campaign="tiny")
        assert store.get_meta("report")

    def test_rerun_skips_done_steps_and_report_is_stable(self, tmp_path):
        db = tmp_path / "c.sqlite"
        run_campaign(db, plan=self._plan())
        store = CampaignStore(db, campaign="tiny")
        first = store.get_meta("report")
        run_campaign(db, plan=self._plan())  # all steps already done
        assert store.get_meta("report") == first

    def test_unknown_named_plan_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown plan"):
            run_campaign(tmp_path / "c.sqlite", plan="nope")

    def test_shipped_plans_have_disjoint_names(self):
        assert set(PLANS) == {"default", "mini"}
        for name, plan in PLANS.items():
            assert plan.name == name
            assert plan.grid
