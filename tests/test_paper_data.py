"""Consistency checks on the published reference data (repro.paper)."""

import pytest

from repro import paper


class TestSetup:
    def test_total_outputs(self):
        assert paper.SETUP.total_outputs == 2_621_440 * 240

    def test_outputs_per_work_item(self):
        # 629,145,600 / 65,536 = 9,600 exactly
        assert paper.SETUP.outputs_per_work_item == 9600
        assert (
            paper.SETUP.outputs_per_work_item * paper.SETUP.global_size
            == paper.SETUP.total_outputs
        )

    def test_data_volume_is_2_5_gb(self):
        # "a total of ~2.5 GB of generated data ... per simulation run"
        assert paper.SETUP.total_bytes == pytest.approx(2.5e9, rel=0.01)


class TestTables:
    def test_table1_configs(self):
        assert paper.TABLE1["Config2"]["states"] == 17
        assert paper.TABLE1["Config3"]["transform"] == "icdf"

    def test_table3_complete(self):
        for row in paper.TABLE3_RUNTIME_MS.values():
            assert set(row) == {"CPU", "GPU", "PHI", "FPGA"}
            assert all(v > 0 for v in row.values())

    def test_fpga_same_runtime_both_icdf_rows(self):
        # the FPGA always runs the bit-level ICDF: identical cells
        assert (
            paper.TABLE3_RUNTIME_MS["Config3_cuda"]["FPGA"]
            == paper.TABLE3_RUNTIME_MS["Config3_fpga_style"]["FPGA"]
        )

    def test_headline_speedup(self):
        # "FPGAs can deliver up to 5.5x speedup"
        t = paper.TABLE3_RUNTIME_MS["Config1"]
        assert t["CPU"] / t["FPGA"] == pytest.approx(5.5, abs=0.1)
        assert t["GPU"] / t["FPGA"] == pytest.approx(3.5, abs=0.1)
        assert t["PHI"] / t["FPGA"] == pytest.approx(1.4, abs=0.1)

    def test_table2_availability(self):
        avail = paper.TABLE2_UTILIZATION["available"]
        assert avail == {"Slice": 107_400, "DSP": 3_600, "BRAM": 1_470}

    def test_rejection_rate_ranges_ordered(self):
        for t in ("marsaglia_bray", "icdf"):
            r = paper.REJECTION_RATES[t]
            assert r["v0.1"] < r["setup"] < r["v100"]

    def test_eq1_consistency(self):
        """The paper's own Eq (1) numbers recompute from its inputs."""
        s = paper.SETUP
        t12 = (
            s.total_outputs / (6 * s.fpga_frequency_hz) * (1 + 0.303) * 1e3
        )
        t34 = (
            s.total_outputs / (8 * s.fpga_frequency_hz) * (1 + 0.074) * 1e3
        )
        assert t12 == pytest.approx(paper.EQ1_PREDICTIONS_MS["Config1,2"], rel=0.01)
        assert t34 == pytest.approx(paper.EQ1_PREDICTIONS_MS["Config3,4"], rel=0.01)

    def test_measured_bandwidth_consistent_with_runtime(self):
        """§IV-E: total data / measured runtime ≈ quoted bandwidth."""
        gb = paper.SETUP.total_bytes / 1e9
        t12 = paper.TABLE3_RUNTIME_MS["Config1"]["FPGA"] / 1e3
        assert gb / t12 == pytest.approx(
            paper.MEASURED_BANDWIDTH_GBPS["Config1,2"], rel=0.02
        )
        t34 = paper.TABLE3_RUNTIME_MS["Config3_cuda"]["FPGA"] / 1e3
        assert gb / t34 == pytest.approx(
            paper.MEASURED_BANDWIDTH_GBPS["Config3,4"], rel=0.02
        )
