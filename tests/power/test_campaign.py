"""Tests for the multi-device measurement campaign."""

import pytest

from repro.paper import TABLE3_RUNTIME_MS
from repro.power import (
    MeasurementProtocol,
    PowerModel,
    VirtualMultimeter,
    measure_campaign,
)


def _kernels(config="Config1"):
    return {
        dev: TABLE3_RUNTIME_MS[config][dev] / 1e3
        for dev in ("CPU", "GPU", "PHI", "FPGA")
    }


@pytest.fixture(scope="module")
def campaign():
    meter = VirtualMultimeter(PowerModel())
    return measure_campaign(meter, _kernels())


class TestCampaign:
    def test_all_devices_measured(self, campaign):
        assert set(campaign.per_device) == {"CPU", "GPU", "PHI", "FPGA"}

    def test_activity_intervals_disjoint(self, campaign):
        ivs = sorted(campaign.activity, key=lambda i: i.start_s)
        for a, b in zip(ivs, ivs[1:]):
            assert b.start_s >= a.end_s + 30.0  # cooldown gap preserved

    def test_matches_individual_protocol(self, campaign):
        """Campaign extraction ≈ a dedicated per-device measurement
        (small drift allowed: the campaign shares one noise/cooling
        trace)."""
        meter = VirtualMultimeter(PowerModel())
        proto = MeasurementProtocol(meter)
        for dev, kernel_s in _kernels().items():
            solo = proto.measure(dev, kernel_s)
            joint = campaign.per_device[dev]
            assert joint.energy_per_invocation_j == pytest.approx(
                solo.energy_per_invocation_j, rel=0.03
            )

    def test_fpga_most_efficient(self, campaign):
        assert campaign.most_efficient() == "FPGA"

    def test_trace_is_continuous(self, campaign):
        times = [s.time_s for s in campaign.samples]
        assert times == sorted(times)
        assert campaign.duration_s > 4 * 150.0  # four active phases

    def test_validation(self):
        meter = VirtualMultimeter(PowerModel())
        with pytest.raises(ValueError):
            measure_campaign(meter, {"FPGA": 0.0})
        with pytest.raises(ValueError):
            measure_campaign(meter, {"FPGA": 1.0}, min_active_s=50.0)

    def test_energies_dict(self, campaign):
        e = campaign.energies()
        assert set(e) == {"CPU", "GPU", "PHI", "FPGA"}
        assert all(v > 0 for v in e.values())
