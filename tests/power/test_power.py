"""Tests for the power model, virtual multimeter and protocol."""

import numpy as np
import pytest

from repro.paper import FIG9_FPGA_EFFICIENCY, IDLE_POWER_W, TABLE3_RUNTIME_MS
from repro.power import (
    ActivityInterval,
    DynamicEnergyResult,
    MeasurementProtocol,
    PowerModel,
    VirtualMultimeter,
)


class TestActivityInterval:
    def test_validation(self):
        with pytest.raises(ValueError):
            ActivityInterval(5.0, 5.0, "FPGA")
        with pytest.raises(ValueError, match="unknown device"):
            ActivityInterval(0.0, 1.0, "TPU")


class TestPowerModel:
    def test_idle_floor(self):
        model = PowerModel()
        _, watts = model.trace([], 10.0)
        assert np.allclose(watts, IDLE_POWER_W)

    def test_active_plateau(self):
        model = PowerModel()
        activity = [ActivityInterval(0.0, 100.0, "FPGA")]
        _, watts = model.trace(activity, 100.0)
        # late in the run the cooling lag has converged
        assert watts[-1] == pytest.approx(model.steady_state_power("FPGA"), rel=0.01)

    def test_fpga_draws_least(self):
        model = PowerModel()
        plateaus = {d: model.steady_state_power(d) for d in ("CPU", "GPU", "PHI", "FPGA")}
        assert min(plateaus, key=plateaus.get) == "FPGA"

    def test_cooling_lag_rises_gradually(self):
        model = PowerModel(cooling_tau_s=10.0)
        activity = [ActivityInterval(0.0, 50.0, "GPU")]
        _, watts = model.trace(activity, 50.0, dt_s=0.1)
        early = watts[5]
        late = watts[-1]
        assert early < late  # shoulder, not a step

    def test_power_decays_after_activity(self):
        model = PowerModel()
        activity = [ActivityInterval(0.0, 10.0, "CPU")]
        times, watts = model.trace(activity, 40.0, dt_s=0.1)
        after = watts[times > 35.0]
        assert np.all(after < IDLE_POWER_W + 2.0)

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            PowerModel().trace([], 0.0)
        with pytest.raises(ValueError):
            PowerModel().trace([], 10.0, dt_s=0.0)


class TestVirtualMultimeter:
    def test_one_sample_per_second(self):
        meter = VirtualMultimeter(PowerModel())
        samples = meter.record([], 10.0)
        assert len(samples) == 10
        assert samples[1].time_s - samples[0].time_s == pytest.approx(1.0)

    def test_noise_reproducible(self):
        m1 = VirtualMultimeter(PowerModel(), noise_w=1.0, seed=3)
        m2 = VirtualMultimeter(PowerModel(), noise_w=1.0, seed=3)
        s1 = m1.record([], 20.0)
        s2 = m2.record([], 20.0)
        assert [s.watts for s in s1] == [s.watts for s in s2]

    def test_integrate_idle(self):
        meter = VirtualMultimeter(PowerModel())
        samples = meter.record([], 120.0)
        energy = meter.integrate(samples, 10.0, 110.0)
        assert energy == pytest.approx(IDLE_POWER_W * 100.0, rel=0.001)

    def test_integrate_window_validation(self):
        meter = VirtualMultimeter(PowerModel())
        samples = meter.record([], 10.0)
        with pytest.raises(ValueError):
            meter.integrate(samples, 5.0, 5.0)
        with pytest.raises(ValueError, match="not enough samples"):
            meter.integrate(samples, 100.0, 200.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            VirtualMultimeter(PowerModel(), sample_period_s=0.0)
        with pytest.raises(ValueError):
            VirtualMultimeter(PowerModel(), noise_w=-1.0)


class TestProtocol:
    def _measure(self, device, kernel_s, **kw):
        meter = VirtualMultimeter(PowerModel())
        return MeasurementProtocol(meter, **kw).measure(device, kernel_s)

    def test_invocations_non_integer(self):
        r = self._measure("FPGA", 0.701)
        assert r.invocations_in_window == pytest.approx(100.0 / 0.701)
        assert r.invocations_in_window % 1 != 0

    def test_energy_positive_and_sensible(self):
        r = self._measure("FPGA", 0.701)
        model = PowerModel()
        expected = (
            (model.dynamic_w["FPGA"] + model.host_active_w)
            * (1 + model.cooling_fraction)
            * 0.701
        )
        assert r.energy_per_invocation_j == pytest.approx(expected, rel=0.05)

    def test_idle_subtraction(self):
        r = self._measure("CPU", 3.825)
        assert r.idle_energy_j == pytest.approx(IDLE_POWER_W * 100.0)
        assert r.total_energy_j > r.idle_energy_j

    def test_dynamic_power_property(self):
        r = self._measure("GPU", 2.479)
        assert r.average_dynamic_power_w == pytest.approx(
            r.dynamic_energy_j / 100.0
        )

    def test_protocol_validation(self):
        meter = VirtualMultimeter(PowerModel())
        with pytest.raises(ValueError):
            MeasurementProtocol(meter, min_active_s=50.0, window_s=100.0)
        with pytest.raises(ValueError):
            MeasurementProtocol(meter).measure("FPGA", 0.0)

    def test_result_is_frozen_dataclass(self):
        r = self._measure("FPGA", 0.7)
        assert isinstance(r, DynamicEnergyResult)
        with pytest.raises(AttributeError):
            r.device = "GPU"


class TestFig9Ratios:
    def test_config1_efficiency_ratios(self):
        """FPGA energy advantage under Config1: ~9.5x / 7.9x / 4.1x."""
        meter = VirtualMultimeter(PowerModel())
        proto = MeasurementProtocol(meter)
        energy = {
            dev: proto.measure(
                dev, TABLE3_RUNTIME_MS["Config1"][dev] / 1e3
            ).energy_per_invocation_j
            for dev in ("CPU", "GPU", "PHI", "FPGA")
        }
        for dev, paper_ratio in FIG9_FPGA_EFFICIENCY["Config1"].items():
            ratio = energy[dev] / energy["FPGA"]
            assert ratio == pytest.approx(paper_ratio, rel=0.15), dev

    def test_fpga_most_efficient_in_all_configs(self):
        """Fig 9: 'The FPGA solution shows the best energy efficiency in
        all cases'."""
        meter = VirtualMultimeter(PowerModel())
        proto = MeasurementProtocol(meter)
        for cfg in ("Config1", "Config2", "Config3_cuda", "Config4_cuda"):
            energies = {
                dev: proto.measure(
                    dev, TABLE3_RUNTIME_MS[cfg][dev] / 1e3
                ).energy_per_invocation_j
                for dev in ("CPU", "GPU", "PHI", "FPGA")
            }
            assert min(energies, key=energies.get) == "FPGA", cfg

    def test_config4_margin_shrinks(self):
        """Fig 9: the advantage shrinks to ~2.2x vs GPU/PHI under Config4."""
        meter = VirtualMultimeter(PowerModel())
        proto = MeasurementProtocol(meter)
        e = {
            dev: proto.measure(
                dev, TABLE3_RUNTIME_MS["Config4_cuda"][dev] / 1e3
            ).energy_per_invocation_j
            for dev in ("GPU", "PHI", "FPGA")
        }
        assert 1.4 < e["GPU"] / e["FPGA"] < 3.0
        assert 1.4 < e["PHI"] / e["FPGA"] < 3.0
