"""Tests for the ``python -m repro`` command-line interface."""

import json
import subprocess
import sys

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestMainFunction:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_single_experiment(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "[table1:" in out

    def test_multiple_experiments(self, capsys):
        assert main(["table1", "eq1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Eq (1)" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig42"])

    def test_fig8_summarized(self, capsys):
        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "samples" in out and "plateau" in out

    def test_experiments_derive_from_registry(self):
        from repro.harness import registry

        assert list(EXPERIMENTS) == registry.experiment_names()
        assert "serve-bench" in EXPERIMENTS


class TestJsonOutput:
    def test_json_single_experiment(self, capsys):
        assert main(["--json", "eq1"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 1
        (record,) = records
        assert record["name"] == "eq1"
        assert record["wall_seconds"] >= 0
        assert record["headers"] and record["rows"]
        assert set(record["scalars"]) == set(map(str, record["headers"]))

    def test_json_pruned_sweeps_round_trip(self, capsys):
        """The new pruned-sweep experiments use the same record schema."""
        assert main(["--json", "fifo-prune", "sweep-prune"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert [r["name"] for r in records] == ["fifo-prune", "sweep-prune"]
        for record in records:
            # same round-trip contract the older experiments satisfy
            assert json.loads(json.dumps(record)) == record
            assert record["wall_seconds"] >= 0
            assert record["headers"] and record["rows"]
            assert set(record["scalars"]) == set(map(str, record["headers"]))
            assert "recommended depth" in record["notes"] or (
                "frontier" in record["notes"]
            )
        fifo, sweep = records
        # un-simulated grid points survive coercion as "-" placeholders
        assert any("-" in row for row in fifo["rows"])
        assert {len(row) for row in sweep["rows"]} == {
            len(sweep["headers"])
        }

    def test_json_timing_prune_round_trip(self, capsys):
        """The timing-closure sweep rides the same record schema."""
        assert main(["--json", "timing-prune"]) == 0
        (record,) = json.loads(capsys.readouterr().out)
        assert record["name"] == "timing-prune"
        assert json.loads(json.dumps(record)) == record
        assert record["wall_seconds"] >= 0
        assert set(record["scalars"]) == set(map(str, record["headers"]))
        assert "derated clock [MHz]" in record["headers"]
        assert "frontier" in record["notes"]
        # every row coerces cleanly whether its point was simulated or
        # pruned to a "-" placeholder (a 6-point grid may retain all 6)
        assert {len(row) for row in record["rows"]} == {
            len(record["headers"])
        }
        assert "simulated" in record["notes"]

    def test_json_is_machine_readable_end_to_end(self, capsys):
        assert main(["--json", "table1", "eq1"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert [r["name"] for r in records] == ["table1", "eq1"]
        # every cell must have survived coercion to plain JSON types
        for record in records:
            for row in record["rows"]:
                for cell in row:
                    assert isinstance(
                        cell, (str, int, float, bool, type(None), list)
                    )


def test_module_invocation():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "table2"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0
    assert "Table II" in proc.stdout
