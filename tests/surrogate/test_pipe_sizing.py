"""Pipe-depth sizing: pruned sweep vs the exhaustive advisor.

The retention story mirrors ``test_pruning``: with the derived margin,
the pruned pipe-depth sweep must recommend exactly what the exhaustive
:func:`repro.core.fifo_sizing.advise_stream_depth` picks over the same
grid, while simulating strictly fewer depths whenever pruning bites.
"""

import numpy as np
import pytest

from repro.core.fifo_sizing import advise_stream_depth
from repro.core.kernel import GammaKernelConfig
from repro.core.pricing import PricingPipelineConfig, build_pricing_pipeline
from repro.surrogate import (
    PIPE_FEATURE_NAMES,
    pipe_depth_features,
    pruned_pipe_depth_sweep,
)

BASE = PricingPipelineConfig(
    n_work_items=2, kernel=GammaKernelConfig(limit_main=64)
)
DEPTHS = (2, 4, 8, 16, 32, 64)


def _build_runner(depth):
    return build_pricing_pipeline(BASE, pipe_depth=depth).runner


class TestFeatures:
    def test_basis_shape(self):
        row = pipe_depth_features(8)
        assert row.shape == (len(PIPE_FEATURE_NAMES),)
        assert row[0] == 1.0
        assert row[1] == pytest.approx(1.0 / 8.0)
        assert row[2] == 8.0

    def test_depth_validated(self):
        with pytest.raises(ValueError):
            pipe_depth_features(0)


class TestPrunedSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return pruned_pipe_depth_sweep(_build_runner, depths=DEPTHS)

    def test_matches_exhaustive_advisor(self, result):
        exhaustive = advise_stream_depth(_build_runner, depths=DEPTHS)
        assert result.recommended_depth == exhaustive.recommended_depth
        # simulated points agree with the exhaustive sweep point-for-point
        exhaustive_points = {p.depth: p for p in exhaustive.points}
        for point in result.points:
            twin = exhaustive_points[point.depth]
            assert point.cycles == twin.cycles
            assert point.max_high_water == twin.max_high_water
            assert point.total_write_stalls == twin.total_write_stalls

    def test_calibration_depths_always_simulated(self, result):
        middle = DEPTHS[len(DEPTHS) // 2]
        assert {DEPTHS[0], middle, DEPTHS[-1]} <= set(
            result.simulated_depths
        )

    def test_pruning_actually_skips_depths(self, result):
        # the pricing pipeline's cycle curve is flat beyond a shallow
        # knee, so the surrogate must rule out part of the grid
        assert len(result.simulated_depths) < len(DEPTHS)

    def test_every_depth_scored(self, result):
        assert set(result.predicted) == set(DEPTHS)
        assert all(np.isfinite(v) for v in result.predicted.values())

    def test_margin_floor(self, result):
        assert result.margin >= 0.05


class TestValidation:
    def test_depths_must_be_ascending_unique(self):
        with pytest.raises(ValueError):
            pruned_pipe_depth_sweep(_build_runner, depths=(8, 2))
        with pytest.raises(ValueError):
            pruned_pipe_depth_sweep(_build_runner, depths=(2, 2, 4))
        with pytest.raises(ValueError):
            pruned_pipe_depth_sweep(_build_runner, depths=())

    def test_tolerance_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            pruned_pipe_depth_sweep(
                _build_runner, depths=DEPTHS, tolerance=-0.1
            )

    def test_explicit_margin_respected(self):
        result = pruned_pipe_depth_sweep(
            _build_runner, depths=(2, 8, 32), margin=0.4
        )
        assert result.margin == 0.4
