"""Pruning guarantees: frontier retention and exhaustive equivalence.

Two layers of evidence:

* a Hypothesis property — for *any* grid and any prediction noise
  bounded by ``eps``, a margin of ``margin_for_error(eps)`` never
  prunes a true-Pareto-frontier point;
* differential tests — the pruned sweeps return exactly the same
  recommendation/frontier as their exhaustive counterparts on real
  simulated grids.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.decoupled import DecoupledConfig, DecoupledWorkItems
from repro.core.fifo_sizing import advise_stream_depth
from repro.core.kernel import GammaKernelConfig
from repro.core.memory import MemoryChannelConfig
from repro.rng.mersenne import MT521_PARAMS
from repro.surrogate import (
    margin_for_error,
    pareto_indices,
    pruned_candidate_indices,
    pruned_grid_sweep,
    pruned_stream_depth_sweep,
)

BASE = DecoupledConfig(
    n_work_items=2,
    kernel=GammaKernelConfig(mt_params=MT521_PARAMS, limit_main=128),
    burst_words=2,
    channel=MemoryChannelConfig(setup_cycles=40, cycles_per_word=2),
    vector_lanes=True,
)


# ---------------------------------------------------------------------------
# property: bounded prediction error + derived margin => no frontier loss
# ---------------------------------------------------------------------------

grids = st.integers(min_value=2, max_value=12).flatmap(
    lambda n: st.tuples(
        st.lists(
            st.floats(min_value=1.0, max_value=100.0),
            min_size=n,
            max_size=n,
        ),
        st.lists(
            st.floats(min_value=10.0, max_value=10_000.0),
            min_size=n,
            max_size=n,
        ),
        st.lists(
            st.floats(min_value=-1.0, max_value=1.0),
            min_size=n,
            max_size=n,
        ),
        st.floats(min_value=0.0, max_value=0.6),
    )
)


@settings(max_examples=300, deadline=None)
@given(grids)
def test_margin_never_prunes_a_true_frontier_point(grid):
    costs, true_cycles, noise_units, eps = grid
    predicted = [
        t * (1.0 + u * eps) for t, u in zip(true_cycles, noise_units)
    ]
    margin = margin_for_error(eps)
    frontier = set(pareto_indices(costs, true_cycles))
    survivors = set(pruned_candidate_indices(costs, predicted, margin))
    assert frontier <= survivors, (
        f"pruned true-frontier point(s) {sorted(frontier - survivors)} "
        f"with eps={eps} margin={margin}"
    )


def test_pruning_actually_prunes_clear_losers():
    # one cheap fast point; expensive slow points far outside the margin
    costs = [1.0, 2.0, 3.0]
    predicted = [100.0, 500.0, 104.0]
    kept = pruned_candidate_indices(costs, predicted, margin=0.05)
    assert kept == [0, 2]


def test_pareto_weak_dominance_keeps_ties():
    costs = [1.0, 1.0, 2.0, 2.0]
    values = [5.0, 5.0, 5.0, 4.0]
    # the duplicate cheap points both stay; (2, 5) is dominated
    assert pareto_indices(costs, values) == [0, 1, 3]


def test_margin_for_error_validation():
    assert margin_for_error(0.0) == 0.0
    assert margin_for_error(0.1) == pytest.approx(0.2 / 0.9 + 1e-12, rel=1e-9)
    with pytest.raises(ValueError):
        margin_for_error(-0.1)
    with pytest.raises(ValueError):
        margin_for_error(1.0)


# ---------------------------------------------------------------------------
# differential: pruned sweeps == exhaustive sweeps on simulated grids
# ---------------------------------------------------------------------------

DEPTHS = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64)


def test_pruned_depth_sweep_matches_exhaustive():
    exhaustive = advise_stream_depth(
        lambda d: DecoupledWorkItems(
            dataclasses.replace(BASE, stream_depth=d)
        ).region,
        depths=DEPTHS,
    )
    pruned = pruned_stream_depth_sweep(BASE, depths=DEPTHS)
    assert pruned.recommended_depth == exhaustive.recommended_depth
    # O(frontier), not O(grid): most depths were never simulated
    assert len(pruned.simulated_depths) < len(DEPTHS)
    # every simulated point agrees with the exhaustive sweep bit-for-bit
    by_depth = {p.depth: p for p in exhaustive.points}
    for point in pruned.points:
        assert point == by_depth[point.depth]


def test_pruned_depth_sweep_zero_margin_still_simulates_calibration():
    pruned = pruned_stream_depth_sweep(BASE, depths=DEPTHS, margin=0.0)
    assert set(pruned.simulated_depths) >= {
        DEPTHS[0], DEPTHS[len(DEPTHS) // 2], DEPTHS[-1]
    }
    assert pruned.margin == 0.0


def test_pruned_depth_sweep_validation():
    with pytest.raises(ValueError):
        pruned_stream_depth_sweep(BASE, depths=(4, 2))
    with pytest.raises(ValueError):
        pruned_stream_depth_sweep(BASE, depths=(2,), tolerance=-1.0)


def _burst_grid():
    base = dataclasses.replace(BASE, n_work_items=4)
    configs, costs = [], []
    for n_channels in (1, 2, 3):
        for burst_words in (1, 2, 4, 8):
            configs.append(
                dataclasses.replace(
                    base, burst_words=burst_words, n_channels=n_channels
                )
            )
            costs.append(
                burst_words * base.n_work_items + 64 * (n_channels - 1)
            )
    return configs, costs


def test_pruned_grid_sweep_matches_exhaustive_frontier():
    configs, costs = _burst_grid()
    exhaustive_cycles = [
        DecoupledWorkItems(c).run().cycles for c in configs
    ]
    true_frontier = set(pareto_indices(costs, exhaustive_cycles))
    pruned = pruned_grid_sweep(configs, costs)
    assert set(pruned.frontier_indices) == true_frontier
    for i, cycles in pruned.simulated_cycles.items():
        assert cycles == exhaustive_cycles[i]
    assert pruned.predicted.shape == (len(configs),)


def test_pruned_grid_sweep_with_injected_simulator():
    configs, costs = _burst_grid()
    calls = []

    def counting_simulate(config):
        calls.append(config)
        return DecoupledWorkItems(config).run()

    pruned = pruned_grid_sweep(configs, costs, simulate=counting_simulate)
    assert len(calls) == len(pruned.candidate_indices)
    assert np.all(np.isfinite(pruned.predicted))


def test_pruned_grid_sweep_validation():
    configs, costs = _burst_grid()
    with pytest.raises(ValueError):
        pruned_grid_sweep(configs, costs[:-1])
    with pytest.raises(ValueError):
        pruned_grid_sweep(configs[:1], costs[:1])
