"""Surrogate honesty: LOOCV error bounded on every calibrated config.

The surrogate's contract is not accuracy on points it was fit on — it
is that the *cross-validated* relative error, measured per config with
that config held out, stays under the documented
:data:`repro.surrogate.DEFAULT_ERROR_BOUND` across a deliberately
diverse calibration set (work-item counts, burst lengths, channel
counts and timings, FIFO depths, sector mixes).  A fit violating this
must not be used for pruning.
"""

import pytest

from repro.core.decoupled import DecoupledConfig, DecoupledWorkItems
from repro.core.kernel import GammaKernelConfig
from repro.core.memory import MemoryChannelConfig
from repro.rng.mersenne import MT521_PARAMS
from repro.surrogate import (
    DEFAULT_ERROR_BOUND,
    FEATURE_NAMES,
    CycleSurrogate,
    ReportCalibration,
    config_features,
)


def _cfg(**kw):
    kernel = {
        "mt_params": MT521_PARAMS,
        "limit_main": kw.pop("limit_main", 128),
    }
    if "sector_variances" in kw:
        kernel["sector_variances"] = kw.pop("sector_variances")
    channel = MemoryChannelConfig(
        setup_cycles=kw.pop("setup", 40),
        cycles_per_word=kw.pop("cpw", 2),
    )
    return DecoupledConfig(
        kernel=GammaKernelConfig(**kernel),
        channel=channel,
        vector_lanes=True,
        **kw,
    )


#: compute-bound, transfer-bound, back-pressured, multi-sector and
#: multi-channel corners — each stresses a different feature term
CALIBRATION_CONFIGS = {
    "baseline": _cfg(n_work_items=2, burst_words=2),
    "depth1": _cfg(n_work_items=2, burst_words=2, stream_depth=1),
    "contended": _cfg(n_work_items=4, burst_words=2),
    "mid_burst": _cfg(n_work_items=4, burst_words=4),
    "long_burst": _cfg(n_work_items=4, burst_words=8),
    "two_channels": _cfg(n_work_items=4, burst_words=2, n_channels=2),
    "saturated": _cfg(n_work_items=6, burst_words=2),
    "two_sectors": _cfg(
        n_work_items=2, burst_words=2, sector_variances=(1.39, 0.5)
    ),
    "slow_setup": _cfg(n_work_items=2, burst_words=2, setup=80),
    "short_burst": _cfg(n_work_items=3, burst_words=1, limit_main=64),
}


@pytest.fixture(scope="module")
def fitted():
    configs = list(CALIBRATION_CONFIGS.values())
    results = [DecoupledWorkItems(c).run() for c in configs]
    calibration = ReportCalibration.from_result(results[0])
    surrogate = CycleSurrogate()
    fit = surrogate.fit(
        [config_features(c, calibration) for c in configs],
        [r.cycles for r in results],
    )
    return surrogate, fit, results


def test_loocv_error_bounded_on_every_config(fitted):
    _, fit, _ = fitted
    assert len(fit.loo_relative_errors) == len(CALIBRATION_CONFIGS)
    for name, err in zip(CALIBRATION_CONFIGS, fit.loo_relative_errors):
        assert err < DEFAULT_ERROR_BOUND, (
            f"LOOCV relative error {err:.3f} on {name!r} exceeds the "
            f"documented bound {DEFAULT_ERROR_BOUND}"
        )


def test_fit_reports_one_coefficient_per_feature(fitted):
    _, fit, _ = fitted
    assert tuple(fit.coefficients) == FEATURE_NAMES


def test_in_sample_predictions_track_simulation(fitted):
    surrogate, _, results = fitted
    calibration = ReportCalibration.from_result(results[0])
    for (name, config), result in zip(
        CALIBRATION_CONFIGS.items(), results
    ):
        pred = float(
            surrogate.predict(config_features(config, calibration))
        )
        assert pred == pytest.approx(
            result.cycles, rel=DEFAULT_ERROR_BOUND
        ), name


def test_calibration_from_result_measures_region():
    result = DecoupledWorkItems(CALIBRATION_CONFIGS["baseline"]).run()
    calibration = ReportCalibration.from_result(result)
    assert calibration.rejection_rate == result.rejection_rate
    # II is 1 and gated-MT bubbles are rare: cycles/iteration sits in a
    # narrow band just above 1
    assert 1.0 <= calibration.cycles_per_iteration < 4.0


def test_fit_validation():
    surrogate = CycleSurrogate()
    with pytest.raises(RuntimeError):
        surrogate.predict([1.0] * len(FEATURE_NAMES))
    with pytest.raises(ValueError):
        surrogate.fit([[1.0] * len(FEATURE_NAMES)], [100.0])
    with pytest.raises(ValueError):
        surrogate.fit([[1.0, 2.0]], [100.0])
    with pytest.raises(ValueError):
        CycleSurrogate(ridge=-1.0)
