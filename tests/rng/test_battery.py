"""Tests for the statistical battery — and the battery applied to every
generator this library ships."""

import numpy as np
import pytest

from repro.rng import MersenneTwister, MT521_PARAMS
from repro.rng.battery import (
    block_frequency_test,
    monobit_test,
    run_battery,
    runs_test,
    serial_pairs_test,
    spectral_lag_test,
)
from repro.rng.dynamic_creation import find_mt_family


def _words(params=None, seed=99, count=1 << 16):
    mt = MersenneTwister(params, seed=seed) if params else MersenneTwister(seed=seed)
    return mt.generate(count)


class TestBatteryMechanics:
    def test_monobit_needs_bits(self):
        with pytest.raises(ValueError):
            monobit_test(np.zeros(1, dtype=np.uint32))

    def test_block_frequency_needs_blocks(self):
        with pytest.raises(ValueError):
            block_frequency_test(np.zeros(4, dtype=np.uint32))

    def test_serial_needs_samples(self):
        with pytest.raises(ValueError):
            serial_pairs_test(np.zeros(10, dtype=np.uint32))

    def test_spectral_needs_samples(self):
        with pytest.raises(ValueError):
            spectral_lag_test(np.zeros(10, dtype=np.uint32))

    def test_outcome_pass_threshold(self):
        out = monobit_test(_words())
        assert out.passed == (out.p_value >= 0.01)


class TestBatteryCatchesBrokenGenerators:
    def test_constant_stream_fails_monobit(self):
        assert not monobit_test(np.zeros(4096, dtype=np.uint32)).passed

    def test_all_ones_fails(self):
        words = np.full(4096, 0xFFFFFFFF, dtype=np.uint32)
        assert not monobit_test(words).passed

    def test_alternating_words_fail_spectral(self):
        words = np.tile(
            np.array([0x00000000, 0xFFFFFFFF], dtype=np.uint32), 8192
        )
        assert not spectral_lag_test(words).passed

    def test_counter_fails_serial_pairs(self):
        words = np.arange(1 << 16, dtype=np.uint32) << 16
        assert not serial_pairs_test(words).passed

    def test_stuck_bit_fails_block_frequency(self):
        rng = np.random.default_rng(5)
        words = rng.integers(0, 2**32, 1 << 14, dtype=np.uint64).astype(np.uint32)
        words |= 0xFF000000  # 8 stuck-high bits
        assert not block_frequency_test(words).passed

    def test_long_runs_fail_runs_test(self):
        # bytes of solid ones/zeros create far too few runs
        words = np.tile(
            np.array([0xFFFF0000, 0x0000FFFF], dtype=np.uint32), 4096
        )
        assert not runs_test(words).passed


class TestShippedGeneratorsPass:
    @pytest.mark.parametrize("params_name", ["mt19937", "mt521"])
    def test_battery_passes(self, params_name):
        params = None if params_name == "mt19937" else MT521_PARAMS
        outcomes = run_battery(_words(params))
        failed = [o.name for o in outcomes if not o.passed]
        assert not failed, failed

    def test_family_members_pass_battery(self):
        family = find_mt_family(521, count=2)
        for params in family:
            outcomes = run_battery(_words(params, seed=11, count=1 << 15))
            failed = [o.name for o in outcomes if not o.passed]
            assert not failed, (hex(params.a), failed)

    def test_battery_returns_all_seven(self):
        names = {o.name for o in run_battery(_words(count=1 << 15))}
        assert names == {
            "monobit", "block_frequency", "runs", "serial_pairs",
            "spectral_lag", "gap", "birthday_spacings",
        }


class TestGapAndBirthday:
    def test_gap_validation(self):
        import numpy as np
        from repro.rng.battery import gap_test

        with pytest.raises(ValueError):
            gap_test(_words(), lo=0.7, hi=0.2)
        with pytest.raises(ValueError):
            gap_test(np.zeros(100, dtype=np.uint32) + 2**31)  # no hits

    def test_gap_catches_counter(self):
        import numpy as np
        from repro.rng.battery import gap_test

        counter = (np.arange(1 << 15, dtype=np.uint32) * 12345).astype(
            np.uint32
        )
        assert not gap_test(counter).passed

    def test_birthday_validation(self):
        import numpy as np
        from repro.rng.battery import birthday_spacings_test

        with pytest.raises(ValueError):
            birthday_spacings_test(np.zeros(100, dtype=np.uint32))

    def test_birthday_catches_low_entropy(self):
        import numpy as np
        from repro.rng.battery import birthday_spacings_test

        base = np.random.default_rng(1).integers(
            0, 2**32, 1 << 11, dtype=np.uint64
        ).astype(np.uint32)
        repeated = np.repeat(base, 32)
        assert not birthday_spacings_test(repeated).passed
