"""Tests for GF(2) polynomial arithmetic and Berlekamp-Massey."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rng import gf2

polys = st.integers(min_value=1, max_value=(1 << 64) - 1)


class TestBasics:
    def test_degree(self):
        assert gf2.degree(0) == -1
        assert gf2.degree(1) == 0
        assert gf2.degree(0b1011) == 3

    def test_mul_known(self):
        # (x + 1)(x + 1) = x^2 + 1 over GF(2)
        assert gf2.mul(0b11, 0b11) == 0b101

    def test_mul_by_x(self):
        assert gf2.mul(0b1011, 0b10) == 0b10110

    def test_mod_simple(self):
        # x^2 mod (x^2 + x + 1) = x + 1
        assert gf2.mod(0b100, 0b111) == 0b11

    def test_mod_zero_modulus(self):
        with pytest.raises(ZeroDivisionError):
            gf2.mod(0b101, 0)

    def test_divmod(self):
        q, r = gf2.divmod_poly(0b100, 0b111)
        assert q == 0b1 and r == 0b11
        assert gf2.mul(q, 0b111) ^ r == 0b100

    def test_square_matches_mul(self):
        for p in [0b1, 0b10, 0b1101, 0xDEADBEEF]:
            assert gf2.square(p) == gf2.mul(p, p)

    def test_powmod_small(self):
        m = 0b111  # x^2 + x + 1, field GF(4)
        # x^3 = 1 in GF(4)
        assert gf2.powmod(0b10, 3, m) == 1

    def test_gcd(self):
        # gcd(x^2 + 1, x + 1) = x + 1 since x^2+1 = (x+1)^2
        assert gf2.gcd(0b101, 0b11) == 0b11

    def test_x_pow_2k_mod(self):
        m = 0b111
        assert gf2.x_pow_2k_mod(m, 1) == gf2.mulmod(0b10, 0b10, m)


class TestIrreducibility:
    # all irreducible polynomials of degree <= 4 over GF(2)
    IRREDUCIBLE = [0b10, 0b11, 0b111, 0b1011, 0b1101, 0b10011, 0b11001, 0b11111]
    REDUCIBLE = [0b101, 0b110, 0b1001, 0b1111, 0b10101, 0b100, 0b1010]

    @pytest.mark.parametrize("f", IRREDUCIBLE)
    def test_known_irreducible(self, f):
        assert gf2.is_irreducible(f)

    @pytest.mark.parametrize("f", REDUCIBLE)
    def test_known_reducible(self, f):
        assert not gf2.is_irreducible(f)

    def test_degree_zero_and_constants(self):
        assert not gf2.is_irreducible(0)
        assert not gf2.is_irreducible(1)

    def test_primitive_trinomial_x31(self):
        # x^31 + x^3 + 1 is a classic primitive trinomial; 2^31-1 is prime
        f = (1 << 31) | (1 << 3) | 1
        assert gf2.is_primitive(f)

    def test_irreducible_not_primitive(self):
        # x^4 + x^3 + x^2 + x + 1 is irreducible but x has order 5, not 15
        f = 0b11111
        assert gf2.is_irreducible(f)
        assert not gf2.is_primitive(f, factors_of_order=[3, 5])

    def test_primitive_with_factors(self):
        # x^4 + x + 1 is primitive (order 15 = 3 * 5)
        assert gf2.is_primitive(0b10011, factors_of_order=[3, 5])


class TestBerlekampMassey:
    def _lfsr_bits(self, taps: int, init: int, length: int, count: int):
        """Generate a Fibonacci-LFSR sequence with connection poly `taps`."""
        state = [(init >> i) & 1 for i in range(length)]
        out = []
        for _ in range(count):
            out.append(state[0])
            fb = 0
            t = taps >> 1
            for j in range(length):
                if (t >> j) & 1:
                    fb ^= state[j]
            state = state[1:] + [fb]
        return out

    def test_recovers_lfsr_poly(self):
        taps = 0b10011  # x^4 + x + 1 (primitive)
        bits = self._lfsr_bits(taps, 0b0001, 4, 30)
        assert gf2.berlekamp_massey(bits) == taps

    def test_recovers_trinomial(self):
        taps = (1 << 7) | (1 << 1) | 1  # x^7 + x + 1
        bits = self._lfsr_bits(taps, 0b1010101, 7, 40)
        assert gf2.berlekamp_massey(bits) == taps

    def test_all_zero_sequence(self):
        assert gf2.berlekamp_massey([0] * 16) == 1

    def test_alternating_sequence(self):
        # s_i = s_{i-2}: minimal connection polynomial is x^2 + 1
        c = gf2.berlekamp_massey([1, 0, 1, 0, 1, 0, 1, 0])
        assert c == 0b101

    def test_min_poly_of_map(self):
        # companion map of x^4 + x + 1 acting on 4-bit states
        taps = 0b10011

        def step(s):
            fb = (s & 1) ^ ((s >> 1) & 1)  # taps at x^1 (bit1 of poly >> ...)
            return (s >> 1) | (fb << 3)

        # project lowest bit
        c = gf2.min_poly_of_map(step, lambda s: s & 1, 0b1000, 4)
        assert gf2.degree(c) == 4


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------


@given(a=polys, b=polys)
def test_prop_mul_commutative(a, b):
    assert gf2.mul(a, b) == gf2.mul(b, a)


@given(a=polys, b=polys, c=polys)
@settings(max_examples=50)
def test_prop_mul_distributes_over_xor(a, b, c):
    assert gf2.mul(a, b ^ c) == gf2.mul(a, b) ^ gf2.mul(a, c)


@given(a=polys, m=polys.filter(lambda p: p > 1))
def test_prop_mod_degree_below_modulus(a, m):
    assert gf2.degree(gf2.mod(a, m)) < gf2.degree(m)


@given(a=polys, m=polys.filter(lambda p: p > 1))
def test_prop_divmod_reconstructs(a, m):
    q, r = gf2.divmod_poly(a, m)
    assert gf2.mul(q, m) ^ r == a


@given(a=polys, m=polys.filter(lambda p: p > 1))
def test_prop_square_mod_matches_mulmod(a, m):
    assert gf2.square_mod(a, m) == gf2.mulmod(a, a, m)


@given(a=polys, b=polys)
def test_prop_gcd_divides_both(a, b):
    g = gf2.gcd(a, b)
    assert gf2.mod(a, g) == 0
    assert gf2.mod(b, g) == 0


@given(a=polys, e=st.integers(min_value=0, max_value=64), m=polys.filter(lambda p: p > 1))
@settings(max_examples=50)
def test_prop_powmod_matches_repeated_mul(a, e, m):
    expected = 1
    for _ in range(e):
        expected = gf2.mulmod(expected, a, m)
    assert gf2.powmod(a, e, m) == expected
