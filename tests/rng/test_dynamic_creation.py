"""Tests for the dynamic-creation parameter search (paper ref [18])."""

import pytest

from repro.rng import MT521_PARAMS, MT19937_PARAMS
from repro.rng.dynamic_creation import (
    MERSENNE_PRIME_EXPONENTS,
    check_period,
    find_mt_params,
    layout_for_exponent,
    min_poly_of_recurrence,
)
from repro.rng import gf2


class TestLayout:
    def test_exponent_521(self):
        assert layout_for_exponent(521) == (17, 23)

    def test_exponent_19937(self):
        assert layout_for_exponent(19937) == (624, 31)

    def test_exponent_89(self):
        assert layout_for_exponent(89) == (3, 7)

    def test_exact_multiple_gets_extra_word(self):
        # exponent 64 = 2*32 would give r=0 n=2: allowed (r=0 valid)
        n, r = layout_for_exponent(64)
        assert n * 32 - r == 64

    def test_tiny_exponent_rejected(self):
        with pytest.raises(ValueError):
            layout_for_exponent(1)

    @pytest.mark.parametrize("p", [89, 127, 521])
    def test_layout_invariant(self, p):
        n, r = layout_for_exponent(p)
        assert n * 32 - r == p
        assert 0 <= r < 32
        assert n >= 2


class TestMinPoly:
    def test_mt19937_charpoly_has_full_degree(self):
        c = min_poly_of_recurrence(32, 624, 397, 31, 0x9908B0DF)
        assert gf2.degree(c) == 19937

    def test_shipped_mt521_charpoly_full_degree(self):
        p = MT521_PARAMS
        c = min_poly_of_recurrence(p.w, p.n, p.m, p.r, p.a)
        assert gf2.degree(c) == 521


class TestCheckPeriod:
    def test_shipped_mt521_params_are_maximal_period(self):
        p = MT521_PARAMS
        assert check_period(p.w, p.n, p.m, p.r, p.a)

    def test_known_bad_candidate_fails(self):
        # a = 0 gives a pure shift recurrence — far from primitive
        assert not check_period(32, 17, 8, 23, 0)

    def test_most_random_candidates_fail(self):
        hits = sum(
            check_period(32, 3, 1, 7, (0x9E3779B9 * k) & 0xFFFFFFFF | 0x80000000)
            for k in range(1, 25)
        )
        assert hits < 12  # primitivity is rare; sanity-check the filter bites

    def test_non_mersenne_exponent_rejected(self):
        with pytest.raises(ValueError):
            check_period(32, 4, 2, 5, 0x9908B0DF)  # exponent 123


class TestSearch:
    def test_find_p89_deterministic(self):
        r1 = find_mt_params(89)
        r2 = find_mt_params(89)
        assert r1.params == r2.params
        assert r1.candidates_tried == r2.candidates_tried

    def test_found_params_verify(self):
        r = find_mt_params(89)
        p = r.params
        assert p.exponent == 89
        assert check_period(p.w, p.n, p.m, p.r, p.a)

    def test_different_seed_different_params(self):
        a = find_mt_params(89, seed=4357).params
        b = find_mt_params(89, seed=1234).params
        assert (a.a, a.m) != (b.a, b.m)

    def test_max_candidates_respected(self):
        with pytest.raises(RuntimeError):
            find_mt_params(89, max_candidates=0)

    def test_search_521_reproduces_shipped_params(self):
        """The published MT521_PARAMS must be exactly what the default
        search finds — provenance check for the shipped constants."""
        r = find_mt_params(521)
        assert r.params == MT521_PARAMS


class TestExponentTable:
    def test_both_table1_exponents_listed(self):
        assert 521 in MERSENNE_PRIME_EXPONENTS
        assert 19937 in MERSENNE_PRIME_EXPONENTS

    def test_mt19937_layout_matches_classic(self):
        assert (MT19937_PARAMS.n, MT19937_PARAMS.r) == layout_for_exponent(19937)
