"""Tests for the two ICDF transforms (CUDA-style and FPGA bit-level)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats

from repro.rng import IcdfFpga, icdf_cuda_style, icdf_fpga_style


class TestCudaStyle:
    def test_matches_scipy_ppf(self):
        u = np.linspace(1e-6, 1 - 1e-6, 10001)
        np.testing.assert_allclose(
            icdf_cuda_style(u), stats.norm.ppf(u), atol=5e-4
        )

    def test_scalar(self):
        assert icdf_cuda_style(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert isinstance(icdf_cuda_style(0.5), float)

    def test_median_is_zero(self):
        assert icdf_cuda_style(0.5) == pytest.approx(0.0, abs=1e-6)

    def test_antisymmetric(self):
        u = np.linspace(0.01, 0.49, 49)
        np.testing.assert_allclose(
            icdf_cuda_style(u), -icdf_cuda_style(1 - u), atol=1e-5
        )

    def test_domain_enforced(self):
        for bad in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(ValueError):
                icdf_cuda_style(bad)

    def test_float32_output(self):
        assert icdf_cuda_style(np.array([0.3, 0.7])).dtype == np.float32

    def test_distribution_ks(self):
        rng = np.random.default_rng(17)
        z = icdf_cuda_style(rng.random(200000))
        assert stats.kstest(z, "norm").pvalue > 1e-3


class TestFpgaStyleConstruction:
    def test_default_table_shapes(self):
        t = IcdfFpga()
        assert t._c0.shape == (t.segments + 1, 1 << t.subseg_bits)

    def test_invalid_segments(self):
        with pytest.raises(ValueError):
            IcdfFpga(segments=0)
        with pytest.raises(ValueError):
            IcdfFpga(segments=31)

    def test_invalid_subseg_bits(self):
        with pytest.raises(ValueError):
            IcdfFpga(subseg_bits=0)

    def test_rejection_probability(self):
        assert IcdfFpga(segments=10).rejection_probability == 2.0**-10


class TestFpgaStyleDecompose:
    def test_sign_bit(self):
        t = IcdfFpga()
        assert t.decompose(0x00000001)[0] == 0
        assert t.decompose(0x80000001)[0] == 1

    def test_zero_magnitude_invalid(self):
        t = IcdfFpga()
        assert t.decompose(0)[4] is False
        assert t.decompose(0x80000000)[4] is False

    def test_segment_from_lzc(self):
        t = IcdfFpga()
        # x = 2**30 → leading bit at position 30 → segment 0 (p near 0.25-0.5)
        assert t.decompose(1 << 30)[1] == 0
        # x = 2**29 → segment 1
        assert t.decompose(1 << 29)[1] == 1

    def test_deep_tail_invalid(self):
        t = IcdfFpga(segments=8)
        # x below 2**(31-8) = 2**23 cannot be resolved
        sign, seg, sub, frac, valid = t.decompose((1 << 22))
        assert not valid

    def test_subsegment_extraction(self):
        t = IcdfFpga(subseg_bits=4)
        # x = 0b1_1010_... : leading one then sub bits 1010
        x = (1 << 30) | (0b1010 << 26)
        assert t.decompose(x)[2] == 0b1010


class TestFpgaStyleAccuracy:
    def test_tracks_exact_ppf(self):
        t = IcdfFpga()
        rng = np.random.default_rng(23)
        u = rng.integers(1, 2**32, 20000, dtype=np.uint64).astype(np.uint32)
        vals, valid = t.evaluate_batch(u)
        x = (u & np.uint32(0x7FFFFFFF)).astype(np.float64)
        sign = (u >> np.uint32(31)).astype(np.int64)
        p = x / 2.0**32
        ok = valid & (p > 0)
        ref = stats.norm.ppf(p[ok])
        ref = np.where(sign[ok] == 1, -ref, ref)
        np.testing.assert_allclose(vals[ok], ref, atol=2e-3)

    def test_normal_distribution_ks(self):
        rng = np.random.default_rng(29)
        u = rng.integers(0, 2**32, 200000, dtype=np.uint64).astype(np.uint32)
        vals, valid = icdf_fpga_style(u)
        assert stats.kstest(vals[valid], "norm").pvalue > 1e-3

    def test_antisymmetry_of_halves(self):
        t = IcdfFpga()
        for x in [1 << 20, (1 << 30) + 12345, (1 << 28) | 0xFFF]:
            lo, _ = t.evaluate(x)
            hi, _ = t.evaluate(0x80000000 | x)
            assert lo == pytest.approx(-hi, abs=1e-6)

    def test_monotone_within_half(self):
        t = IcdfFpga()
        xs = np.sort(
            np.random.default_rng(31).integers(
                1 << 8, 1 << 31, 3000, dtype=np.int64
            )
        ).astype(np.uint32)
        vals, valid = t.evaluate_batch(xs)
        v = vals[valid].astype(np.float64)
        # chord interpolation of a monotone function is monotone up to
        # rounding of the fixed-point coefficients
        assert np.all(np.diff(v) > -1e-5)


class TestFpgaScalarBatchConsistency:
    def test_scalar_matches_batch(self):
        t = IcdfFpga()
        rng = np.random.default_rng(37)
        u = rng.integers(0, 2**32, 300, dtype=np.uint64).astype(np.uint32)
        bvals, bvalid = t.evaluate_batch(u)
        for i, w in enumerate(u.tolist()):
            v, ok = t.evaluate(w)
            assert ok == bool(bvalid[i])
            if ok:
                assert v == pytest.approx(float(bvals[i]), abs=1e-6)

    def test_module_level_dispatch(self):
        scalar = icdf_fpga_style(1 << 30)
        assert isinstance(scalar, tuple) and isinstance(scalar[0], float)
        arr = icdf_fpga_style(np.array([1 << 30], dtype=np.uint32))
        assert scalar[0] == pytest.approx(float(arr[0][0]), abs=1e-6)


# shared tables: construction builds the coefficient ROM, so hypothesis
# examples must not re-instantiate per draw
_T20 = IcdfFpga(segments=20, subseg_bits=5)
_TDEF = IcdfFpga()


@given(u=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=300)
def test_prop_scalar_batch_agree(u):
    t = _T20
    v, ok = t.evaluate(u)
    bv, bok = t.evaluate_batch(np.array([u], dtype=np.uint32))
    assert ok == bool(bok[0])
    if ok:
        assert v == pytest.approx(float(bv[0]), abs=1e-6)


@given(u=st.integers(min_value=1, max_value=2**31 - 1))
@settings(max_examples=300)
def test_prop_lower_half_negative(u):
    v, ok = _TDEF.evaluate(u)
    if ok:
        # p < 0.5 → non-positive quantile (fixed-point rounding can
        # flatten the near-median magnitude to -0.0)
        assert v <= 0.0
