"""Tests for the Marsaglia-Tsang gamma generator (the test-case core)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats

from repro.rng import (
    MarsagliaBray,
    MarsagliaTsangGamma,
    MersenneTwister,
    gamma_attempt,
    gamma_samples,
    marsaglia_tsang_constants,
)
from repro.rng.gamma import gamma_correct
from repro.rng.mersenne import MT521_PARAMS


class TestConstants:
    def test_alpha_ge_1_not_boosted(self):
        c = marsaglia_tsang_constants(2.5)
        assert not c.boosted
        assert c.alpha_eff == 2.5
        assert c.d == pytest.approx(2.5 - 1 / 3)
        assert c.c == pytest.approx(1 / math.sqrt(9 * c.d))

    def test_alpha_lt_1_boosted(self):
        c = marsaglia_tsang_constants(0.5)
        assert c.boosted
        assert c.alpha_eff == 1.5

    def test_creditriskplus_parameterization(self):
        # sector variance v=1.39 → alpha = 1/v < 1 → boosted path
        v = 1.39
        c = marsaglia_tsang_constants(1 / v)
        assert c.boosted
        assert c.inv_alpha == pytest.approx(v)

    def test_alpha_exactly_one(self):
        assert not marsaglia_tsang_constants(1.0).boosted

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_nonpositive_alpha_rejected(self, bad):
        with pytest.raises(ValueError):
            marsaglia_tsang_constants(bad)


class TestAttempt:
    def test_typical_accept(self):
        c = marsaglia_tsang_constants(2.0)
        value, valid = gamma_attempt(0.1, 0.5, c)
        assert valid
        t = 1 + c.c * 0.1
        assert value == pytest.approx(c.d * t**3)

    def test_negative_cube_rejects(self):
        c = marsaglia_tsang_constants(2.0)
        # x far negative makes 1 + c*x <= 0
        x = -1.0 / c.c - 1.0
        value, valid = gamma_attempt(x, 0.5, c)
        assert not valid and value == 0.0

    def test_squeeze_accepts_without_logs(self):
        c = marsaglia_tsang_constants(2.0)
        # tiny x, small u1: squeeze 1 - 0.0331 x^4 ≈ 1 > u1
        _, valid = gamma_attempt(0.01, 0.0001, c)
        assert valid

    def test_full_test_can_reject(self):
        c = marsaglia_tsang_constants(2.0)
        # large |x| with u1 near 1 should fail both squeeze and log test
        _, valid = gamma_attempt(2.5, 0.999999, c)
        assert not valid

    def test_correction_scales_down(self):
        c = marsaglia_tsang_constants(0.5)
        corrected = gamma_correct(2.0, 0.5, c)
        assert corrected == pytest.approx(2.0 * 0.5**2.0)
        assert corrected < 2.0

    def test_correction_with_u_near_one_is_identity(self):
        c = marsaglia_tsang_constants(0.5)
        assert gamma_correct(3.0, 1.0 - 1e-12, c) == pytest.approx(3.0, rel=1e-9)


class TestVectorizedSampler:
    @pytest.mark.parametrize("alpha,scale", [(2.0, 1.0), (0.5, 2.0), (1 / 1.39, 1.39)])
    def test_moments(self, alpha, scale):
        s = gamma_samples(alpha, 200000, scale=scale, seed=7)
        assert s.mean() == pytest.approx(alpha * scale, rel=0.02)
        assert s.var() == pytest.approx(alpha * scale**2, rel=0.05)

    @pytest.mark.parametrize("v", [0.35, 1.39])
    def test_fig6_distributions_ks(self, v):
        """Fig 6 validation: sector-variance parameterization vs the exact
        gamma distribution (our stand-in for Matlab's gamrnd)."""
        s = gamma_samples(1 / v, 150000, scale=v, seed=11)
        p = stats.kstest(s, "gamma", args=(1 / v, 0, v)).pvalue
        assert p > 1e-3

    def test_all_positive(self):
        assert np.all(gamma_samples(0.7, 50000, seed=3) > 0)

    def test_seed_reproducible(self):
        a = gamma_samples(1.5, 1000, seed=42)
        b = gamma_samples(1.5, 1000, seed=42)
        np.testing.assert_array_equal(a, b)

    def test_stats_returned(self):
        _, st_ = gamma_samples(2.0, 10000, seed=1, return_stats=True)
        assert st_["attempts"] >= st_["accepts"] > 0
        assert 0.0 <= st_["rejection_rate"] < 0.2

    def test_rejection_rate_grows_with_smaller_alpha_eff(self):
        """Paper §IV-E: gamma rejection rises with the sector variance
        (5.3 % at v=0.1 up to 10.2 % at v=100 on their setup)."""
        _, lo = gamma_samples(1 / 0.1, 50000, seed=5, return_stats=True)
        _, hi = gamma_samples(1 / 100.0, 50000, seed=5, return_stats=True)
        assert hi["rejection_rate"] > lo["rejection_rate"]


class TestNestedGenerator:
    def _make(self, v=1.39):
        mb = MarsagliaBray(
            MersenneTwister(MT521_PARAMS, seed=11),
            MersenneTwister(MT521_PARAMS, seed=22),
        )
        return MarsagliaTsangGamma(
            alpha=1 / v,
            normal_source=mb.attempt,
            mt_reject=MersenneTwister(MT521_PARAMS, seed=33),
            mt_correct=MersenneTwister(MT521_PARAMS, seed=44),
            scale=v,
        )

    def test_attempt_semantics(self):
        g = self._make()
        results = [g.attempt() for _ in range(2000)]
        valids = [v for v, ok in results if ok]
        invalid_values = [v for v, ok in results if not ok]
        assert all(v == 0.0 for v in invalid_values)
        assert all(v > 0 for v in valids)

    def test_combined_rejection_rate_band(self):
        """Combined MB+MT rejection: our measured rate lands in the low-20s
        (polar ≈ 21.5 % times gamma ≈ 2-3 %); the paper's testbed reports
        30.3 % — same regime, well above the ICDF path's single digits."""
        g = self._make()
        for _ in range(20000):
            g.attempt()
        assert 0.15 < g.measured_rejection_rate < 0.35

    def test_distribution_of_nested_generator(self):
        v = 1.39
        g = self._make(v)
        s = g.samples(4000)
        p = stats.kstest(s, "gamma", args=(1 / v, 0, v)).pvalue
        assert p > 1e-4

    def test_mean_near_one(self):
        # CreditRisk+ sectors are normalized to E(S_k) = 1
        g = self._make(0.8)
        s = g.samples(4000)
        assert s.mean() == pytest.approx(1.0, abs=0.08)

    def test_uniform_streams_not_corrupted(self):
        """Listing 3 invariant: rejected attempts must not consume the
        gated twisters.  Compare against a hand-gated replay."""
        g = self._make()
        mt_ref = MersenneTwister(MT521_PARAMS, seed=33)
        consumed = 0
        for _ in range(500):
            before = g.mt_reject.get_state()
            _, _ = g.attempt()
            after = g.mt_reject.get_state()
            if before[1] != after[1] or not np.array_equal(before[0], after[0]):
                consumed += 1
        # the reject-uniform twister advances only on valid normals (~78 %)
        assert 0.6 < consumed / 500 < 0.95


@given(
    alpha=st.floats(min_value=0.05, max_value=50.0),
    x=st.floats(min_value=-4.0, max_value=4.0),
    u1=st.floats(min_value=1e-9, max_value=1.0 - 1e-9),
)
@settings(max_examples=300)
def test_prop_attempt_value_nonnegative_iff_valid(alpha, x, u1):
    c = marsaglia_tsang_constants(alpha)
    value, valid = gamma_attempt(x, u1, c)
    if valid:
        assert value > 0.0
    else:
        assert value == 0.0


@given(alpha=st.floats(min_value=0.05, max_value=0.999))
@settings(max_examples=100)
def test_prop_boost_always_for_alpha_below_one(alpha):
    c = marsaglia_tsang_constants(alpha)
    assert c.boosted and c.alpha_eff == pytest.approx(alpha + 1.0)
    assert c.d > 2.0 / 3.0
