"""Tests for uniform→normal transforms: Marsaglia-Bray, Box-Muller, erfinv."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import special, stats

from repro.rng import (
    POLAR_ACCEPTANCE,
    MarsagliaBray,
    MersenneTwister,
    box_muller,
    box_muller_pair,
    erfcinv,
    erfinv,
    marsaglia_bray_attempt,
    marsaglia_bray_normals,
    uint_to_float,
    uint_to_symmetric,
    float_to_uint,
)
from repro.rng.marsaglia_bray import marsaglia_bray_pair
from repro.rng.erfinv import tail_branch_probability


class TestUniformConversion:
    def test_scalar_range(self):
        assert 0.0 < uint_to_float(0) < 1.0
        assert 0.0 < uint_to_float(2**32 - 1) < 1.0

    def test_scalar_midpoint(self):
        assert uint_to_float(2**31) == pytest.approx(0.5, abs=1e-7)

    def test_array_open_interval(self):
        u = np.array([0, 1, 2**31, 2**32 - 1], dtype=np.uint32)
        f = uint_to_float(u)
        assert f.dtype == np.float32
        assert np.all(f > 0.0) and np.all(f < 1.0)

    def test_monotone(self):
        u = np.arange(0, 2**32, 2**24, dtype=np.uint64)
        f = uint_to_float(u)
        assert np.all(np.diff(f.astype(np.float64)) > 0)

    def test_symmetric_range(self):
        u = np.array([0, 2**31, 2**32 - 1], dtype=np.uint32)
        s = uint_to_symmetric(u)
        assert np.all(s > -1.0) and np.all(s < 1.0)
        assert s[1] == pytest.approx(0.0, abs=1e-6)

    def test_symmetric_scalar(self):
        assert uint_to_symmetric(0) < -0.99
        assert uint_to_symmetric(2**32 - 1) > 0.99

    def test_float_to_uint_roundtrip(self):
        for u in [0, 12345, 2**31, 2**32 - 1]:
            assert abs(float_to_uint(uint_to_float(u)) - u) <= 2**9

    def test_float_to_uint_array(self):
        f = np.array([0.25, 0.5, 0.75], dtype=np.float64)
        out = float_to_uint(f)
        assert out.dtype == np.uint32
        np.testing.assert_allclose(out / 2**32, f, atol=1e-6)


class TestMarsagliaBrayAttempt:
    def test_accepts_inside_disc(self):
        value, valid = marsaglia_bray_attempt(0.3, 0.4)
        assert valid
        s = 0.25
        assert value == pytest.approx(0.3 * math.sqrt(-2 * math.log(s) / s))

    def test_rejects_outside_disc(self):
        value, valid = marsaglia_bray_attempt(0.9, 0.9)
        assert not valid and value == 0.0

    def test_rejects_origin(self):
        _, valid = marsaglia_bray_attempt(0.0, 0.0)
        assert not valid

    def test_boundary_rejected(self):
        _, valid = marsaglia_bray_attempt(1.0, 0.0)
        assert not valid

    def test_pair_variant_consistent(self):
        v1, v2, valid = marsaglia_bray_pair(0.3, 0.4)
        single, valid2 = marsaglia_bray_attempt(0.3, 0.4)
        assert valid and valid2
        assert v1 == pytest.approx(single)
        assert v2 / v1 == pytest.approx(0.4 / 0.3)

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(5)
        u1 = rng.uniform(-1, 1, 500)
        u2 = rng.uniform(-1, 1, 500)
        values, valid = marsaglia_bray_normals(u1, u2)
        for i in range(0, 500, 17):
            v, ok = marsaglia_bray_attempt(float(u1[i]), float(u2[i]))
            assert ok == valid[i]
            if ok:
                assert values[i] == pytest.approx(v, rel=1e-5)


class TestMarsagliaBrayGenerator:
    @pytest.fixture()
    def mb(self):
        return MarsagliaBray(MersenneTwister(seed=101), MersenneTwister(seed=202))

    def test_acceptance_rate_near_pi_over_4(self, mb):
        mb.normals(50000)
        assert mb.measured_rejection_rate == pytest.approx(
            1 - POLAR_ACCEPTANCE, abs=0.01
        )

    def test_normality_ks(self, mb):
        ns = mb.normals(100000)
        assert stats.kstest(ns, "norm").pvalue > 1e-3

    def test_scalar_loop_matches_distribution(self, mb):
        vals = np.array([mb.next_normal() for _ in range(5000)])
        assert abs(vals.mean()) < 0.06
        assert abs(vals.std() - 1.0) < 0.05

    def test_rejection_rate_initially_zero(self, mb):
        assert mb.measured_rejection_rate == 0.0

    def test_attempt_counting(self, mb):
        for _ in range(100):
            mb.attempt()
        assert mb.attempts == 100
        assert 0 < mb.accepts <= 100


class TestBoxMuller:
    def test_pair_known_value(self):
        z0, z1 = box_muller_pair(math.exp(-0.5), 0.25)
        # radius = 1, angle = pi/2
        assert z0 == pytest.approx(0.0, abs=1e-12)
        assert z1 == pytest.approx(1.0)

    def test_invalid_u1_rejected(self):
        with pytest.raises(ValueError):
            box_muller_pair(0.0, 0.5)
        with pytest.raises(ValueError):
            box_muller_pair(1.0, 0.5)

    def test_vectorized_normality(self):
        rng = np.random.default_rng(9)
        z = box_muller(rng.random(100000) * (1 - 1e-9) + 1e-12, rng.random(100000))
        assert stats.kstest(z, "norm").pvalue > 1e-3

    def test_no_rejection(self):
        rng = np.random.default_rng(10)
        z = box_muller(rng.random(1000) * 0.999 + 5e-4, rng.random(1000))
        assert z.shape == (1000,)
        assert np.all(np.isfinite(z))


class TestErfinv:
    def test_matches_scipy_central(self):
        x = np.linspace(-0.95, 0.95, 5001)
        np.testing.assert_allclose(erfinv(x), special.erfinv(x), atol=5e-7)

    def test_matches_scipy_tails(self):
        x = np.array([-0.99999, -0.9999, 0.9999, 0.99999])
        np.testing.assert_allclose(erfinv(x), special.erfinv(x), rtol=2e-6)

    def test_scalar_input(self):
        assert erfinv(0.5) == pytest.approx(float(special.erfinv(0.5)), abs=1e-7)
        assert isinstance(erfinv(0.5), float)

    def test_zero_maps_to_zero(self):
        assert erfinv(0.0) == pytest.approx(0.0, abs=1e-8)

    def test_odd_symmetry(self):
        x = np.linspace(0.01, 0.99, 99)
        np.testing.assert_allclose(erfinv(x), -erfinv(-x), rtol=1e-12)

    def test_out_of_domain_rejected(self):
        with pytest.raises(ValueError):
            erfinv(1.0)
        with pytest.raises(ValueError):
            erfinv(np.array([0.5, -1.5]))

    def test_erfcinv_identity(self):
        x = np.linspace(0.01, 1.99, 199)
        np.testing.assert_allclose(erfcinv(x), special.erfcinv(x), atol=5e-7)

    def test_tail_branch_probability_tiny(self):
        rng = np.random.default_rng(3)
        u = rng.random(200000) * 2 - 1
        # tail branch (w >= 5) fires for |x| > sqrt(1 - e^-5) ≈ 0.99663,
        # i.e. ~0.34 % of uniform inputs
        assert tail_branch_probability(u) < 6e-3


@given(u1=st.floats(min_value=-0.999, max_value=0.999),
       u2=st.floats(min_value=-0.999, max_value=0.999))
@settings(max_examples=200)
def test_prop_polar_validity_is_disc_membership(u1, u2):
    _, valid = marsaglia_bray_attempt(u1, u2)
    s = u1 * u1 + u2 * u2
    assert valid == (0.0 < s < 1.0)


@given(x=st.floats(min_value=-0.99999, max_value=0.99999))
@settings(max_examples=200)
def test_prop_erfinv_roundtrip(x):
    assert float(special.erf(erfinv(x))) == pytest.approx(x, abs=1e-6)
