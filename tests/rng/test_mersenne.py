"""Tests for the parameterized Mersenne-Twister."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats

from repro.rng import MT521_PARAMS, MT19937_PARAMS, MersenneTwister, MTParams

# canonical MT19937 outputs for seed 5489 (matches the reference C code)
MT19937_SEED5489_FIRST10 = [
    3499211612, 581869302, 3890346734, 3586334585, 545404204,
    4161255391, 3922919429, 949333985, 2715962298, 1323567403,
]


class TestParams:
    def test_mt19937_exponent(self):
        assert MT19937_PARAMS.exponent == 19937

    def test_mt521_exponent(self):
        assert MT521_PARAMS.exponent == 521

    def test_mt521_state_words_match_table1(self):
        # Table I: 17 states for the exponent-521 twister
        assert MT521_PARAMS.n == 17

    def test_mt19937_state_words_match_table1(self):
        assert MT19937_PARAMS.n == 624

    def test_masks_partition_word(self):
        for p in (MT19937_PARAMS, MT521_PARAMS):
            assert p.upper_mask ^ p.lower_mask == p.word_mask
            assert p.upper_mask & p.lower_mask == 0

    def test_invalid_m_rejected(self):
        with pytest.raises(ValueError):
            MTParams(w=32, n=4, m=4, r=7, a=1, u=11, d=0xFFFFFFFF,
                     s=7, b=0, t=15, c=0, l=18)

    def test_invalid_r_rejected(self):
        with pytest.raises(ValueError):
            MTParams(w=32, n=4, m=2, r=32, a=1, u=11, d=0xFFFFFFFF,
                     s=7, b=0, t=15, c=0, l=18)


class TestReferenceOutputs:
    def test_mt19937_seed5489_first_outputs(self):
        mt = MersenneTwister(seed=5489)
        assert [mt.next_u32() for _ in range(10)] == MT19937_SEED5489_FIRST10

    def test_numpy_randomstate_agreement(self):
        """Cross-validate against numpy's MT19937 for a different seed."""
        seed = 20170529
        legacy = np.random.RandomState(seed)
        ours = MersenneTwister(seed=seed)
        theirs = legacy.randint(0, 2**32, size=100, dtype=np.uint64)
        assert [ours.next_u32() for _ in range(100)] == theirs.tolist()


class TestScalarApi:
    def test_disabled_step_keeps_state(self):
        mt = MersenneTwister(seed=7)
        y1 = mt.next_u32(enable=False)
        y2 = mt.next_u32(enable=False)
        y3 = mt.next_u32(enable=True)
        assert y1 == y2 == y3
        assert mt.next_u32() != y3 or True  # stream advanced now

    def test_peek_then_advance_equals_next(self):
        a = MersenneTwister(seed=42)
        b = MersenneTwister(seed=42)
        seq_a = []
        for _ in range(10):
            seq_a.append(a.peek_u32())
            a.advance()
        seq_b = [b.next_u32() for _ in range(10)]
        assert seq_a == seq_b

    def test_seed_reproducibility(self):
        a = MersenneTwister(seed=99)
        b = MersenneTwister(seed=99)
        assert [a.next_u32() for _ in range(50)] == [b.next_u32() for _ in range(50)]

    def test_different_seeds_differ(self):
        a = MersenneTwister(seed=1)
        b = MersenneTwister(seed=2)
        assert [a.next_u32() for _ in range(10)] != [b.next_u32() for _ in range(10)]

    def test_reseed_restarts_stream(self):
        mt = MersenneTwister(seed=5489)
        first = [mt.next_u32() for _ in range(5)]
        mt.seed(5489)
        assert [mt.next_u32() for _ in range(5)] == first

    def test_get_set_state_roundtrip(self):
        mt = MersenneTwister(seed=3)
        for _ in range(700):  # crosses a twist boundary
            mt.next_u32()
        state, idx = mt.get_state()
        expected = [mt.next_u32() for _ in range(10)]
        mt2 = MersenneTwister(seed=1)
        mt2.set_state(state, idx)
        assert [mt2.next_u32() for _ in range(10)] == expected

    def test_set_state_wrong_shape_rejected(self):
        mt = MersenneTwister(seed=3)
        with pytest.raises(ValueError):
            mt.set_state(np.zeros(5, dtype=np.uint32), 0)


class TestVectorizedApi:
    @pytest.mark.parametrize("params", [MT19937_PARAMS, MT521_PARAMS])
    def test_generate_matches_scalar(self, params):
        a = MersenneTwister(params, seed=11)
        b = MersenneTwister(params, seed=11)
        block = a.generate(2000)
        scalar = np.array([b.next_u32() for _ in range(2000)], dtype=np.uint32)
        np.testing.assert_array_equal(block, scalar)

    def test_generate_resumes_mid_stream(self):
        a = MersenneTwister(seed=13)
        b = MersenneTwister(seed=13)
        ref = [b.next_u32() for _ in range(100)]
        got = [a.next_u32() for _ in range(37)]
        got += a.generate(40).tolist()
        got += [a.next_u32() for _ in range(23)]
        assert got == ref

    def test_generate_zero(self):
        assert MersenneTwister(seed=1).generate(0).size == 0

    def test_generate_negative_rejected(self):
        with pytest.raises(ValueError):
            MersenneTwister(seed=1).generate(-1)

    def test_generate_floats_open_interval(self):
        f = MersenneTwister(seed=5).generate_floats(10000)
        assert f.dtype == np.float32
        assert np.all(f > 0.0) and np.all(f < 1.0)


class TestStatistical:
    @pytest.mark.parametrize("params", [MT19937_PARAMS, MT521_PARAMS])
    def test_uniformity_ks(self, params):
        mt = MersenneTwister(params, seed=2017)
        u = mt.generate(200000).astype(np.float64) / 2.0**32
        assert stats.kstest(u, "uniform").pvalue > 1e-3

    @pytest.mark.parametrize("params", [MT19937_PARAMS, MT521_PARAMS])
    def test_bit_balance(self, params):
        mt = MersenneTwister(params, seed=99)
        words = mt.generate(100000)
        for bit in range(0, 32, 5):
            frac = float(np.mean((words >> np.uint32(bit)) & np.uint32(1)))
            assert abs(frac - 0.5) < 0.01, f"bit {bit} biased: {frac}"

    def test_mt521_serial_correlation_low(self):
        mt = MersenneTwister(MT521_PARAMS, seed=123)
        u = mt.generate(100000).astype(np.float64)
        u = (u - u.mean()) / u.std()
        corr = float(np.mean(u[:-1] * u[1:]))
        assert abs(corr) < 0.02


@given(seed=st.integers(min_value=1, max_value=2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_prop_enable_false_is_idempotent(seed):
    mt = MersenneTwister(MT521_PARAMS, seed=seed)
    y = mt.next_u32(enable=False)
    for _ in range(5):
        assert mt.next_u32(enable=False) == y


@given(seed=st.integers(min_value=1, max_value=2**32 - 1),
       split=st.integers(min_value=0, max_value=60))
@settings(max_examples=20, deadline=None)
def test_prop_stream_split_invariance(seed, split):
    """generate(a) + generate(b) == generate(a+b) regardless of the split."""
    total = 60
    a = MersenneTwister(MT521_PARAMS, seed=seed)
    b = MersenneTwister(MT521_PARAMS, seed=seed)
    whole = a.generate(total)
    parts = np.concatenate([b.generate(split), b.generate(total - split)])
    np.testing.assert_array_equal(whole, parts)
