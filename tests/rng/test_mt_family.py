"""Tests for dynamic creation of parallel twister families (ref [18])."""

import numpy as np
import pytest

from repro.rng import MersenneTwister
from repro.rng.dynamic_creation import check_period, find_mt_family


class TestFindFamily:
    @pytest.fixture(scope="class")
    def family(self):
        return find_mt_family(89, count=4)

    def test_requested_count(self, family):
        assert len(family) == 4

    def test_distinct_twist_coefficients(self, family):
        a_values = [p.a for p in family]
        assert len(set(a_values)) == len(a_values)

    def test_all_maximal_period(self, family):
        for p in family:
            assert check_period(p.w, p.n, p.m, p.r, p.a)

    def test_same_layout(self, family):
        assert {(p.n, p.r) for p in family} == {(3, 7)}

    def test_streams_differ_even_with_same_seed(self, family):
        """The dynamic-creation guarantee: different recurrences give
        different streams even under identical seeding."""
        streams = [
            MersenneTwister(p, seed=1234).generate(64).tolist() for p in family
        ]
        for i in range(len(streams)):
            for j in range(i + 1, len(streams)):
                assert streams[i] != streams[j]

    def test_streams_uncorrelated(self, family):
        a = MersenneTwister(family[0], seed=7).generate(50000).astype(np.float64)
        b = MersenneTwister(family[1], seed=7).generate(50000).astype(np.float64)
        a = (a - a.mean()) / a.std()
        b = (b - b.mean()) / b.std()
        assert abs(float(np.mean(a * b))) < 0.02

    def test_deterministic(self):
        f1 = find_mt_family(89, count=2)
        f2 = find_mt_family(89, count=2)
        assert f1 == f2

    def test_count_validated(self):
        with pytest.raises(ValueError):
            find_mt_family(89, count=0)

    def test_budget_exhaustion(self):
        with pytest.raises(RuntimeError):
            find_mt_family(89, count=3, max_candidates=1)

    def test_family_521_two_members(self):
        family = find_mt_family(521, count=2)
        assert family[0].a != family[1].a
        for p in family:
            assert p.exponent == 521
