"""Lazy-spec resolution under failure and concurrency.

Two campaign workers (or a worker and the CLI) can hit
``ExperimentEntry.resolve`` on the same entry at the same time, and a
lazy spec's import can fail transiently (a dependency that appears
after a retry, a module briefly broken mid-deploy).  The contract
pinned here: a failed resolve leaves the entry *unresolved* — never a
cached broken runner — and concurrent resolvers all observe the same
runner with the module imported exactly once.
"""

import sys
import threading

import pytest

from repro.harness.registry import ExperimentEntry


@pytest.fixture
def flaky_module(tmp_path, monkeypatch):
    """A module that raises ImportError until its flag file exists."""
    name = "flaky_campaign_driver_mod"
    flag = tmp_path / "dependency_ready"
    (tmp_path / f"{name}.py").write_text(
        "import os\n"
        f"if not os.path.exists({str(flag)!r}):\n"
        "    raise ImportError('dependency not ready yet')\n"
        "def run():\n"
        "    return 'ran'\n"
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    sys.modules.pop(name, None)
    yield name, flag
    sys.modules.pop(name, None)


class TestFailedResolve:
    def test_import_failure_leaves_entry_unresolved(self, flaky_module):
        name, flag = flaky_module
        entry = ExperimentEntry(name="flaky", runner=None, spec=f"{name}:run")
        with pytest.raises(ImportError, match="not ready"):
            entry.resolve()
        # the broken attempt cached nothing …
        assert entry.runner is None
        # … so once the dependency appears, the same entry resolves
        flag.write_text("")
        assert entry.resolve()() == "ran"
        assert entry.runner is not None

    def test_missing_attribute_leaves_entry_unresolved(self):
        entry = ExperimentEntry(
            name="bad-attr",
            runner=None,
            spec="repro.harness.experiments:no_such_driver",
        )
        with pytest.raises(AttributeError):
            entry.resolve()
        assert entry.runner is None

    def test_repeated_failures_keep_raising(self, flaky_module):
        name, _ = flaky_module
        entry = ExperimentEntry(name="flaky", runner=None, spec=f"{name}:run")
        for _ in range(3):
            with pytest.raises(ImportError):
                entry.resolve()
            assert entry.runner is None


class TestConcurrentResolve:
    def test_racing_resolvers_share_one_import(self, tmp_path, monkeypatch):
        name = "counted_campaign_driver_mod"
        log = tmp_path / "imports.log"
        (tmp_path / f"{name}.py").write_text(
            "import time\n"
            f"with open({str(log)!r}, 'a') as fh:\n"
            "    fh.write('x')\n"
            "time.sleep(0.02)\n"  # widen the race window
            "def run():\n"
            "    return 42\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        sys.modules.pop(name, None)
        try:
            entry = ExperimentEntry(
                name="counted", runner=None, spec=f"{name}:run"
            )
            n_threads = 8
            barrier = threading.Barrier(n_threads)
            resolved: list = []
            errors: list = []

            def resolve() -> None:
                barrier.wait()
                try:
                    resolved.append(entry.resolve())
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=resolve) for _ in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(10.0)
            assert not errors
            # every resolver observed the identical runner object …
            assert len(resolved) == n_threads
            assert len({id(fn) for fn in resolved}) == 1
            assert resolved[0]() == 42
            # … and the module body ran exactly once
            assert log.read_text() == "x"
        finally:
            sys.modules.pop(name, None)
