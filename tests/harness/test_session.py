"""Tests for the full host-side measurement sessions."""

import pytest

from repro.harness import KernelSession
from repro.paper import TABLE3_RUNTIME_MS


class TestKernelSession:
    def test_fpga_session_runtime_matches_table3(self):
        session = KernelSession("FPGA", "Config1")
        result = session.run(result_bytes=1 << 20)
        assert result.kernel_ms == pytest.approx(
            TABLE3_RUNTIME_MS["Config1"]["FPGA"], rel=0.2
        )

    def test_cpu_session_runtime_matches_table3(self):
        result = KernelSession("CPU", "Config1").run(result_bytes=1 << 20)
        assert result.kernel_ms == pytest.approx(
            TABLE3_RUNTIME_MS["Config1"]["CPU"], rel=0.2
        )

    def test_enqueues_until_150s(self):
        result = KernelSession("FPGA", "Config2").run(result_bytes=1 << 20)
        active = result.invocations * result.kernel_seconds
        assert active >= 150.0
        assert active - result.kernel_seconds < 150.0  # no over-enqueue

    def test_timeline_includes_readback(self):
        result = KernelSession("FPGA", "Config1").run(result_bytes=1 << 24)
        assert result.readback_seconds > 0
        assert result.total_seconds > result.invocations * result.kernel_seconds

    def test_energy_consistent_with_protocol(self):
        from repro.power import MeasurementProtocol, PowerModel, VirtualMultimeter

        result = KernelSession("GPU", "Config1").run(result_bytes=1 << 20)
        proto = MeasurementProtocol(VirtualMultimeter(PowerModel()))
        direct = proto.measure("GPU", result.kernel_seconds)
        assert result.energy_per_invocation_j == pytest.approx(
            direct.energy_per_invocation_j, rel=1e-6
        )

    def test_icdf_style_changes_fixed_runtime(self):
        cuda = KernelSession("PHI", "Config3", icdf_style="cuda").run(
            result_bytes=1 << 20
        )
        fpga_style = KernelSession("PHI", "Config3", icdf_style="fpga").run(
            result_bytes=1 << 20
        )
        assert fpga_style.kernel_seconds > 3 * cuda.kernel_seconds

    def test_fpga_ignores_icdf_style(self):
        a = KernelSession("FPGA", "Config3", icdf_style="cuda").run(
            result_bytes=1 << 20
        )
        b = KernelSession("FPGA", "Config3", icdf_style="fpga").run(
            result_bytes=1 << 20
        )
        assert a.kernel_seconds == b.kernel_seconds

    def test_unknown_device_rejected(self):
        with pytest.raises(KeyError):
            KernelSession("TPU", "Config1")

    def test_session_energy_ordering(self):
        """End-to-end: the FPGA session needs the least energy/invocation."""
        energies = {
            dev: KernelSession(dev, "Config1").run(result_bytes=1 << 20)
            .energy_per_invocation_j
            for dev in ("CPU", "GPU", "PHI", "FPGA")
        }
        assert min(energies, key=energies.get) == "FPGA"
