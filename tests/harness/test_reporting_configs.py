"""Tests for the configuration registry and text reporting."""

import pytest

from repro.harness import CONFIGURATIONS, Configuration, format_series, format_table
from repro.paper import FPGA_WORK_ITEMS
from repro.rng.mersenne import MT19937_PARAMS, MT521_PARAMS


class TestConfigurations:
    def test_four_configs(self):
        assert set(CONFIGURATIONS) == {"Config1", "Config2", "Config3", "Config4"}

    def test_table1_bindings(self):
        assert CONFIGURATIONS["Config1"].mt_params is MT19937_PARAMS
        assert CONFIGURATIONS["Config2"].mt_params is MT521_PARAMS
        assert CONFIGURATIONS["Config3"].transform == "icdf"
        assert CONFIGURATIONS["Config1"].transform == "marsaglia_bray"

    def test_exponents(self):
        assert CONFIGURATIONS["Config1"].exponent == 19937
        assert CONFIGURATIONS["Config4"].exponent == 521

    def test_state_words(self):
        assert CONFIGURATIONS["Config3"].state_words == 624
        assert CONFIGURATIONS["Config2"].state_words == 17

    def test_fpga_work_items_from_table2(self):
        for name, cfg in CONFIGURATIONS.items():
            assert cfg.fpga_work_items == FPGA_WORK_ITEMS[name]

    def test_kernel_transform_mapping(self):
        assert CONFIGURATIONS["Config1"].kernel_transform() == "marsaglia_bray"
        # the FPGA always runs the bit-level ICDF
        assert CONFIGURATIONS["Config3"].kernel_transform() == "icdf_fpga"

    def test_kernel_config_factory(self):
        kc = CONFIGURATIONS["Config2"].kernel_config(limit_main=64)
        assert kc.mt_params is MT521_PARAMS
        assert kc.limit_main == 64
        assert kc.sector_variances == (1.39,)

    def test_kernel_config_overrides(self):
        kc = CONFIGURATIONS["Config1"].kernel_config(
            limit_main=32, sector_variances=(0.5, 2.0), break_id=2
        )
        assert kc.sectors == 2
        assert kc.break_id == 2


class TestFormatTable:
    def test_basic(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 0.123456]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "2.50" in out
        assert "0.1235" in out

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_column_alignment(self):
        out = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = out.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3])

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out


class TestFormatSeries:
    def test_merged_x_axis(self):
        out = format_series(
            "x", {"s1": {1: 10, 2: 20}, "s2": {2: 200, 3: 300}}
        )
        lines = out.splitlines()
        assert lines[0].split("|")[0].strip() == "x"
        assert len(lines) == 2 + 3  # header + sep + 3 x values

    def test_missing_points_blank(self):
        out = format_series("x", {"s": {1: 10}, "t": {2: 5}})
        assert "10" in out and "5" in out
