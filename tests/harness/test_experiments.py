"""Integration tests for the experiment drivers (one per table/figure)."""

import numpy as np
import pytest

from repro.harness import (
    run_buffer_combining,
    run_eq1,
    run_fig5a,
    run_fig5b,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_rejection_rates,
    run_table1,
    run_table2,
    run_table3,
)
from repro.paper import (
    FPGA_WORK_ITEMS,
    OPTIMAL_LOCAL_SIZES,
    IDLE_POWER_W,
    TABLE3_RUNTIME_MS,
)


class TestTable1:
    def test_rows_and_render(self):
        res = run_table1()
        assert len(res.rows) == 4
        assert "Marsaglia-Bray" in res.render()
        assert res.column("States") == [624, 17, 624, 17]


class TestTable2:
    def test_work_items(self):
        res = run_table2()
        wi = dict(zip(res.column("Config"), res.column("WorkItems")))
        assert wi == FPGA_WORK_ITEMS

    def test_within_one_point_of_paper(self):
        res = run_table2()
        for row in res.rows:
            config, _, s, sp, d, dp, b, bp = row
            assert abs(s - sp) < 1.0, config
            assert abs(d - dp) < 1.0, config
            assert abs(b - bp) < 1.0, config


class TestTable3:
    @pytest.fixture(scope="class")
    def res(self):
        return run_table3()

    def test_all_rows_present(self, res):
        assert res.column("Setup") == [
            "Config1", "Config2", "Config3_cuda", "Config3_fpga_style",
            "Config4_cuda", "Config4_fpga_style",
        ]

    def test_every_cell_within_2x_of_paper(self, res):
        for row in res.rows:
            setup = row[0]
            for i, dev in enumerate(("CPU", "GPU", "PHI", "FPGA")):
                ours = row[1 + 2 * i]
                paper = row[2 + 2 * i]
                assert paper == TABLE3_RUNTIME_MS[setup][dev]
                assert 0.5 < ours / paper < 2.0, (setup, dev)

    def test_config1_speedups(self, res):
        row = res.rows[0]
        cpu, gpu, phi, fpga = row[1], row[3], row[5], row[7]
        assert cpu / fpga > 4.0  # paper 5.5x
        assert gpu / fpga > 2.5  # paper 3.5x
        assert phi / fpga > 1.1  # paper 1.4x

    def test_config4_crossover(self, res):
        row = next(r for r in res.rows if r[0] == "Config4_cuda")
        gpu, phi, fpga = row[3], row[5], row[7]
        assert gpu < 1.1 * fpga
        assert phi < fpga


class TestFig5:
    def test_fig5a_optima(self):
        res = run_fig5a()
        assert all(
            f"'{d}': {OPTIMAL_LOCAL_SIZES[d]}" in res.notes
            for d in ("CPU", "GPU", "PHI")
        )
        for dev in ("CPU", "GPU", "PHI"):
            curve = res.series[dev]
            assert min(curve, key=curve.get) == OPTIMAL_LOCAL_SIZES[dev]

    def test_fig5a_config3_similar_shape(self):
        res = run_fig5a("Config3")
        for dev in ("CPU", "GPU", "PHI"):
            curve = res.series[dev]
            assert curve[1] > 3 * min(curve.values())

    def test_fig5b_saturates(self):
        res = run_fig5b()
        for dev in ("CPU", "GPU", "PHI"):
            curve = res.series[dev]
            assert curve[1024] > curve[65536]
            assert curve[262144] == pytest.approx(curve[65536], rel=0.35)


class TestFig6:
    @pytest.fixture(scope="class")
    def res(self):
        return run_fig6(samples_per_variance=2048)

    def test_ks_passes(self, res):
        for row in res.rows:
            assert row[5] > 1e-3  # KS p-value

    def test_moments(self, res):
        for row in res.rows:
            v, _, mean, var = row[0], row[1], row[2], row[3]
            assert mean == pytest.approx(1.0, abs=0.08)
            assert var == pytest.approx(v, rel=0.25)

    def test_histogram_tracks_reference(self, res):
        for key, payload in res.series.items():
            hist = np.array(payload["histogram"])
            pdf = np.array(payload["reference_pdf"])
            # compare where the reference has mass
            mask = pdf > 0.05
            assert np.mean(np.abs(hist[mask] - pdf[mask]) / pdf[mask]) < 0.5


class TestFig7:
    @pytest.fixture(scope="class")
    def res(self):
        return run_fig7(work_items=(1, 2, 4, 6, 8))

    def test_monotone_in_burst_length(self, res):
        for name, curve in res.series.items():
            xs = sorted(curve)
            vals = [curve[x] for x in xs]
            assert all(b <= a for a, b in zip(vals, vals[1:])), name

    def test_more_work_items_never_slower(self, res):
        for rns in (64, 512, 4096):
            row = [res.series[f"{n} WI"][rns] for n in (1, 2, 4, 6, 8)]
            assert all(b <= a for a, b in zip(row, row[1:]))

    def test_saturation_at_channel_bandwidth(self, res):
        # at the largest bursts all curves approach total_bytes/bandwidth
        floor = res.series["8 WI"][4096]
        assert floor < res.series["8 WI"][16] / 10

    def test_embedded_model_validation_runs(self):
        # validate_with_simulation raises if the model diverges
        run_fig7(burst_rns=(64,), work_items=(1, 4), validate_with_simulation=True)


class TestFig8:
    def test_trace_shape(self):
        res = run_fig8()
        watts = [w for _, w in res.rows]
        assert min(watts) > IDLE_POWER_W - 10
        assert max(watts) > IDLE_POWER_W + 40  # active plateau visible
        # idle at both ends
        assert watts[0] < IDLE_POWER_W + 10
        assert watts[-1] < IDLE_POWER_W + 12


class TestFig9:
    @pytest.fixture(scope="class")
    def res(self):
        return run_fig9()

    def test_fpga_best_everywhere(self, res):
        for row in res.rows:
            cpu, gpu, phi, fpga = row[1:5]
            assert fpga < min(cpu, gpu, phi), row[0]

    def test_config1_ratio_band(self, res):
        row = res.rows[0]
        assert row[5] == pytest.approx(9.5, rel=0.25)  # vs CPU
        assert row[6] == pytest.approx(7.9, rel=0.25)  # vs GPU
        assert row[7] == pytest.approx(4.1, rel=0.25)  # vs PHI

    def test_margin_shrinks_toward_config4(self, res):
        first, last = res.rows[0], res.rows[-1]
        assert last[6] < first[6]  # GPU ratio shrinks
        assert last[7] < first[7]  # PHI ratio shrinks


class TestEq1:
    def test_paper_quotes_reproduced(self):
        res = run_eq1()
        for row in res.rows:
            assert row[3] == pytest.approx(row[4], rel=0.01)

    def test_transfer_bound_gap(self):
        res = run_eq1()
        row34 = next(r for r in res.rows if r[0] == "Config3,4")
        assert row34[5] > 1.3 * row34[2]  # full model >> Eq1


class TestRejectionRates:
    def test_shape(self):
        res = run_rejection_rates()
        mb = {r[1]: r[2] for r in res.rows if r[0] == "marsaglia_bray"}
        ic = {r[1]: r[2] for r in res.rows if r[0] == "icdf"}
        assert mb[1.39] > 3 * ic[1.39]
        assert mb[100.0] > mb[0.1]
        assert ic[100.0] > ic[0.1]


class TestBufferCombining:
    def test_device_level_wins(self):
        res = run_buffer_combining()
        host = next(r for r in res.rows if r[0] == "host_level")
        dev = next(r for r in res.rows if r[0] == "device_level")
        assert dev[2] == 1 and host[2] == 6
        assert dev[3] < host[3]
        assert dev[4] < 0.01
