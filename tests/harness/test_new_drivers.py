"""Tests for the fig2/fig3/variance drivers and the tools script."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.harness import run_fig2, run_fig3, run_variance_sweep


class TestFig2Driver:
    @pytest.fixture(scope="class")
    def res(self):
        return run_fig2()

    def test_three_styles(self, res):
        assert len(res.rows) == 3

    def test_static_lockstep_perfect(self, res):
        static = res.rows[0]
        assert static[3] == 1.0

    def test_efficiency_ordering(self, res):
        _, _, _, eff_static = res.rows[0]
        _, _, _, eff_div = res.rows[1]
        _, _, _, eff_dec = res.rows[2]
        assert eff_static > eff_dec > eff_div

    def test_ascii_panels_embedded(self, res):
        assert "(b) lockstep with rejection" in res.notes


class TestFig3Driver:
    @pytest.fixture(scope="class")
    def res(self):
        return run_fig3(n_work_items=3, limit_main=64)

    def test_one_row_per_engine(self, res):
        assert len(res.rows) == 3

    def test_lanes_in_series(self, res):
        lanes = res.series["lanes"]
        assert "GammaRNG0" in lanes and "Transfer2" in lanes

    def test_overlap_reported(self, res):
        assert "overlap fraction" in res.notes


class TestVarianceSweepDriver:
    def test_default_span(self):
        res = run_variance_sweep()
        assert res.rows[0][0] == 0.1
        assert res.rows[-1][0] == 100.0

    def test_custom_variances(self):
        res = run_variance_sweep(variances=(0.5, 2.0))
        assert len(res.rows) == 2


class TestToolsScript:
    def test_markdown_mode(self):
        script = Path(__file__).parents[2] / "tools" / "generate_experiments_data.py"
        proc = subprocess.run(
            [sys.executable, str(script), "--markdown"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr[-1500:]
        assert "| Config | " in proc.stdout  # markdown tables emitted
        assert "**Table III" in proc.stdout
