"""The experiment registry: eager/lazy registration and CLI derivation."""

import pytest

from repro.harness import registry
from repro.harness.registry import ExperimentEntry


class TestRegisteredDrivers:
    def test_all_paper_artifacts_registered(self):
        names = registry.experiment_names()
        for expected in (
            "fig2", "fig3", "table1", "table2", "table3",
            "fig5a", "fig5b", "fig6", "fig7", "fig8", "fig9",
            "eq1", "rejection", "buffers", "variance", "serve-bench",
        ):
            assert expected in names

    def test_get_runner_resolves_eager_entry(self):
        from repro.harness.experiments import run_table1

        assert registry.get_runner("table1") is run_table1

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(KeyError, match="table1"):
            registry.get_runner("fig42")

    def test_runners_matches_names(self):
        runners = registry.runners()
        assert list(runners) == registry.experiment_names()
        assert all(callable(fn) for fn in runners.values())


class TestRegistrationMechanics:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="registered twice"):
            registry.register("table1")(lambda: None)

    def test_lazy_spec_requires_colon(self):
        with pytest.raises(ValueError, match="module:callable"):
            registry.register_lazy("broken", "no.colon.here")

    def test_lazy_entry_resolves_on_demand(self):
        entry = ExperimentEntry(
            name="x", runner=None, spec="repro.harness.experiments:run_eq1"
        )
        from repro.harness.experiments import run_eq1

        assert entry.resolve() is run_eq1
        assert entry.runner is run_eq1  # cached after first resolve

    def test_serve_bench_is_lazy(self):
        # the harness must not import the engine at load time; the
        # serve-bench entry therefore carries a spec string
        import sys

        entry = registry._REGISTRY["serve-bench"]
        if entry.runner is None:  # not yet resolved by another test
            assert entry.spec == "repro.engine.bench:run_serve_bench"
        assert "repro.harness" in sys.modules
