"""Deterministic load replay: same seed, same trace, same simulation.

The acceptance property of the serving benchmark: every number in
``BENCH_serving.json`` is a pure function of the pinned seed.  These
tests pin each link of that chain — trace generation, JSON round-trip,
shard assignment, and the virtual-time simulation itself.
"""

import json

import pytest

from repro.serve.gateway import TenantPolicy
from repro.serve.loadgen import (
    TierSpec,
    TraceEvent,
    WorkloadSpec,
    generate_trace,
    job_from_event,
    modeled_device_seconds,
    offered_load_sweep,
    simulate_tier,
    trace_from_json,
    trace_to_json,
)

SPEC = WorkloadSpec(seed=11, n_jobs=400, rate_jps=2000.0,
                    deadline_s=0.05, deadline_fraction=0.3)
TIER = TierSpec(n_shards=4, workers_per_shard=2,
                tenant_policy=TenantPolicy(rate=150.0, burst=300.0))


class TestTraceDeterminism:
    def test_same_seed_identical_trace(self):
        a, b = generate_trace(SPEC), generate_trace(SPEC)
        assert a == b
        assert [e.t for e in a] == [e.t for e in b]
        assert [e.n_samples for e in a] == [e.n_samples for e in b]
        assert [e.tenant for e in a] == [e.tenant for e in b]

    def test_different_seed_different_trace(self):
        other = WorkloadSpec(**{**SPEC.__dict__, "seed": 12})
        assert generate_trace(SPEC) != generate_trace(other)

    def test_arrivals_increase_and_rate_is_honest(self):
        trace = generate_trace(SPEC)
        ts = [e.t for e in trace]
        assert ts == sorted(ts)
        observed_rate = len(trace) / ts[-1]
        # heavy-tailed gaps: the realized rate still tracks the spec
        assert observed_rate == pytest.approx(SPEC.rate_jps, rel=0.25)

    def test_heavy_tail_and_caps(self):
        trace = generate_trace(SPEC)
        sizes = [e.n_samples for e in trace]
        assert min(sizes) >= SPEC.size_min
        assert max(sizes) <= SPEC.size_cap
        assert max(sizes) > 4 * min(sizes)  # the tail is real

    def test_tenants_are_zipf_skewed(self):
        trace = generate_trace(SPEC)
        tenants = [e.tenant for e in trace]
        top = max(tenants.count(t) for t in set(tenants))
        assert top > len(trace) / 20  # a heavy hitter exists
        assert max(tenants) <= SPEC.n_users

    def test_per_event_seeds_unique(self):
        trace = generate_trace(SPEC)
        seeds = [e.seed for e in trace]
        assert len(set(seeds)) == len(seeds)


class TestTraceRoundTrip:
    def test_json_round_trip_exact(self):
        trace = generate_trace(SPEC)
        assert trace_from_json(trace_to_json(trace)) == trace

    def test_json_is_plain_data(self):
        payload = json.loads(trace_to_json(generate_trace(SPEC)[:3]))
        assert isinstance(payload, list)
        assert set(payload[0]) == {
            "index", "t", "tenant", "config", "variance",
            "n_samples", "seed", "deadline_s",
        }

    def test_job_materialization_matches_event(self):
        event = generate_trace(SPEC)[0]
        job = job_from_event(event)
        assert job.batch_key() == event.batch_key()
        assert job.seed == event.seed
        assert job.n_samples == event.n_samples
        assert job.deadline_s == event.deadline_s


class TestSimulationDeterminism:
    def test_identical_reports(self):
        trace = generate_trace(SPEC)
        a = simulate_tier(trace, TIER)
        b = simulate_tier(trace, TIER)
        assert a == b

    def test_identical_through_json(self):
        # the whole chain: regenerate + round-trip the trace, re-simulate
        a = simulate_tier(generate_trace(SPEC), TIER)
        b = simulate_tier(
            trace_from_json(trace_to_json(generate_trace(SPEC))), TIER
        )
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_shard_assignment_stable(self):
        trace = generate_trace(SPEC)
        a = simulate_tier(trace, TIER)["assignment"]
        b = simulate_tier(trace, TIER)["assignment"]
        assert a == b
        # keyed on batch key: equal keys always land together
        by_key = {}
        for event, shard in zip(
            sorted(trace, key=lambda e: (e.t, e.index)), a
        ):
            assert by_key.setdefault(event.batch_key(), shard) == shard

    def test_accounting_balances(self):
        report = simulate_tier(generate_trace(SPEC), TIER)
        assert (
            report["completed"] + report["shed_total"]
            == report["offered_jobs"]
        )
        assert report["latency_s"]["p50"] <= report["latency_s"]["p99"]
        assert report["latency_s"]["p99"] <= report["latency_s"]["max"]

    def test_modeled_device_seconds_matches_job(self):
        from repro.devices import FpgaModel
        from repro.harness.configs import CONFIGURATIONS

        event = generate_trace(SPEC)[0]
        model = FpgaModel(
            n_work_items=CONFIGURATIONS[event.config].fpga_work_items
        )
        assert modeled_device_seconds(event) == pytest.approx(
            job_from_event(event).device_seconds(model)
        )


class TestOfferedLoadSweep:
    def test_monotone_pressure(self):
        steps = offered_load_sweep(SPEC, [0.25, 1.0, 8.0], TIER)
        assert [s["load_multiplier"] for s in steps] == [0.25, 1.0, 8.0]
        p99 = [s["latency_s"]["p99"] for s in steps]
        shed = [s["shed_rate"] for s in steps]
        assert p99[0] <= p99[-1]
        assert shed[0] <= shed[-1]

    def test_sweep_deterministic(self):
        a = offered_load_sweep(SPEC, [0.5, 2.0], TIER)
        b = offered_load_sweep(SPEC, [0.5, 2.0], TIER)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
