"""Trace propagation through the live tier and the virtual simulator.

The invariants under test, per the observability contract in
``docs/observability.md``:

* every admitted request's chain carries **exactly one terminal**
  event, even with multiple layers (engine funnel, sharding, gateway
  catch-all) all entitled to close it;
* parentage is linear and survives a retry that re-dispatches to a
  different worker;
* spillover reroutes and breaker skips appear as explicit shard-stage
  events in the rerouted request's own chain;
* the seeded virtual-time simulator exports byte-identical logs, and
  its always-on p99 exemplar ids match a traced re-run.
"""

import pytest

from repro.engine.engine import ExecutionEngine
from repro.engine.jobs import GammaJob
from repro.engine.queue import JobQueueFull
from repro.engine.resilience import FaultPlan, FaultRule, RetryPolicy
from repro.obs import RequestTraceLog, use_request_log
from repro.serve.gateway import AdmissionGateway, TenantPolicy
from repro.serve.loadgen import (
    TierSpec,
    WorkloadSpec,
    VirtualChaos,
    generate_trace,
    simulate_tier,
)
from repro.serve.sharding import ShardedEngine


def _job(seed=1, n=128, variance=1.39):
    return GammaJob(
        config="Config1", variance=variance, n_samples=n, seed=seed
    )


def _assert_single_terminal(events):
    terminals = [e for e in events if e.terminal]
    assert len(terminals) == 1, [
        (e.stage, e.kind, e.terminal) for e in events
    ]
    assert events[-1] is terminals[0]
    return terminals[0]


def _assert_linear_parentage(events):
    seen = set()
    for i, e in enumerate(events):
        if i == 0:
            assert e.parent_id is None
        else:
            assert e.parent_id in seen, (e.stage, e.kind)
        seen.add(e.span_id)


class TestLiveTier:
    def test_complete_chain_through_every_stage(self):
        log = RequestTraceLog()
        with use_request_log(log):
            with ShardedEngine(n_shards=2, n_workers=1) as tier:
                gateway = AdmissionGateway(tier)
                handles = [
                    gateway.admit_sync(f"tenant{i % 3}", _job(seed=i))
                    for i in range(12)
                ]
                for h in handles:
                    h.result(timeout=30)
        chains = log.chains()
        assert len(chains) == 12
        assert log.terminal_counts() == {"complete": 12}
        assert log.snapshot()["pending"] == 0
        for events in chains.values():
            terminal = _assert_single_terminal(events)
            assert terminal.kind == "complete"
            _assert_linear_parentage(events)
            stages = [e.stage for e in events]
            # gateway → shard routing → queue admission → queue wait →
            # batch formation → execute → resolution, in order
            for a, b in zip(
                ["gateway", "shard", "queue", "batch", "worker", "request"],
                ["shard", "queue", "batch", "worker", "request", None],
            ):
                assert a in stages
                if b is not None:
                    assert stages.index(a) < stages.index(b)

    def test_baggage_minted_at_the_gateway(self):
        log = RequestTraceLog()
        with use_request_log(log):
            with ShardedEngine(n_shards=1, n_workers=1) as tier:
                gateway = AdmissionGateway(tier)
                job = _job(seed=5)
                handle = gateway.admit_sync("acme", job)
                handle.result(timeout=30)
        assert job.trace.tenant == "acme"
        assert job.trace.batch_key == job.batch_key()

    def test_latency_exemplars_surface_in_stats(self):
        log = RequestTraceLog()
        with use_request_log(log):
            with ShardedEngine(n_shards=2, n_workers=1) as tier:
                gateway = AdmissionGateway(tier)
                handles = [
                    gateway.admit_sync("t", _job(seed=i)) for i in range(8)
                ]
                for h in handles:
                    h.result(timeout=30)
                report = tier.stats_dict()
        exemplars = report["latency_exemplars"]
        assert exemplars
        assert report["trace_sampling"] == 1.0
        chains = log.chains()
        for ex in exemplars:
            assert ex["trace_id"] in chains
            assert ex["total_s"] > 0
            assert ex["shard"] in report["shards"]

    def test_untraced_jobs_stay_untraced(self):
        # no log installed: the tier must not mint or emit anything
        with ShardedEngine(n_shards=1, n_workers=1) as tier:
            gateway = AdmissionGateway(tier)
            job = _job(seed=9)
            gateway.admit_sync("t", job).result(timeout=30)
        assert job.trace is None


class TestRetryParentage:
    def _run_killed_worker_scenario(self, attempt):
        log = RequestTraceLog()
        plan = FaultPlan([FaultRule(scope="worker", mode="kill", match="w0")])
        eng = ExecutionEngine(
            n_workers=2,
            max_batch=4,
            faults=plan,
            retry=RetryPolicy(max_attempts=3, base_s=0.01, jitter=0.0),
            breaker_config={"failure_threshold": 1, "cooldown_s": 30.0},
        )
        jobs = [_job(seed=i) for i in range(8)]
        for i, job in enumerate(jobs):
            job.trace = log.mint(("retry", attempt, i))
        with eng:
            eng.run(jobs, timeout=60.0)
        return log

    def test_retry_redispatch_keeps_the_chain(self):
        # kill w0 after its first batch: jobs retry onto w1; their
        # chains must show both execute attempts under one trace with
        # an explicit retry_scheduled hop between them.  Whether w0
        # gets a batch before w1 finishes everything is a thread-
        # scheduling race, so rerun the seeded scenario until the kill
        # actually bites; the chain invariants hold on every run.
        for attempt in range(10):
            log = self._run_killed_worker_scenario(attempt)
            chains = log.chains()
            assert len(chains) == 8
            retried = self._check_chains(chains)
            if retried:
                break
        assert retried > 0

    def _check_chains(self, chains):
        retried = 0
        for events in chains.values():
            terminal = _assert_single_terminal(events)
            assert terminal.kind == "complete"
            _assert_linear_parentage(events)
            executes = [e for e in events if e.kind == "execute"]
            if len(executes) > 1:
                retried += 1
                workers = [e.attrs["worker"] for e in executes]
                assert workers[0] != workers[-1]  # re-dispatched
                assert executes[0].attrs["attempt"] < executes[-1].attrs[
                    "attempt"
                ]
                assert any(e.kind == "retry_scheduled" for e in events)
                assert executes[-1].status == "ok"
                assert executes[0].status == "error"
        return retried

    def test_exhausted_retries_close_with_failed(self):
        log = RequestTraceLog(sample_rate=0.0)  # errors must survive 0%
        plan = FaultPlan([FaultRule(scope="batch", mode="fail")])
        eng = ExecutionEngine(
            n_workers=1,
            faults=plan,
            retry=RetryPolicy(max_attempts=2, base_s=0.01, jitter=0.0),
            breaker_config={"failure_threshold": 100},
        )
        job = _job(seed=3)
        job.trace = log.mint("doomed")
        with eng:
            handle = eng.submit(job)
            with pytest.raises(Exception):
                handle.result(30.0)
        events = log.chains()[job.trace.trace_id]
        terminal = _assert_single_terminal(events)
        assert terminal.kind == "failed"
        assert terminal.status == "error"
        assert len([e for e in events if e.kind == "execute"]) == 2


class TestReroutes:
    def test_spillover_emits_spill_then_completes(self):
        log = RequestTraceLog()
        with ShardedEngine(n_shards=2, n_workers=1, spill=1) as tier:
            job = _job()
            job.trace = log.mint("spilled")
            primary = tier.route(job)

            def _full(job):
                raise JobQueueFull("simulated full queue")

            tier.shards[primary].submit = _full
            tier.submit(job).result(timeout=30)
        events = log.chains()[job.trace.trace_id]
        terminal = _assert_single_terminal(events)
        assert terminal.kind == "complete"
        spill = next(e for e in events if e.kind == "spill")
        assert spill.attrs["from_shard"] == primary
        assert spill.attrs["to_shard"] != primary
        assert spill.attrs["error"] == "JobQueueFull"
        route = next(e for e in events if e.kind == "route")
        assert events.index(route) < events.index(spill)

    def test_all_candidates_full_is_one_queue_full_terminal(self):
        # tier closes the chain; the gateway's catch-all then tries to
        # close it again — first-terminal-wins keeps the chain sane
        log = RequestTraceLog()
        with use_request_log(log):
            with ShardedEngine(n_shards=2, n_workers=1, spill=1) as tier:
                gateway = AdmissionGateway(tier)

                def _full(job):
                    raise JobQueueFull("simulated full queue")

                for shard in tier.shards.values():
                    shard.submit = _full
                with pytest.raises(JobQueueFull):
                    gateway.admit_sync("t", _job())
        [events] = log.chains().values()
        terminal = _assert_single_terminal(events)
        assert (terminal.stage, terminal.kind) == ("shard", "queue_full")
        assert log.snapshot()["duplicate_terminals"] == 1

    def test_breaker_skip_event(self):
        log = RequestTraceLog()
        with ShardedEngine(n_shards=2, n_workers=1, spill=1) as tier:
            job = _job()
            job.trace = log.mint("skipped")
            primary = tier.route(job)
            # force the primary unhealthy: every breaker refuses
            for breaker in tier.shards[primary].pool.breakers.values():
                breaker.can_admit = lambda: False
            tier.submit(job).result(timeout=30)
        events = log.chains()[job.trace.trace_id]
        skip = next(e for e in events if e.kind == "breaker_skip")
        assert skip.attrs["shard"] == primary
        route = next(e for e in events if e.kind == "route")
        assert route.attrs["shard"] != primary
        assert _assert_single_terminal(events).kind == "complete"

    def test_throttled_terminal_at_the_gateway(self):
        log = RequestTraceLog(sample_rate=0.0)
        with use_request_log(log):
            with ShardedEngine(n_shards=1, n_workers=1) as tier:
                gateway = AdmissionGateway(
                    tier,
                    default_policy=TenantPolicy(rate=1.0, burst=1.0),
                )
                gateway.admit_sync("t", _job(seed=1), now=0.0).result(
                    timeout=30
                )
                with pytest.raises(JobQueueFull):
                    gateway.admit_sync("t", _job(seed=2), now=0.0)
        # sheds survive 0% sampling; the throttled chain is two events
        throttled = [
            events
            for events in log.chains().values()
            if events[-1].kind == "throttled"
        ]
        assert len(throttled) == 1
        assert [e.kind for e in throttled[0]] == ["admit", "throttled"]


class TestVirtualSimulator:
    SPEC = WorkloadSpec(seed=77, n_jobs=300, rate_jps=2400.0)
    TIER = TierSpec(
        n_shards=2, workers_per_shard=1, queue_depth=8, max_batch=4,
        spill=1,
    )
    CHAOS = VirtualChaos(seed=7, fail_rate=0.15, max_attempts=3)

    def _run(self, rlog):
        trace = generate_trace(self.SPEC)
        return simulate_tier(trace, self.TIER, chaos=self.CHAOS, rlog=rlog)

    def test_traced_export_is_deterministic(self):
        exports = []
        for _ in range(2):
            log = RequestTraceLog(seed=self.SPEC.seed)
            self._run(log)
            exports.append(log.to_json())
        assert exports[0] == exports[1]

    def test_every_request_resolves_exactly_once(self):
        log = RequestTraceLog(seed=self.SPEC.seed)
        report = self._run(log)
        snap = log.snapshot()
        assert snap["minted"] == self.SPEC.n_jobs
        assert snap["pending"] == 0
        assert snap["duplicate_terminals"] == 0
        assert sum(snap["terminals"].values()) == self.SPEC.n_jobs
        assert report["retries"] > 0 and report["spilled"] > 0
        for events in log.chains().values():
            _assert_single_terminal(events)
            _assert_linear_parentage(events)

    def test_untraced_exemplar_ids_match_a_traced_rerun(self):
        # the always-on p99 exemplars derive trace ids without a log in
        # hand; they must name the same chains a default-seed traced
        # run (what `--trace-requests` installs) commits
        untraced = self._run(None)
        log = RequestTraceLog()
        traced = self._run(log)
        assert untraced["p99_exemplars"] == traced["p99_exemplars"]
        chains = log.chains()
        for ex in untraced["p99_exemplars"]:
            events = chains[ex["trace_id"]]
            terminal = _assert_single_terminal(events)
            assert terminal.kind == "complete"
            assert terminal.attrs["latency_s"] == pytest.approx(
                ex["latency_s"]
            )

    def test_retry_and_spill_hops_visible_in_chains(self):
        log = RequestTraceLog(seed=self.SPEC.seed)
        self._run(log)
        kinds = {
            e.kind for events in log.chains().values() for e in events
        }
        assert {"admit", "route", "enqueue", "wait", "batch",
                "execute", "complete"} <= kinds
        assert "retry_scheduled" in kinds
        assert "spill" in kinds
