"""Consistent-hash ring + sharded engine tier."""

import pytest

from repro.engine.jobs import GammaJob
from repro.engine.queue import JobQueueFull
from repro.serve.sharding import ShardedEngine, ShardRing, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash(("gamma", "Config1", 1.39)) == stable_hash(
            ("gamma", "Config1", 1.39)
        )

    def test_seed_changes_hash(self):
        key = ("gamma", "Config1", 1.39)
        assert stable_hash(key, seed=0) != stable_hash(key, seed=1)


class TestShardRing:
    def test_route_is_deterministic(self):
        a = ShardRing(["s0", "s1", "s2", "s3"])
        b = ShardRing(["s3", "s2", "s1", "s0"])  # order-insensitive
        keys = [("gamma", "Config1", v) for v in (0.1, 0.5, 1.39, 4.45)]
        assert [a.route(k) for k in keys] == [b.route(k) for k in keys]

    def test_all_shards_reachable(self):
        ring = ShardRing(["s0", "s1", "s2", "s3"])
        hit = {ring.route(("key", i)) for i in range(200)}
        assert hit == {"s0", "s1", "s2", "s3"}

    def test_remove_only_rehomes_that_arc(self):
        ring = ShardRing(["s0", "s1", "s2", "s3"])
        keys = [("key", i) for i in range(300)]
        before = {k: ring.route(k) for k in keys}
        ring.remove("s2")
        moved = [
            k for k in keys if ring.route(k) != before[k]
        ]
        # every moved key must have been on the removed shard
        assert moved
        assert all(before[k] == "s2" for k in moved)

    def test_preference_order_starts_with_owner(self):
        ring = ShardRing(["s0", "s1", "s2"])
        key = ("key", 7)
        prefs = ring.preference(key)
        assert prefs[0] == ring.route(key)
        assert sorted(prefs) == ["s0", "s1", "s2"]

    def test_avoid_walks_past(self):
        ring = ShardRing(["s0", "s1", "s2"])
        key = ("key", 7)
        owner = ring.route(key)
        alt = ring.route(key, avoid=frozenset([owner]))
        assert alt != owner
        # everything avoided: fall back to the owner
        assert ring.route(key, avoid=frozenset(["s0", "s1", "s2"])) == owner

    def test_guards(self):
        with pytest.raises(ValueError):
            ShardRing([])
        ring = ShardRing(["s0"])
        with pytest.raises(ValueError):
            ring.remove("s0")
        with pytest.raises(ValueError):
            ring.add("s0")


def _job(variance=1.39, n=256, seed=1):
    return GammaJob(config="Config1", variance=variance, n_samples=n, seed=seed)


class TestShardedEngine:
    def test_routes_by_batch_key_and_completes(self):
        with ShardedEngine(n_shards=3, n_workers=1, queue_depth=32) as tier:
            jobs = [_job(variance=v, seed=i) for i, v in enumerate(
                [0.35, 1.39, 4.45] * 8
            )]
            expected = [tier.route(j) for j in jobs]
            handles = [tier.submit(j) for j in jobs]
            results = [h.result(timeout=30) for h in handles]
        # same key -> same shard, deterministically
        by_key = {}
        for job, shard in zip(jobs, expected):
            assert by_key.setdefault(job.batch_key(), shard) == shard
        assert all(len(r.payload) == 256 for r in results)
        assert tier.metrics.counter("jobs_submitted").value == len(jobs)

    def test_worker_names_are_shard_scoped(self):
        tier = ShardedEngine(n_shards=2, n_workers=2)
        names = {
            w.name
            for shard in tier.shards.values()
            for w in shard.pool.workers
        }
        assert names == {"s0w0", "s0w1", "s1w0", "s1w1"}

    def test_spillover_on_full_primary(self):
        with ShardedEngine(n_shards=2, n_workers=1, spill=1) as tier:
            job = _job()
            primary = tier.route(job)

            def _full(job):
                raise JobQueueFull("simulated full queue")

            tier.shards[primary].submit = _full  # owner always sheds
            handle = tier.submit(job)  # must spill, not raise
            handle.result(timeout=30)
        assert tier.metrics.counter("reroutes_shed").value == 1
        assert tier.metrics.counter("jobs_spilled").value == 1

    def test_shed_when_all_candidates_full(self):
        with ShardedEngine(n_shards=2, n_workers=1, spill=1) as tier:
            def _full(job):
                raise JobQueueFull("simulated full queue")

            for shard in tier.shards.values():
                shard.submit = _full
            with pytest.raises(JobQueueFull):
                tier.submit(_job())
        assert tier.metrics.counter("jobs_shed").value == 1

    def test_stats_dict_aggregates(self):
        with ShardedEngine(n_shards=2, n_workers=1) as tier:
            handles = [tier.submit(_job(seed=i)) for i in range(10)]
            for h in handles:
                h.result(timeout=30)
        report = tier.stats_dict()
        assert report["n_shards"] == 2
        assert report["totals"]["jobs_completed"] == 10
        assert set(report["shards"]) == {"shard0", "shard1"}

    def test_scale_shard(self):
        with ShardedEngine(n_shards=1, n_workers=1) as tier:
            assert tier.active_workers() == {"shard0": 1}
            applied = tier.scale_shard("shard0", 3)
            assert applied == 2
            assert tier.active_workers() == {"shard0": 3}
            applied = tier.scale_shard("shard0", 1)
            assert applied == -2
            assert tier.active_workers() == {"shard0": 1}

    def test_unresolved_handles_zero_after_shutdown(self):
        with ShardedEngine(n_shards=2, n_workers=1) as tier:
            handles = [tier.submit(_job(seed=i)) for i in range(8)]
        assert tier.unresolved_handles(handles) == 0


class TestWeightedRing:
    def test_vnode_count_scales_with_weight(self):
        ring = ShardRing(["s0", "s1"], replicas=64)
        assert ring.vnode_count(1.0) == 64
        assert ring.vnode_count(2.0) == 128
        assert ring.vnode_count(0.001) == 1  # floor at one point
        with pytest.raises(ValueError):
            ring.vnode_count(0.0)
        with pytest.raises(ValueError):
            ring.vnode_count(-1.0)

    def test_weights_default_to_one(self):
        unweighted = ShardRing(["s0", "s1"])
        weighted = ShardRing(["s0", "s1"], weights={"s0": 1.0, "s1": 1.0})
        keys = [("key", i) for i in range(100)]
        assert [unweighted.route(k) for k in keys] == [
            weighted.route(k) for k in keys
        ]
        assert weighted.weights == {"s0": 1.0, "s1": 1.0}

    def test_weighted_routing_is_order_insensitive(self):
        weights = {"s0": 2.0, "s1": 1.0, "s2": 0.5}
        a = ShardRing(["s0", "s1", "s2"], weights=weights)
        b = ShardRing(["s2", "s0", "s1"], weights=weights)
        keys = [("key", i) for i in range(200)]
        assert [a.route(k) for k in keys] == [b.route(k) for k in keys]

    def test_heavier_shard_owns_more_keys(self):
        ring = ShardRing(["s0", "s1"], weights={"s0": 3.0, "s1": 1.0})
        owned = [ring.route(("key", i)) for i in range(2000)]
        heavy = owned.count("s0")
        light = owned.count("s1")
        # 3:1 capacity should land clearly more than half on s0, with
        # slack for hash-arc variance
        assert heavy > 2 * light

    def test_reweight_via_remove_add_rehomes_only_that_shard(self):
        ring = ShardRing(
            ["s0", "s1", "s2"], weights={"s0": 1.0, "s1": 1.0, "s2": 1.0}
        )
        keys = [("key", i) for i in range(300)]
        before = {k: ring.route(k) for k in keys}
        ring.remove("s2")
        ring.add("s2", weight=0.25)  # shrink s2's arc
        moved = [k for k in keys if ring.route(k) != before[k]]
        assert moved
        # shrinking s2 only sheds keys *from* s2; nobody else's keys move
        assert all(before[k] == "s2" for k in moved)

    def test_weights_for_unknown_shard_rejected(self):
        with pytest.raises(ValueError, match="unknown shard"):
            ShardRing(["s0"], weights={"s0": 1.0, "ghost": 2.0})

    def test_tier_plumbs_ring_weights(self):
        tier = ShardedEngine(
            n_shards=2, n_workers=1,
            ring_weights={"shard0": 2.0, "shard1": 1.0},
        )
        assert tier.ring.weights == {"shard0": 2.0, "shard1": 1.0}


class TestUnhealthySubmit:
    def test_all_candidates_unhealthy_touches_only_primary(self):
        """When every candidate shard is unhealthy the job goes to the
        primary owner alone — the condemned spillover shards are never
        probed within that submit."""
        with ShardedEngine(n_shards=3, n_workers=1, spill=2) as tier:
            job = _job()
            primary = tier.route(job)
            tier.shard_healthy = lambda name: False  # everything condemned
            attempted = []
            for name, shard in tier.shards.items():
                real = shard.submit
                def _recording(j, _name=name, _real=real):
                    attempted.append(_name)
                    return _real(j)
                shard.submit = _recording
            handle = tier.submit(job)
            handle.result(timeout=30)
        assert attempted == [primary]
        # the spillover candidates were skipped for breaker health
        assert tier.metrics.counter("reroutes_breaker").value == 2

    def test_breaker_skipped_shard_not_retried_as_spillover(self):
        """A shard skipped for health is out of the submit entirely: when
        the remaining healthy candidates all shed, the typed error
        propagates without ever touching the skipped shard."""
        with ShardedEngine(n_shards=3, n_workers=1, spill=2) as tier:
            job = _job()
            prefs = tier.ring.preference(job.batch_key())
            sick = prefs[1]  # a spillover candidate, not the primary
            real_healthy = ShardedEngine.shard_healthy
            tier.shard_healthy = (
                lambda name: name != sick and real_healthy(tier, name)
            )
            attempted = []

            def _full(j, _name=None):
                attempted.append(_name)
                raise JobQueueFull("simulated full queue")

            for name, shard in tier.shards.items():
                shard.submit = (
                    lambda j, _name=name: _full(j, _name)
                )
            with pytest.raises(JobQueueFull):
                tier.submit(job)
        assert sick not in attempted
        assert attempted == [prefs[0], prefs[2]]
        assert tier.metrics.counter("reroutes_breaker").value == 1
        assert tier.metrics.counter("jobs_shed").value == 1
