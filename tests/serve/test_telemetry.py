"""TierTelemetry: snapshot-delta polling, SLO math, bounded history."""

import time

import pytest

from repro.engine.jobs import GammaJob
from repro.serve.gateway import AdmissionGateway
from repro.serve.sharding import ShardedEngine
from repro.serve.telemetry import TierTelemetry


def _job(seed=1, n=128):
    return GammaJob(config="Config1", variance=1.39, n_samples=n, seed=seed)


def _run(tier, gateway, n, base_seed=0):
    handles = [
        gateway.admit_sync(f"tenant{i % 2}", _job(seed=base_seed + i))
        for i in range(n)
    ]
    for h in handles:
        h.result(timeout=30)
    tier.drain(timeout=30)


class TestPolling:
    def test_deltas_between_polls(self):
        with ShardedEngine(n_shards=2, n_workers=1) as tier:
            gateway = AdmissionGateway(tier)
            telemetry = TierTelemetry(tier, gateway=gateway)
            _run(tier, gateway, 6)
            first = telemetry.poll(now=10.0)
            assert first["interval_s"] is None  # no window yet
            assert first["tier"]["submitted"] == 6
            assert first["tier"]["completed"] == 6
            assert first["tier"]["throughput_jps"] is None
            _run(tier, gateway, 4, base_seed=100)
            second = telemetry.poll(now=12.0)
            # deltas, not cumulative totals
            assert second["interval_s"] == pytest.approx(2.0)
            assert second["tier"]["submitted"] == 4
            assert second["tier"]["completed"] == 4
            assert second["tier"]["throughput_jps"] == pytest.approx(2.0)

    def test_idle_window_is_all_zeros(self):
        with ShardedEngine(n_shards=1, n_workers=1) as tier:
            gateway = AdmissionGateway(tier)
            telemetry = TierTelemetry(tier, gateway=gateway)
            _run(tier, gateway, 3)
            telemetry.poll(now=1.0)
            record = telemetry.poll(now=2.0)
        assert all(v == 0 for v in record["tier"].values()
                   if isinstance(v, int))
        assert record["tenants"] == {}  # only tenants that moved appear

    def test_slo_aggregates(self):
        with ShardedEngine(n_shards=2, n_workers=1) as tier:
            gateway = AdmissionGateway(tier)
            telemetry = TierTelemetry(tier, gateway=gateway)
            _run(tier, gateway, 8)
            record = telemetry.poll(now=1.0)
        assert record["slo"]["availability"] == pytest.approx(1.0)
        assert record["slo"]["deadline_attainment"] == pytest.approx(1.0)
        assert record["slo"]["shed_rate"] == pytest.approx(0.0)

    def test_slo_none_when_nothing_resolved(self):
        with ShardedEngine(n_shards=1, n_workers=1) as tier:
            record = TierTelemetry(tier).poll(now=0.0)
        assert record["slo"] == {
            "availability": None,
            "deadline_attainment": None,
            "shed_rate": None,
        }

    def test_per_shard_blocks(self):
        with ShardedEngine(n_shards=2, n_workers=1) as tier:
            gateway = AdmissionGateway(tier)
            telemetry = TierTelemetry(tier, gateway=gateway)
            _run(tier, gateway, 6)
            record = telemetry.poll(now=1.0)
        assert set(record["shards"]) == {"shard0", "shard1"}
        for block in record["shards"].values():
            assert block["healthy"] is True
            assert block["queue_depth"] == 0
            assert block["breakers_open"] == 0
        total = sum(b["completed"] for b in record["shards"].values())
        assert total == 6

    def test_tenant_deltas(self):
        with ShardedEngine(n_shards=1, n_workers=1) as tier:
            gateway = AdmissionGateway(tier)
            telemetry = TierTelemetry(tier, gateway=gateway)
            _run(tier, gateway, 4)  # tenants alternate tenant0/tenant1
            first = telemetry.poll(now=1.0)
            _run(tier, gateway, 2, base_seed=50)
            second = telemetry.poll(now=2.0)
        assert first["tenants"]["tenant0"]["admitted"] == 2
        assert second["tenants"]["tenant0"]["admitted"] == 1
        assert second["tenants"]["tenant0"]["completed"] == 1

    def test_gateway_block(self):
        with ShardedEngine(n_shards=1, n_workers=1) as tier:
            gateway = AdmissionGateway(tier)
            telemetry = TierTelemetry(tier, gateway=gateway)
            _run(tier, gateway, 3)
            record = telemetry.poll(now=1.0)
        assert record["gateway"]["service_estimate_s"] > 0
        assert record["gateway"]["latency_s"]["count"] == 3.0

    def test_without_gateway(self):
        with ShardedEngine(n_shards=1, n_workers=1) as tier:
            record = TierTelemetry(tier).poll(now=0.0)
        assert record["gateway"] is None
        assert record["tenants"] == {}

    def test_idle_gateway_latency_is_none_not_zero(self):
        # an idle tier has no latency evidence: a fabricated 0.0 p99
        # would read as a perfectly fast tail on an SLO dashboard
        with ShardedEngine(n_shards=1, n_workers=1) as tier:
            gateway = AdmissionGateway(tier)
            # materialize the histogram without observing anything,
            # the state right after the gateway starts up
            gateway.metrics.histogram("latency_s")
            record = TierTelemetry(tier, gateway=gateway).poll(now=0.0)
        latency = record["gateway"]["latency_s"]
        assert latency["count"] == 0
        for key in ("mean", "p50", "p95", "p99", "max"):
            assert latency[key] is None

    def test_busy_gateway_latency_keeps_real_numbers(self):
        with ShardedEngine(n_shards=1, n_workers=1) as tier:
            gateway = AdmissionGateway(tier)
            telemetry = TierTelemetry(tier, gateway=gateway)
            _run(tier, gateway, 4)
            record = telemetry.poll(now=1.0)
        latency = record["gateway"]["latency_s"]
        assert latency["count"] == 4.0
        assert latency["p99"] is not None and latency["p99"] > 0.0


class TestRetention:
    def test_history_is_bounded(self):
        with ShardedEngine(n_shards=1, n_workers=1) as tier:
            telemetry = TierTelemetry(tier, history=3)
            for i in range(7):
                telemetry.poll(now=float(i))
        assert len(telemetry.history) == 3
        assert telemetry.latest()["t"] == 6.0

    def test_history_validated(self):
        with pytest.raises(ValueError):
            TierTelemetry(object(), history=0)


class TestBackgroundThread:
    def test_start_poll_stop(self):
        with ShardedEngine(n_shards=1, n_workers=1) as tier:
            telemetry = TierTelemetry(tier)
            with telemetry.start(interval_s=0.01):
                deadline = time.monotonic() + 5.0
                while not telemetry.history and time.monotonic() < deadline:
                    time.sleep(0.01)
            assert telemetry.latest() is not None
            assert telemetry._thread is None  # stopped on exit

    def test_double_start_rejected(self):
        with ShardedEngine(n_shards=1, n_workers=1) as tier:
            telemetry = TierTelemetry(tier).start(interval_s=5.0)
            try:
                with pytest.raises(RuntimeError):
                    telemetry.start(interval_s=5.0)
            finally:
                telemetry.stop()

    def test_interval_validated(self):
        with ShardedEngine(n_shards=1, n_workers=1) as tier:
            with pytest.raises(ValueError):
                TierTelemetry(tier).start(interval_s=0.0)


class TestExposition:
    def test_expose_text_covers_every_registry(self):
        with ShardedEngine(n_shards=2, n_workers=1) as tier:
            gateway = AdmissionGateway(tier)
            telemetry = TierTelemetry(tier, gateway=gateway)
            # two batch keys that land on different shards, so both
            # engine registries have live samples to expose
            handles = [
                gateway.admit_sync(
                    "t",
                    GammaJob(
                        config="Config1", variance=v, n_samples=128,
                        seed=i,
                    ),
                )
                for i, v in enumerate([0.35, 1.39] * 2)
            ]
            for h in handles:
                h.result(timeout=30)
            text = telemetry.expose_text()
        assert "gateway_admitted_total 4" in text
        assert "tier_jobs_submitted_total 4" in text
        # per-shard engine samples are tagged with the shard name
        assert "engine_shard0_jobs_submitted_total" in text
        assert "engine_shard1_jobs_submitted_total" in text
        # histograms expose summary-style quantile samples
        assert 'quantile="0.50"' in text


class _FakePool:
    breakers: dict = {}


class _FakeShard:
    """Just enough surface for TierTelemetry: metrics + queue + pool."""

    def __init__(self):
        from repro.obs import MetricsRegistry

        self.metrics = MetricsRegistry(prefix="engine.")
        self.queue = []
        self.pool = _FakePool()


class _FakeTier:
    def __init__(self, shard_names=("shard0",)):
        self.shards = {name: _FakeShard() for name in shard_names}

    def shard_healthy(self, name):
        return True


class TestCounterResets:
    """A registry reset mid-window (scale-down swapping a shard's
    engine) makes counters go backwards; deltas must clamp at zero and
    be tallied under ``counter_resets`` instead of poisoning rates."""

    def test_reset_clamps_to_zero_and_is_counted(self):
        tier = _FakeTier()
        shard = tier.shards["shard0"]
        shard.metrics.counter("jobs_submitted").inc(10)
        shard.metrics.counter("jobs_completed").inc(8)
        telemetry = TierTelemetry(tier)
        telemetry.poll(now=1.0)

        # mid-window scale-down: the shard's engine (and registry) is
        # replaced, so cumulative counters restart from zero
        tier.shards["shard0"] = _FakeShard()
        tier.shards["shard0"].metrics.counter("jobs_submitted").inc(2)
        tier.shards["shard0"].metrics.counter("jobs_completed").inc(1)
        record = telemetry.poll(now=2.0)

        block = record["shards"]["shard0"]
        assert all(
            block[key] >= 0
            for key in ("submitted", "completed", "shed", "failed")
        )
        # 2 < 10 and 1 < 8: both counters moved backwards
        assert block["submitted"] == 0
        assert block["completed"] == 0
        assert block["counter_resets"] == 2
        assert record["tier"]["counter_resets"] == 2
        assert record["tier"]["submitted"] == 0

    def test_slo_keeps_none_on_zero_denominator_after_reset(self):
        tier = _FakeTier()
        tier.shards["shard0"].metrics.counter("jobs_completed").inc(5)
        telemetry = TierTelemetry(tier)
        telemetry.poll(now=1.0)
        tier.shards["shard0"] = _FakeShard()  # everything back to zero
        record = telemetry.poll(now=2.0)
        # the clamped window resolved nothing: ratios are None, not 0/0
        assert record["slo"]["availability"] is None
        assert record["slo"]["deadline_attainment"] is None
        assert record["slo"]["shed_rate"] is None

    def test_unaffected_shard_keeps_honest_deltas(self):
        tier = _FakeTier(("shard0", "shard1"))
        for name in tier.shards:
            tier.shards[name].metrics.counter("jobs_completed").inc(4)
        telemetry = TierTelemetry(tier)
        telemetry.poll(now=1.0)
        tier.shards["shard0"] = _FakeShard()  # only shard0 resets
        tier.shards["shard1"].metrics.counter("jobs_completed").inc(3)
        record = telemetry.poll(now=2.0)
        assert record["shards"]["shard0"]["completed"] == 0
        assert record["shards"]["shard0"]["counter_resets"] >= 1
        assert record["shards"]["shard1"]["completed"] == 3
        assert record["shards"]["shard1"]["counter_resets"] == 0
        assert record["tier"]["completed"] == 3

    def test_no_resets_on_monotone_counters(self):
        tier = _FakeTier()
        counter = tier.shards["shard0"].metrics.counter("jobs_completed")
        counter.inc(2)
        telemetry = TierTelemetry(tier)
        first = telemetry.poll(now=1.0)
        counter.inc(5)
        second = telemetry.poll(now=2.0)
        assert first["tier"]["counter_resets"] == 0
        assert second["tier"]["counter_resets"] == 0
        assert second["shards"]["shard0"]["completed"] == 5
