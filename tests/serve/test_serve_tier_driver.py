"""serve-tier / serve-chaos drivers: registry, schema, small live runs."""

import json

import pytest

from repro.harness import registry
from repro.serve.bench import (
    default_serve_chaos_plan,
    run_serve_chaos,
    run_serve_tier,
)


class TestRegistry:
    def test_serving_experiments_registered(self):
        names = registry.experiment_names()
        for name in ("serve-tier", "serve-chaos", "timing-prune"):
            assert name in names

    def test_lazy_resolution_round_trip(self):
        fn = registry.get_runner("serve-tier")
        assert callable(fn)


class TestServeTierDriver:
    @pytest.fixture(scope="class")
    def result(self):
        # small but real: 3 offered-load steps (the acceptance floor)
        return run_serve_tier(
            n_jobs=300, multipliers=(0.5, 2.0, 8.0)
        )

    def test_row_per_step(self, result):
        assert len(result.rows) == 3
        assert "p99 [ms]" in result.headers

    def test_step_schema_has_p99(self, result):
        steps = result.series["steps"]
        assert len(steps) == 3
        for step in steps:
            assert set(step["latency_s"]) == {
                "count", "mean", "p50", "p95", "p99", "max"
            }
            assert step["latency_s"]["count"] > 0
            for key in (
                "offered_jps", "completed", "shed_rate", "shed_throttled",
                "shed_queue_full", "shed_deadline", "throughput_jps",
                "mean_batch_occupancy", "batches",
            ):
                assert key in step

    def test_series_is_json_clean(self, result):
        # the --json path and record_bench both dump this verbatim
        json.dumps(result.series)

    def test_workload_provenance_recorded(self, result):
        assert result.series["workload"]["seed"] == 20170529
        assert result.series["tier"]["n_shards"] == 4

    def test_render_mentions_tier(self, result):
        assert "4 shards" in result.render()


class TestServeChaosDriver:
    def test_plan_targets_one_shard(self):
        plan = default_serve_chaos_plan(seed=5)
        kills = [r for r in plan.rules if r.mode == "kill"]
        assert len(kills) == 1
        assert kills[0].match == "s0w1"

    def test_small_chaos_run_resolves_everything(self):
        result = run_serve_chaos(
            n_jobs=60, n_shards=2, workers_per_shard=2, speedup=20.0
        )
        row = dict(zip(result.headers, result.rows[0]))
        assert row["unresolved"] == 0
        assert row["completed"] > 0
        # outcome accounting covers every trace event
        assert (
            row["completed"] + row["throttled"] + row["queue shed"]
            + row["deadline shed"] + row["failed"]
        ) == 60
