"""Autoscaler: hysteresis, cooldown, bounds, and the live tier hookup."""

import pytest

from repro.serve.autoscale import AutoscalePolicy, Autoscaler, ShardSignals
from repro.serve.sharding import ShardedEngine


def _hot(workers=2):
    return ShardSignals(occupancy=0.9, wait_p99_s=0.5, active_workers=workers)


def _cold(workers=2):
    return ShardSignals(occupancy=0.05, wait_p99_s=0.0, active_workers=workers)


def _calm(workers=2):
    return ShardSignals(occupancy=0.5, wait_p99_s=0.0, active_workers=workers)


class TestEvaluate:
    def test_needs_consecutive_breaches(self):
        scaler = Autoscaler(AutoscalePolicy(breach_up=2, cooldown_ticks=0))
        assert scaler.evaluate(0, {"s": _hot()})["s"] == 0  # one breach
        assert scaler.evaluate(1, {"s": _hot()})["s"] == 1  # second fires

    def test_calm_tick_resets_streak(self):
        scaler = Autoscaler(AutoscalePolicy(breach_up=2, cooldown_ticks=0))
        scaler.evaluate(0, {"s": _hot()})
        scaler.evaluate(1, {"s": _calm()})  # interrupts the streak
        assert scaler.evaluate(2, {"s": _hot()})["s"] == 0

    def test_cooldown_spaces_actions(self):
        scaler = Autoscaler(AutoscalePolicy(breach_up=1, cooldown_ticks=3))
        assert scaler.evaluate(0, {"s": _hot()})["s"] == 1
        for tick in (1, 2, 3):  # still cooling down
            assert scaler.evaluate(tick, {"s": _hot()})["s"] == 0
        assert scaler.evaluate(4, {"s": _hot()})["s"] == 1

    def test_scale_down_is_slower(self):
        scaler = Autoscaler(
            AutoscalePolicy(breach_up=1, breach_down=3, cooldown_ticks=0)
        )
        assert scaler.evaluate(0, {"s": _cold(3)})["s"] == 0
        assert scaler.evaluate(1, {"s": _cold(3)})["s"] == 0
        assert scaler.evaluate(2, {"s": _cold(3)})["s"] == -1

    def test_bounds_clamp(self):
        scaler = Autoscaler(
            AutoscalePolicy(
                breach_up=1, breach_down=1, cooldown_ticks=0,
                min_workers=2, max_workers=3,
            )
        )
        assert scaler.evaluate(0, {"s": _hot(3)})["s"] == 0  # at max
        assert scaler.evaluate(1, {"s": _cold(2)})["s"] == 0  # at min

    def test_latency_signal_alone_triggers(self):
        scaler = Autoscaler(
            AutoscalePolicy(
                breach_up=1, cooldown_ticks=0, wait_p99_high_s=0.1
            )
        )
        slow = ShardSignals(
            occupancy=0.1, wait_p99_s=0.5, active_workers=1
        )
        assert scaler.evaluate(0, {"s": slow})["s"] == 1

    def test_deterministic_history(self):
        def run():
            scaler = Autoscaler(
                AutoscalePolicy(breach_up=1, breach_down=2, cooldown_ticks=1)
            )
            pattern = [_hot(), _hot(), _cold(3), _cold(3), _cold(3), _hot()]
            for tick, sig in enumerate(pattern):
                scaler.evaluate(tick, {"s": sig})
            return scaler.history()

        assert run() == run()

    def test_policy_guards(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(occupancy_low=0.8, occupancy_high=0.7)
        with pytest.raises(ValueError):
            AutoscalePolicy(min_workers=0)
        with pytest.raises(ValueError):
            AutoscalePolicy(breach_up=0)


class TestLiveTier:
    def test_step_grows_and_shrinks_real_shards(self):
        policy = AutoscalePolicy(
            breach_up=1, breach_down=1, cooldown_ticks=0,
            min_workers=1, max_workers=4,
        )
        scaler = Autoscaler(policy)
        with ShardedEngine(n_shards=1, n_workers=1) as tier:
            # force the decision by patching the signal reader: hot
            scaler.read_signals = lambda t: {
                "shard0": ShardSignals(
                    occupancy=0.9, wait_p99_s=0.0,
                    active_workers=tier.shards["shard0"].n_active_workers,
                )
            }
            assert scaler.step(tier, tick=0) == {"shard0": 1}
            assert tier.active_workers()["shard0"] == 2
            # now cold: shrink back
            scaler.read_signals = lambda t: {
                "shard0": ShardSignals(
                    occupancy=0.0, wait_p99_s=0.0,
                    active_workers=tier.shards["shard0"].n_active_workers,
                )
            }
            assert scaler.step(tier, tick=1) == {"shard0": -1}
            assert tier.active_workers()["shard0"] == 1

    def test_read_signals_shape(self):
        scaler = Autoscaler()
        with ShardedEngine(n_shards=2, n_workers=1) as tier:
            signals = scaler.read_signals(tier)
        assert set(signals) == {"shard0", "shard1"}
        for sig in signals.values():
            assert 0.0 <= sig.occupancy <= 1.0
            assert sig.active_workers == 1


class TestIdleSignalHonesty:
    """Zero wait observations must surface as None, not a 0.0 p99."""

    def test_read_signals_idle_shard_has_none_tail(self):
        scaler = Autoscaler()
        with ShardedEngine(n_shards=1, n_workers=1) as tier:
            signals = scaler.read_signals(tier)
        # nothing was ever enqueued: no evidence, not "perfectly fast"
        assert signals["shard0"].wait_p99_s is None

    def test_none_tail_never_reads_hot(self):
        scaler = Autoscaler(
            AutoscalePolicy(
                breach_up=1, cooldown_ticks=0, wait_p99_high_s=0.0
            )
        )
        sig = ShardSignals(occupancy=0.5, wait_p99_s=None, active_workers=2)
        # a fabricated 0.0 would satisfy `wait >= high` for high=0.0
        assert scaler.evaluate(0, {"s": sig})["s"] == 0

    def test_none_tail_still_counts_as_calm_for_scale_down(self):
        scaler = Autoscaler(
            AutoscalePolicy(
                breach_up=1, breach_down=1, cooldown_ticks=0,
                wait_p99_high_s=0.01,
            )
        )
        sig = ShardSignals(occupancy=0.0, wait_p99_s=None, active_workers=2)
        # an idle shard with no queued work is genuinely cold
        assert scaler.evaluate(0, {"s": sig})["s"] == -1
