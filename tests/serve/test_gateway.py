"""Admission gateway: token buckets, pre-shedding, asyncio bridge."""

import asyncio

import pytest

from repro.engine.engine import ExecutionEngine
from repro.engine.jobs import GammaJob
from repro.engine.resilience import JobDeadlineExceeded
from repro.serve.gateway import (
    AdmissionGateway,
    ServiceEstimate,
    TenantPolicy,
    TenantThrottled,
    TokenBucket,
)
from repro.engine.queue import JobQueueFull


def _job(seed=1, n=256, deadline_s=None):
    return GammaJob(
        config="Config1", n_samples=n, seed=seed, deadline_s=deadline_s
    )


class TestTokenBucket:
    def test_burst_then_dry(self):
        bucket = TokenBucket(rate=1.0, burst=3)
        assert all(bucket.try_acquire(now=0.0) for _ in range(3))
        assert not bucket.try_acquire(now=0.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=2)
        assert bucket.try_acquire(now=0.0)
        assert bucket.try_acquire(now=0.0)
        assert not bucket.try_acquire(now=0.0)
        # half a second refills one token at 2/s
        assert bucket.try_acquire(now=0.5)
        assert not bucket.try_acquire(now=0.5)

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        bucket.try_acquire(now=0.0)
        assert bucket.available(now=1000.0) == pytest.approx(2.0)

    def test_virtual_clock_is_pure(self):
        a = TokenBucket(rate=5.0, burst=10)
        b = TokenBucket(rate=5.0, burst=10)
        times = [0.0, 0.01, 0.02, 0.5, 0.5, 0.6, 2.0]
        assert [a.try_acquire(now=t) for t in times] == [
            b.try_acquire(now=t) for t in times
        ]

    def test_guards(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestServiceEstimate:
    def test_first_observation_seeds_estimate(self):
        est = ServiceEstimate(alpha=0.5)
        est.observe(2.0)
        assert est.value == pytest.approx(2.0)

    def test_ewma_converges(self):
        est = ServiceEstimate(alpha=0.5)
        est.observe(2.0)
        est.observe(4.0)
        assert est.value == pytest.approx(3.0)


class _RecordingTier:
    """Captures submits; hands back inert handles (no engine involved)."""

    def __init__(self):
        self.submitted = []

    def submit(self, job):
        from repro.engine.engine import JobHandle

        self.submitted.append(job)
        return JobHandle(job)


class TestAdmissionSync:
    def test_throttles_over_contract(self):
        tier = _RecordingTier()
        gw = AdmissionGateway(
            tier, default_policy=TenantPolicy(rate=1.0, burst=2.0)
        )
        gw.admit_sync("t1", _job(seed=1), now=0.0)
        gw.admit_sync("t1", _job(seed=2), now=0.0)
        with pytest.raises(TenantThrottled):
            gw.admit_sync("t1", _job(seed=3), now=0.0)
        # TenantThrottled IS a JobQueueFull: one except clause catches both
        assert issubclass(TenantThrottled, JobQueueFull)
        # other tenants have their own bucket
        gw.admit_sync("t2", _job(seed=4), now=0.0)
        assert gw.metrics.counter("tenant_throttled").value == 1

    def test_per_tenant_policy_override(self):
        tier = _RecordingTier()
        gw = AdmissionGateway(
            tier,
            default_policy=TenantPolicy(rate=1.0, burst=1.0),
            policies={"vip": TenantPolicy(rate=100.0, burst=10.0)},
        )
        for i in range(5):
            gw.admit_sync("vip", _job(seed=i), now=0.0)
        with pytest.raises(TenantThrottled):
            gw.admit_sync("small", _job(seed=9), now=0.0)
            gw.admit_sync("small", _job(seed=10), now=0.0)

    def test_deadline_preshed_needs_evidence(self):
        tier = _RecordingTier()
        gw = AdmissionGateway(tier, deadline_headroom=1.0)
        # no completions yet: the gateway has no opinion, job passes
        gw.admit_sync("t", _job(seed=1, deadline_s=0.001), now=0.0)
        gw.estimate.observe(10.0)  # service far beyond any budget
        with pytest.raises(JobDeadlineExceeded):
            gw.admit_sync("t", _job(seed=2, deadline_s=0.001), now=1.0)
        assert gw.metrics.counter("deadline_preshed").value == 1
        # jobs without a deadline never pre-shed
        gw.admit_sync("t", _job(seed=3), now=2.0)


class TestAsyncBridge:
    def test_submit_and_await_result(self):
        async def scenario():
            with ExecutionEngine(n_workers=1) as engine:
                gw = AdmissionGateway(engine)
                future = await gw.submit("tenant", _job(seed=5))
                result = await asyncio.wait_for(future, timeout=30)
                return result

        result = asyncio.run(scenario())
        assert len(result.payload) == 256

    def test_await_reraises_typed_error(self):
        from repro.engine.resilience import FaultPlan, FaultRule, WorkerFault

        plan = FaultPlan(
            rules=[FaultRule(scope="job", mode="fail", probability=1.0)],
            seed=6,
        )

        async def scenario():
            with ExecutionEngine(n_workers=1, faults=plan) as engine:
                gw = AdmissionGateway(engine)
                future = await gw.submit("tenant", _job(seed=6))
                with pytest.raises(WorkerFault):
                    await asyncio.wait_for(future, timeout=30)

        asyncio.run(scenario())

    def test_completion_feeds_estimate(self):
        async def scenario():
            with ExecutionEngine(n_workers=1) as engine:
                gw = AdmissionGateway(engine)
                futures = [
                    await gw.submit("tenant", _job(seed=i)) for i in range(4)
                ]
                await asyncio.gather(*futures)
                return gw

        gw = asyncio.run(scenario())
        assert gw.estimate.count == 4
        assert gw.estimate.value > 0.0
        snap = gw.snapshot()
        assert snap["gateway.completed"] == 4
        assert snap["gateway.tenants_seen"] == 1
