"""Tests for the platform catalog and the NDRange index space."""

import pytest
from hypothesis import given, strategies as st

from repro.opencl import (
    ComputeUnit,
    Device,
    DeviceKind,
    NDRange,
    PAPER_DEVICES,
    paper_platform,
)


class TestComputeUnit:
    def test_partitions(self):
        cu = ComputeUnit(processing_elements=192, partition_width=32)
        assert cu.partitions == 6

    def test_width_must_divide_pes(self):
        with pytest.raises(ValueError):
            ComputeUnit(processing_elements=10, partition_width=3)

    def test_positive_validation(self):
        with pytest.raises(ValueError):
            ComputeUnit(processing_elements=0, partition_width=1)


class TestPaperCatalog:
    def test_all_four_setups_present(self):
        assert set(PAPER_DEVICES) == {"CPU", "GPU", "PHI", "FPGA"}

    def test_partition_widths_match_section_iib(self):
        # "Nvidia GPUs schedule warps ... of 32 threads, while Intel Xeon
        # Phi uses a 512-bit implicit vectorization unit"
        assert PAPER_DEVICES["GPU"].partition_width == 32
        assert PAPER_DEVICES["PHI"].partition_width == 16
        assert PAPER_DEVICES["CPU"].partition_width == 8
        assert PAPER_DEVICES["FPGA"].partition_width == 1

    def test_frequencies_match_section_iva(self):
        assert PAPER_DEVICES["CPU"].frequency_hz == pytest.approx(2.3e9)
        assert PAPER_DEVICES["PHI"].frequency_hz == pytest.approx(1.238e9)
        assert PAPER_DEVICES["GPU"].frequency_hz == pytest.approx(560e6)
        assert PAPER_DEVICES["FPGA"].frequency_hz == pytest.approx(200e6)

    def test_phi_core_count(self):
        assert PAPER_DEVICES["PHI"].compute_units == 61

    def test_platform_lookup(self):
        plat = paper_platform()
        assert plat.device("GPU").kind is DeviceKind.GPU
        with pytest.raises(KeyError):
            plat.device("TPU")

    def test_by_kind(self):
        plat = paper_platform()
        assert len(plat.by_kind(DeviceKind.FPGA)) == 1

    def test_device_validation(self):
        with pytest.raises(ValueError):
            Device(
                name="bad", kind=DeviceKind.CPU, compute_units=0,
                compute_unit=ComputeUnit(1, 1), frequency_hz=1e9,
                global_memory_bytes=1,
            )

    def test_total_pes(self):
        gpu = PAPER_DEVICES["GPU"]
        assert gpu.total_processing_elements == 26 * 192


class TestNDRange:
    def test_paper_setup(self):
        nd = NDRange(65536, 64)
        assert nd.total_work_items == 65536
        assert nd.num_work_groups == 1024
        assert nd.work_group_size == 64

    def test_divisibility_enforced(self):
        with pytest.raises(ValueError, match="divisible"):
            NDRange(100, 7)

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            NDRange((8, 8), (4,))

    def test_max_three_dims(self):
        with pytest.raises(ValueError):
            NDRange((2, 2, 2, 2), (1, 1, 1, 1))

    def test_positive_sizes(self):
        with pytest.raises(ValueError):
            NDRange(0, 1)

    def test_2d(self):
        nd = NDRange((16, 8), (4, 4))
        assert nd.num_work_groups == 8
        assert list(nd.work_groups())[:3] == [(0, 0), (0, 1), (1, 0)]

    def test_1d_group_iteration(self):
        nd = NDRange(16, 4)
        assert list(nd.work_groups()) == [(0,), (1,), (2,), (3,)]

    def test_partitions_per_group(self):
        nd = NDRange(65536, 64)
        assert nd.partitions_per_group(32) == 2
        assert nd.partitions_per_group(16) == 4
        assert nd.partitions_per_group(128) == 1

    def test_partitions_width_validation(self):
        with pytest.raises(ValueError):
            NDRange(8, 8).partitions_per_group(0)


@given(
    groups=st.integers(min_value=1, max_value=64),
    local=st.sampled_from([1, 2, 4, 8, 16, 32, 64]),
)
def test_prop_group_count_times_size_is_global(groups, local):
    nd = NDRange(groups * local, local)
    assert nd.num_work_groups * nd.work_group_size == nd.total_work_items
    assert len(list(nd.work_groups())) == nd.num_work_groups
