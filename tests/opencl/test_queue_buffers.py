"""Tests for buffers, events, command queue and §III-E combining."""

import numpy as np
import pytest

from repro.opencl import (
    Buffer,
    CommandQueue,
    CommandType,
    Context,
    EventStatus,
    KernelHandle,
    MemFlag,
    NDRange,
    combine_at_device_level,
    combine_at_host_level,
    paper_platform,
)


@pytest.fixture()
def ctx():
    return Context(paper_platform(), "GPU")


class TestBuffer:
    def test_store_load_roundtrip(self):
        buf = Buffer("b", 64)
        data = np.arange(8, dtype=np.float32)
        buf.store(16, data)
        out = buf.load(16, 32).view(np.float32)
        np.testing.assert_array_equal(out, data)

    def test_alignment_enforced(self):
        buf = Buffer("b", 64)
        with pytest.raises(ValueError):
            buf.load(2, 4)

    def test_bounds(self):
        buf = Buffer("b", 16)
        with pytest.raises(IndexError):
            buf.store(8, np.zeros(4, dtype=np.float32))

    def test_size_validation(self):
        with pytest.raises(ValueError):
            Buffer("b", 0)
        with pytest.raises(ValueError):
            Buffer("b", 6)

    def test_float_view_shares_storage(self):
        buf = Buffer("b", 16)
        buf.store(0, np.array([1.5, 2.5, 0.0, 0.0], dtype=np.float32))
        assert buf.as_float32()[1] == 2.5


class TestQueueTimeline:
    def test_write_then_read_timing(self, ctx):
        q = ctx.create_queue()
        buf = ctx.create_buffer("b", 1024 * 4)
        data = np.ones(1024, dtype=np.float32)
        ev_w = q.enqueue_write_buffer(buf, data)
        ev_r = q.enqueue_read_buffer(buf)
        d = ctx.device
        expected = d.pcie_latency_s + data.nbytes / d.pcie_bandwidth_bps
        assert ev_w.duration == pytest.approx(expected)
        assert ev_r.time_start == pytest.approx(ev_w.time_end)
        assert q.finish() == pytest.approx(ev_r.time_end)

    def test_in_order_serialization(self, ctx):
        q = ctx.create_queue()
        buf = ctx.create_buffer("b", 4 * 4)
        times = []
        for _ in range(5):
            ev = q.enqueue_write_buffer(buf, np.zeros(4, dtype=np.float32))
            times.append((ev.time_start, ev.time_end))
        for (s1, e1), (s2, e2) in zip(times, times[1:]):
            assert s2 >= e1

    def test_kernel_time_model_used(self, ctx):
        q = ctx.create_queue()
        kernel = KernelHandle(
            "k",
            body=None,
            time_model=lambda device, ndrange, **a: 0.25,
        )
        ev = q.enqueue_ndrange_kernel(kernel, NDRange(64, 8))
        assert ev.duration == 0.25
        assert ev.command is CommandType.NDRANGE_KERNEL

    def test_kernel_body_executed(self, ctx):
        q = ctx.create_queue()
        buf = ctx.create_buffer("out", 16)

        def body(device, ndrange, out):
            out.store(0, np.full(4, 7.0, dtype=np.float32))

        kernel = KernelHandle("k", body=body,
                              time_model=lambda d, n, **a: 1e-3)
        q.enqueue_task(kernel, out=buf)
        np.testing.assert_array_equal(buf.as_float32(), np.full(4, 7.0))

    def test_negative_kernel_time_rejected(self, ctx):
        q = ctx.create_queue()
        kernel = KernelHandle("k", time_model=lambda d, n, **a: -1.0)
        with pytest.raises(ValueError):
            q.enqueue_task(kernel)

    def test_marker_has_zero_duration(self, ctx):
        q = ctx.create_queue()
        ev = q.enqueue_marker("start")
        assert ev.duration == 0.0

    def test_profile_table(self, ctx):
        q = ctx.create_queue()
        buf = ctx.create_buffer("b", 16)
        q.enqueue_write_buffer(buf, np.zeros(4, dtype=np.float32))
        q.enqueue_marker("m")
        prof = q.profile()
        assert len(prof) == 2
        assert prof[0]["command"] == "write_buffer"

    def test_read_into_host_array(self, ctx):
        q = ctx.create_queue()
        buf = ctx.create_buffer("b", 16)
        buf.store(0, np.array([1, 2, 3, 4], dtype=np.float32))
        host = np.zeros(4, dtype=np.float32)
        q.enqueue_read_buffer(buf, out=host)
        np.testing.assert_array_equal(host, [1, 2, 3, 4])

    def test_event_incomplete_duration_raises(self):
        from repro.opencl.event import Event

        ev = Event(CommandType.MARKER)
        with pytest.raises(RuntimeError):
            _ = ev.duration
        assert ev.status is EventStatus.QUEUED


class TestBufferCombining:
    def _blocks(self, n=6, block=4096, seed=3):
        rng = np.random.default_rng(seed)
        return [rng.random(block).astype(np.float32) for _ in range(n)]

    def test_both_strategies_same_host_content(self, ctx):
        blocks = self._blocks()
        host_lvl = combine_at_host_level(ctx, blocks)
        dev_lvl = combine_at_device_level(ctx, blocks)
        np.testing.assert_array_equal(host_lvl.host_array, dev_lvl.host_array)
        np.testing.assert_array_equal(
            dev_lvl.host_array, np.concatenate(blocks)
        )

    def test_device_level_single_read(self, ctx):
        res = combine_at_device_level(ctx, self._blocks())
        assert res.read_requests == 1
        assert res.device_buffers == 1

    def test_host_level_n_reads(self, ctx):
        res = combine_at_host_level(ctx, self._blocks(n=6))
        assert res.read_requests == 6
        assert res.device_buffers == 6

    def test_device_level_faster_readback(self, ctx):
        """One read request saves (N-1) PCIe latencies — the reason the
        paper chose device-level combining."""
        blocks = self._blocks(n=6)
        host_lvl = combine_at_host_level(ctx, blocks)
        dev_lvl = combine_at_device_level(ctx, blocks)
        assert dev_lvl.read_time_s < host_lvl.read_time_s
        saved = host_lvl.read_time_s - dev_lvl.read_time_s
        assert saved == pytest.approx(5 * ctx.device.pcie_latency_s, rel=0.01)

    def test_device_penalty_below_one_percent(self, ctx):
        res = combine_at_device_level(ctx, self._blocks())
        assert 0.0 < res.kernel_time_penalty < 0.01

    def test_unequal_blocks_rejected(self, ctx):
        with pytest.raises(ValueError, match="equally sized"):
            combine_at_host_level(
                ctx,
                [np.zeros(4, dtype=np.float32), np.zeros(8, dtype=np.float32)],
            )

    def test_empty_rejected(self, ctx):
        with pytest.raises(ValueError):
            combine_at_device_level(ctx, [])

    def test_summary_fields(self, ctx):
        s = combine_at_device_level(ctx, self._blocks()).summary
        assert s["strategy"] == "device_level"
        assert s["read_requests"] == 1
