"""Tests for out-of-order queues, wait lists and engine overlap."""

import numpy as np
import pytest

from repro.opencl import (
    Context,
    KernelHandle,
    paper_platform,
)


@pytest.fixture()
def ctx():
    return Context(paper_platform(), "FPGA")


def _kernel(seconds, name="k"):
    return KernelHandle(name, time_model=lambda d, n, **a: seconds)


class TestInOrderBaseline:
    def test_kernel_then_read_serialized(self, ctx):
        from repro.opencl.queue import CommandQueue

        q = CommandQueue(ctx)  # in-order
        buf = ctx.create_buffer("b", 1024)
        ev_k = q.enqueue_task(_kernel(0.5))
        ev_r = q.enqueue_read_buffer(buf)
        assert ev_r.time_start >= ev_k.time_end


class TestOutOfOrder:
    def test_copy_overlaps_compute(self, ctx):
        """The double-buffering pattern: a transfer on the copy engine
        runs concurrently with a kernel on the compute engine."""
        from repro.opencl.queue import CommandQueue

        q = CommandQueue(ctx, out_of_order=True)
        buf = ctx.create_buffer("b", 1 << 20)
        ev_k = q.enqueue_task(_kernel(0.5))
        ev_w = q.enqueue_write_buffer(buf, np.zeros(1 << 18, dtype=np.float32))
        # independent commands start together
        assert ev_w.time_start < ev_k.time_end
        assert q.finish() == pytest.approx(ev_k.time_end)

    def test_wait_for_enforces_order(self, ctx):
        from repro.opencl.queue import CommandQueue

        q = CommandQueue(ctx, out_of_order=True)
        buf = ctx.create_buffer("b", 1024)
        ev_k = q.enqueue_task(_kernel(0.25))
        ev_r = q.enqueue_read_buffer(buf, wait_for=[ev_k])
        assert ev_r.time_start >= ev_k.time_end

    def test_same_engine_still_serializes(self, ctx):
        from repro.opencl.queue import CommandQueue

        q = CommandQueue(ctx, out_of_order=True)
        a = q.enqueue_task(_kernel(0.1, "a"))
        b = q.enqueue_task(_kernel(0.1, "b"))
        assert b.time_start >= a.time_end  # one compute engine

    def test_foreign_event_rejected(self, ctx):
        from repro.opencl.queue import CommandQueue

        q1 = CommandQueue(ctx, out_of_order=True)
        q2 = CommandQueue(ctx, out_of_order=True)
        ev = q1.enqueue_task(_kernel(0.1))
        with pytest.raises(ValueError, match="wait_for"):
            q2.enqueue_task(_kernel(0.1), wait_for=[ev])

    def test_marker_waits_for_everything(self, ctx):
        from repro.opencl.queue import CommandQueue

        q = CommandQueue(ctx, out_of_order=True)
        buf = ctx.create_buffer("b", 1 << 20)
        ev_k = q.enqueue_task(_kernel(0.5))
        q.enqueue_write_buffer(buf, np.zeros(1 << 18, dtype=np.float32))
        marker = q.enqueue_marker("sync")
        assert marker.time_start >= ev_k.time_end

    def test_dependency_chain_timing(self, ctx):
        """write -> kernel -> read with explicit deps reproduces the
        classic offload timeline."""
        from repro.opencl.queue import CommandQueue

        q = CommandQueue(ctx, out_of_order=True)
        buf_in = ctx.create_buffer("in", 1 << 16)
        buf_out = ctx.create_buffer("out", 1 << 16)
        ev_w = q.enqueue_write_buffer(buf_in, np.zeros(1 << 14, dtype=np.float32))
        ev_k = q.enqueue_task(_kernel(0.1), wait_for=[ev_w])
        ev_r = q.enqueue_read_buffer(buf_out, wait_for=[ev_k])
        assert ev_k.time_start >= ev_w.time_end
        assert ev_r.time_start >= ev_k.time_end
        assert q.finish() == pytest.approx(ev_r.time_end)

    def test_double_buffering_beats_serial(self, ctx):
        """Two batches, transfers overlapped with compute: the
        out-of-order timeline finishes earlier than the in-order one."""
        from repro.opencl.queue import CommandQueue

        def pipeline(out_of_order):
            q = CommandQueue(ctx, out_of_order=out_of_order)
            data = np.zeros(1 << 20, dtype=np.float32)
            prev_kernel = None
            for i in range(4):
                buf = ctx.create_buffer(f"b{out_of_order}{i}", data.nbytes)
                deps = [prev_kernel] if (out_of_order and prev_kernel) else None
                ev_w = q.enqueue_write_buffer(buf, data, wait_for=None)
                prev_kernel = q.enqueue_task(
                    _kernel(0.002, f"k{i}"),
                    wait_for=[ev_w] if out_of_order else None,
                )
            return q.finish()

        serial = pipeline(False)
        overlapped = pipeline(True)
        assert overlapped < serial
