"""Edge cases of the §III-E buffer combining strategies.

The fixed ``blockOffset * wid`` layout (Listing 4) only works when the
total length L splits evenly over the N work-items; these tests pin the
failure modes (N not dividing L, zero-length slices) and the bit-level
equivalence of the two strategies' combined host buffers.
"""

import numpy as np
import pytest

from repro.opencl import (
    Context,
    combine_at_device_level,
    combine_at_host_level,
    paper_platform,
)

COMBINERS = [combine_at_host_level, combine_at_device_level]


def _ctx() -> Context:
    return Context(paper_platform(), "FPGA")


class TestUnequalBlocks:
    """N that does not divide L produces unequal blocks — rejected."""

    @pytest.mark.parametrize("combine", COMBINERS)
    def test_array_split_remainder_rejected(self, combine):
        # L = 10 over N = 3: np.array_split yields blocks of 4/3/3
        blocks = np.array_split(np.arange(10, dtype=np.float32), 3)
        with pytest.raises(ValueError, match="equally sized"):
            combine(_ctx(), blocks)

    @pytest.mark.parametrize("combine", COMBINERS)
    def test_single_oversized_block_rejected(self, combine):
        blocks = [
            np.zeros(8, dtype=np.float32),
            np.zeros(8, dtype=np.float32),
            np.zeros(9, dtype=np.float32),
        ]
        with pytest.raises(ValueError, match="equally sized"):
            combine(_ctx(), blocks)

    @pytest.mark.parametrize("combine", COMBINERS)
    def test_divisible_split_accepted(self, combine):
        blocks = np.array_split(np.arange(12, dtype=np.float32), 3)
        result = combine(_ctx(), blocks)
        assert result.host_array.size == 12


class TestDegenerateInputs:
    @pytest.mark.parametrize("combine", COMBINERS)
    def test_empty_block_list_rejected(self, combine):
        with pytest.raises(ValueError, match="at least one"):
            combine(_ctx(), [])

    @pytest.mark.parametrize("combine", COMBINERS)
    def test_zero_length_blocks_rejected(self, combine):
        blocks = [np.empty(0, dtype=np.float32) for _ in range(4)]
        with pytest.raises(ValueError, match="zero-length"):
            combine(_ctx(), blocks)

    @pytest.mark.parametrize("combine", COMBINERS)
    def test_single_work_item(self, combine):
        """N = 1 degenerates to a plain readback, valid in both modes."""
        data = np.arange(16, dtype=np.float32)
        result = combine(_ctx(), [data])
        assert result.device_buffers == 1
        assert result.read_requests == 1
        np.testing.assert_array_equal(result.host_array, data)


class TestBitIdenticalCombining:
    """Host- and device-level combining must agree bit for bit."""

    def _blocks(self, n_items=6, block=512, seed=11):
        rng = np.random.default_rng(seed)
        return [
            rng.random(block).astype(np.float32) for _ in range(n_items)
        ]

    def test_same_bits_random_payload(self):
        blocks = self._blocks()
        host = combine_at_host_level(_ctx(), blocks)
        dev = combine_at_device_level(_ctx(), blocks)
        assert np.array_equal(
            host.host_array.view(np.uint32), dev.host_array.view(np.uint32)
        )

    def test_same_bits_special_float_patterns(self):
        """NaN payloads survive both paths bit-exactly (no FP rewriting)."""
        specials = np.array(
            [0.0, -0.0, np.inf, -np.inf, np.nan, np.float32(1e-45)],
            dtype=np.float32,
        )
        blocks = [specials.copy() for _ in range(3)]
        host = combine_at_host_level(_ctx(), blocks)
        dev = combine_at_device_level(_ctx(), blocks)
        assert np.array_equal(
            host.host_array.view(np.uint32), dev.host_array.view(np.uint32)
        )

    def test_layout_matches_block_offsets(self):
        """wid-th block lands at offset wid * L/N in both strategies."""
        blocks = [
            np.full(4, wid, dtype=np.float32) for wid in range(5)
        ]
        for combine in COMBINERS:
            out = combine(_ctx(), blocks)
            for wid in range(5):
                assert (out.host_array[wid * 4 : (wid + 1) * 4] == wid).all()

    def test_fewer_read_requests_at_device_level(self):
        blocks = self._blocks(n_items=4, block=256)
        host = combine_at_host_level(_ctx(), blocks)
        dev = combine_at_device_level(_ctx(), blocks)
        assert host.read_requests == 4 and dev.read_requests == 1
        assert dev.read_time_s < host.read_time_s
