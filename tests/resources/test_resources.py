"""Tests for the FPGA resource model (Table II)."""

import pytest
from hypothesis import given, strategies as st

from repro.paper import FPGA_WORK_ITEMS, TABLE2_UTILIZATION
from repro.resources import (
    BLOCK_COSTS,
    DEVICE_BUDGET,
    ResourceModel,
    ResourceVector,
    work_item_cost,
)


class TestResourceVector:
    def test_add(self):
        v = ResourceVector(1, 2, 3) + ResourceVector(10, 20, 30)
        assert (v.slices, v.dsp, v.bram) == (11, 22, 33)

    def test_scalar_multiply(self):
        v = 3 * ResourceVector(1, 2, 3)
        assert (v.slices, v.dsp, v.bram) == (3, 6, 9)

    def test_fits_within(self):
        small = ResourceVector(1, 1, 1)
        big = ResourceVector(2, 2, 2)
        assert small.fits_within(big)
        assert not big.fits_within(small)
        assert not ResourceVector(3, 0, 0).fits_within(big)


class TestWorkItemCost:
    def test_mb_uses_four_twisters(self):
        mb = work_item_cost("marsaglia_bray", "mt19937")
        icdf = work_item_cost("icdf", "mt19937")
        # MB has one more twister and the polar core; ICDF has the ROM
        assert mb.slices > icdf.slices
        assert mb.dsp > icdf.dsp
        assert icdf.bram > mb.bram  # coefficient ROM

    def test_small_twister_saves_slices(self):
        big = work_item_cost("marsaglia_bray", "mt19937")
        small = work_item_cost("marsaglia_bray", "mt521")
        assert small.slices < big.slices
        assert small.bram == big.bram  # same BRAM allocation granularity

    def test_unknown_inputs(self):
        with pytest.raises(ValueError):
            work_item_cost("sobol", "mt19937")
        with pytest.raises(ValueError):
            work_item_cost("icdf", "mt607")

    def test_blocks_all_positive(self):
        for name, v in BLOCK_COSTS.items():
            assert v.slices >= 0 and v.dsp >= 0 and v.bram >= 0, name


class TestTableII:
    @pytest.fixture()
    def model(self):
        return ResourceModel()

    @pytest.mark.parametrize("config", ["Config1", "Config2", "Config3", "Config4"])
    def test_work_item_counts_match_paper(self, model, config):
        """Section IV-B: 6 work-items for Config1/2, 8 for Config3/4."""
        assert model.max_work_items(config).n_work_items == FPGA_WORK_ITEMS[config]

    @pytest.mark.parametrize("config", ["Config1", "Config2", "Config3", "Config4"])
    def test_utilization_within_one_percent_of_table2(self, model, config):
        placement = model.max_work_items(config)
        util = placement.utilization_percent()
        paper = TABLE2_UTILIZATION[config]
        for res in ("Slice", "DSP", "BRAM"):
            assert util[res] == pytest.approx(paper[res], abs=1.0), (config, res)

    @pytest.mark.parametrize("config", ["Config1", "Config2", "Config3", "Config4"])
    def test_slice_limited(self, model, config):
        """Table II: 'in all cases the design is limited by the number of
        slices'."""
        placement = model.max_work_items(config)
        assert placement.limiting_resource == "Slice"

    def test_one_more_work_item_fails_routing(self, model):
        for config, n in FPGA_WORK_ITEMS.items():
            assert model.estimate(config, n).routable
            assert not model.estimate(config, n + 1).routable

    def test_table2_report(self, model):
        table = model.table2()
        assert set(table) == set(FPGA_WORK_ITEMS)
        assert table["Config3"]["work_items"] == 8

    def test_unknown_config(self, model):
        with pytest.raises(KeyError):
            model.estimate("Config9", 1)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.estimate("Config1", 0)
        with pytest.raises(ValueError):
            ResourceModel(routing_limit=0.0)

    def test_impossible_budget(self):
        tiny = ResourceModel(
            static_region=ResourceVector(slices=DEVICE_BUDGET.slices, dsp=0, bram=0)
        )
        with pytest.raises(RuntimeError):
            tiny.max_work_items("Config1")


@given(n=st.integers(min_value=1, max_value=20),
       config=st.sampled_from(["Config1", "Config2", "Config3", "Config4"]))
def test_prop_utilization_monotone_in_work_items(n, config):
    model = ResourceModel()
    a = model.estimate(config, n).totals
    b = model.estimate(config, n + 1).totals
    assert b.slices > a.slices
    assert b.bram > a.bram
