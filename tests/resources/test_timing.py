"""Tests for the timing-closure (frequency sag) model."""

import pytest

from repro.paper import FPGA_WORK_ITEMS
from repro.resources import (
    ResourceModel,
    TimingModel,
    frequency_aware_work_items,
)
from repro.resources.timing import decibel_margin, runtime_with_frequency_sag


class TestTimingModel:
    def test_flat_at_paper_utilization(self):
        """At the paper's ~53 % operating point the 200 MHz target holds."""
        tm = TimingModel()
        assert tm.achievable_hz(0.53) == pytest.approx(200e6, rel=0.05)

    def test_sags_near_routing_knee(self):
        tm = TimingModel()
        assert tm.achievable_hz(0.55) < tm.achievable_hz(0.40)
        assert tm.achievable_hz(0.75) < 0.75 * 200e6

    def test_monotone_non_increasing(self):
        tm = TimingModel()
        freqs = [tm.achievable_hz(u / 100) for u in range(0, 101, 5)]
        assert all(b <= a for a, b in zip(freqs, freqs[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            TimingModel().achievable_hz(1.5)
        with pytest.raises(ValueError):
            decibel_margin(0.0)

    def test_decibel_margin(self):
        assert decibel_margin(200e6) == pytest.approx(0.0)
        assert decibel_margin(100e6) == pytest.approx(-6.02, abs=0.01)


class TestFrequencyAwareSearch:
    @pytest.mark.parametrize("config", ["Config1", "Config2", "Config3", "Config4"])
    def test_best_matches_feasibility_search(self, config):
        """At the paper's operating points the throughput-optimal count
        equals the feasibility-limited one — one more pipeline would not
        have paid even if it routed."""
        best, _ = frequency_aware_work_items(config)
        assert best.n_work_items == FPGA_WORK_ITEMS[config]

    def test_sweep_throughput_concave(self):
        _, sweep = frequency_aware_work_items("Config3", hard_cap=12)
        tp = [p.throughput for p in sweep]
        peak = tp.index(max(tp))
        assert all(b >= a for a, b in zip(tp[: peak + 1], tp[1 : peak + 1]))

    def test_frequency_at_best_point_near_target(self):
        best, _ = frequency_aware_work_items("Config1")
        assert best.frequency_hz > 0.9 * 200e6

    def test_runtime_with_sag(self):
        t6 = runtime_with_frequency_sag("Config1", 10_000_000, 0.23, 6)
        t1 = runtime_with_frequency_sag("Config1", 10_000_000, 0.23, 1)
        assert t6 < t1 / 4  # near-linear speedup while the clock holds

    def test_utilization_grows_along_sweep(self):
        _, sweep = frequency_aware_work_items("Config2")
        utils = [p.slice_utilization for p in sweep]
        assert all(b > a for a, b in zip(utils, utils[1:]))
