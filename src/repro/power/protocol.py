"""The paper's dynamic-energy measurement protocol (Section IV-F).

Procedure, exactly as described:

1. start from the fully idle workstation (lead-in),
2. the host triggers the kernel at the first marker and keeps enqueuing
   it back-to-back "in order to reach over 150 seconds",
3. only the final 100-second interval between the last two markers is
   integrated (the host is by then idle, asynchronously waiting on the
   cl_events),
4. the idle energy (idle power x window) is subtracted, giving the
   system-level *dynamic* energy,
5. dividing by the number of kernel repetitions inside the window — "no
   longer an integer value" — gives the dynamic energy per invocation
   (Fig 9).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.meter import VirtualMultimeter
from repro.power.model import ActivityInterval

__all__ = ["DynamicEnergyResult", "MeasurementProtocol"]


@dataclass(frozen=True)
class DynamicEnergyResult:
    """Outcome of one measurement run."""

    device: str
    kernel_seconds: float
    window_seconds: float
    invocations_in_window: float  # non-integer by design
    total_energy_j: float
    idle_energy_j: float

    @property
    def dynamic_energy_j(self) -> float:
        return self.total_energy_j - self.idle_energy_j

    @property
    def energy_per_invocation_j(self) -> float:
        """The Fig 9 quantity."""
        return self.dynamic_energy_j / self.invocations_in_window

    @property
    def average_dynamic_power_w(self) -> float:
        return self.dynamic_energy_j / self.window_seconds


class MeasurementProtocol:
    """Runs the Section IV-F procedure on a virtual meter.

    Parameters
    ----------
    meter:
        The 1 Hz sampler over a power model.
    lead_in_s:
        Idle time before the first marker.
    min_active_s:
        Kernel enqueues continue until at least this much activity
        ("over 150 seconds").
    window_s:
        Integration window, anchored at the end of the activity.
    """

    def __init__(
        self,
        meter: VirtualMultimeter,
        lead_in_s: float = 20.0,
        min_active_s: float = 150.0,
        window_s: float = 100.0,
    ):
        if window_s <= 0 or min_active_s < window_s:
            raise ValueError(
                "need min_active_s >= window_s > 0 for a valid measurement"
            )
        self.meter = meter
        self.lead_in_s = lead_in_s
        self.min_active_s = min_active_s
        self.window_s = window_s

    def measure(self, device: str, kernel_seconds: float) -> DynamicEnergyResult:
        """Measure the dynamic energy per invocation of one kernel."""
        if kernel_seconds <= 0:
            raise ValueError("kernel runtime must be positive")
        invocations = max(1, int(-(-self.min_active_s // kernel_seconds)))
        active_start = self.lead_in_s
        active_end = active_start + invocations * kernel_seconds
        # back-to-back invocations form one contiguous activity block;
        # cl_event boundaries do not gap the device
        activity = [ActivityInterval(active_start, active_end, device)]
        duration = active_end + 5.0
        samples = self.meter.record(activity, duration)
        t1 = active_end
        t0 = t1 - self.window_s
        if t0 < active_start:
            raise ValueError(
                "activity shorter than the integration window; raise "
                "min_active_s"
            )
        total = self.meter.integrate(samples, t0, t1)
        idle = self.meter.model.idle_w * self.window_s
        return DynamicEnergyResult(
            device=device,
            kernel_seconds=kernel_seconds,
            window_seconds=self.window_s,
            invocations_in_window=self.window_s / kernel_seconds,
            total_energy_j=total,
            idle_energy_j=idle,
        )
