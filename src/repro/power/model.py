"""Wall-plug power model of the Section IV-A workstation.

Power at time t is

    P(t) = P_idle + P_dyn(active device) + P_cool(t)

* ``P_idle`` — the ~204 W floor of Fig 8 (all devices idle, fans at
  baseline).
* ``P_dyn`` — system-level dynamic power while an accelerator computes:
  device silicon + host assist + PCIe + PSU conversion losses, lumped
  per device.  The four constants are calibrated so that, combined with
  the runtime model, the full Fig 9 ratio matrix reproduces (10 ratios
  from 4 constants; see EXPERIMENTS.md).
* ``P_cool`` — the workstation's cooling is "set to dynamically adapt to
  the workload (optimal mode)": modeled as a first-order lag (time
  constant ``cooling_tau_s``) toward ``cooling_fraction`` of the dynamic
  power, which produces the rounded shoulders of the Fig 8 trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.paper import IDLE_POWER_W

__all__ = ["ActivityInterval", "PowerModel", "DEVICE_DYNAMIC_POWER_W"]

#: System-level dynamic power [W] while the named accelerator runs the
#: kernel.  Calibrated against the Fig 9 ratio matrix (the FPGA's low
#: draw combined with its runtime is what yields the 9.5x headline).
DEVICE_DYNAMIC_POWER_W: dict[str, float] = {
    "CPU": 100.0,
    "GPU": 125.0,
    "PHI": 165.0,
    "FPGA": 55.0,
}

#: Host-side enqueue/polling overhead while a kernel sequence is active.
HOST_ACTIVE_W = 12.0


@dataclass(frozen=True)
class ActivityInterval:
    """One span of accelerator activity on the timeline."""

    start_s: float
    end_s: float
    device: str

    def __post_init__(self):
        if self.end_s <= self.start_s:
            raise ValueError("activity interval must have positive length")
        if self.device not in DEVICE_DYNAMIC_POWER_W:
            raise ValueError(
                f"unknown device {self.device!r}; "
                f"known: {sorted(DEVICE_DYNAMIC_POWER_W)}"
            )


@dataclass
class PowerModel:
    """Wall-plug power over an activity timeline."""

    idle_w: float = IDLE_POWER_W
    dynamic_w: dict = field(
        default_factory=lambda: dict(DEVICE_DYNAMIC_POWER_W)
    )
    host_active_w: float = HOST_ACTIVE_W
    cooling_fraction: float = 0.12
    cooling_tau_s: float = 8.0

    def instantaneous_dynamic(
        self, t: float, activity: list[ActivityInterval]
    ) -> float:
        """Dynamic (device + host) power at time t, without cooling lag."""
        for iv in activity:
            if iv.start_s <= t < iv.end_s:
                return self.dynamic_w[iv.device] + self.host_active_w
        return 0.0

    def trace(
        self,
        activity: list[ActivityInterval],
        duration_s: float,
        dt_s: float = 0.1,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dense (times, watts) trace including the cooling lag."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        times = np.arange(0.0, duration_s, dt_s)
        dyn = np.array(
            [self.instantaneous_dynamic(t, activity) for t in times]
        )
        cooling = np.zeros_like(dyn)
        target = self.cooling_fraction * dyn
        alpha = dt_s / self.cooling_tau_s
        level = 0.0
        for i in range(times.size):
            level += alpha * (target[i] - level)
            cooling[i] = level
        return times, self.idle_w + dyn + cooling

    def steady_state_power(self, device: str) -> float:
        """Plateau power while ``device`` computes continuously."""
        dyn = self.dynamic_w[device] + self.host_active_w
        return self.idle_w + dyn * (1.0 + self.cooling_fraction)
