"""The full measurement campaign: all four platforms in one sitting.

Section IV-F's methodology runs per device, "start[ing] from a
workstation with all devices in idle mode".  A campaign models the
whole lab session: for each host+accelerator setup in turn — idle
lead-in, kernel repetitions past 150 s, cool-down back to idle — on one
continuous wall-plug trace, then extracts each device's dynamic energy
from its own window.  The cool-down gaps matter: they let the adaptive
cooling settle so one device's fan tail does not pollute the next
device's idle floor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.meter import PowerSample, VirtualMultimeter
from repro.power.model import ActivityInterval
from repro.power.protocol import DynamicEnergyResult

__all__ = ["CampaignResult", "measure_campaign"]


@dataclass
class CampaignResult:
    """One continuous trace plus the per-device extractions."""

    samples: list[PowerSample]
    per_device: dict[str, DynamicEnergyResult]
    activity: list[ActivityInterval]

    @property
    def duration_s(self) -> float:
        return self.samples[-1].time_s if self.samples else 0.0

    def energies(self) -> dict[str, float]:
        return {
            dev: res.energy_per_invocation_j
            for dev, res in self.per_device.items()
        }

    def most_efficient(self) -> str:
        e = self.energies()
        return min(e, key=e.get)


def measure_campaign(
    meter: VirtualMultimeter,
    kernel_seconds: dict[str, float],
    lead_in_s: float = 20.0,
    min_active_s: float = 150.0,
    window_s: float = 100.0,
    cooldown_s: float = 40.0,
) -> CampaignResult:
    """Measure every device of ``kernel_seconds`` on one long trace.

    Parameters
    ----------
    meter:
        The virtual wall-plug sampler.
    kernel_seconds:
        Mapping device name -> single-invocation kernel runtime.
    lead_in_s, min_active_s, window_s:
        Per-device protocol parameters (Section IV-F).
    cooldown_s:
        Idle gap between devices for the cooling lag to settle.
    """
    if window_s <= 0 or min_active_s < window_s:
        raise ValueError("need min_active_s >= window_s > 0")
    activity: list[ActivityInterval] = []
    windows: dict[str, tuple[float, float, float]] = {}
    t = lead_in_s
    for device, kernel_s in kernel_seconds.items():
        if kernel_s <= 0:
            raise ValueError(f"kernel runtime for {device!r} must be positive")
        invocations = max(1, int(-(-min_active_s // kernel_s)))
        start, end = t, t + invocations * kernel_s
        activity.append(ActivityInterval(start, end, device))
        windows[device] = (end - window_s, end, kernel_s)
        t = end + cooldown_s
    samples = meter.record(activity, t + 5.0)
    per_device = {}
    for device, (t0, t1, kernel_s) in windows.items():
        total = meter.integrate(samples, t0, t1)
        idle = meter.model.idle_w * window_s
        per_device[device] = DynamicEnergyResult(
            device=device,
            kernel_seconds=kernel_s,
            window_seconds=window_s,
            invocations_in_window=window_s / kernel_s,
            total_energy_j=total,
            idle_energy_j=idle,
        )
    return CampaignResult(
        samples=samples, per_device=per_device, activity=activity
    )
