"""System-level power and dynamic-energy modeling (Section IV-F).

The paper measures power "at the power plug" of the whole workstation
with a 1 sample/s multimeter, integrates a 100-second window of repeated
kernel invocations, subtracts the idle floor (~204 W) and divides by the
(non-integer) number of kernel repetitions — yielding the dynamic energy
per invocation of Fig 9.

* :mod:`repro.power.model` — wall-plug power as a function of the
  activity timeline: idle floor + per-accelerator dynamic power + an
  adaptive-cooling first-order lag,
* :mod:`repro.power.meter` — the virtual Voltcraft VC870 (1 Hz sampler),
* :mod:`repro.power.protocol` — the marker-based measurement procedure.
"""

from repro.power.model import (
    DEVICE_DYNAMIC_POWER_W,
    ActivityInterval,
    PowerModel,
)
from repro.power.meter import PowerSample, VirtualMultimeter
from repro.power.protocol import (
    DynamicEnergyResult,
    MeasurementProtocol,
)
from repro.power.campaign import CampaignResult, measure_campaign

__all__ = [
    "DEVICE_DYNAMIC_POWER_W",
    "ActivityInterval",
    "PowerModel",
    "PowerSample",
    "VirtualMultimeter",
    "DynamicEnergyResult",
    "MeasurementProtocol",
    "CampaignResult",
    "measure_campaign",
]
