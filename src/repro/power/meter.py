"""The virtual Voltcraft VC870 digital multimeter.

Section IV-F: "we have used a Voltcraft VC870 digital multimeter, which
takes one sample per second.  This sample rate is enough in our case,
provided the measurement time is kept high enough."  The virtual meter
samples a :class:`~repro.power.model.PowerModel` trace at 1 Hz, with an
optional deterministic measurement-noise term, and supports window
integration the way the post-processing PC does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.power.model import ActivityInterval, PowerModel

__all__ = ["PowerSample", "VirtualMultimeter"]


@dataclass(frozen=True)
class PowerSample:
    """One 1 Hz reading."""

    time_s: float
    watts: float


class VirtualMultimeter:
    """1 Hz wall-plug sampler over a power model.

    Parameters
    ----------
    model:
        The system power model.
    sample_period_s:
        1.0 for the VC870.
    noise_w:
        Std-dev of deterministic Gaussian measurement noise (0 = exact).
    seed:
        Noise seed (results are reproducible).
    """

    def __init__(
        self,
        model: PowerModel,
        sample_period_s: float = 1.0,
        noise_w: float = 0.0,
        seed: int = 42,
    ):
        if sample_period_s <= 0:
            raise ValueError("sample period must be positive")
        if noise_w < 0:
            raise ValueError("noise must be >= 0")
        self.model = model
        self.sample_period_s = sample_period_s
        self.noise_w = noise_w
        self.seed = seed

    def record(
        self, activity: list[ActivityInterval], duration_s: float
    ) -> list[PowerSample]:
        """Sample the full measurement run."""
        times, watts = self.model.trace(
            activity, duration_s, dt_s=min(0.1, self.sample_period_s / 4)
        )
        sample_times = np.arange(0.0, duration_s, self.sample_period_s)
        values = np.interp(sample_times, times, watts)
        if self.noise_w > 0.0:
            rng = np.random.default_rng(self.seed)
            values = values + rng.normal(0.0, self.noise_w, values.size)
        return [
            PowerSample(float(t), float(w))
            for t, w in zip(sample_times, values)
        ]

    @staticmethod
    def integrate(
        samples: list[PowerSample], t0: float, t1: float
    ) -> float:
        """Energy [J] of the samples inside [t0, t1] (trapezoidal).

        This is the "conveniently stored and post-processed" step of the
        paper's external PC.
        """
        if t1 <= t0:
            raise ValueError("integration window must have positive length")
        pts = [(s.time_s, s.watts) for s in samples if t0 <= s.time_s <= t1]
        if len(pts) < 2:
            raise ValueError(
                "not enough samples in the window; record longer or widen it"
            )
        times = np.array([p[0] for p in pts])
        watts = np.array([p[1] for p in pts])
        return float(np.trapezoid(watts, times))
