"""Metrics primitives: counters, gauges and histograms under one registry.

The serving layers (engine, queue, batcher) count what happened —
admissions, sheds, backpressure stalls — and observe latency series;
a :class:`MetricsRegistry` owns them by name so a whole subsystem can be
snapshotted into one plain dict for ``--json`` output or assertions.

All primitives are thread-safe (the engine increments from worker and
dispatcher threads) and cheap: an uncontended lock plus an add.  The
histogram snapshot reuses :func:`repro.obs.percentiles.summarize`, the
same estimator the engine's latency report uses, so a histogram's "p95"
and ``EngineStats``'s "p95" are directly comparable.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from collections import deque
from typing import Iterable

from repro.obs.percentiles import summarize

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "BoundedHistogram",
    "MetricsRegistry",
]


class Counter:
    """Monotonically increasing count (events, jobs, sheds)."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self):
        return self.value


class Gauge:
    """Last-written value (occupancy, inflight batches)."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self):
        return self.value


class Histogram:
    """Value series summarized with the shared percentile estimator."""

    def __init__(self, name: str):
        self.name = name
        self._values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(float(value))

    def observe_many(self, values: Iterable[float]) -> None:
        with self._lock:
            self._values.extend(float(v) for v in values)

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._values)

    def values(self) -> list[float]:
        with self._lock:
            return list(self._values)

    def snapshot(self) -> dict[str, float]:
        """count + the shared mean/p50/p95/p99/max summary."""
        with self._lock:
            values = list(self._values)
        out = {"sum": float(sum(values))}
        out.update(summarize(values))
        # both histogram backends expose count as a float sample
        out["count"] = float(len(values))
        return out


class BoundedHistogram(Histogram):
    """Log-bucket histogram with O(buckets) memory, for soak runs.

    The exact :class:`Histogram` appends every observation forever —
    fine for a bounded benchmark, a leak on a tier that serves for
    days.  This backend keeps fixed geometric bucket boundaries
    (``growth`` ratio per bucket between ``lo`` and ``hi``, plus
    under/overflow), exact ``count``/``sum``/``min``/``max``, and
    estimates p50/p95/p99 by interpolating inside the bucket where the
    cumulative count crosses the rank.  With the default quarter-octave
    growth (≈19%/bucket) the percentile estimate's relative error is
    bounded by half a bucket width (≈9%), which is plenty for SLO
    dashboards; benchmarks that assert on exact percentiles keep the
    exact backend.

    ``snapshot()`` returns the same keys as the exact histogram
    (count/sum/mean/p50/p95/p99/max), so every consumer of a registry
    snapshot works unchanged.
    """

    def __init__(
        self,
        name: str,
        lo: float = 1e-6,
        hi: float = 1e4,
        growth: float = 2.0 ** 0.25,
        recent_window: int = 512,
    ):
        if not 0 < lo < hi:
            raise ValueError("need 0 < lo < hi")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.name = name
        n = int(math.ceil(math.log(hi / lo) / math.log(growth)))
        #: upper edges of the finite buckets; index i covers
        #: (bounds[i-1], bounds[i]] with an underflow bucket below lo
        #: and an overflow bucket above the last edge
        self._bounds = [lo * growth**i for i in range(n + 1)]
        self._counts = [0] * (n + 3)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        #: last-N raw observations, for consumers (the autoscaler's
        #: windowed wait tail) that need exact recent values; bounded,
        #: so the flat-memory contract holds
        self._recent: deque = deque(maxlen=max(1, recent_window))
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        v = float(value)
        idx = bisect.bisect_left(self._bounds, v) + 1 if v > 0 else 0
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += v
            if v < self._min:
                self._min = v
            if v > self._max:
                self._max = v
            self._recent.append(v)

    def recent(self, n: int | None = None) -> list[float]:
        """The last ``n`` (default: all retained) raw observations."""
        with self._lock:
            values = list(self._recent)
        return values if n is None else values[-n:]

    def observe_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.observe(v)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def values(self) -> list[float]:
        raise TypeError(
            "BoundedHistogram keeps buckets, not raw values; use "
            "snapshot() or buckets()"
        )

    def buckets(self) -> list[tuple[float, int]]:
        """(upper edge, count) pairs for the non-empty buckets."""
        with self._lock:
            counts = list(self._counts)
        edges = [0.0] + self._bounds + [math.inf]
        return [
            (edges[i], c) for i, c in enumerate(counts) if c
        ]

    def _quantile_locked(self, q: float) -> float:
        """Interpolated quantile from the bucket cumulative counts."""
        rank = q * (self._count - 1)
        lo_edge = 0.0
        cum = 0
        for i, c in enumerate(self._counts):
            if c == 0:
                continue
            hi_edge = (
                self._bounds[i - 1] if 0 < i <= len(self._bounds) else (
                    self._max if i > len(self._bounds) else 0.0
                )
            )
            if cum + c > rank:
                # interpolate inside this bucket, clamped to observed range
                frac = (rank - cum + 1.0) / c
                est = lo_edge + (hi_edge - lo_edge) * min(1.0, frac)
                return min(max(est, self._min), self._max)
            cum += c
            lo_edge = hi_edge
        return self._max

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            if self._count == 0:
                return {
                    "count": 0.0, "sum": 0.0, "mean": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
                }
            out = {
                "count": float(self._count),
                "sum": self._sum,
                "mean": self._sum / self._count,
                "p50": self._quantile_locked(0.50),
                "p95": self._quantile_locked(0.95),
                "p99": self._quantile_locked(0.99),
                "max": self._max,
            }
        return out


class MetricsRegistry:
    """Named metrics of one subsystem, snapshottable as a plain dict.

    ``counter``/``gauge``/``histogram`` get-or-create by name, so
    instrumentation sites never coordinate: the first caller creates
    the metric, later callers share it.  Asking for an existing name
    with a different type raises.

    ``bounded_histograms=True`` makes :meth:`histogram` default to the
    :class:`BoundedHistogram` backend — what the long-running serve and
    engine registries use so a soak run's memory stays flat; the
    per-call ``bounded`` argument overrides either way, and the first
    creator of a name decides its backend.
    """

    def __init__(self, prefix: str = "", bounded_histograms: bool = False):
        self.prefix = prefix
        self.bounded_histograms = bounded_histograms
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, base=None):
        base = base or cls
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name)
                self._metrics[name] = metric
            elif not isinstance(metric, base):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {base.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(Counter, name)

    def gauge(self, name: str) -> Gauge:
        return self._get(Gauge, name)

    def histogram(self, name: str, bounded: bool | None = None) -> Histogram:
        if bounded is None:
            bounded = self.bounded_histograms
        cls = BoundedHistogram if bounded else Histogram
        return self._get(cls, name, base=Histogram)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict:
        """``{name: value-or-summary}`` over every registered metric."""
        with self._lock:
            metrics = dict(self._metrics)
        return {
            (f"{self.prefix}{name}" if self.prefix else name): m.snapshot()
            for name, m in sorted(metrics.items())
        }

    def expose_text(self) -> str:
        """OpenMetrics-style text exposition of every metric.

        Counters and gauges become single samples; histograms become
        summary-style ``_count``/``_sum`` samples plus ``quantile``
        labels — the format a scrape endpoint or a log line both
        accept.  Names are sanitized to ``[a-zA-Z0-9_:]`` (dots become
        underscores), matching the exposition grammar.
        """
        with self._lock:
            metrics = dict(self._metrics)
        lines: list[str] = []
        for name, metric in sorted(metrics.items()):
            full = _sanitize(f"{self.prefix}{name}")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {full} counter")
                lines.append(f"{full}_total {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {full} gauge")
                lines.append(f"{full} {_fmt(metric.value)}")
            else:
                snap = metric.snapshot()
                lines.append(f"# TYPE {full} summary")
                lines.append(f"{full}_count {int(snap['count'])}")
                lines.append(f"{full}_sum {_fmt(snap['sum'])}")
                for q in ("p50", "p95", "p99"):
                    lines.append(
                        f'{full}{{quantile="0.{q[1:]}"}} '
                        f"{_fmt(snap.get(q, 0.0))}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    out = _SANITIZE_RE.sub("_", name)
    return out.rstrip("_")


def _fmt(value: float) -> str:
    return repr(float(value))
