"""Metrics primitives: counters, gauges and histograms under one registry.

The serving layers (engine, queue, batcher) count what happened —
admissions, sheds, backpressure stalls — and observe latency series;
a :class:`MetricsRegistry` owns them by name so a whole subsystem can be
snapshotted into one plain dict for ``--json`` output or assertions.

All primitives are thread-safe (the engine increments from worker and
dispatcher threads) and cheap: an uncontended lock plus an add.  The
histogram snapshot reuses :func:`repro.obs.percentiles.summarize`, the
same estimator the engine's latency report uses, so a histogram's "p95"
and ``EngineStats``'s "p95" are directly comparable.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.obs.percentiles import summarize

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count (events, jobs, sheds)."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self):
        return self.value


class Gauge:
    """Last-written value (occupancy, inflight batches)."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self):
        return self.value


class Histogram:
    """Value series summarized with the shared percentile estimator."""

    def __init__(self, name: str):
        self.name = name
        self._values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(float(value))

    def observe_many(self, values: Iterable[float]) -> None:
        with self._lock:
            self._values.extend(float(v) for v in values)

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._values)

    def values(self) -> list[float]:
        with self._lock:
            return list(self._values)

    def snapshot(self) -> dict[str, float]:
        """count + the shared mean/p50/p95/p99/max summary."""
        with self._lock:
            values = list(self._values)
        out = {"count": float(len(values)), "sum": float(sum(values))}
        out.update(summarize(values))
        return out


class MetricsRegistry:
    """Named metrics of one subsystem, snapshottable as a plain dict.

    ``counter``/``gauge``/``histogram`` get-or-create by name, so
    instrumentation sites never coordinate: the first caller creates
    the metric, later callers share it.  Asking for an existing name
    with a different type raises.
    """

    def __init__(self, prefix: str = ""):
        self.prefix = prefix
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(Counter, name)

    def gauge(self, name: str) -> Gauge:
        return self._get(Gauge, name)

    def histogram(self, name: str) -> Histogram:
        return self._get(Histogram, name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict:
        """``{name: value-or-summary}`` over every registered metric."""
        with self._lock:
            metrics = dict(self._metrics)
        return {
            (f"{self.prefix}{name}" if self.prefix else name): m.snapshot()
            for name, m in sorted(metrics.items())
        }
