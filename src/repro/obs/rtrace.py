"""Per-request tracing for the serving tier: spans, sampling, exemplars.

Where :mod:`repro.obs.tracer` answers "what was each *actor* doing over
time" (one lane per worker / process), this module answers "where did
*this request's* latency go": every admitted job carries a
:class:`TraceContext` minted at the admission gateway, and every hop —
ring routing, spillover reroutes, queue wait, batch formation,
dispatch, execute attempts, retries, breaker skips, completion or
typed error — emits one :class:`SpanEvent` into the request's chain.
The producer→consumer accounting the paper does per work-item
(§III's decoupled streams), applied per request one level up.

Retention policy (the part that makes this safe to leave on in a
long-running tier):

* chains buffer **inside the request's own context** while in flight
  (no shared state touched per hop) and are committed — or dropped —
  with one log-lock acquisition at the terminal event; an abandoned
  request's chain is freed with its job, never retained here;
* **head sampling** applies to successful requests only: the keep
  decision is a deterministic hash of the trace id against
  ``sample_rate``, made at mint time;
* **errors, sheds and deadline misses are always captured** — the
  chains worth debugging are exactly the ones sampling would lose;
* a **slowest-K reservoir** keeps the p99-tail exemplars keyed on
  end-to-end latency even when head sampling dropped them;
* committed chains live in a bounded ring (a ``deque`` with
  ``maxlen``), so memory is flat no matter how long the tier runs.

One invariant is enforced here rather than at the call sites: a trace
accepts exactly **one terminal event**.  The first wins; later attempts
are counted in ``duplicate_terminals`` and dropped, so belt-and-braces
emitters (the gateway's catch-all next to the engine's resolution
funnel) cannot double-close a chain.

Chrome export shares :class:`~repro.obs.tracer.ChromeTracer`'s clock
conventions: spans land under ``cat="request"`` with ``ts`` in
microseconds — virtual-clock seconds for the tier simulator (the
``modeled`` domain's convention) or host wall time for live runs.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import threading
from collections import deque
from dataclasses import asdict, dataclass, field

from repro.obs.tracer import ChromeTracer

__all__ = [
    "SpanEvent",
    "TraceContext",
    "RequestTraceLog",
    "critical_path",
    "critical_path_report",
    "derive_trace_id",
    "request_trace_from_json",
]

#: terminal kinds that are always captured regardless of head sampling
_ALWAYS_CAPTURE = frozenset(
    {"failed", "deadline", "queue_full", "throttled", "closed", "shed"}
)

#: indices into the raw event tuples the hot path records (the field
#: order of :class:`SpanEvent`; readers materialize the dataclass)
_KIND, _T, _TERMINAL, _ATTRS = 4, 5, 8, 9


@dataclass(frozen=True)
class SpanEvent:
    """One hop of one request.

    ``t`` is seconds in the emitting clock domain (virtual seconds for
    the tier simulator, ``time.monotonic()`` for the live tier);
    ``dur`` is zero for point events.  ``parent_id`` links the span
    chain: every event except the root names an earlier span of the
    same trace, so parentage survives retries that re-dispatch to a
    different worker.
    """

    trace_id: str
    span_id: int
    parent_id: int | None
    stage: str  # gateway | shard | queue | batch | worker | retry | request
    kind: str  # admit, route, spill, enqueue, wait, execute, complete, ...
    t: float
    dur: float = 0.0
    status: str = "ok"  # ok | error | shed
    terminal: bool = False
    attrs: dict = field(default_factory=dict)


class TraceContext:
    """Per-request identity + baggage, carried by the job end-to-end.

    Holds the trace id, the propagated baggage (tenant, batch key,
    deadline budget) and a reference to the owning
    :class:`RequestTraceLog`, so instrumentation points only need the
    context — ``job.trace.emit(...)`` — without any registry lookup.
    Thread-safe: the live engine emits from gateway, dispatcher,
    worker and watchdog threads.
    """

    __slots__ = (
        "trace_id",
        "tenant",
        "batch_key",
        "deadline_s",
        "sampled",
        "finished",
        "_log",
        "_seq",
        "_last_span",
        "_events",
        "_lock",
    )

    def __init__(
        self,
        trace_id: str,
        log: "RequestTraceLog",
        tenant=None,
        batch_key=None,
        deadline_s: float | None = None,
        sampled: bool = True,
    ):
        self.trace_id = trace_id
        self.tenant = tenant
        self.batch_key = batch_key
        self.deadline_s = deadline_s
        self.sampled = sampled
        self.finished = False
        self._log = log
        self._seq = 0
        self._last_span: int | None = None
        self._events: list = []
        self._lock = threading.Lock()

    @property
    def log(self) -> "RequestTraceLog":
        """The owning log (consumers read its ``sample_rate``)."""
        return self._log

    def emit(
        self,
        stage: str,
        kind: str,
        t: float,
        dur: float = 0.0,
        status: str = "ok",
        terminal: bool = False,
        parent: int | None = None,
        **attrs,
    ) -> int | None:
        """Record one hop; returns its span id (None if dropped).

        The parent defaults to the previous span of this context — a
        linear chain, which is what the sequential pipeline is — and
        may be overridden (retries parent on their ``retry_scheduled``
        span).  A terminal emit closes the chain; later terminals are
        dropped and counted by the log.

        Hot-path shape: events buffer in the context as plain tuples
        (field order matches :class:`SpanEvent`; readers materialize
        the dataclass), and the owning log's lock is taken exactly
        once per request — at the terminal commit — so concurrent
        emitters on different requests never contend.
        """
        with self._lock:
            if self.finished:
                if terminal:
                    self._log._count_duplicate_terminal()
                return None
            self._seq += 1
            span_id = self._seq
            parent_id = parent if parent is not None else self._last_span
            self._last_span = span_id
            self._events.append(
                (
                    self.trace_id, span_id, parent_id, stage, kind,
                    float(t), float(dur), status, terminal, attrs,
                )
            )
            if not terminal:
                return span_id
            self.finished = True
            chain = self._events
        self._log._commit(self, chain)
        return span_id


def _sample_draw(seed: int, trace_id: str) -> float:
    """Deterministic uniform in [0, 1) keyed on the trace id."""
    digest = hashlib.blake2b(
        repr((seed, trace_id)).encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2.0**64


def _trace_id(seed: int, key) -> str:
    return hashlib.blake2b(
        repr((seed, key)).encode(), digest_size=8
    ).hexdigest()


def derive_trace_id(seed: int, key) -> str:
    """The trace id :meth:`RequestTraceLog.mint` would assign to ``key``.

    Public so consumers that report trace ids without a log in hand
    (the virtual-time simulator's always-on p99 exemplars) stay
    consistent with a log-attached run of the same seed.
    """
    return _trace_id(seed, key)


class RequestTraceLog:
    """Bounded, lock-cheap store of per-request span chains.

    Parameters
    ----------
    capacity:
        Committed-chain ring size; the oldest chain falls off when the
        ring is full (memory stays flat on a soak run).
    sample_rate:
        Head-sampling keep probability for *successful* chains; the
        decision is a deterministic hash of the trace id, so the same
        seed + workload keeps the same chains.  Errors, sheds and
        deadline misses ignore the rate.
    exemplar_k:
        Slowest-K reservoir size for p99-tail exemplars (kept even
        when head sampling would drop the chain).
    seed:
        Salt for trace-id derivation and the sampling hash.

    In-flight chains buffer inside their :class:`TraceContext` (owned
    by the job, freed with it), so the log itself holds only committed
    chains: an abandoned request can never grow the log, and emitters
    on different requests never contend on the log lock.
    """

    def __init__(
        self,
        capacity: int = 16384,
        sample_rate: float = 1.0,
        exemplar_k: int = 16,
        seed: int = 0,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        if exemplar_k < 0:
            raise ValueError("exemplar_k must be >= 0")
        self.capacity = capacity
        self.sample_rate = sample_rate
        self.exemplar_k = exemplar_k
        self.seed = seed
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=capacity)  # (trace_id, events)
        # min-heap of (latency, tiebreak, trace_id, events)
        self._exemplars: list = []
        self._exemplar_seq = 0
        self._minted = 0
        self._terminated = 0
        self._terminals: dict[str, int] = {}
        self._duplicate_terminals = 0
        self._dropped_unsampled = 0

    # -- context lifecycle -------------------------------------------------------

    def mint(
        self,
        key,
        tenant=None,
        batch_key=None,
        deadline_s: float | None = None,
    ) -> TraceContext:
        """New per-request context; ``key`` must be unique per request.

        The trace id and the head-sampling decision are both
        deterministic functions of ``(log seed, key)``, which is what
        makes a seeded virtual-time run export byte-identical logs.
        """
        trace_id = _trace_id(self.seed, key)
        sampled = (
            self.sample_rate >= 1.0
            or _sample_draw(self.seed, trace_id) < self.sample_rate
        )
        with self._lock:
            self._minted += 1
        return TraceContext(
            trace_id,
            self,
            tenant=tenant,
            batch_key=batch_key,
            deadline_s=deadline_s,
            sampled=sampled,
        )

    # -- recording (called by TraceContext) --------------------------------------

    def _commit(self, ctx: TraceContext, chain: list) -> None:
        # ``chain`` is the context's buffered raw SpanEvent field
        # tuples (see _KIND/_T/... for the indices read here), handed
        # over exactly once at the terminal event; readers materialize
        # the dataclasses
        event = chain[-1]
        kind = event[_KIND]
        with self._lock:
            self._terminated += 1
            self._terminals[kind] = self._terminals.get(kind, 0) + 1
            keep = ctx.sampled or kind in _ALWAYS_CAPTURE
            latency = event[_ATTRS].get("latency_s")
            if latency is None:
                latency = chain[-1][_T] - chain[0][_T]
            tail = False
            if self.exemplar_k and kind == "complete":
                if len(self._exemplars) < self.exemplar_k:
                    tail = True
                elif latency > self._exemplars[0][0]:
                    tail = True
                if tail:
                    self._exemplar_seq += 1
                    heapq.heappush(
                        self._exemplars,
                        (latency, self._exemplar_seq, ctx.trace_id, chain),
                    )
                    if len(self._exemplars) > self.exemplar_k:
                        heapq.heappop(self._exemplars)
            if keep:
                self._ring.append((ctx.trace_id, chain))
            else:
                self._dropped_unsampled += 1

    def _count_duplicate_terminal(self) -> None:
        with self._lock:
            self._duplicate_terminals += 1

    # -- accessors ---------------------------------------------------------------

    def chains(self) -> dict[str, list[SpanEvent]]:
        """Committed chains, oldest first (the bounded ring's view)."""
        with self._lock:
            ring = [(tid, list(events)) for tid, events in self._ring]
        return {
            tid: [SpanEvent(*e) for e in events] for tid, events in ring
        }

    def events(self) -> list[SpanEvent]:
        """Every committed event, in chain commit order."""
        with self._lock:
            raw = [e for _tid, chain in self._ring for e in chain]
        return [SpanEvent(*e) for e in raw]

    def exemplars(self) -> list[dict]:
        """Slowest-K completed chains, slowest first."""
        with self._lock:
            top = sorted(self._exemplars, reverse=True)
        return [
            {
                "trace_id": tid,
                "latency_s": latency,
                "events": [SpanEvent(*e) for e in chain],
            }
            for latency, _seq, tid, chain in top
        ]

    def terminal_counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._terminals)

    def snapshot(self) -> dict:
        """Retention accounting for ``--json`` sinks and assertions."""
        with self._lock:
            return {
                "minted": self._minted,
                "pending": self._minted - self._terminated,
                "committed": len(self._ring),
                "capacity": self.capacity,
                "sample_rate": self.sample_rate,
                "dropped_unsampled": self._dropped_unsampled,
                "duplicate_terminals": self._duplicate_terminals,
                "terminals": dict(self._terminals),
                "exemplars": len(self._exemplars),
            }

    # -- serialization -----------------------------------------------------------

    def to_payload(self) -> dict:
        """Plain-dict form: snapshot + chains + exemplars."""
        return {
            "request_trace": self.snapshot(),
            "chains": {
                tid: [asdict(e) for e in chain]
                for tid, chain in self.chains().items()
            },
            "exemplars": [
                {
                    "trace_id": ex["trace_id"],
                    "latency_s": ex["latency_s"],
                    "events": [asdict(e) for e in ex["events"]],
                }
                for ex in self.exemplars()
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), separators=(",", ":"))

    def export(self, path: str) -> int:
        """Write the JSON payload; returns the committed-chain count."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
        return len(self.chains())

    # -- Chrome export -----------------------------------------------------------

    def export_chrome(
        self, path: str | None = None, tracer: ChromeTracer | None = None
    ) -> ChromeTracer:
        """Render committed chains as Chrome ``trace_event`` spans.

        One viewer *process* (``"requests"``) with one lane per
        pipeline stage; each event becomes a ``cat="request"`` complete
        span with the trace id in ``args``, timestamps in µs on the
        chain's native clock (the same convention as the ``cycle`` and
        ``modeled`` domains).  Pass an existing :class:`ChromeTracer`
        to merge request spans into an actor-centric trace.
        """
        tracer = tracer or ChromeTracer()
        chains = self.chains()
        all_events = [e for chain in chains.values() for e in chain]
        t_base = min((e.t for e in all_events), default=0.0)
        for tid, chain in chains.items():
            for e in chain:
                track = tracer.track("requests", e.stage)
                args = {
                    "trace_id": tid,
                    "span_id": e.span_id,
                    "parent_id": e.parent_id,
                    "status": e.status,
                    **e.attrs,
                }
                if e.dur > 0:
                    tracer.complete(
                        track,
                        f"{e.stage}:{e.kind}",
                        ts_us=(e.t - t_base) * 1e6,
                        dur_us=e.dur * 1e6,
                        cat="request",
                        args=args,
                    )
                else:
                    tracer.instant(
                        track,
                        f"{e.stage}:{e.kind}",
                        ts_us=(e.t - t_base) * 1e6,
                        cat="request",
                        args=args,
                    )
        if path is not None:
            tracer.export(path)
        return tracer


def request_trace_from_json(text: str) -> dict:
    """Parse an exported payload back into :class:`SpanEvent` chains.

    Returns ``{"request_trace": snapshot, "chains": {...}, "exemplars":
    [...]}`` with events rehydrated, accepted by
    :func:`critical_path_report`.
    """
    payload = json.loads(text)
    if "request_trace" not in payload:
        raise ValueError("not a request-trace export (--trace-requests)")

    def _events(items):
        return [SpanEvent(**item) for item in items]

    return {
        "request_trace": payload["request_trace"],
        "chains": {
            tid: _events(chain)
            for tid, chain in payload.get("chains", {}).items()
        },
        "exemplars": [
            {
                "trace_id": ex["trace_id"],
                "latency_s": ex["latency_s"],
                "events": _events(ex["events"]),
            }
            for ex in payload.get("exemplars", [])
        ],
    }


# -- critical-path decomposition ----------------------------------------------------


def critical_path(events: list[SpanEvent]) -> dict:
    """Decompose one completed chain into latency segments.

    The four segments partition the end-to-end window exactly::

        queue_s   admit → dequeued for batch formation
        batch_s   dequeue → first execute start, plus the completion
                  tail after the last execute (resolution overhead)
        retry_s   first execute start → last execute start (failed
                  attempts and their backoff gaps; 0 without retries)
        execute_s the final attempt's service time

    so ``queue + batch + retry + execute == total`` to float precision,
    which is what lets a p99 row be read as "where the budget went"
    rather than a loose narrative.
    """
    if not events:
        raise ValueError("empty chain")
    t0 = events[0].t
    terminal = next((e for e in events if e.terminal), events[-1])
    total = terminal.t - t0
    executes = sorted(
        (e for e in events if e.kind == "execute"), key=lambda e: e.t
    )
    if not executes:
        return {
            "queue_s": total,
            "batch_s": 0.0,
            "retry_s": 0.0,
            "execute_s": 0.0,
            "total_s": total,
            "attempts": 0,
        }
    dequeue = next(
        (e.t for e in events if e.stage == "batch"), executes[0].t
    )
    first, last = executes[0], executes[-1]
    queue_s = dequeue - t0
    batch_s = (first.t - dequeue) + (terminal.t - (last.t + last.dur))
    retry_s = last.t - first.t
    return {
        "queue_s": queue_s,
        "batch_s": batch_s,
        "retry_s": retry_s,
        "execute_s": last.dur,
        "total_s": total,
        "attempts": len(executes),
    }


def critical_path_report(payload, top: int = 10) -> list[dict]:
    """Segment decomposition of the slowest exemplar chains.

    Accepts a live :class:`RequestTraceLog` or the parsed payload from
    :func:`request_trace_from_json`; returns one row per exemplar
    (slowest first), each carrying the trace id, the segments and the
    terminal status.
    """
    if isinstance(payload, RequestTraceLog):
        exemplars = payload.exemplars()
    else:
        exemplars = payload.get("exemplars", [])
    rows = []
    for ex in exemplars[:top]:
        events = ex["events"]
        segments = critical_path(events)
        terminal = next(
            (e for e in events if e.terminal), events[-1]
        )
        rows.append(
            {
                "trace_id": ex["trace_id"],
                "latency_s": ex["latency_s"],
                "terminal": terminal.kind,
                "stages": sorted({e.stage for e in events}),
                **segments,
            }
        )
    return rows
