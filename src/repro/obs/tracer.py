"""Span/event tracer with Chrome ``trace_event`` JSON export.

Every instrumented layer talks to the same small :class:`Tracer`
interface; the two implementations are

* :class:`NullTracer` — the default, every call a no-op behind a single
  ``enabled`` check, so uninstrumented runs pay (asserted by
  ``benchmarks/test_obs_overhead.py``) essentially nothing, and
* :class:`ChromeTracer` — records events in the Chrome ``trace_event``
  JSON format [1], openable in ``chrome://tracing`` or
  https://ui.perfetto.dev.

Tracks
------
A :class:`Track` is one (process row, thread lane) pair in the viewer.
The instrumentation convention in this repo:

* one *process* per domain (a ``DataflowRegion`` name, ``"engine"``,
  ``"devices (modeled)"``),
* one *thread* per concurrent actor (a dataflow process / work-item,
  an engine worker, the admission queue).

Timestamps
----------
``ts`` is microseconds, but three clock domains coexist (the ``cat``
field names the domain):

* ``cat="cycle"`` — simulated clock cycles, 1 µs == 1 cycle, fully
  deterministic (same seed + config ⇒ byte-identical events);
* ``cat="modeled"`` — the simulated device timeline, 1 µs == 1 modeled
  microsecond (deterministic);
* everything else — host wall time relative to tracer creation.

[1] https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, NamedTuple

__all__ = ["Track", "Tracer", "NullTracer", "ChromeTracer"]


class Track(NamedTuple):
    """One (pid, tid) lane in the trace viewer."""

    pid: int
    tid: int


_NULL_TRACK = Track(0, 0)


class Tracer:
    """The tracing interface every instrumented layer accepts.

    Subclasses override the emission methods; call sites only ever need
    the ``enabled`` flag to skip argument construction on hot paths::

        if tracer.enabled:
            tracer.complete(track, "burst", ts_us=t0, dur_us=dt, cat="cycle")
    """

    enabled: bool = False

    # -- track management --------------------------------------------------------

    def track(self, process: str, thread: str) -> Track:
        """Register (or look up) the lane for one actor."""
        return _NULL_TRACK

    # -- event emission ----------------------------------------------------------

    def complete(
        self,
        track: Track,
        name: str,
        ts_us: float,
        dur_us: float,
        cat: str = "",
        args: dict | None = None,
    ) -> None:
        """A span with explicit start/duration (Chrome ``ph="X"``)."""

    def instant(
        self,
        track: Track,
        name: str,
        ts_us: float | None = None,
        cat: str = "",
        args: dict | None = None,
    ) -> None:
        """A point event (Chrome ``ph="i"``); default ts = wall clock."""

    def counter(
        self,
        track: Track,
        name: str,
        values: dict[str, float],
        ts_us: float | None = None,
        cat: str = "",
    ) -> None:
        """A sampled counter series (Chrome ``ph="C"``)."""

    # -- wall clock --------------------------------------------------------------

    def wall_us(self, monotonic_s: float | None = None) -> float:
        """Host wall time in trace µs (relative to tracer creation)."""
        return 0.0

    @contextmanager
    def span(self, track: Track, name: str, cat: str = "", args: dict | None = None):
        """Wall-clock span around a code block."""
        yield


class NullTracer(Tracer):
    """The no-op default: near-zero overhead, nothing recorded."""

    enabled = False


class ChromeTracer(Tracer):
    """Collects trace events; exports Chrome ``trace_event`` JSON.

    Thread-safe: the engine emits from worker and dispatcher threads.
    Event order is insertion order; the cycle/modeled clock domains are
    deterministic, so identical runs export identical JSON (the
    determinism pinned by ``tests/obs/test_tracer.py``).
    """

    enabled = True

    def __init__(self):
        self._events: list[dict] = []
        self._lock = threading.Lock()
        self._pids: dict[str, int] = {}
        self._tids: dict[tuple[str, str], Track] = {}
        self._t0 = time.monotonic()

    # -- tracks ------------------------------------------------------------------

    def track(self, process: str, thread: str) -> Track:
        """Lane for one actor, creating pid/tid + metadata on first use."""
        with self._lock:
            existing = self._tids.get((process, thread))
            if existing is not None:
                return existing
            pid = self._pids.get(process)
            if pid is None:
                pid = len(self._pids) + 1
                self._pids[process] = pid
                self._events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": process},
                    }
                )
            tid = sum(1 for (p, _t) in self._tids if p == process) + 1
            track = Track(pid, tid)
            self._tids[(process, thread)] = track
            self._events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread},
                }
            )
            return track

    # -- events ------------------------------------------------------------------

    def _append(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)

    def complete(self, track, name, ts_us, dur_us, cat="", args=None):
        event = {
            "name": name,
            "ph": "X",
            "pid": track.pid,
            "tid": track.tid,
            "ts": round(float(ts_us), 3),
            "dur": round(float(dur_us), 3),
        }
        if cat:
            event["cat"] = cat
        if args:
            event["args"] = args
        self._append(event)

    def instant(self, track, name, ts_us=None, cat="", args=None):
        event = {
            "name": name,
            "ph": "i",
            "s": "t",  # thread-scoped instant
            "pid": track.pid,
            "tid": track.tid,
            "ts": round(self.wall_us() if ts_us is None else float(ts_us), 3),
        }
        if cat:
            event["cat"] = cat
        if args:
            event["args"] = args
        self._append(event)

    def counter(self, track, name, values, ts_us=None, cat=""):
        event = {
            "name": name,
            "ph": "C",
            "pid": track.pid,
            "tid": track.tid,
            "ts": round(self.wall_us() if ts_us is None else float(ts_us), 3),
            "args": dict(values),
        }
        if cat:
            event["cat"] = cat
        self._append(event)

    # -- wall clock --------------------------------------------------------------

    def wall_us(self, monotonic_s: float | None = None) -> float:
        t = time.monotonic() if monotonic_s is None else monotonic_s
        return (t - self._t0) * 1e6

    @contextmanager
    def span(self, track: Track, name: str, cat: str = "", args: dict | None = None):
        t0 = self.wall_us()
        try:
            yield
        finally:
            self.complete(track, name, t0, self.wall_us() - t0, cat=cat, args=args)

    # -- export ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def events(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def to_dict(self) -> dict:
        return {
            "traceEvents": self.events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "clockDomains": "cycle: 1us==1cycle; modeled: device "
                "timeline; request: per-request spans on the emitting "
                "tier's clock (virtual or wall); default: host wall time",
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=None, separators=(",", ":"))

    def export(self, path: str) -> int:
        """Write the trace JSON; returns the number of events."""
        payload = self.to_json()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(payload)
        return len(self)
