"""Observability layer: metrics, tracing and stall attribution.

Three pieces, shared by the dataflow simulator and the execution
engine:

* :mod:`repro.obs.metrics` — counters / gauges / histograms under a
  :class:`MetricsRegistry`, all summarized with the one shared
  percentile estimator (:mod:`repro.obs.percentiles`);
* :mod:`repro.obs.tracer` — span/event tracing with Chrome
  ``trace_event`` JSON export (:class:`ChromeTracer`), no-op by default
  (:class:`NullTracer`);
* :mod:`repro.obs.stall` — per-cycle stall attribution for
  ``DataflowRegion`` runs and the compute/transfer-overlap report that
  reproduces Fig 3's claim as data.

The *global tracer* is the injection point the CLI uses: ``--trace``
installs a :class:`ChromeTracer` via :func:`set_tracer`, and every
instrumented layer that was not handed an explicit tracer resolves
:func:`get_tracer` (default :class:`NullTracer`, so untraced runs stay
on the fast path).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.percentiles import percentile, summarize
from repro.obs.stall import (
    StallAttribution,
    StallReport,
    report_from_trace,
    reports_from_trace,
)
from repro.obs.tracer import ChromeTracer, NullTracer, Tracer, Track

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
    "summarize",
    "StallAttribution",
    "StallReport",
    "report_from_trace",
    "reports_from_trace",
    "ChromeTracer",
    "NullTracer",
    "Tracer",
    "Track",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]

_NULL = NullTracer()
_global_tracer: Tracer = _NULL


def get_tracer() -> Tracer:
    """The process-wide tracer (a shared ``NullTracer`` unless set)."""
    return _global_tracer


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` globally (``None`` restores the no-op default).

    Returns the previously installed tracer so callers can restore it.
    """
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer if tracer is not None else _NULL
    return previous


@contextmanager
def use_tracer(tracer: Tracer):
    """Scoped :func:`set_tracer`: restores the previous tracer on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
