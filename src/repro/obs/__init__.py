"""Observability layer: metrics, tracing and stall attribution.

Three pieces, shared by the dataflow simulator and the execution
engine:

* :mod:`repro.obs.metrics` — counters / gauges / histograms under a
  :class:`MetricsRegistry`, all summarized with the one shared
  percentile estimator (:mod:`repro.obs.percentiles`);
* :mod:`repro.obs.tracer` — span/event tracing with Chrome
  ``trace_event`` JSON export (:class:`ChromeTracer`), no-op by default
  (:class:`NullTracer`);
* :mod:`repro.obs.stall` — per-cycle stall attribution for
  ``DataflowRegion`` runs and the compute/transfer-overlap report that
  reproduces Fig 3's claim as data.

The *global tracer* is the injection point the CLI uses: ``--trace``
installs a :class:`ChromeTracer` via :func:`set_tracer`, and every
instrumented layer that was not handed an explicit tracer resolves
:func:`get_tracer` (default :class:`NullTracer`, so untraced runs stay
on the fast path).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.metrics import (
    BoundedHistogram,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.percentiles import percentile, summarize
from repro.obs.rtrace import (
    RequestTraceLog,
    SpanEvent,
    TraceContext,
    critical_path,
    critical_path_report,
    derive_trace_id,
    request_trace_from_json,
)
from repro.obs.stall import (
    StallAttribution,
    StallReport,
    report_from_trace,
    reports_from_trace,
)
from repro.obs.tracer import ChromeTracer, NullTracer, Tracer, Track

__all__ = [
    "BoundedHistogram",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
    "summarize",
    "StallAttribution",
    "StallReport",
    "report_from_trace",
    "reports_from_trace",
    "ChromeTracer",
    "NullTracer",
    "Tracer",
    "Track",
    "RequestTraceLog",
    "SpanEvent",
    "TraceContext",
    "critical_path",
    "critical_path_report",
    "derive_trace_id",
    "request_trace_from_json",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "get_request_log",
    "set_request_log",
    "use_request_log",
]

_NULL = NullTracer()
_global_tracer: Tracer = _NULL


def get_tracer() -> Tracer:
    """The process-wide tracer (a shared ``NullTracer`` unless set)."""
    return _global_tracer


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` globally (``None`` restores the no-op default).

    Returns the previously installed tracer so callers can restore it.
    """
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer if tracer is not None else _NULL
    return previous


@contextmanager
def use_tracer(tracer: Tracer):
    """Scoped :func:`set_tracer`: restores the previous tracer on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


_global_request_log: RequestTraceLog | None = None


def get_request_log() -> RequestTraceLog | None:
    """The process-wide request-trace log (``None`` = tracing off).

    The serve layers resolve this when not handed an explicit log:
    with ``None`` (the default) no :class:`TraceContext` is ever
    minted and every instrumentation point is a single attribute
    check — untraced tiers stay on the fast path.
    """
    return _global_request_log


def set_request_log(
    log: RequestTraceLog | None,
) -> RequestTraceLog | None:
    """Install ``log`` globally (``None`` disables request tracing).

    Returns the previously installed log so callers can restore it.
    The CLI's ``--trace-requests`` flag is the canonical caller.
    """
    global _global_request_log
    previous = _global_request_log
    _global_request_log = log
    return previous


@contextmanager
def use_request_log(log: RequestTraceLog):
    """Scoped :func:`set_request_log`; restores the previous log."""
    previous = set_request_log(log)
    try:
        yield log
    finally:
        set_request_log(previous)
