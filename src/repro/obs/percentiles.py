"""Shared percentile mathematics for every latency/series summary.

One implementation feeds the engine's :func:`repro.engine.stats.summarize`,
the observability histograms (:class:`repro.obs.metrics.Histogram`) and
the stall-attribution report, so "p95" means the same thing at every
layer.  The estimator is the linear-interpolation quantile (numpy's
default, type 7 in the Hyndman-Fan taxonomy): for ``q = 0.5`` it equals
``statistics.median`` on both odd and even lengths, and for small series
it never collapses to the maximum the way the old nearest-above-rank
index (``int(0.95 * n)``) did.
"""

from __future__ import annotations

import math
import statistics

__all__ = ["percentile", "summarize"]


def percentile(values: list[float], q: float) -> float:
    """Interpolated ``q``-quantile (``0 <= q <= 1``) of a series.

    Empty input returns 0.0 (the empty-safe convention every report in
    this repo uses).  The input does not need to be sorted.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = q * (len(ordered) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return float(ordered[lo])
    frac = pos - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def summarize(values: list[float]) -> dict[str, float]:
    """count + mean/p50/p95/p99/max summary of a series (empty-safe).

    ``p50`` is exactly ``statistics.median`` (the interpolated quantile
    reduces to it); ``p95``/``p99`` are the interpolated percentiles
    rather than an index that rounds up to the maximum on short series.
    ``p99`` is the tail every serving SLO is written against — the
    serve-tier benchmark records its trajectory per offered-load step.

    An empty series keeps the zero-filled shape (callers that render
    tables rely on the keys existing) but says so via ``count``: a p99
    of 0.0 from zero samples is *absence of evidence*, not a perfectly
    fast tail, and consumers that feed control loops (the autoscaler,
    the telemetry SLO aggregates) must check ``count`` instead of
    trusting the zeros.
    """
    if not values:
        return {
            "count": 0,
            "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
        }
    return {
        "count": len(values),
        "mean": statistics.fmean(values),
        "p50": float(statistics.median(values)),
        "p95": percentile(values, 0.95),
        "p99": percentile(values, 0.99),
        "max": float(max(values)),
    }
