"""Stall attribution: classify every simulated cycle of a region run.

The paper's performance argument is about *where cycles go*: decoupled
work-items keep their pipelines busy, and the Fig 3 schedule hides the
memory-channel transfers behind other work-items' compute.  This module
turns that claim into data — every cycle of every process in a
:class:`~repro.core.dataflow.DataflowRegion` run is attributed to one
class:

========================  ====================================================
state                     meaning
========================  ====================================================
``compute``               the process issued real work this cycle
``transfer``              the process's burst is draining on the channel
``fifo_full``             write stall: the output ``hls::stream`` was full
``fifo_empty``            read stall: the input ``hls::stream`` was empty
``memory_channel``        waiting for the shared channel grant (contention)
``pipeline``              an initiation-interval bubble (ablation configs)
========================  ====================================================

The headline number is the **compute/transfer overlap**: the fraction
of cycles where at least one process computes *while* the memory
channel is draining a burst.  A decoupled region shows substantial
overlap (Fig 3's interleaving); a serialized design shows ~0.

:class:`StallAttribution` is driven per cycle by the instrumented
region loop; it compresses consecutive same-state cycles into windows,
emits each window as a Chrome ``cat="cycle"`` span through the
injected :class:`~repro.obs.tracer.Tracer`, and produces a
:class:`StallReport`.  :func:`reports_from_trace` reconstructs the same
report from an exported trace file (the ``trace-report`` CLI path).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.tracer import NullTracer, Tracer

__all__ = [
    "COMPUTE",
    "TRANSFER",
    "FIFO_FULL",
    "FIFO_EMPTY",
    "MEMORY",
    "PIPELINE",
    "DONE",
    "STATES",
    "StallAttribution",
    "StallReport",
    "report_from_trace",
    "reports_from_trace",
]

COMPUTE = "compute"
TRANSFER = "transfer"
FIFO_FULL = "fifo_full"
FIFO_EMPTY = "fifo_empty"
MEMORY = "memory_channel"
PIPELINE = "pipeline"
DONE = "done"

#: Attribution classes in report-column order (``done`` is not a class:
#: finished processes stop accumulating cycles).
STATES = (COMPUTE, TRANSFER, FIFO_FULL, FIFO_EMPTY, MEMORY, PIPELINE)

#: Fig 3 lane symbol per state (ScheduleTrace compatibility).
_SYMBOLS = {COMPUTE: "C", TRANSFER: "T", DONE: "."}

#: One simulated cycle occupies one microsecond on the trace timeline.
CYCLE_US = 1.0


@dataclass
class StallReport:
    """Per-process cycle attribution plus the overlap headline."""

    region: str
    cycles: int
    per_process: dict[str, dict[str, int]] = field(default_factory=dict)
    channel_busy_cycles: list[int] = field(default_factory=list)
    compute_cycles: int = 0  # cycles with >= 1 process computing
    overlap_cycles: int = 0  # compute and a draining burst coexist

    # -- derived -----------------------------------------------------------------

    def overlap_fraction(self) -> float:
        """Fraction of cycles with compute/transfer overlap (Fig 3)."""
        return self.overlap_cycles / self.cycles if self.cycles else 0.0

    def process_utilization(self, name: str) -> float:
        counts = self.per_process[name]
        live = sum(counts.values())
        busy = counts.get(COMPUTE, 0) + counts.get(TRANSFER, 0)
        return busy / live if live else 0.0

    def consistent_with(self, process_stats) -> list[str]:
        """Cross-check attribution counts against ``ProcessStats`` buckets.

        For every process present in both this report and
        ``process_stats`` (a ``RegionReport.process_stats`` mapping),
        verifies the invariants tying the per-cycle taxonomy to the
        per-process counters:

        * attributed cycles sum to ``stats.cycles`` (live cycles);
        * ``pipeline`` attribution equals ``stats.pipeline_cycles``
          (initiation-interval bubbles are one bucket in both views);
        * ``compute <= active_cycles <= compute + transfer`` — an
          active cycle classifies as compute unless the process's own
          burst was draining that cycle (transfer wins the tie).

        Returns a list of human-readable discrepancies (empty = clean).
        """
        problems: list[str] = []
        for name, counts in self.per_process.items():
            stats = process_stats.get(name)
            if stats is None or not hasattr(stats, "pipeline_cycles"):
                continue  # channels and foreign entries have no buckets
            live = sum(counts.values())
            if live != stats.cycles:
                problems.append(
                    f"{name}: attributed {live} cycles but stats.cycles="
                    f"{stats.cycles}"
                )
            pipeline = counts.get(PIPELINE, 0)
            if pipeline != stats.pipeline_cycles:
                problems.append(
                    f"{name}: pipeline attribution {pipeline} != "
                    f"stats.pipeline_cycles {stats.pipeline_cycles}"
                )
            compute = counts.get(COMPUTE, 0)
            transfer = counts.get(TRANSFER, 0)
            if not compute <= stats.active_cycles <= compute + transfer:
                problems.append(
                    f"{name}: active_cycles {stats.active_cycles} outside "
                    f"[compute={compute}, compute+transfer={compute + transfer}]"
                )
        return problems

    def to_dict(self) -> dict:
        return {
            "region": self.region,
            "cycles": self.cycles,
            "per_process": {
                name: dict(counts) for name, counts in self.per_process.items()
            },
            "channel_busy_cycles": list(self.channel_busy_cycles),
            "compute_cycles": self.compute_cycles,
            "overlap_cycles": self.overlap_cycles,
            "overlap_fraction": self.overlap_fraction(),
        }

    def render(self) -> str:
        """The stall-attribution table the ``trace-report`` CLI prints."""
        header = ["process", *STATES, "live", "util%"]
        rows: list[list[str]] = []
        for name in sorted(self.per_process):
            counts = self.per_process[name]
            live = sum(counts.values())
            rows.append(
                [
                    name,
                    *(str(counts.get(s, 0)) for s in STATES),
                    str(live),
                    f"{100.0 * self.process_utilization(name):.1f}",
                ]
            )
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"stall attribution: {self.region} ({self.cycles} cycles)"]
        lines.append(
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(header))
        )
        for r in rows:
            lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(r)))
        for i, busy in enumerate(self.channel_busy_cycles):
            frac = busy / self.cycles if self.cycles else 0.0
            lines.append(f"memory channel {i}: busy {busy} cycles ({frac:.1%})")
        lines.append(
            f"compute/transfer overlap: {self.overlap_cycles} cycles "
            f"({self.overlap_fraction():.1%}) — Fig 3 interleaving"
        )
        return "\n".join(lines)


class StallAttribution:
    """Per-cycle classifier driven by the instrumented region loop.

    Parameters
    ----------
    region:
        Region name (trace process row, report title).
    tracer:
        Sink for the compressed cycle-window spans (``NullTracer`` keeps
        the attribution purely in-memory).
    keep_lanes:
        Also record the per-cycle Fig 3 symbol lanes (C/T/w/.) that
        :class:`~repro.core.schedule.ScheduleTrace` renders.
    """

    def __init__(
        self,
        region: str,
        tracer: Tracer | None = None,
        keep_lanes: bool = False,
    ):
        self.region = region
        self.tracer = tracer if tracer is not None else NullTracer()
        self.keep_lanes = keep_lanes
        self.lanes: dict[str, list[str]] = {}
        self._counts: dict[str, dict[str, int]] = {}
        self._windows: dict[str, tuple[str, int]] = {}  # name -> (state, start)
        self._tracks: dict[str, object] = {}
        self._channel_busy: list[int] = []
        self._channel_windows: dict[int, int | None] = {}  # idx -> busy start
        self._compute_cycles = 0
        self._overlap_cycles = 0
        self._cycles = 0
        self._closed = False

    # -- per-cycle driving -------------------------------------------------------

    def _track(self, name: str):
        track = self._tracks.get(name)
        if track is None:
            track = self.tracer.track(self.region, name)
            self._tracks[name] = track
        return track

    def _flush_window(self, name: str, end_cycle: int) -> None:
        window = self._windows.pop(name, None)
        if window is None:
            return
        state, start = window
        if state != DONE and self.tracer.enabled:
            self.tracer.complete(
                self._track(name),
                state,
                ts_us=start * CYCLE_US,
                dur_us=(end_cycle - start) * CYCLE_US,
                cat="cycle",
            )

    def record_cycle(
        self,
        cycle: int,
        states: dict[str, str],
        channels_busy: list[bool],
    ) -> None:
        """Attribute one cycle: every process's state + channel activity."""
        any_compute = False
        for name, state in states.items():
            if state == COMPUTE:
                any_compute = True
            counts = self._counts.get(name)
            if counts is None:
                counts = {}
                self._counts[name] = counts
                if self.keep_lanes:
                    self.lanes[name] = []
            if state != DONE:
                counts[state] = counts.get(state, 0) + 1
            if self.keep_lanes:
                self.lanes[name].append(_SYMBOLS.get(state, "w"))
            window = self._windows.get(name)
            if window is None:
                self._windows[name] = (state, cycle)
            elif window[0] != state:
                self._flush_window(name, cycle)
                self._windows[name] = (state, cycle)
        any_busy = False
        for i, busy in enumerate(channels_busy):
            while len(self._channel_busy) <= i:
                self._channel_busy.append(0)
                self._channel_windows[len(self._channel_busy) - 1] = None
            if busy:
                any_busy = True
                self._channel_busy[i] += 1
                if self._channel_windows[i] is None:
                    self._channel_windows[i] = cycle
            elif self._channel_windows[i] is not None:
                self._flush_channel(i, cycle)
        if any_compute:
            self._compute_cycles += 1
            if any_busy:
                self._overlap_cycles += 1
        self._cycles = cycle + 1

    def skip_window(
        self,
        cycle: int,
        span: int,
        states: dict[str, str],
        channel_busy_counts: list[int],
    ) -> None:
        """Attribute a provably dead window of ``span`` cycles in one call.

        The instrumented fast path
        (:meth:`~repro.core.dataflow.DataflowRegion.run`) calls this in
        place of ``span`` individual :meth:`record_cycle` calls when
        every live process is guaranteed to repeat the state it was
        attributed on the cycle just before the window.  Counts advance
        by ``span`` at once and open same-state windows simply widen, so
        the compressed trace spans — and therefore the exported trace
        and the :class:`StallReport` — are identical to per-cycle
        recording.  ``channel_busy_counts`` carries the busy cycles each
        channel credited in its own ``skip_cycles`` (a busy channel
        drains for the whole window; an idle one stays idle).  A dead
        window contains no compute cycles by construction, so the
        compute/overlap headline counters are untouched.
        """
        for name, state in states.items():
            counts = self._counts.get(name)
            if counts is None:
                counts = {}
                self._counts[name] = counts
                if self.keep_lanes:
                    self.lanes[name] = []
            if state != DONE:
                counts[state] = counts.get(state, 0) + span
            if self.keep_lanes:
                self.lanes[name].extend([_SYMBOLS.get(state, "w")] * span)
            window = self._windows.get(name)
            if window is None:
                self._windows[name] = (state, cycle)
            elif window[0] != state:
                self._flush_window(name, cycle)
                self._windows[name] = (state, cycle)
        for i, busy in enumerate(channel_busy_counts):
            while len(self._channel_busy) <= i:
                self._channel_busy.append(0)
                self._channel_windows[len(self._channel_busy) - 1] = None
            if busy:
                self._channel_busy[i] += busy
                if self._channel_windows[i] is None:
                    self._channel_windows[i] = cycle
                if busy < span:
                    # busy prefix only: the burst drained mid-window
                    self._flush_channel(i, cycle + busy)
            elif self._channel_windows[i] is not None:
                self._flush_channel(i, cycle)
        self._cycles = cycle + span

    def _flush_channel(self, i: int, end_cycle: int) -> None:
        start = self._channel_windows[i]
        if start is None:
            return
        self._channel_windows[i] = None
        if self.tracer.enabled:
            self.tracer.complete(
                self.tracer.track(self.region, f"memory_channel[{i}]"),
                "burst",
                ts_us=start * CYCLE_US,
                dur_us=(end_cycle - start) * CYCLE_US,
                cat="cycle",
            )

    # -- finalization ------------------------------------------------------------

    def close(self, total_cycles: int | None = None) -> None:
        """Flush every open window (idempotent)."""
        if self._closed:
            return
        self._closed = True
        end = self._cycles if total_cycles is None else total_cycles
        for name in list(self._windows):
            self._flush_window(name, end)
        for i in list(self._channel_windows):
            self._flush_channel(i, end)

    def report(self) -> StallReport:
        self.close()
        return StallReport(
            region=self.region,
            cycles=self._cycles,
            per_process={n: dict(c) for n, c in self._counts.items()},
            channel_busy_cycles=list(self._channel_busy),
            compute_cycles=self._compute_cycles,
            overlap_cycles=self._overlap_cycles,
        )


# ---------------------------------------------------------------------------
# reconstruction from an exported trace (the `trace-report` CLI path)
# ---------------------------------------------------------------------------


def _union(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    if not intervals:
        return []
    merged: list[tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _intersection_cycles(
    a: list[tuple[float, float]], b: list[tuple[float, float]]
) -> float:
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total


def reports_from_trace(source: str | dict) -> list[StallReport]:
    """Rebuild stall reports from an exported Chrome trace.

    ``source`` is a path or an already-parsed trace dict.  One report is
    produced per trace process (pid) that carries ``cat="cycle"``
    events; traces without cycle events (pure engine traces) yield an
    empty list.
    """
    if isinstance(source, str):
        with open(source, encoding="utf-8") as fh:
            data = json.load(fh)
    else:
        data = source
    events = data.get("traceEvents", data if isinstance(data, list) else [])
    process_names: dict[int, str] = {}
    thread_names: dict[tuple[int, int], str] = {}
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "process_name":
            process_names[e["pid"]] = e["args"]["name"]
        elif e.get("ph") == "M" and e.get("name") == "thread_name":
            thread_names[(e["pid"], e["tid"])] = e["args"]["name"]

    by_pid: dict[int, list[dict]] = {}
    for e in events:
        if e.get("ph") == "X" and e.get("cat") == "cycle":
            by_pid.setdefault(e["pid"], []).append(e)

    reports = []
    for pid, cycle_events in sorted(by_pid.items()):
        per_process: dict[str, dict[str, int]] = {}
        compute_intervals: list[tuple[float, float]] = []
        channel_intervals: list[tuple[float, float]] = []
        channel_busy: dict[int, int] = {}
        end_cycle = 0.0
        for e in cycle_events:
            thread = thread_names.get(
                (pid, e["tid"]), f"tid{e['tid']}"
            )
            start = e["ts"] / CYCLE_US
            dur = e["dur"] / CYCLE_US
            end_cycle = max(end_cycle, start + dur)
            if thread.startswith("memory_channel"):
                idx = len("memory_channel[")
                try:
                    channel_idx = int(thread[idx:].rstrip("]"))
                except ValueError:
                    channel_idx = 0
                channel_busy[channel_idx] = (
                    channel_busy.get(channel_idx, 0) + round(dur)
                )
                channel_intervals.append((start, start + dur))
                continue
            counts = per_process.setdefault(thread, {})
            counts[e["name"]] = counts.get(e["name"], 0) + round(dur)
            if e["name"] == COMPUTE:
                compute_intervals.append((start, start + dur))
        compute_union = _union(compute_intervals)
        overlap = _intersection_cycles(compute_union, _union(channel_intervals))
        reports.append(
            StallReport(
                region=process_names.get(pid, f"pid{pid}"),
                cycles=round(end_cycle),
                per_process=per_process,
                channel_busy_cycles=[
                    busy for _i, busy in sorted(channel_busy.items())
                ],
                compute_cycles=round(
                    sum(hi - lo for lo, hi in compute_union)
                ),
                overlap_cycles=round(overlap),
            )
        )
    return reports


def report_from_trace(source: str | dict) -> StallReport:
    """The first (usually only) stall report in a trace; raises if none."""
    reports = reports_from_trace(source)
    if not reports:
        raise ValueError(
            "trace contains no cycle-attribution events (cat='cycle'); "
            "was the run traced through DataflowRegion.run(tracer=...)?"
        )
    return reports[0]
