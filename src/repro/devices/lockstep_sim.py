"""Cycle-level simulation of a lockstep hardware partition (Fig 2).

The closed-form lockstep model (:mod:`repro.devices.partition`,
:func:`repro.devices.fixed.expected_max_geometric`) is cross-validated
here by *simulating* a W-wide partition executing the rejection kernel:

* every iteration, all unfinished lanes attempt in lockstep;
* a lane that has filled its quota idles (the red dots of Fig 2b) while
  the partition keeps iterating for its stragglers;
* divergent segments execute whenever ANY active lane takes them, and
  bill every lane.

``simulate_partition`` returns per-lane activity lanes that render the
paper's Fig 2 panels as ASCII, and aggregate statistics that the tests
compare against the analytic expressions.  Width 1 *is* the decoupled
case (Fig 2c).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LockstepResult", "simulate_partition", "render_fig2"]


@dataclass
class LockstepResult:
    """Outcome of simulating one (or many) lockstep partitions."""

    width: int
    quota: int
    accept_prob: float
    iterations: np.ndarray  # iterations until partition completion, per run
    lane_activity: list[str]  # activity lanes of the FIRST run (rendering)
    useful_lane_cycles: int  # accepted attempts, all runs
    total_lane_cycles: int  # width * iterations, all runs

    @property
    def mean_iterations(self) -> float:
        return float(self.iterations.mean())

    @property
    def efficiency(self) -> float:
        """Accepted lane-cycles / occupied lane-cycles over all runs.

        Width 1 approaches the algorithm's intrinsic acceptance rate;
        wider partitions fall below it by the idle (red-dot) cycles of
        lanes waiting on stragglers."""
        if self.total_lane_cycles == 0:
            return 0.0
        return self.useful_lane_cycles / self.total_lane_cycles


def simulate_partition(
    width: int,
    quota: int,
    accept_prob: float,
    runs: int = 256,
    seed: int = 1234,
) -> LockstepResult:
    """Simulate ``runs`` independent W-wide partitions.

    Lane symbols (first run only, for rendering):
    ``A`` accepted attempt, ``r`` rejected attempt, ``.`` lane idle
    (quota filled, partition still running — the Fig 2b waste).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if quota < 1:
        raise ValueError("quota must be >= 1")
    if not 0.0 < accept_prob <= 1.0:
        raise ValueError("accept probability must lie in (0, 1]")
    rng = np.random.default_rng(seed)
    iterations = np.empty(runs, dtype=np.int64)
    lanes: list[str] = []
    useful = 0
    total = 0
    for run in range(runs):
        accepted = np.zeros(width, dtype=np.int64)
        record = run == 0
        activity = [[] for _ in range(width)] if record else None
        iters = 0
        while np.any(accepted < quota):
            draws = rng.random(width) < accept_prob
            active = accepted < quota
            accepted += (draws & active).astype(np.int64)
            iters += 1
            if record:
                for lane in range(width):
                    if not active[lane]:
                        activity[lane].append(".")
                    elif draws[lane]:
                        activity[lane].append("A")
                    else:
                        activity[lane].append("r")
        iterations[run] = iters
        useful += width * quota  # every lane banked exactly its quota
        total += width * iters
        if record:
            lanes = ["".join(a) for a in activity]
    return LockstepResult(
        width=width,
        quota=quota,
        accept_prob=accept_prob,
        iterations=iterations,
        lane_activity=lanes,
        useful_lane_cycles=useful,
        total_lane_cycles=total,
    )


def render_fig2(
    accept_prob: float = 0.767,
    width: int = 8,
    quota: int = 4,
    seed: int = 7,
    max_cols: int = 64,
) -> str:
    """ASCII version of the paper's Fig 2 panels.

    (a) static branches — every lane takes the same side (p = 1),
    (b) divergent lockstep — idle lanes ('.') appear while stragglers
        finish,
    (c) decoupled — each lane is its own width-1 partition and stops
        exactly when its own quota is met.
    """
    lines = []
    a = simulate_partition(width, quota, 1.0, runs=1, seed=seed)
    lines.append("(a) lockstep, no divergence (all lanes always useful):")
    for i, lane in enumerate(a.lane_activity):
        lines.append(f"  lane{i} |{lane[:max_cols]}|")
    b = simulate_partition(width, quota, accept_prob, runs=1, seed=seed)
    lines.append(
        f"(b) lockstep with rejection p={1 - accept_prob:.2f} "
        f"(idle '.' = the paper's red dots), efficiency {b.efficiency:.0%}:"
    )
    for i, lane in enumerate(b.lane_activity):
        lines.append(f"  lane{i} |{lane[:max_cols]}|")
    lines.append("(c) decoupled: every lane its own pipeline, no idling:")
    for i in range(width):
        c = simulate_partition(1, quota, accept_prob, runs=1, seed=seed + i)
        lines.append(f"  lane{i} |{c.lane_activity[0][:max_cols]}|")
    return "\n".join(lines)
