"""Lockstep hardware-partition execution model (Fig 2a/2b).

On CPU/GPU/Xeon Phi, work-items execute in hardware partitions (warps /
SIMD vectors) that advance one instruction for the whole partition at a
time.  A divergent segment is executed — and billed to every lane —
whenever at least one lane needs it; lanes on the other side sit idle
(the red dots of Fig 2b).  Two quantities capture the cost:

* the **divergence-inflated attempt cost**: each segment's per-partition
  execution probability is ``1 - (1 - p)**width``, so rare per-lane
  branches become near-certain for wide partitions;
* the **straggler factor**: a partition iterates until its *slowest*
  lane fills its output quota; the ratio E[max of lane attempt counts] /
  E[lane attempt count] inflates total iterations, growing with the
  barrier width.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.devices.ops import segment_cost
from repro.devices.profiles import AttemptProfile

__all__ = [
    "partition_branch_probability",
    "attempt_cycles_lockstep",
    "attempt_cycles_decoupled",
    "divergence_factor",
    "straggler_factor",
]


def partition_branch_probability(lane_p: float, width: int) -> float:
    """P(segment executed by a width-``width`` lockstep partition)."""
    if width < 1:
        raise ValueError("partition width must be >= 1")
    if not 0.0 <= lane_p <= 1.0:
        raise ValueError("lane probability must lie in [0, 1]")
    return 1.0 - (1.0 - lane_p) ** width


def attempt_cycles_lockstep(
    device_name: str, profile: AttemptProfile, width: int
) -> float:
    """Expected cycles one lockstep attempt occupies the partition."""
    total = 0.0
    for seg in profile.segments:
        p_exec = partition_branch_probability(seg.lane_probability, width)
        total += p_exec * segment_cost(device_name, seg.ops)
    return total


def attempt_cycles_decoupled(device_name: str, profile: AttemptProfile) -> float:
    """Expected cycles per attempt with width-1 (fully decoupled) lanes.

    This is the cost an *ideal* divergence-free machine pays — each lane
    only ever executes the segments it actually needs (Fig 2c).
    """
    return attempt_cycles_lockstep(device_name, profile, width=1)


def divergence_factor(
    device_name: str, profile: AttemptProfile, width: int
) -> float:
    """Lockstep cost inflation vs the decoupled ideal (>= 1)."""
    return attempt_cycles_lockstep(device_name, profile, width) / (
        attempt_cycles_decoupled(device_name, profile)
    )


@lru_cache(maxsize=4096)
def straggler_factor(
    barrier_width: int,
    quota: int,
    accept_prob: float,
    samples: int = 4000,
    seed: int = 99,
) -> float:
    """E[max over lanes of attempts-to-quota] / E[attempts-to-quota].

    ``barrier_width`` is the number of work-items that must all finish
    before their resources free (the work-group on CPU/PHI, the warp's
    block on GPU).  Attempts-to-quota per lane is quota + a negative
    binomial; the factor is estimated by a deterministic vectorized
    Monte-Carlo run and cached.
    """
    if barrier_width < 1:
        raise ValueError("barrier width must be >= 1")
    if not 0.0 < accept_prob <= 1.0:
        raise ValueError("accept probability must lie in (0, 1]")
    if quota < 1:
        raise ValueError("quota must be >= 1")
    if barrier_width == 1 or accept_prob == 1.0:
        return 1.0
    rng = np.random.default_rng(seed)
    failures = rng.negative_binomial(
        quota, accept_prob, size=(samples, barrier_width)
    )
    attempts = failures + quota
    mean_max = attempts.max(axis=1).mean()
    mean = quota / accept_prob
    return float(max(1.0, mean_max / mean))
