"""Calibration of the fixed-architecture models against Table III.

Each fixed device has exactly two free scalars (see
:class:`repro.devices.fixed.DeviceCalibration`):

* ``eta`` — the fraction of the op-table throughput the vendor's OpenCL
  runtime actually achieves, and
* ``kappa`` — additional slowdown per unit rejection rate, covering
  lockstep side effects the op model cannot see (re-convergence stack
  handling, vectorizer fallback on divergent while-loops, masked-lane
  scheduling).

They are fitted against TWO measured cells per device — Config1
(high-rejection Marsaglia-Bray) and Config3 CUDA-style (low-rejection
ICDF) — leaving the remaining Table III cells as genuine predictions.
The closed form: with the model linear in ``(1 + kappa*r)/eta``,

    A1 * (1 + k r1) / eta = T1        A3 * (1 + k r3) / eta = T3

solve the ratio for kappa (clamped at 0 when the unconstrained solution
is negative) and then eta.  ``fit_all()`` regenerates the constants
shipped in ``DEFAULT_CALIBRATIONS``; a provenance test asserts they
match.
"""

from __future__ import annotations

from repro.devices.fixed import DeviceCalibration, FixedArchitectureModel
from repro.devices.profiles import attempt_profile
from repro.opencl.ndrange import NDRange
from repro.opencl.platform import PAPER_DEVICES
from repro.paper import OPTIMAL_LOCAL_SIZES, SETUP, TABLE3_RUNTIME_MS

__all__ = ["fit_device", "fit_all", "CALIBRATION_TARGETS"]

#: the two Table III cells each device is fitted against
CALIBRATION_TARGETS = ("Config1", "Config3_cuda")


def _base_seconds(device_name: str, transform: str, icdf_style: str,
                  mt_state_words: int) -> tuple[float, float]:
    """Model seconds at eta=1, kappa=0, plus the profile rejection rate."""
    device = PAPER_DEVICES[device_name]
    model = FixedArchitectureModel(
        device, DeviceCalibration(eta=1.0, kappa=0.0)
    )
    profile = attempt_profile(
        transform, variance=SETUP.sector_variance, icdf_style=icdf_style
    )
    ndrange = NDRange(SETUP.global_size, OPTIMAL_LOCAL_SIZES[device_name])
    est = model.estimate(
        profile, ndrange, SETUP.outputs_per_work_item, mt_state_words
    )
    return est.seconds, profile.rejection_rate


def fit_device(device_name: str) -> DeviceCalibration:
    """Fit (eta, kappa) for one device from its two calibration cells."""
    a1, r1 = _base_seconds(device_name, "marsaglia_bray", "cuda", 624)
    a3, r3 = _base_seconds(device_name, "icdf", "cuda", 624)
    t1 = TABLE3_RUNTIME_MS["Config1"][device_name] / 1e3
    t3 = TABLE3_RUNTIME_MS["Config3_cuda"][device_name] / 1e3
    # ratio equation: (a1/a3) * (1 + k r1)/(1 + k r3) = t1/t3
    rho = (t1 / t3) * (a3 / a1)
    denom = r1 - rho * r3
    kappa = (rho - 1.0) / denom if abs(denom) > 1e-12 else 0.0
    if kappa < 0.0 or not _finite(kappa):
        # model ratio already at/above the measured ratio: geometric-mean
        # eta fit with kappa pinned at zero
        kappa = 0.0
        eta = ((a1 / t1) * (a3 / t3)) ** 0.5
    else:
        eta = a1 * (1.0 + kappa * r1) / t1
    eta = min(eta, 1.0)
    return DeviceCalibration(eta=eta, kappa=kappa)


def fit_all() -> dict[str, DeviceCalibration]:
    """Fit every fixed device; shipped constants must match this output."""
    return {name: fit_device(name) for name in ("CPU", "GPU", "PHI")}


def _finite(x: float) -> bool:
    return x == x and abs(x) != float("inf")
