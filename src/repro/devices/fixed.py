"""Runtime model for the fixed-architecture accelerators (CPU/GPU/PHI).

The model reproduces how a lockstep machine executes the nested
rejection kernel:

1. **Per-output retry loop.**  Each work-item produces its quota with a
   ``do { attempt } while (!valid)`` loop.  In a lockstep partition of
   width W the loop runs until *every* lane has a valid sample, so the
   expected partition iterations per output are ``E[max of W iid
   Geometric(p)]`` — the heart of the Fig 2b penalty, growing with both
   the rejection rate and the partition width.
2. **Divergence-inflated attempt cost.**  Each divergent segment bills
   the partition whenever any lane takes it (probability
   ``1-(1-p)**W``), costed from the per-platform op tables.
3. **Mersenne-Twister state pressure.**  A draw costs more when the
   state array (624 vs 17 words, Table I) no longer sits next to the
   ALUs — the effect that separates Config1 from Config2 on GPU/PHI but
   not on CPU.
4. **Occupancy.**  Work-groups are scheduled in waves over the device's
   partition slots; localSize below the native width leaves vector
   lanes dead (left branch of Fig 5a), tiny globalSize leaves slots
   idle (Fig 5b), and on the GPU a low resident-warp count fails to
   hide latency.

Two scalars per device are *calibrated* (η — achieved fraction of the
op-table throughput under the vendor's OpenCL runtime; κ — extra
penalty per unit rejection rate for divergence side effects such as
re-convergence and failed vectorization).  They are fitted once against
two Table III cells per device (Config1 and Config3 CUDA-style) by
``repro.devices.calibration``; the other rows/columns are predictions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.ops import OP_COSTS, segment_cost
from repro.devices.partition import partition_branch_probability
from repro.devices.profiles import AttemptProfile
from repro.opencl.ndrange import NDRange
from repro.opencl.platform import Device, DeviceKind

__all__ = [
    "DeviceCalibration",
    "FixedArchitectureModel",
    "RuntimeBreakdown",
    "expected_max_geometric",
    "mt_draw_cycles",
]

#: per-word cost of streaming the MT state past the draw site —
#: captures where the state lives on each platform (L1 on the CPU;
#: L2/global on GPU; ring-bus L2 on KNC)
MT_STATE_CYCLES_PER_WORD = {"CPU": 0.002, "GPU": 0.09, "PHI": 0.02}

#: resident work-items one GPU SM needs to hide pipeline+memory latency
#: (Kepler wants ~50 % occupancy = 1024 threads for latency-bound code)
GPU_LATENCY_HIDING_ITEMS = 1024
#: CUDA blocks resident per SM (Kepler limit)
GPU_BLOCKS_PER_CU = 16

#: fast-cache capacity available to one compute unit's resident
#: work-group state (CPU: per-core L2; KNC: per-core L2).  A work-group
#: keeps 4 Mersenne-Twister states per work-item live; once the group's
#: state working set overflows this, draws degrade toward memory speed —
#: the effect that bends Fig 5a upward right of the optimum.
CACHE_BYTES_PER_CU = {"CPU": 256 << 10, "PHI": 512 << 10, "GPU": None}

#: twisters per work-item in the Fig 4 pipeline (two for the normal
#: transform, one rejection, one correction)
TWISTERS_PER_ITEM = 4


@dataclass(frozen=True)
class DeviceCalibration:
    """The two fitted scalars of a fixed-architecture model."""

    eta: float  # achieved fraction of op-table throughput, in (0, 1]
    kappa: float  # extra slowdown per unit rejection rate, >= 0

    def __post_init__(self):
        if not 0.0 < self.eta <= 1.0:
            raise ValueError("eta must lie in (0, 1]")
        if self.kappa < 0.0:
            raise ValueError("kappa must be >= 0")


#: fitted by repro.devices.calibration.fit_all() against Table III
#: Config1 / Config3-CUDA (see that module for the provenance run)
DEFAULT_CALIBRATIONS: dict[str, DeviceCalibration] = {
    "CPU": DeviceCalibration(eta=0.22024063592261245, kappa=5.432540473880234),
    "GPU": DeviceCalibration(eta=0.09442258550137929, kappa=0.0),
    "PHI": DeviceCalibration(eta=0.2860895015092019, kappa=0.0),
}


def expected_max_geometric(p: float, width: int, tol: float = 1e-9) -> float:
    """``E[max of `width` iid Geometric(p)]`` (support 1, 2, ...).

    The per-output lockstep iteration count: a partition's retry loop
    runs until the slowest lane succeeds.  Computed from
    ``E[X] = sum_k P(X > k) = sum_k 1 - (1 - q**k)**width``.
    """
    if not 0.0 < p <= 1.0:
        raise ValueError("success probability must lie in (0, 1]")
    if width < 1:
        raise ValueError("width must be >= 1")
    if p == 1.0:
        return 1.0
    q = 1.0 - p
    total = 0.0
    qk = 1.0  # q**k starting at k = 0
    for _ in range(100_000):
        term = 1.0 - (1.0 - qk) ** width
        total += term
        if term < tol:
            break
        qk *= q
    return total


def mt_draw_cycles(device_name: str, state_words: int) -> float:
    """Cycle cost of one Mersenne-Twister draw with an n-word state."""
    base = OP_COSTS[device_name]["mt_draw"]
    return base + MT_STATE_CYCLES_PER_WORD[device_name] * state_words


@dataclass
class RuntimeBreakdown:
    """Decomposed runtime estimate (seconds and diagnostics)."""

    seconds: float
    attempt_cycles: float  # per lockstep partition iteration
    iterations_per_output: float  # E[max Geometric] straggler
    divergence_width: int
    waves: int
    occupancy: float
    launch_overhead_s: float

    @property
    def milliseconds(self) -> float:
        return 1e3 * self.seconds


class FixedArchitectureModel:
    """Timing model for one CPU/GPU/PHI device.

    Parameters
    ----------
    device:
        A catalog :class:`~repro.opencl.platform.Device` (CPU/GPU/PHI).
    calibration:
        η/κ pair; defaults to the fitted constants.
    """

    def __init__(self, device: Device, calibration: DeviceCalibration | None = None):
        if device.kind is DeviceKind.FPGA:
            raise ValueError(
                "FPGA devices use repro.devices.fpga.FpgaModel, not the "
                "lockstep model"
            )
        if device.name not in OP_COSTS:
            raise KeyError(f"no op-cost table for device {device.name!r}")
        self.device = device
        self.calibration = (
            calibration
            if calibration is not None
            else DEFAULT_CALIBRATIONS[device.name]
        )

    # -- cost components -----------------------------------------------------------

    def mt_cache_pressure(self, local_size: int, mt_state_words: int) -> float:
        """Draw-cost inflation once the group's twister states overflow
        the compute unit's fast cache (>= 1)."""
        cache = CACHE_BYTES_PER_CU.get(self.device.name)
        if cache is None:
            return 1.0
        working_set = local_size * TWISTERS_PER_ITEM * mt_state_words * 4
        return max(1.0, working_set / cache)

    def attempt_cycles(
        self,
        profile: AttemptProfile,
        width: int,
        mt_state_words: int,
        local_size: int | None = None,
    ) -> float:
        """Expected partition cycles of one lockstep attempt iteration."""
        name = self.device.name
        draw = mt_draw_cycles(name, mt_state_words)
        draw *= self.mt_cache_pressure(local_size or width, mt_state_words)
        simd = self.device.kind is not DeviceKind.GPU  # SIMT never scalarizes
        total = 0.0
        for seg in profile.segments:
            p_exec = partition_branch_probability(seg.lane_probability, width)
            ops = dict(seg.ops)
            draws = ops.pop("mt_draw", 0)
            cost = segment_cost(name, ops) + draws * draw
            if simd and not seg.vectorizable:
                # implicit vectorization falls back to one lane at a time
                cost *= width
            total += p_exec * cost
        return total

    def occupancy(self, ndrange: NDRange) -> float:
        """Fraction of the device's lane slots doing useful work."""
        d = self.device
        native = d.partition_width
        local = ndrange.work_group_size
        # vector underfill: a group smaller than the native width wastes
        # the remaining lanes of its partition slot
        underfill = min(1.0, local / native)
        # device fill: not enough work-items to populate every slot
        resident_capacity = d.total_processing_elements
        fill = min(1.0, ndrange.total_work_items / resident_capacity)
        latency = 1.0
        if d.kind is DeviceKind.GPU:
            # resident items per SM limited by the blocks-per-SM cap:
            # small blocks cannot keep enough warps in flight
            resident = min(GPU_BLOCKS_PER_CU * local, 2048)
            latency = min(1.0, resident / GPU_LATENCY_HIDING_ITEMS)
        return underfill * fill * latency

    def iterations_per_output(
        self, profile: AttemptProfile, local_size: int, outputs_per_item: int
    ) -> float:
        """Lockstep retry iterations per accepted output, barrier-aware.

        On CPU/Xeon Phi the implicit vectorizer executes the *whole
        work-group* in lockstep rounds, so the retry loop waits for the
        slowest of ``local_size`` lanes.  On the GPU divergence is
        handled per 32-wide warp, but the block still occupies its SM
        until the slowest warp finishes its full quota — a milder,
        aggregate straggler.
        """
        from repro.devices.partition import straggler_factor

        if self.device.kind is DeviceKind.GPU:
            warp = self.device.partition_width
            iters = expected_max_geometric(
                profile.accept_prob, min(local_size, warp)
            )
            warps_per_group = -(-local_size // warp)
            if warps_per_group > 1:
                iters *= straggler_factor(
                    warps_per_group, outputs_per_item, profile.accept_prob
                )
            return iters
        return expected_max_geometric(profile.accept_prob, local_size)

    # -- the estimate ------------------------------------------------------------------

    def estimate(
        self,
        profile: AttemptProfile,
        ndrange: NDRange,
        outputs_per_item: int,
        mt_state_words: int,
    ) -> RuntimeBreakdown:
        """Kernel runtime for ``outputs_per_item`` gamma RNs per work-item.

        ``mt_state_words`` selects the Table I twister (624 or 17).
        """
        if outputs_per_item < 1:
            raise ValueError("outputs_per_item must be >= 1")
        d = self.device
        cal = self.calibration
        native = d.partition_width
        local = ndrange.work_group_size
        width = min(local, native)

        cycles = self.attempt_cycles(profile, width, mt_state_words, local)
        iters = self.iterations_per_output(profile, local, outputs_per_item)
        penalty = 1.0 + cal.kappa * profile.rejection_rate

        # partition instances across the NDRange and hardware slots
        instances = -(-ndrange.total_work_items // width)
        slots = max(1, d.total_processing_elements // native)
        waves = -(-instances // slots)
        occ = self.occupancy(ndrange)

        per_instance_cycles = outputs_per_item * iters * cycles * penalty
        compute_s = (
            waves * per_instance_cycles / (d.frequency_hz * cal.eta * max(occ, 1e-9))
        )
        launch_s = (
            ndrange.num_work_groups * d.group_launch_overhead_s / d.compute_units
        )
        return RuntimeBreakdown(
            seconds=compute_s + launch_s,
            attempt_cycles=cycles,
            iterations_per_output=iters,
            divergence_width=width,
            waves=waves,
            occupancy=occ,
            launch_overhead_s=launch_s,
        )
