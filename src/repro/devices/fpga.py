"""FPGA runtime model: decoupled pipelines + the shared memory channel.

The decoupled design makes the FPGA timing almost closed-form:

* **compute** — every work-item is an II=1 pipeline, so generating
  ``outputs x (1 + r)`` attempts takes that many cycles (Eq (1) of the
  paper); all ``N`` pipelines run concurrently, so the compute bound is
  the per-work-item attempt count;
* **transfer** — all outputs funnel through one 512-bit channel in
  bursts (Fig 3/Fig 7); the channel bound comes from the same burst
  economics as :func:`repro.core.memory.transfer_only_cycles`;
* the measured runtime is the larger of the two (Section IV-E finds the
  paper's own implementation transfer-bound: Eq (1) predicts 683/422 ms
  where 701/642 ms are measured).

The model is validated against the cycle-accurate simulation of
:mod:`repro.core` at small scale and extrapolates to the paper's
workload analytically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.memory import MemoryChannelConfig
from repro.fixedpoint import FLOATS_PER_WORD

__all__ = ["FpgaModel", "FpgaRuntime", "eq1_theoretical_runtime"]


def eq1_theoretical_runtime(
    num_scenarios: int,
    num_sectors: int,
    num_work_items: int,
    frequency_hz: float,
    rejection_rate: float,
) -> float:
    """Equation (1): t ≈ numScenarios·numSectors/(numWI·f) · (1 + r).

    The paper's first-order compute-only estimate; excludes "the
    overhead outside the main pipelined for-loop" and all transfer
    effects — which is exactly why it undershoots for Config3/4.
    """
    if num_work_items < 1:
        raise ValueError("need at least one work-item")
    if not 0.0 <= rejection_rate < 1.0:
        raise ValueError("rejection rate must lie in [0, 1)")
    attempts = num_scenarios * num_sectors / num_work_items
    return attempts * (1.0 + rejection_rate) / frequency_hz


@dataclass
class FpgaRuntime:
    """Decomposed FPGA runtime estimate."""

    seconds: float
    compute_seconds: float
    transfer_seconds: float
    bound: str  # "compute" or "transfer"
    effective_bandwidth_bps: float

    @property
    def milliseconds(self) -> float:
        return 1e3 * self.seconds


@dataclass(frozen=True)
class FpgaModel:
    """Analytic FPGA timing for the decoupled work-items design.

    Parameters
    ----------
    n_work_items:
        Parallel pipelines (from the Table II resource fit: 6 for
        Config1/2, 8 for Config3/4).
    frequency_hz:
        SDAccel kernel clock (200 MHz on the paper's board).
    channel:
        Burst-timing parameters of the single memory channel.
    burst_words:
        LTRANSF — 512-bit words per burst.
    ii:
        Initiation interval of the main loop (1 with the delayed-counter
        workaround; NAIVE_EXIT_II without — the ablation).
    sector_overhead_cycles:
        Pipeline drain/refill cost per SECLOOP iteration.
    """

    n_work_items: int = 6
    frequency_hz: float = 200e6
    channel: MemoryChannelConfig = field(default_factory=MemoryChannelConfig)
    burst_words: int = 64
    ii: int = 1
    sector_overhead_cycles: int = 64
    # >1 models the conclusion's "further customizations of the memory
    # controller": independent ports splitting the transfer bound
    n_channels: int = 1

    def __post_init__(self):
        if self.n_work_items < 1:
            raise ValueError("need at least one work-item")
        if self.ii < 1:
            raise ValueError("initiation interval must be >= 1")
        if self.burst_words < 1:
            raise ValueError("burst_words must be >= 1")
        if self.n_channels < 1:
            raise ValueError("need at least one memory channel")

    # -- bounds ---------------------------------------------------------------------

    def compute_cycles(
        self, outputs_per_item: int, sectors: int, rejection_rate: float
    ) -> float:
        """Pipeline-bound cycles for one work-item (they run concurrently)."""
        attempts = outputs_per_item * (1.0 + rejection_rate) * self.ii
        return attempts + sectors * self.sector_overhead_cycles

    def transfer_cycles(self, total_outputs: int) -> float:
        """Channel-bound cycles to move every output as 512-bit bursts.

        With multiple channels the engines split round-robin, so the
        bound is set by the busiest (ceil-divided) channel.
        """
        total_words = -(-total_outputs // FLOATS_PER_WORD)
        bursts = -(-total_words // self.burst_words)
        per_channel = -(-bursts // self.n_channels)
        full_burst = self.channel.burst_cycles(self.burst_words)
        return per_channel * full_burst

    # -- the estimate ------------------------------------------------------------------

    def estimate(
        self,
        total_outputs: int,
        sectors: int,
        rejection_rate: float,
    ) -> FpgaRuntime:
        """Runtime for ``total_outputs`` gamma RNs across all work-items.

        The compute and transfer phases overlap (Fig 3), so the runtime
        is the max of the two bounds, not their sum.
        """
        if total_outputs < 1:
            raise ValueError("total_outputs must be >= 1")
        per_item = -(-total_outputs // self.n_work_items)
        compute = self.compute_cycles(per_item, sectors, rejection_rate)
        transfer = self.transfer_cycles(total_outputs)
        cycles = max(compute, transfer)
        seconds = cycles / self.frequency_hz
        bytes_moved = total_outputs * 4
        return FpgaRuntime(
            seconds=seconds,
            compute_seconds=compute / self.frequency_hz,
            transfer_seconds=transfer / self.frequency_hz,
            bound="compute" if compute >= transfer else "transfer",
            effective_bandwidth_bps=bytes_moved / seconds,
        )
