"""Per-platform operation cost tables.

The fixed-architecture runtime models charge each kernel operation a
per-lane reciprocal-throughput cost in clock cycles.  The values are
order-of-magnitude figures from the vendors' optimization guides for the
Section IV-A parts (Haswell AVX2, Kepler GK210, Knights Corner), tuned
so the *relative* runtimes of Table III reproduce — see
EXPERIMENTS.md for the calibration note.  Absolute cycle counts are not
claims about the silicon.

Operation classes
-----------------
``flop``      add/mul/FMA/compare in float32
``int_op``    integer ALU op (shift/and/or/xor/add)
``mt_draw``   one Mersenne-Twister output (state load, twist amortized,
              4-stage temper) — charged as a unit for readability
``log``       natural log (float32)
``sqrt``      square root
``div``       division
``pow``       ``x**y`` (exp+log fused)
``gather``    indexed table load (the ICDF ROM emulation)
``lzc``       count-leading-zeros (native on GPUs, emulated by a
              shift/compare cascade on CPU and especially KNC)
"""

from __future__ import annotations

__all__ = ["OP_COSTS", "op_cost", "OP_KINDS"]

OP_KINDS = (
    "flop", "int_op", "mt_draw", "log", "sqrt", "div", "pow", "gather", "lzc",
)

#: cycles per operation per SIMD lane (reciprocal throughput)
OP_COSTS: dict[str, dict[str, float]] = {
    # Haswell AVX2: superb scalar/vector FP, vectorized libm (SVML-class)
    # transcendentals, no vector lzc (emulated), gathers slow pre-Skylake
    "CPU": {
        "flop": 0.5,
        "int_op": 0.5,
        "mt_draw": 7.0,
        "log": 11.0,
        "sqrt": 7.0,
        "div": 7.0,
        "pow": 26.0,
        "gather": 5.0,
        "lzc": 4.0,
    },
    # Kepler GK210: special-function units make log/sqrt cheap, native
    # __clz, but low clock; per-lane figures at full warp occupancy
    "GPU": {
        "flop": 1.0,
        "int_op": 1.0,
        "mt_draw": 9.0,
        "log": 4.0,
        "sqrt": 4.0,
        "div": 9.0,
        "pow": 14.0,
        "gather": 10.0,
        "lzc": 1.0,
    },
    # Knights Corner: wide vectors but in-order cores, expensive masked
    # transcendentals, no vector lzc/gather worth the name
    "PHI": {
        "flop": 1.0,
        "int_op": 1.0,
        "mt_draw": 9.0,
        "log": 18.0,
        "sqrt": 11.0,
        "div": 11.0,
        "pow": 40.0,
        "gather": 12.0,
        "lzc": 8.0,
    },
}


def op_cost(device_name: str, op: str) -> float:
    """Cycle cost of one op on one lane of the named device."""
    try:
        table = OP_COSTS[device_name]
    except KeyError:
        raise KeyError(
            f"no op-cost table for device {device_name!r}; "
            f"known: {sorted(OP_COSTS)}"
        ) from None
    try:
        return table[op]
    except KeyError:
        raise KeyError(
            f"unknown op {op!r}; known kinds: {OP_KINDS}"
        ) from None


def segment_cost(device_name: str, ops: dict[str, float]) -> float:
    """Total per-lane cycle cost of an operation bundle."""
    return sum(op_cost(device_name, op) * count for op, count in ops.items())
