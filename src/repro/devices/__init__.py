"""Accelerator timing models for the four Section IV-A platforms.

* :mod:`repro.devices.ops` — per-platform op cost tables,
* :mod:`repro.devices.profiles` — per-attempt kernel cost profiles with
  measured branch statistics,
* :mod:`repro.devices.partition` — lockstep divergence and straggler
  mathematics (Fig 2b),
* :mod:`repro.devices.fixed` — the CPU/GPU/PHI runtime model,
* :mod:`repro.devices.fpga` — the decoupled-pipelines FPGA model and
  Eq (1),
* :mod:`repro.devices.calibration` — the two-cell Table III fit.
"""

from repro.devices.ops import OP_COSTS, op_cost, segment_cost
from repro.devices.profiles import (
    AttemptProfile,
    PathRates,
    Segment,
    attempt_profile,
    measured_path_rates,
)
from repro.devices.partition import (
    attempt_cycles_decoupled,
    attempt_cycles_lockstep,
    divergence_factor,
    partition_branch_probability,
    straggler_factor,
)
from repro.devices.fixed import (
    DEFAULT_CALIBRATIONS,
    DeviceCalibration,
    FixedArchitectureModel,
    RuntimeBreakdown,
    expected_max_geometric,
    mt_draw_cycles,
)
from repro.devices.fpga import FpgaModel, FpgaRuntime, eq1_theoretical_runtime
from repro.devices.calibration import fit_all, fit_device
from repro.devices.lockstep_sim import (
    LockstepResult,
    render_fig2,
    simulate_partition,
)

__all__ = [
    "OP_COSTS",
    "op_cost",
    "segment_cost",
    "AttemptProfile",
    "PathRates",
    "Segment",
    "attempt_profile",
    "measured_path_rates",
    "attempt_cycles_decoupled",
    "attempt_cycles_lockstep",
    "divergence_factor",
    "partition_branch_probability",
    "straggler_factor",
    "DEFAULT_CALIBRATIONS",
    "DeviceCalibration",
    "FixedArchitectureModel",
    "RuntimeBreakdown",
    "expected_max_geometric",
    "mt_draw_cycles",
    "FpgaModel",
    "FpgaRuntime",
    "eq1_theoretical_runtime",
    "fit_all",
    "fit_device",
    "LockstepResult",
    "render_fig2",
    "simulate_partition",
]
