"""Kernel cost profiles: the Listing 2 attempt, segment by segment.

A fixed-architecture work-item executes the same nested-rejection
attempt as the FPGA pipeline, but in *lockstep* with its hardware
partition: a divergent segment runs (and bills every lane) whenever ANY
lane of the partition needs it (Fig 2b).  Profiles therefore describe
each attempt as

* unconditional segments (lane probability 1.0), and
* divergent segments with a per-lane execution probability, promoted to
  a per-partition probability ``1 - (1 - p)**width`` by the partition
  model.

Per-lane probabilities come from the *measured* statistics of the
:mod:`repro.rng` implementations (cached vectorized runs), not from
hand-waving — e.g. the Marsaglia-Bray acceptance is measured ≈ π/4 and
the squeeze-miss rate of Marsaglia-Tsang is measured per sector
variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.rng.erfinv import CENTRAL_W_LIMIT
from repro.rng.gamma import marsaglia_tsang_constants

__all__ = [
    "Segment",
    "AttemptProfile",
    "attempt_profile",
    "measured_path_rates",
    "PathRates",
]


@dataclass(frozen=True)
class Segment:
    """One straight-line piece of the attempt body.

    ``vectorizable=False`` marks code the implicit vectorizers of the
    CPU/Xeon Phi OpenCL runtimes cannot keep in SIMD form (leading-zero
    counts, data-dependent shifts, gathers — the bit-level ICDF of
    Section II-D3): such a segment executes once per *lane* instead of
    once per partition on those platforms.  GPUs are SIMT and keep
    per-lane control flow in hardware, so the flag does not apply there.
    """

    name: str
    ops: dict
    lane_probability: float = 1.0
    vectorizable: bool = True

    def __post_init__(self):
        if not 0.0 <= self.lane_probability <= 1.0:
            raise ValueError(
                f"segment {self.name!r}: probability must lie in [0, 1]"
            )


@dataclass(frozen=True)
class AttemptProfile:
    """Full cost description of one MAINLOOP attempt.

    ``accept_prob`` is the probability that one attempt yields a valid
    output — the (1+r) attempt inflation of Eq (1) is ``1/accept_prob``.
    """

    name: str
    segments: tuple[Segment, ...]
    accept_prob: float
    output_bytes: int = 4  # one float32 gamma RN per accepted attempt

    def __post_init__(self):
        if not 0.0 < self.accept_prob <= 1.0:
            raise ValueError("accept probability must lie in (0, 1]")

    @property
    def rejection_rate(self) -> float:
        return 1.0 - self.accept_prob

    @property
    def attempts_per_output(self) -> float:
        return 1.0 / self.accept_prob


@dataclass(frozen=True)
class PathRates:
    """Measured per-lane path statistics of the nested generator."""

    normal_accept: float  # P(valid normal candidate)
    gamma_accept: float  # P(gamma accepted | valid normal)
    squeeze_miss: float  # P(full log test needed | valid normal)
    cube_negative: float  # P((1 + c x)^3 <= 0)
    erfinv_tail: float  # P(Giles tail polynomial) — ICDF paths only

    @property
    def combined_accept(self) -> float:
        return self.normal_accept * self.gamma_accept


@lru_cache(maxsize=64)
def measured_path_rates(
    transform: str, variance: float, samples: int = 400_000, seed: int = 1234
) -> PathRates:
    """Measure the branch statistics with the real vectorized generators.

    The partition models consume these instead of closed-form guesses,
    so a change in the RNG implementations propagates into the runtime
    predictions automatically.
    """
    rng = np.random.default_rng(seed)
    consts = marsaglia_tsang_constants(1.0 / variance)

    if transform == "marsaglia_bray":
        u1 = rng.uniform(-1.0, 1.0, samples)
        u2 = rng.uniform(-1.0, 1.0, samples)
        s = u1 * u1 + u2 * u2
        valid = (s > 0.0) & (s < 1.0)
        normal_accept = float(np.mean(valid))
        factor = np.sqrt(-2.0 * np.log(np.where(valid, s, 0.5)) / np.where(valid, s, 0.5))
        x = np.where(valid, u1 * factor, 0.0)[valid]
        erfinv_tail = 0.0
    elif transform in ("icdf_cuda", "icdf_fpga"):
        u = rng.random(samples)
        normal_accept = 1.0  # rejection-free at the modeled table depth
        from scipy.stats import norm

        x = norm.ppf(u)
        arg = 2.0 * u - 1.0
        w = -np.log((1.0 - arg) * (1.0 + arg))
        erfinv_tail = float(np.mean(w >= CENTRAL_W_LIMIT))
    else:
        raise ValueError(f"unknown transform {transform!r}")

    u_rej = rng.random(x.size)
    t = 1.0 + consts.c * x
    v = t * t * t
    positive = t > 0.0
    squeeze_pass = u_rej < 1.0 - 0.0331 * x**4
    with np.errstate(invalid="ignore", divide="ignore"):
        full_pass = np.log(u_rej) < 0.5 * x * x + consts.d * (
            1.0 - v + np.log(np.where(positive, v, 1.0))
        )
    accepted = positive & (squeeze_pass | full_pass)
    return PathRates(
        normal_accept=normal_accept,
        gamma_accept=float(np.mean(accepted)),
        squeeze_miss=float(np.mean(positive & ~squeeze_pass)),
        cube_negative=float(np.mean(~positive)),
        erfinv_tail=erfinv_tail,
    )


# op bundles (counts chosen from the actual arithmetic of repro.rng)
_MB_ALWAYS = {"mt_draw": 2, "flop": 6}  # 2 uniforms, s = u1²+u2², compares
_MB_ACCEPT = {"log": 1, "div": 1, "sqrt": 1, "flop": 3}
_ICDF_CUDA_ALWAYS = {"mt_draw": 1, "flop": 22, "log": 1}  # Giles central: 9 FMA + mul chain
_ICDF_CUDA_TAIL = {"sqrt": 1, "flop": 18}
# bit-level ICDF emulated with 32-bit shift/and/or masking (§II-D3): the
# LZC cascade, field extraction, coefficient gather, fixed-point MAC
_ICDF_FPGA_ALWAYS = {"mt_draw": 1, "lzc": 1, "int_op": 28, "gather": 1, "flop": 4}
_GAMMA_ALWAYS = {"mt_draw": 1, "flop": 12}  # u1 draw, cube, squeeze poly, compares
_GAMMA_FULLTEST = {"log": 2, "flop": 6}
_CORRECTION = {"mt_draw": 1, "pow": 1, "flop": 3}  # u2 draw, u2**(1/alpha)
_OUTPUT_STORE = {"flop": 1, "int_op": 2}  # coalesced store + index bump


def attempt_profile(
    transform: str,
    variance: float = 1.39,
    icdf_style: str = "cuda",
) -> AttemptProfile:
    """Build the per-attempt cost profile for a Table I configuration.

    Parameters
    ----------
    transform:
        ``"marsaglia_bray"`` or ``"icdf"`` (Table I column 2).
    variance:
        Sector variance (drives the gamma branch statistics).
    icdf_style:
        ``"cuda"`` or ``"fpga"`` — the two ICDF implementations whose
        runtimes Table III contrasts on fixed architectures.
    """
    if transform == "marsaglia_bray":
        rates = measured_path_rates("marsaglia_bray", variance)
        segments = [
            Segment("mb_always", _MB_ALWAYS),
            Segment("mb_accept", _MB_ACCEPT, rates.normal_accept),
        ]
        name = "marsaglia_bray"
    elif transform == "icdf":
        key = "icdf_cuda" if icdf_style == "cuda" else "icdf_fpga"
        rates = measured_path_rates(key, variance)
        if icdf_style == "cuda":
            segments = [
                Segment("icdf_always", _ICDF_CUDA_ALWAYS),
                Segment("icdf_tail", _ICDF_CUDA_TAIL, rates.erfinv_tail),
            ]
            name = "icdf_cuda_style"
        elif icdf_style == "fpga":
            # the 32-bit shift/and/or emulation defeats implicit
            # vectorization — "this modification becomes inefficient in
            # terms of runtime, especially on CPU and Xeon Phi" (§II-D3)
            segments = [
                Segment("icdf_bitlevel", _ICDF_FPGA_ALWAYS, vectorizable=False)
            ]
            name = "icdf_fpga_style"
        else:
            raise ValueError(f"unknown icdf_style {icdf_style!r}")
    else:
        raise ValueError(
            f"unknown transform {transform!r}; use 'marsaglia_bray' or 'icdf'"
        )

    consts = marsaglia_tsang_constants(1.0 / variance)
    segments.append(Segment("gamma_always", _GAMMA_ALWAYS))
    segments.append(Segment("gamma_fulltest", _GAMMA_FULLTEST, rates.squeeze_miss))
    if consts.boosted:
        segments.append(Segment("correction", _CORRECTION))
    segments.append(
        Segment("output_store", _OUTPUT_STORE, rates.combined_accept)
    )
    return AttemptProfile(
        name=name,
        segments=tuple(segments),
        accept_prob=rates.combined_accept,
    )
