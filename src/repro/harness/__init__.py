"""Experiment harness: one driver per paper table/figure.

* :mod:`repro.harness.configs` — the Table I configuration registry,
* :mod:`repro.harness.experiments` — ``run_table1`` … ``run_fig9``,
  each returning a structured result with paper-vs-measured fields,
* :mod:`repro.harness.reporting` — plain-text tables and series.
"""

from repro.harness import registry
from repro.harness.configs import CONFIGURATIONS, Configuration
from repro.harness.reporting import format_series, format_table
from repro.harness.session import KernelSession, SessionResult
from repro.harness.experiments import (
    run_buffer_combining,
    run_eq1,
    run_fig2,
    run_fig3,
    run_variance_sweep,
    run_fig5a,
    run_fig5b,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_rejection_rates,
    run_table1,
    run_table2,
    run_table3,
)

# drivers living outside the harness register lazily so importing the
# harness never pulls them in (the engine imports the harness, not vice
# versa); the registry resolves the spec on first use
registry.register_lazy(
    "serve-bench",
    "repro.engine.bench:run_serve_bench",
    "execution-engine throughput vs serial execution",
)
registry.register_lazy(
    "chaos",
    "repro.engine.bench:run_chaos",
    "engine resilience under a seeded fault plan "
    "(deadlines, retries, circuit breakers)",
)
registry.register_lazy(
    "fifo-prune",
    "repro.harness.sweeps:run_fifo_prune",
    "FIFO sizing via the surrogate-pruned sweep "
    "(simulates the predicted frontier only)",
)
registry.register_lazy(
    "sweep-prune",
    "repro.harness.sweeps:run_sweep_prune",
    "depth x channels Pareto sweep, surrogate-pruned",
)
registry.register_lazy(
    "timing-prune",
    "repro.harness.sweeps:run_timing_prune",
    "replication vs timing-closure sweep, surrogate-pruned "
    "(slice cost axis, frequency-derated wall time)",
)
registry.register_lazy(
    "pipeline",
    "repro.harness.pipelines:run_pipeline",
    "pipe-connected 3-region pricing pipeline: pipelined vs fused vs "
    "sequential, plus the 1-vs-2 channel-affinity split",
)
registry.register_lazy(
    "serve-tier",
    "repro.serve.bench:run_serve_tier",
    "sharded serving tier under heavy-tailed load: "
    "p50/p99 latency + shed rate per offered-load step",
)
registry.register_lazy(
    "serve-chaos",
    "repro.serve.bench:run_serve_chaos",
    "live sharded tier + admission gateway under a seeded "
    "fault plan (reroutes, typed sheds, zero unresolved jobs)",
)

__all__ = [
    "registry",
    "Configuration",
    "CONFIGURATIONS",
    "format_table",
    "format_series",
    "run_fig2",
    "run_fig3",
    "run_variance_sweep",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_fig5a",
    "run_fig5b",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_eq1",
    "run_rejection_rates",
    "run_buffer_combining",
    "KernelSession",
    "SessionResult",
]
