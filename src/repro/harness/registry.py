"""Experiment registry: the single source of the CLI's driver table.

Drivers register here — eagerly via the :func:`register` decorator
(the in-package experiment drivers) or lazily via
:func:`register_lazy` with an ``"import.path:callable"`` spec (drivers
living in packages the harness must not import at module load, e.g. the
engine's `serve-bench`).  ``python -m repro`` derives its experiment
table from this registry, so a new driver registers in exactly one
place and shows up in ``--list``, the CLI and the JSON output without
touching the entry point.
"""

from __future__ import annotations

import importlib
import threading
from dataclasses import dataclass
from typing import Callable

__all__ = [
    "ExperimentEntry",
    "register",
    "register_lazy",
    "experiment_names",
    "get_runner",
    "runners",
]


# One lock for every lazy resolution: resolution happens at most once
# per entry and imports already serialize on Python's import lock, so
# per-entry locks would buy contention-free parallelism nobody needs
# while complicating the dataclass.  What the lock must prevent is two
# campaign workers (or a worker and the CLI) racing ``resolve`` on the
# same entry: without it, both run the import, and a *failing* import
# could leave one thread observing a half-initialized assignment.
_RESOLVE_LOCK = threading.Lock()


@dataclass
class ExperimentEntry:
    """One registered driver."""

    name: str
    runner: Callable | None  # None until a lazy spec resolves
    spec: str | None = None  # "module.path:callable" for lazy entries
    summary: str = ""

    def resolve(self) -> Callable:
        # fast path without the lock: a non-None runner is immutable
        if self.runner is not None:
            return self.runner
        with _RESOLVE_LOCK:
            if self.runner is None:
                module_name, _, attr = self.spec.partition(":")
                # resolve fully before caching: if the import or the
                # attribute lookup raises, the entry stays unresolved
                # and the *next* resolve retries instead of serving a
                # broken cached runner forever
                module = importlib.import_module(module_name)
                self.runner = getattr(module, attr)
        return self.runner


_REGISTRY: dict[str, ExperimentEntry] = {}


def register(name: str, summary: str = "") -> Callable:
    """Decorator: register a driver callable under ``name``."""

    def deco(fn: Callable) -> Callable:
        _add(ExperimentEntry(name=name, runner=fn, summary=summary))
        return fn

    return deco


def register_lazy(name: str, spec: str, summary: str = "") -> None:
    """Register ``"module.path:callable"`` resolved on first use."""
    if ":" not in spec:
        raise ValueError(f"lazy spec must be 'module:callable', got {spec!r}")
    _add(ExperimentEntry(name=name, runner=None, spec=spec, summary=summary))


def _add(entry: ExperimentEntry) -> None:
    if entry.name in _REGISTRY:
        raise ValueError(f"experiment {entry.name!r} registered twice")
    _REGISTRY[entry.name] = entry


def experiment_names() -> list[str]:
    """Registration-ordered driver names."""
    return list(_REGISTRY)


def get_runner(name: str) -> Callable:
    try:
        return _REGISTRY[name].resolve()
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(_REGISTRY)}"
        ) from None


def runners() -> dict[str, Callable]:
    """name → runner for every registered driver (resolving lazy ones)."""
    return {name: entry.resolve() for name, entry in _REGISTRY.items()}
