"""Plain-text rendering of experiment results (tables and series)."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series", "jsonable", "to_markdown"]


def jsonable(value):
    """Coerce result cells (numpy scalars included) to plain JSON types.

    Shared by the ``--json`` CLI path and the campaign store, so a
    driver result serializes identically whether it is printed or
    persisted as a campaign row.
    """
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    for caster in (int, float):
        try:
            cast = caster(value)
        except (TypeError, ValueError):
            continue
        if cast == value:
            return cast
    return str(value)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Fixed-width ASCII table (the benches print these)."""
    cells = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def to_markdown(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """GitHub-flavored markdown table (for EXPERIMENTS.md-style docs)."""
    cells = [[_cell(v) for v in row] for row in rows]
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in cells:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def format_series(
    x_label: str,
    series: dict[str, dict],
    title: str | None = None,
) -> str:
    """Render {series_name: {x: y}} as one table with an x column."""
    xs = sorted({x for ys in series.values() for x in ys})
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(series[name].get(x, "") for name in series)] for x in xs
    ]
    return format_table(headers, rows, title=title)
