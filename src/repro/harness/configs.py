"""The Table I configuration registry.

Binds each paper configuration name to everything the experiment
drivers need: the uniform→normal transform, the Mersenne-Twister
parameter set, the MT state size, and the FPGA work-item count from the
Table II resource fit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.kernel import GammaKernelConfig
from repro.paper import FPGA_WORK_ITEMS, SETUP
from repro.rng.mersenne import MT19937_PARAMS, MT521_PARAMS, MTParams

__all__ = ["Configuration", "CONFIGURATIONS"]


@dataclass(frozen=True)
class Configuration:
    """One Table I row, fully resolved."""

    name: str
    transform: str  # "marsaglia_bray" | "icdf"
    mt_params: MTParams
    fpga_work_items: int

    @property
    def exponent(self) -> int:
        return self.mt_params.exponent

    @property
    def state_words(self) -> int:
        return self.mt_params.n

    @property
    def period_str(self) -> str:
        return f"2^({self.exponent}-1)... - 1"

    def kernel_transform(self) -> str:
        """The transform name the cycle-level kernel uses (the FPGA always
        runs the bit-level ICDF, Section II-D3)."""
        return "marsaglia_bray" if self.transform == "marsaglia_bray" else "icdf_fpga"

    def kernel_config(
        self,
        limit_main: int = 512,
        sector_variances: tuple[float, ...] | None = None,
        **overrides,
    ) -> GammaKernelConfig:
        """A cycle-simulation kernel config for this configuration.

        ``limit_main`` defaults to a reduced-scale value: the cycle
        simulator is for behavioral experiments; paper-scale runtime
        numbers come from the analytic models.
        """
        return GammaKernelConfig(
            transform=self.kernel_transform(),
            mt_params=self.mt_params,
            sector_variances=sector_variances
            or (SETUP.sector_variance,),
            limit_main=limit_main,
            **overrides,
        )


CONFIGURATIONS: dict[str, Configuration] = {
    "Config1": Configuration(
        "Config1", "marsaglia_bray", MT19937_PARAMS, FPGA_WORK_ITEMS["Config1"]
    ),
    "Config2": Configuration(
        "Config2", "marsaglia_bray", MT521_PARAMS, FPGA_WORK_ITEMS["Config2"]
    ),
    "Config3": Configuration(
        "Config3", "icdf", MT19937_PARAMS, FPGA_WORK_ITEMS["Config3"]
    ),
    "Config4": Configuration(
        "Config4", "icdf", MT521_PARAMS, FPGA_WORK_ITEMS["Config4"]
    ),
}
