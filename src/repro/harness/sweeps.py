"""Surrogate-pruned sweep drivers (``fifo-prune``, ``sweep-prune``).

These CLI experiments exercise :mod:`repro.surrogate` end to end on the
same config family the exhaustive sweeps use: score the whole grid with
the calibrated surrogate, cycle-simulate only the surviving candidates,
and report predicted-vs-simulated cycles per point so the pruning is
auditable from the rendered table (``-`` marks points the surrogate
ruled out without simulation).
"""

from __future__ import annotations

import dataclasses

from repro.core.decoupled import DecoupledConfig
from repro.core.kernel import GammaKernelConfig
from repro.core.memory import MemoryChannelConfig
from repro.harness.experiments import ExperimentResult
from repro.rng.mersenne import MT521_PARAMS

__all__ = [
    "PRUNE_BASE_CONFIG",
    "PRUNE_DEPTHS",
    "TIMING_PRUNE_COUNTS",
    "run_fifo_prune",
    "run_sweep_prune",
    "run_timing_prune",
]

#: The depth-sensitive configuration the fifo_sizing tests sweep —
#: vectorized lanes + the short Mersenne Twister keep one simulation
#: cheap enough that pruning headroom, not Python overhead, dominates.
PRUNE_BASE_CONFIG = DecoupledConfig(
    n_work_items=2,
    kernel=GammaKernelConfig(mt_params=MT521_PARAMS, limit_main=128),
    burst_words=2,
    channel=MemoryChannelConfig(setup_cycles=40, cycles_per_word=2),
    vector_lanes=True,
)

PRUNE_DEPTHS = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64)


def run_fifo_prune(
    base_config: DecoupledConfig | None = None,
    depths: tuple[int, ...] = PRUNE_DEPTHS,
) -> ExperimentResult:
    """FIFO sizing via the surrogate-pruned sweep."""
    from repro.surrogate import pruned_stream_depth_sweep

    base = base_config or PRUNE_BASE_CONFIG
    result = pruned_stream_depth_sweep(base, depths=depths)
    simulated = {p.depth: p for p in result.points}
    rows = []
    for depth in depths:
        point = simulated.get(depth)
        rows.append(
            [
                depth,
                round(result.predicted[depth], 1),
                point.cycles if point else "-",
                point.total_write_stalls if point else "-",
                "yes" if depth == result.recommended_depth else "",
            ]
        )
    return ExperimentResult(
        experiment="FIFO sizing (surrogate-pruned sweep)",
        headers=[
            "depth",
            "predicted_cycles",
            "simulated_cycles",
            "write_stalls",
            "recommended",
        ],
        rows=rows,
        series={
            "predicted": {str(d): result.predicted[d] for d in depths},
        },
        notes=(
            f"recommended depth {result.recommended_depth}; simulated "
            f"{len(result.simulated_depths)}/{len(depths)} depths "
            f"(margin {result.margin:.3f}, max LOO error "
            f"{result.fit.max_relative_error:.3f}, "
            f"tolerance {result.tolerance:.0%})"
        ),
    )


def _grid(base: DecoupledConfig):
    """(config, resource cost) per point: burst buffers + channel ports."""
    configs, costs = [], []
    for n_channels in (1, 2, 3):
        for burst_words in (1, 2, 4, 8):
            configs.append(
                dataclasses.replace(
                    base, burst_words=burst_words, n_channels=n_channels
                )
            )
            # per-engine burst staging buffers plus the (much pricier)
            # extra memory-controller port
            costs.append(
                burst_words * base.n_work_items + 64 * (n_channels - 1)
            )
    return configs, costs


def run_sweep_prune(
    base_config: DecoupledConfig | None = None,
) -> ExperimentResult:
    """Pareto frontier of a (burst length × channels) grid, pruned."""
    from repro.surrogate import pruned_grid_sweep

    base = base_config or dataclasses.replace(
        PRUNE_BASE_CONFIG, n_work_items=4
    )
    configs, costs = _grid(base)
    result = pruned_grid_sweep(configs, costs)
    frontier = set(result.frontier_indices)
    rows = []
    for i, (cfg, cost) in enumerate(zip(configs, costs)):
        rows.append(
            [
                cfg.burst_words,
                cfg.n_channels,
                cost,
                round(float(result.predicted[i]), 1),
                result.simulated_cycles.get(i, "-"),
                "yes" if i in frontier else "",
            ]
        )
    return ExperimentResult(
        experiment="Burst x channels Pareto sweep (surrogate-pruned)",
        headers=[
            "burst_words",
            "channels",
            "cost",
            "predicted_cycles",
            "simulated_cycles",
            "frontier",
        ],
        rows=rows,
        notes=(
            f"frontier {sorted(frontier)} of {len(configs)} grid points; "
            f"simulated {len(result.candidate_indices)} "
            f"(margin {result.margin:.3f}, max LOO error "
            f"{result.fit.max_relative_error:.3f})"
        ),
    )


#: Work-item counts for the timing-closure sweep.  The total output
#: budget (384 floats) divides evenly by every count, and the per-item
#: share stays a multiple of one 512-bit burst (16 floats), so each
#: point satisfies the decoupled design's ``limit_main %
#: (burst_words * 16) == 0`` constraint.
TIMING_PRUNE_COUNTS = (1, 2, 3, 4, 6, 8)
_TIMING_PRUNE_TOTAL_OUTPUTS = 384


def run_timing_prune(
    counts: tuple[int, ...] = TIMING_PRUNE_COUNTS,
    config: str = "Config1",
) -> ExperimentResult:
    """Timing-closure sweep: replication vs routing pressure, pruned.

    The cost axis is the Table II placement's slice count: more
    work-item replicas mean more parallel cycles *and* more routing
    pressure, and past the knee the achievable clock sags
    (:class:`repro.resources.TimingModel`).  The surrogate prunes the
    cycle simulations exactly as in the burst/channel sweep; the
    derated columns then convert surviving cycle counts to wall time at
    each point's *achievable* clock — the frontier in time-at-closure
    can differ from the frontier in raw cycles, which is the point.
    """
    from repro.resources import DEVICE_BUDGET, ResourceModel, TimingModel
    from repro.surrogate import pruned_grid_sweep

    resource_model = ResourceModel()
    timing = TimingModel()
    configs, costs, utils = [], [], []
    for n in counts:
        limit_main = _TIMING_PRUNE_TOTAL_OUTPUTS // n
        configs.append(
            dataclasses.replace(
                PRUNE_BASE_CONFIG,
                n_work_items=n,
                # one 512-bit word per burst keeps every limit_main
                # (384/n) a legal REPLOOP trip count
                burst_words=1,
                kernel=GammaKernelConfig(
                    mt_params=MT521_PARAMS, limit_main=limit_main
                ),
            )
        )
        placement = resource_model.estimate(config, n)
        costs.append(placement.totals.slices)
        utils.append(placement.totals.slices / DEVICE_BUDGET.slices)
    result = pruned_grid_sweep(configs, costs)
    frontier = set(result.frontier_indices)
    rows = []
    for i, n in enumerate(counts):
        freq_hz = timing.achievable_hz(min(utils[i], 1.0))
        cycles = result.simulated_cycles.get(i)
        rows.append(
            [
                n,
                costs[i],
                f"{100.0 * utils[i]:.1f}%",
                f"{freq_hz / 1e6:.1f}",
                round(float(result.predicted[i]), 1),
                cycles if cycles is not None else "-",
                (
                    f"{1e3 * cycles / freq_hz:.3f}"
                    if cycles is not None
                    else "-"
                ),
                "yes" if i in frontier else "",
            ]
        )
    return ExperimentResult(
        experiment="Timing-closure sweep (surrogate-pruned)",
        headers=[
            "work_items",
            "slices",
            "utilization",
            "derated clock [MHz]",
            "predicted_cycles",
            "simulated_cycles",
            "derated time [ms]",
            "frontier",
        ],
        rows=rows,
        series={
            "utilization": {str(n): utils[i] for i, n in enumerate(counts)},
            "derated_hz": {
                str(n): timing.achievable_hz(min(utils[i], 1.0))
                for i, n in enumerate(counts)
            },
        },
        notes=(
            f"frontier {sorted(frontier)} of {len(configs)} replication "
            f"points ({config} blocks); simulated "
            f"{len(result.candidate_indices)} "
            f"(margin {result.margin:.3f}, max LOO error "
            f"{result.fit.max_relative_error:.3f})"
        ),
    )
