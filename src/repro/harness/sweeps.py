"""Surrogate-pruned sweep drivers (``fifo-prune``, ``sweep-prune``).

These CLI experiments exercise :mod:`repro.surrogate` end to end on the
same config family the exhaustive sweeps use: score the whole grid with
the calibrated surrogate, cycle-simulate only the surviving candidates,
and report predicted-vs-simulated cycles per point so the pruning is
auditable from the rendered table (``-`` marks points the surrogate
ruled out without simulation).
"""

from __future__ import annotations

import dataclasses

from repro.core.decoupled import DecoupledConfig
from repro.core.kernel import GammaKernelConfig
from repro.core.memory import MemoryChannelConfig
from repro.harness.experiments import ExperimentResult
from repro.rng.mersenne import MT521_PARAMS

__all__ = [
    "PRUNE_BASE_CONFIG",
    "PRUNE_DEPTHS",
    "run_fifo_prune",
    "run_sweep_prune",
]

#: The depth-sensitive configuration the fifo_sizing tests sweep —
#: vectorized lanes + the short Mersenne Twister keep one simulation
#: cheap enough that pruning headroom, not Python overhead, dominates.
PRUNE_BASE_CONFIG = DecoupledConfig(
    n_work_items=2,
    kernel=GammaKernelConfig(mt_params=MT521_PARAMS, limit_main=128),
    burst_words=2,
    channel=MemoryChannelConfig(setup_cycles=40, cycles_per_word=2),
    vector_lanes=True,
)

PRUNE_DEPTHS = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64)


def run_fifo_prune(
    base_config: DecoupledConfig | None = None,
    depths: tuple[int, ...] = PRUNE_DEPTHS,
) -> ExperimentResult:
    """FIFO sizing via the surrogate-pruned sweep."""
    from repro.surrogate import pruned_stream_depth_sweep

    base = base_config or PRUNE_BASE_CONFIG
    result = pruned_stream_depth_sweep(base, depths=depths)
    simulated = {p.depth: p for p in result.points}
    rows = []
    for depth in depths:
        point = simulated.get(depth)
        rows.append(
            [
                depth,
                round(result.predicted[depth], 1),
                point.cycles if point else "-",
                point.total_write_stalls if point else "-",
                "yes" if depth == result.recommended_depth else "",
            ]
        )
    return ExperimentResult(
        experiment="FIFO sizing (surrogate-pruned sweep)",
        headers=[
            "depth",
            "predicted_cycles",
            "simulated_cycles",
            "write_stalls",
            "recommended",
        ],
        rows=rows,
        series={
            "predicted": {str(d): result.predicted[d] for d in depths},
        },
        notes=(
            f"recommended depth {result.recommended_depth}; simulated "
            f"{len(result.simulated_depths)}/{len(depths)} depths "
            f"(margin {result.margin:.3f}, max LOO error "
            f"{result.fit.max_relative_error:.3f}, "
            f"tolerance {result.tolerance:.0%})"
        ),
    )


def _grid(base: DecoupledConfig):
    """(config, resource cost) per point: burst buffers + channel ports."""
    configs, costs = [], []
    for n_channels in (1, 2, 3):
        for burst_words in (1, 2, 4, 8):
            configs.append(
                dataclasses.replace(
                    base, burst_words=burst_words, n_channels=n_channels
                )
            )
            # per-engine burst staging buffers plus the (much pricier)
            # extra memory-controller port
            costs.append(
                burst_words * base.n_work_items + 64 * (n_channels - 1)
            )
    return configs, costs


def run_sweep_prune(
    base_config: DecoupledConfig | None = None,
) -> ExperimentResult:
    """Pareto frontier of a (burst length × channels) grid, pruned."""
    from repro.surrogate import pruned_grid_sweep

    base = base_config or dataclasses.replace(
        PRUNE_BASE_CONFIG, n_work_items=4
    )
    configs, costs = _grid(base)
    result = pruned_grid_sweep(configs, costs)
    frontier = set(result.frontier_indices)
    rows = []
    for i, (cfg, cost) in enumerate(zip(configs, costs)):
        rows.append(
            [
                cfg.burst_words,
                cfg.n_channels,
                cost,
                round(float(result.predicted[i]), 1),
                result.simulated_cycles.get(i, "-"),
                "yes" if i in frontier else "",
            ]
        )
    return ExperimentResult(
        experiment="Burst x channels Pareto sweep (surrogate-pruned)",
        headers=[
            "burst_words",
            "channels",
            "cost",
            "predicted_cycles",
            "simulated_cycles",
            "frontier",
        ],
        rows=rows,
        notes=(
            f"frontier {sorted(frontier)} of {len(configs)} grid points; "
            f"simulated {len(result.candidate_indices)} "
            f"(margin {result.margin:.3f}, max LOO error "
            f"{result.fit.max_relative_error:.3f})"
        ),
    )
