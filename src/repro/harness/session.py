"""Full host-side sessions: OpenCL queue + device models + power protocol.

Ties the substrates together the way the paper's actual measurement
campaign does: the host creates a context on one of the four devices,
declares the (device-level combined) result buffer, enqueues the gamma
kernel repeatedly with the platform-appropriate time model, reads the
result back over PCIe, and hands the event timeline to the power
protocol.

This is the layer the examples and the energy experiments sit on when
they need *timeline* semantics (markers, asynchronous enqueue, event
profiling) rather than just a runtime scalar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices import (
    FixedArchitectureModel,
    FpgaModel,
    attempt_profile,
    measured_path_rates,
)
from repro.harness.configs import CONFIGURATIONS, Configuration
from repro.opencl import (
    CommandQueue,
    Context,
    KernelHandle,
    MemFlag,
    NDRange,
    paper_platform,
)
from repro.paper import OPTIMAL_LOCAL_SIZES, SETUP
from repro.power import MeasurementProtocol, PowerModel, VirtualMultimeter

__all__ = ["KernelSession", "SessionResult"]


@dataclass
class SessionResult:
    """Timeline and derived quantities of one measurement session."""

    device: str
    config: str
    kernel_seconds: float
    invocations: int
    total_seconds: float
    readback_seconds: float
    energy_per_invocation_j: float

    @property
    def kernel_ms(self) -> float:
        return 1e3 * self.kernel_seconds


class KernelSession:
    """One host+accelerator combination running a Table I configuration.

    Parameters
    ----------
    device_name:
        "CPU", "GPU", "PHI" or "FPGA" (the paper's four setups).
    config:
        A Table I configuration name or :class:`Configuration`.
    icdf_style:
        ICDF implementation on the fixed platforms ("cuda"/"fpga").
    """

    def __init__(
        self,
        device_name: str,
        config: str | Configuration = "Config1",
        icdf_style: str = "cuda",
    ):
        self.configuration = (
            CONFIGURATIONS[config] if isinstance(config, str) else config
        )
        self.device_name = device_name
        self.icdf_style = icdf_style
        self.context = Context(paper_platform(), device_name)
        self.queue: CommandQueue = self.context.create_queue()
        self._kernel = self._build_kernel()

    # -- kernel construction -----------------------------------------------------

    def _kernel_seconds(self) -> float:
        cfg = self.configuration
        if self.device_name == "FPGA":
            key = (
                "marsaglia_bray"
                if cfg.transform == "marsaglia_bray"
                else "icdf_fpga"
            )
            r = 1.0 - measured_path_rates(
                key, SETUP.sector_variance
            ).combined_accept
            model = FpgaModel(n_work_items=cfg.fpga_work_items)
            return model.estimate(
                SETUP.total_outputs, SETUP.num_sectors, r
            ).seconds
        model = FixedArchitectureModel(
            self.context.platform.device(self.device_name)
        )
        profile = attempt_profile(
            cfg.transform, SETUP.sector_variance, icdf_style=self.icdf_style
        )
        ndrange = NDRange(
            SETUP.global_size, OPTIMAL_LOCAL_SIZES[self.device_name]
        )
        return model.estimate(
            profile, ndrange, SETUP.outputs_per_work_item, cfg.state_words
        ).seconds

    def _build_kernel(self) -> KernelHandle:
        seconds = self._kernel_seconds()
        return KernelHandle(
            name=f"gamma_{self.configuration.name}_{self.device_name}",
            body=None,  # functional content lives in repro.core; this
            # layer models the host timeline only
            time_model=lambda device, ndrange, **args: seconds,
        )

    # -- the session ------------------------------------------------------------------

    def run(
        self,
        min_active_s: float = 150.0,
        window_s: float = 100.0,
        result_bytes: int | None = None,
    ) -> SessionResult:
        """Reproduce the §IV-F campaign on this device.

        Enqueues the kernel back-to-back until ``min_active_s`` of
        activity, reads the (single, device-level combined) result
        buffer back, and measures the dynamic energy per invocation.
        """
        kernel_s = self._kernel.duration(self.context.device, None, {})
        invocations = max(1, int(-(-min_active_s // kernel_s)))
        result_bytes = (
            SETUP.total_bytes if result_bytes is None else result_bytes
        )
        buffer = self.context.create_buffer(
            "gammaValues", result_bytes, MemFlag.WRITE_ONLY
        )
        self.queue.enqueue_marker("trigger")
        for _ in range(invocations):
            self.queue.enqueue_task(self._kernel)
        self.queue.enqueue_marker("last_kernel_done")
        t_read0 = self.queue.now
        self.queue.enqueue_read_buffer(buffer)
        total = self.queue.finish()

        meter = VirtualMultimeter(PowerModel())
        protocol = MeasurementProtocol(
            meter, min_active_s=min_active_s, window_s=window_s
        )
        energy = protocol.measure(self.device_name, kernel_s)
        return SessionResult(
            device=self.device_name,
            config=self.configuration.name,
            kernel_seconds=kernel_s,
            invocations=invocations,
            total_seconds=total,
            readback_seconds=total - t_read0,
            energy_per_invocation_j=energy.energy_per_invocation_j,
        )

    def run_functional(self, outputs_per_item: int = 256):
        """FPGA sessions only: run the *cycle-accurate* kernel at reduced
        scale so the OpenCL buffer carries real gamma RNs.

        The kernel body executes :class:`repro.core.DecoupledWorkItems`
        and stores its device-memory image into the buffer (device-level
        combining, §III-E-2); the host reads it back over the modeled
        PCIe link.  Returns ``(host_array, cycle_result, event)``.
        """
        if self.device_name != "FPGA":
            raise ValueError(
                "functional execution uses the FPGA cycle simulator; "
                f"device {self.device_name!r} has no functional model"
            )
        import numpy as np

        from repro.core import DecoupledConfig, DecoupledWorkItems

        cfg = self.configuration
        sim_config = DecoupledConfig(
            n_work_items=cfg.fpga_work_items,
            kernel=cfg.kernel_config(limit_main=outputs_per_item),
            burst_words=2,
        )
        holder: dict = {}

        def body(device, ndrange, out):
            sim = DecoupledWorkItems(sim_config).run()
            holder["result"] = sim
            out.store(0, sim.gammas().astype(np.float32))

        def time_model(device, ndrange, **args):
            return holder["result"].cycles / sim_config.frequency_hz

        total_values = sim_config.n_work_items * sim_config.kernel.total_outputs
        buffer = self.context.create_buffer(
            "gammaValues_functional", total_values * 4, MemFlag.WRITE_ONLY
        )
        kernel = KernelHandle(
            f"gamma_functional_{cfg.name}", body=body, time_model=time_model
        )
        self.queue.enqueue_task(kernel, out=buffer)
        event = self.queue.enqueue_read_buffer(buffer)
        host = event.info["data"].view(np.float32).copy()
        return host, holder["result"], event
