"""Experiment drivers — one per paper table/figure.

Every driver returns an :class:`ExperimentResult`: structured rows plus
the paper's reference values where the paper publishes them, and a
``render()`` that prints the same artifact the paper shows.  The
benchmark suite (benchmarks/) wraps these one-to-one.

Scale note: statistical experiments (Fig 6) and schedule experiments
(Fig 3-like behavior) run the cycle-accurate simulator at reduced
sample counts; runtime/energy tables use the calibrated analytic models
at full paper scale.  DESIGN.md §2 records why that split preserves the
relevant behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats

from repro.core import (
    DecoupledConfig,
    DecoupledWorkItems,
    MemoryChannelConfig,
    build_transfer_only_region,
    transfer_only_cycles,
)
from repro.devices import (
    FixedArchitectureModel,
    FpgaModel,
    attempt_profile,
    eq1_theoretical_runtime,
    measured_path_rates,
)
from repro.harness.configs import CONFIGURATIONS
from repro.harness.registry import register
from repro.harness.reporting import format_series, format_table
from repro.opencl import (
    Context,
    NDRange,
    PAPER_DEVICES,
    combine_at_device_level,
    combine_at_host_level,
    paper_platform,
)
from repro.paper import (
    EQ1_PREDICTIONS_MS,
    FIG9_FPGA_EFFICIENCY,
    MEASURED_BANDWIDTH_GBPS,
    OPTIMAL_LOCAL_SIZES,
    REJECTION_RATES,
    SETUP,
    TABLE2_UTILIZATION,
    TABLE3_RUNTIME_MS,
)
from repro.power import MeasurementProtocol, PowerModel, VirtualMultimeter
from repro.resources import ResourceModel

__all__ = [
    "ExperimentResult",
    "run_fig2",
    "run_fig3",
    "run_variance_sweep",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_fig5a",
    "run_fig5b",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_eq1",
    "run_rejection_rates",
    "run_buffer_combining",
]

FIXED_DEVICES = ("CPU", "GPU", "PHI")


@dataclass
class ExperimentResult:
    """Uniform container for a regenerated table/figure."""

    experiment: str
    headers: list[str]
    rows: list[list]
    series: dict = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        out = format_table(self.headers, self.rows, title=self.experiment)
        if self.notes:
            out += f"\n{self.notes}"
        return out

    def column(self, header: str) -> list:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


# ---------------------------------------------------------------------------
# helpers shared by the runtime/energy drivers
# ---------------------------------------------------------------------------


def _measured_rejection(config_name: str) -> float:
    cfg = CONFIGURATIONS[config_name]
    key = "marsaglia_bray" if cfg.transform == "marsaglia_bray" else "icdf_fpga"
    return 1.0 - measured_path_rates(key, SETUP.sector_variance).combined_accept


def _fixed_runtime_ms(device: str, config_name: str, icdf_style: str) -> float:
    cfg = CONFIGURATIONS[config_name]
    model = FixedArchitectureModel(PAPER_DEVICES[device])
    profile = attempt_profile(
        cfg.transform, SETUP.sector_variance, icdf_style=icdf_style
    )
    ndrange = NDRange(SETUP.global_size, OPTIMAL_LOCAL_SIZES[device])
    est = model.estimate(
        profile, ndrange, SETUP.outputs_per_work_item, cfg.state_words
    )
    return est.milliseconds


def _fpga_runtime_ms(config_name: str) -> float:
    cfg = CONFIGURATIONS[config_name]
    model = FpgaModel(n_work_items=cfg.fpga_work_items)
    est = model.estimate(
        SETUP.total_outputs, SETUP.num_sectors, _measured_rejection(config_name)
    )
    return est.milliseconds


def model_runtime_ms(setup_key: str) -> float:
    """Runtime of one Table III row key on its platform-appropriate model."""
    # setup keys look like "Config1", "Config3_cuda", "Config4_fpga_style"
    parts = setup_key.split("_", 1)
    return _fpga_runtime_ms(parts[0])


# ---------------------------------------------------------------------------
# Fig 2 — lockstep vs decoupled execution
# ---------------------------------------------------------------------------


@register("fig2", "lockstep vs decoupled execution (Fig 2)")
def run_fig2(
    width: int = 8, quota: int = 4, variance: float | None = None
) -> ExperimentResult:
    """Fig 2: lockstep divergence (a/b) vs decoupled execution (c).

    Simulates a width-W partition running the Marsaglia-Bray nested
    kernel's acceptance process at the measured rejection rate and
    reports the lane-efficiency of each execution style.
    """
    from repro.devices import simulate_partition
    from repro.devices.lockstep_sim import render_fig2

    v = SETUP.sector_variance if variance is None else variance
    p = measured_path_rates("marsaglia_bray", v).combined_accept
    rows = []
    for label, w, prob in (
        ("(a) lockstep, static branches", width, 1.0),
        ("(b) lockstep, divergent", width, p),
        ("(c) decoupled", 1, p),
    ):
        res = simulate_partition(w, quota, prob, runs=400, seed=7)
        rows.append(
            [label, w, round(res.mean_iterations, 2), round(res.efficiency, 3)]
        )
    return ExperimentResult(
        experiment="Fig 2: work-item execution on fixed vs FPGA architectures",
        headers=["style", "partition width", "iters/quota run", "lane efficiency"],
        rows=rows,
        notes=render_fig2(accept_prob=p, width=min(width, 8), quota=quota),
    )


# ---------------------------------------------------------------------------
# §IV-E extension — sensitivity to the sector variance
# ---------------------------------------------------------------------------


@register("variance", "rejection/runtime vs sector variance")
def run_variance_sweep(
    variances: tuple[float, ...] = (0.1, 0.35, 1.39, 10.0, 100.0)
) -> ExperimentResult:
    """Rejection rate and FPGA runtime across sector variances.

    Extends the paper's §IV-E spot values (v = 0.1 / 1.39 / 100) into a
    full sensitivity curve: how the workload's divergence — and with it
    the FPGA's compute bound — moves with the CreditRisk+ sector
    variance.
    """
    rows = []
    for v in variances:
        mb = measured_path_rates("marsaglia_bray", v)
        ic = measured_path_rates("icdf_fpga", v)
        r_mb = 1.0 - mb.combined_accept
        r_ic = 1.0 - ic.combined_accept
        t_mb = FpgaModel(n_work_items=6).estimate(
            SETUP.total_outputs, SETUP.num_sectors, r_mb
        )
        t_ic = FpgaModel(n_work_items=8).estimate(
            SETUP.total_outputs, SETUP.num_sectors, r_ic
        )
        rows.append(
            [v, round(r_mb, 4), round(t_mb.milliseconds), t_mb.bound,
             round(r_ic, 4), round(t_ic.milliseconds), t_ic.bound]
        )
    return ExperimentResult(
        experiment="Sensitivity: rejection and FPGA runtime vs sector variance",
        headers=["variance", "r (MB)", "FPGA ms (MB)", "bound",
                 "r (ICDF)", "FPGA ms (ICDF)", "bound"],
        rows=rows,
        notes=(
            "MB configs stay compute-bound and track r; ICDF configs stay "
            "pinned to the transfer bound regardless of v"
        ),
    )


# ---------------------------------------------------------------------------
# Fig 3 — the C/T schedule
# ---------------------------------------------------------------------------


@register("fig3", "work-item C/T schedule (Fig 3)")
def run_fig3(
    n_work_items: int = 4, limit_main: int = 128, burst_words: int = 1
) -> ExperimentResult:
    """Fig 3: work-item schedule in time (C = computation, T = transfer).

    Traces the cycle-accurate region and reports, per work-item, the
    first channel grant (the t_X phase shift) and the overall
    compute/transfer overlap.
    """
    from repro.core import trace_region

    region = DecoupledWorkItems(
        DecoupledConfig(
            n_work_items=n_work_items,
            kernel=CONFIGURATIONS["Config2"].kernel_config(limit_main=limit_main),
            burst_words=burst_words,
        )
    ).region
    trace = trace_region(region)
    shifts = trace.phase_shift()
    rows = [
        [name, shift, trace.lanes[name].count("T")]
        for name, shift in sorted(shifts.items())
    ]
    return ExperimentResult(
        experiment="Fig 3: work-items schedule (C = compute, T = transfer)",
        headers=["engine", "first grant (t_X)", "channel cycles"],
        rows=rows,
        series={"lanes": {k: "".join(v) for k, v in trace.lanes.items()}},
        notes=(
            trace.render(max_width=96)
            + f"\noverlap fraction: {trace.overlap_fraction():.1%}"
        ),
    )


# ---------------------------------------------------------------------------
# Table I — configurations
# ---------------------------------------------------------------------------


@register("table1", "application configurations (Table I)")
def run_table1() -> ExperimentResult:
    """Regenerate Table I from the configuration registry."""
    rows = []
    for cfg in CONFIGURATIONS.values():
        rows.append(
            [
                cfg.name,
                "Marsaglia-Bray" if cfg.transform == "marsaglia_bray" else "ICDF",
                cfg.exponent,
                f"2^({cfg.exponent}-1)",
                cfg.state_words,
            ]
        )
    return ExperimentResult(
        experiment="Table I: Simulation Setup — Application Configurations",
        headers=["Config", "U->N Transformation", "Exponent", "Period", "States"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Table II — resources
# ---------------------------------------------------------------------------


@register("table2", "FPGA resource utilization (Table II)")
def run_table2() -> ExperimentResult:
    """Regenerate Table II from the resource model, with paper deltas."""
    model = ResourceModel()
    table = model.table2()
    rows = []
    for config, util in table.items():
        paper = TABLE2_UTILIZATION[config]
        rows.append(
            [
                config,
                int(util["work_items"]),
                util["Slice"],
                paper["Slice"],
                util["DSP"],
                paper["DSP"],
                util["BRAM"],
                paper["BRAM"],
            ]
        )
    return ExperimentResult(
        experiment="Table II: FPGA P&R Resources Utilization [%]",
        headers=[
            "Config", "WorkItems",
            "Slice", "Slice(paper)",
            "DSP", "DSP(paper)",
            "BRAM", "BRAM(paper)",
        ],
        rows=rows,
        notes="all configurations slice-limited, as in the paper",
    )


# ---------------------------------------------------------------------------
# Table III — runtimes
# ---------------------------------------------------------------------------

#: (table row key, config, icdf style on fixed platforms)
TABLE3_ROWS = [
    ("Config1", "Config1", "cuda"),
    ("Config2", "Config2", "cuda"),
    ("Config3_cuda", "Config3", "cuda"),
    ("Config3_fpga_style", "Config3", "fpga"),
    ("Config4_cuda", "Config4", "cuda"),
    ("Config4_fpga_style", "Config4", "fpga"),
]


@register("table3", "runtimes on all platforms (Table III)")
def run_table3() -> ExperimentResult:
    """Regenerate Table III: runtime [ms] for the given setup."""
    rows = []
    for key, config, style in TABLE3_ROWS:
        row = [key]
        for dev in FIXED_DEVICES:
            row.append(_fixed_runtime_ms(dev, config, style))
            row.append(TABLE3_RUNTIME_MS[key][dev])
        fpga = _fpga_runtime_ms(config)
        row.append(fpga)
        row.append(TABLE3_RUNTIME_MS[key]["FPGA"])
        rows.append(row)
    headers = ["Setup"]
    for dev in (*FIXED_DEVICES, "FPGA"):
        headers += [dev, f"{dev}(paper)"]
    return ExperimentResult(
        experiment="Table III: Runtime [ms] for the given Setup",
        headers=headers,
        rows=rows,
        notes=(
            "fixed platforms: calibrated lockstep model; FPGA: decoupled-"
            "pipeline + channel model at the Table II work-item counts"
        ),
    )


# ---------------------------------------------------------------------------
# Fig 5 — localSize / globalSize sweeps
# ---------------------------------------------------------------------------


@register("fig5a", "runtime vs localSize (Fig 5a)")
def run_fig5a(
    config_name: str = "Config1",
    local_sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
) -> ExperimentResult:
    """Fig 5a: runtime vs localSize on the fixed platforms."""
    cfg = CONFIGURATIONS[config_name]
    series: dict[str, dict] = {}
    optima = {}
    for dev in FIXED_DEVICES:
        model = FixedArchitectureModel(PAPER_DEVICES[dev])
        profile = attempt_profile(cfg.transform, SETUP.sector_variance)
        curve = {}
        for ls in local_sizes:
            est = model.estimate(
                profile,
                NDRange(SETUP.global_size, ls),
                SETUP.outputs_per_work_item,
                cfg.state_words,
            )
            curve[ls] = round(est.milliseconds, 1)
        series[dev] = curve
        optima[dev] = min(curve, key=curve.get)
    rows = [
        [ls, *(series[dev][ls] for dev in FIXED_DEVICES)]
        for ls in local_sizes
    ]
    return ExperimentResult(
        experiment=f"Fig 5a: runtime [ms] vs localSize ({config_name})",
        headers=["localSize", *FIXED_DEVICES],
        rows=rows,
        series=series,
        notes=(
            f"optima: {optima} — paper derives "
            f"{OPTIMAL_LOCAL_SIZES}"
        ),
    )


@register("fig5b", "runtime vs globalSize (Fig 5b)")
def run_fig5b(
    config_name: str = "Config1",
    global_sizes: tuple[int, ...] = (1024, 4096, 16384, 65536, 262144),
) -> ExperimentResult:
    """Fig 5b: runtime vs globalSize at the optimal localSize."""
    cfg = CONFIGURATIONS[config_name]
    series: dict[str, dict] = {}
    for dev in FIXED_DEVICES:
        model = FixedArchitectureModel(PAPER_DEVICES[dev])
        profile = attempt_profile(cfg.transform, SETUP.sector_variance)
        curve = {}
        for gs in global_sizes:
            est = model.estimate(
                profile,
                NDRange(gs, OPTIMAL_LOCAL_SIZES[dev]),
                max(1, SETUP.total_outputs // gs),
                cfg.state_words,
            )
            curve[gs] = round(est.milliseconds, 1)
        series[dev] = curve
    rows = [
        [gs, *(series[dev][gs] for dev in FIXED_DEVICES)]
        for gs in global_sizes
    ]
    return ExperimentResult(
        experiment=f"Fig 5b: runtime [ms] vs globalSize ({config_name}, optimal localSize)",
        headers=["globalSize", *FIXED_DEVICES],
        rows=rows,
        series=series,
        notes="fixed total work; saturation confirms globalSize = 65536",
    )


# ---------------------------------------------------------------------------
# Fig 6 — distribution validation
# ---------------------------------------------------------------------------


@register("fig6", "gamma distribution validation (Fig 6)")
def run_fig6(
    variances: tuple[float, ...] = (0.35, 1.39),
    samples_per_variance: int = 4096,
    n_work_items: int = 2,
    bins: int = 40,
) -> ExperimentResult:
    """Fig 6: FPGA-generated gamma RNs vs the reference distribution.

    Runs the cycle-accurate decoupled pipeline (reduced sample count),
    reads device memory back, and compares against scipy's gamma (our
    stand-in for Matlab's ``gamrnd`` benchmark) with a KS test and a
    histogram over the same support.
    """
    rows = []
    series = {}
    for v in variances:
        limit = max(32, samples_per_variance // n_work_items // 32 * 32)
        cfg = DecoupledConfig(
            n_work_items=n_work_items,
            kernel=CONFIGURATIONS["Config2"].kernel_config(
                limit_main=limit, sector_variances=(v,)
            ),
            burst_words=2,
        )
        result = DecoupledWorkItems(cfg).run()
        data = result.gammas()
        ks = stats.kstest(data, "gamma", args=(1.0 / v, 0, v))
        hist, edges = np.histogram(data, bins=bins, density=True)
        centers = 0.5 * (edges[:-1] + edges[1:])
        pdf = stats.gamma.pdf(centers, 1.0 / v, scale=v)
        series[f"v={v}"] = {
            "histogram": hist.tolist(),
            "centers": centers.tolist(),
            "reference_pdf": pdf.tolist(),
        }
        rows.append(
            [v, data.size, float(data.mean()), float(data.var()),
             float(ks.statistic), float(ks.pvalue)]
        )
    return ExperimentResult(
        experiment="Fig 6: FPGA gamma distribution vs reference gamrnd",
        headers=["variance", "samples", "mean", "var", "KS stat", "KS p"],
        rows=rows,
        series=series,
        notes="mean ≈ 1 and var ≈ v by construction (Section II-D4)",
    )


# ---------------------------------------------------------------------------
# Fig 7 — transfers only
# ---------------------------------------------------------------------------


@register("fig7", "transfers-only runtime (Fig 7)")
def run_fig7(
    burst_rns: tuple[int, ...] = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096),
    work_items: tuple[int, ...] = (1, 2, 4, 6, 8),
    validate_with_simulation: bool = True,
) -> ExperimentResult:
    """Fig 7: transfers-only runtime vs burst length and work-items.

    Paper-scale numbers come from the closed-form channel model; at a
    reduced scale every point is cross-checked against the
    cycle-accurate region (the validation the model's tests rely on).
    """
    channel = MemoryChannelConfig()
    f = SETUP.fpga_frequency_hz
    series: dict[str, dict] = {}
    for n_wi in work_items:
        per_item = SETUP.total_outputs // n_wi
        curve = {}
        for rns in burst_rns:
            burst_words = max(1, rns // 16)
            cycles = transfer_only_cycles(
                per_item, n_wi, burst_words, config=channel
            )
            curve[rns] = round(1e3 * cycles / f, 1)
        series[f"{n_wi} WI"] = curve
    if validate_with_simulation:
        # one reduced-scale cross-check per work-item count
        for n_wi in work_items:
            burst_words = 4
            values = 64 * burst_words * 16
            region, _, _ = build_transfer_only_region(
                n_wi, values, burst_words, channel_config=channel
            )
            sim = region.run().cycles
            model = transfer_only_cycles(values, n_wi, burst_words, config=channel)
            if abs(sim - model) > max(8, 0.1 * sim):
                raise AssertionError(
                    f"fig7 model diverged from simulation at {n_wi} WI: "
                    f"{model} vs {sim}"
                )
    rows = [
        [rns, *(series[f"{n} WI"][rns] for n in work_items)]
        for rns in burst_rns
    ]
    bw_at_64w = channel.effective_bandwidth(64, f) / 1e9
    return ExperimentResult(
        experiment="Fig 7: transfers-only runtime [ms] vs burst length",
        headers=["RNs/burst", *(f"{n} WI" for n in work_items)],
        rows=rows,
        series=series,
        notes=(
            f"effective bandwidth at 1024 RNs/burst: {bw_at_64w:.2f} GB/s "
            f"(paper measures {MEASURED_BANDWIDTH_GBPS['Config3,4']} GB/s)"
        ),
    )


# ---------------------------------------------------------------------------
# Fig 8 / Fig 9 — power and energy
# ---------------------------------------------------------------------------


@register("fig8", "wall-plug power trace (Fig 8)")
def run_fig8(config_name: str = "Config1", device: str = "FPGA") -> ExperimentResult:
    """Fig 8: the wall-plug power trace of one measurement run."""
    runtime_s = _fpga_runtime_ms(config_name) / 1e3 if device == "FPGA" else (
        _fixed_runtime_ms(device, config_name, "cuda") / 1e3
    )
    meter = VirtualMultimeter(PowerModel(), noise_w=1.5)
    protocol = MeasurementProtocol(meter)
    invocations = max(1, int(-(-protocol.min_active_s // runtime_s)))
    from repro.power.model import ActivityInterval

    active = ActivityInterval(
        protocol.lead_in_s,
        protocol.lead_in_s + invocations * runtime_s,
        device,
    )
    samples = meter.record([active], active.end_s + 10.0)
    rows = [[s.time_s, round(s.watts, 1)] for s in samples]
    return ExperimentResult(
        experiment=f"Fig 8: power trace, {config_name} on {device}",
        headers=["t [s]", "P [W]"],
        rows=rows,
        series={"power": {s.time_s: s.watts for s in samples}},
        notes=(
            f"markers: kernel trigger at t={protocol.lead_in_s:.0f}s; "
            f"integration window = last {protocol.window_s:.0f}s of activity"
        ),
    )


@register("fig9", "dynamic energy per invocation (Fig 9)")
def run_fig9() -> ExperimentResult:
    """Fig 9: dynamic energy per kernel invocation, all setups."""
    meter = VirtualMultimeter(PowerModel())
    protocol = MeasurementProtocol(meter)
    rows = []
    series: dict[str, dict] = {d: {} for d in (*FIXED_DEVICES, "FPGA")}
    for key, config, style in TABLE3_ROWS:
        if style == "fpga":
            continue  # Fig 9 uses the faster (CUDA-style) fixed kernels
        row = [key]
        energies = {}
        for dev in FIXED_DEVICES:
            t = _fixed_runtime_ms(dev, config, style) / 1e3
            energies[dev] = protocol.measure(dev, t).energy_per_invocation_j
        t_fpga = _fpga_runtime_ms(config) / 1e3
        energies["FPGA"] = protocol.measure("FPGA", t_fpga).energy_per_invocation_j
        for dev in (*FIXED_DEVICES, "FPGA"):
            row.append(round(energies[dev], 1))
            series[dev][key] = energies[dev]
        row.append(round(energies["CPU"] / energies["FPGA"], 2))
        row.append(round(energies["GPU"] / energies["FPGA"], 2))
        row.append(round(energies["PHI"] / energies["FPGA"], 2))
        rows.append(row)
    return ExperimentResult(
        experiment="Fig 9: dynamic energy per kernel invocation [J]",
        headers=[
            "Setup", "CPU", "GPU", "PHI", "FPGA",
            "FPGA adv vs CPU", "vs GPU", "vs PHI",
        ],
        rows=rows,
        series=series,
        notes=(
            f"paper Config1 ratios: {FIG9_FPGA_EFFICIENCY['Config1']}; "
            f"Config4 ≈ {FIG9_FPGA_EFFICIENCY['Config4']}"
        ),
    )


# ---------------------------------------------------------------------------
# Eq (1), rejection rates, buffer combining
# ---------------------------------------------------------------------------


@register("eq1", "Eq (1) theoretical runtime")
def run_eq1() -> ExperimentResult:
    """Eq (1) theoretical runtime vs the full model vs the paper."""
    rows = []
    for pair, configs in (("Config1,2", ("Config1",)), ("Config3,4", ("Config3",))):
        config = configs[0]
        cfg = CONFIGURATIONS[config]
        r = _measured_rejection(config)
        eq1_ms = 1e3 * eq1_theoretical_runtime(
            SETUP.num_scenarios,
            SETUP.num_sectors,
            cfg.fpga_work_items,
            SETUP.fpga_frequency_hz,
            r,
        )
        eq1_paper_r = 1e3 * eq1_theoretical_runtime(
            SETUP.num_scenarios,
            SETUP.num_sectors,
            cfg.fpga_work_items,
            SETUP.fpga_frequency_hz,
            REJECTION_RATES[cfg.transform]["setup"],
        )
        full_ms = _fpga_runtime_ms(config)
        rows.append(
            [pair, round(r, 4), round(eq1_ms), round(eq1_paper_r),
             EQ1_PREDICTIONS_MS[pair], round(full_ms),
             TABLE3_RUNTIME_MS[config if pair == "Config1,2" else "Config3_cuda"]["FPGA"]]
        )
    return ExperimentResult(
        experiment="Eq (1): theoretical FPGA runtime vs model vs measured",
        headers=[
            "Configs", "r (ours)", "Eq1(ours) [ms]", "Eq1(paper r) [ms]",
            "Eq1 paper quote", "full model [ms]", "paper measured",
        ],
        rows=rows,
        notes="Eq (1) undershoots Config3,4 — the transfer bound dominates",
    )


@register("rejection", "rejection rates vs variance (SIV-E)")
def run_rejection_rates(
    variances: tuple[float, ...] = (0.1, 1.39, 100.0)
) -> ExperimentResult:
    """§IV-E: combined rejection rates across sector variances."""
    rows = []
    for transform, key in (("marsaglia_bray", "marsaglia_bray"), ("icdf", "icdf_fpga")):
        for v in variances:
            rates = measured_path_rates(key, v)
            paper = REJECTION_RATES[transform]
            paper_val = {0.1: paper["v0.1"], 1.39: paper["setup"], 100.0: paper["v100"]}.get(v)
            rows.append(
                [transform, v, round(1 - rates.combined_accept, 4), paper_val]
            )
    return ExperimentResult(
        experiment="Rejection rates vs sector variance (Section IV-E)",
        headers=["transform", "variance", "rejection (ours)", "paper"],
        rows=rows,
        notes=(
            "shape: MB path rejects several times more than the ICDF "
            "path; both rise with variance"
        ),
    )


@register("buffers", "host vs device buffer combining (SIII-E)")
def run_buffer_combining(
    n_work_items: int = 6, block: int = 65536
) -> ExperimentResult:
    """§III-E: host-level vs device-level buffer combining."""
    ctx = Context(paper_platform(), "FPGA")
    rng = np.random.default_rng(8)
    blocks = [rng.random(block).astype(np.float32) for _ in range(n_work_items)]
    host = combine_at_host_level(ctx, blocks)
    dev = combine_at_device_level(Context(paper_platform(), "FPGA"), blocks)
    assert np.array_equal(host.host_array, dev.host_array)
    rows = [
        ["host_level", host.device_buffers, host.read_requests,
         round(1e3 * host.read_time_s, 3), host.kernel_time_penalty],
        ["device_level", dev.device_buffers, dev.read_requests,
         round(1e3 * dev.read_time_s, 3), dev.kernel_time_penalty],
    ]
    return ExperimentResult(
        experiment="Section III-E: buffer combining strategies",
        headers=["strategy", "device buffers", "read requests",
                 "readback [ms]", "kernel penalty"],
        rows=rows,
        notes="device-level chosen: single read, <1% device-side loss",
    )
