"""CLI experiment for the pipe-connected multi-kernel pipeline.

``python -m repro pipeline`` runs the three-stage pricing workload
(:mod:`repro.core.pricing`) four ways and reports one table:

* **pipelined** — three regions co-scheduled on one clock via
  :class:`~repro.core.pipes.MultiRegionRunner`,
* **fused** — the identical network in one DATAFLOW region (the
  numerical-equivalence oracle; the driver asserts device memory and
  portfolio totals match the pipelined run exactly),
* **sequential** — region-after-region, the no-overlap baseline,
* a transfer-bound variant at one vs two memory channels with
  per-region channel affinity — the multi-channel split EXPERIMENTS.md
  measures at ~2x, reproduced here as first-class pipeline config.

The notes carry the pipe-depth recommendation from the surrogate-pruned
sweep (:func:`repro.surrogate.pruned_pipe_depth_sweep`), so the table
documents not just the overlap but the FIFO budget needed to get it.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernel import GammaKernelConfig
from repro.core.pricing import (
    PricingPipelineConfig,
    build_pricing_pipeline,
    run_pricing_pipeline,
)
from repro.harness.experiments import ExperimentResult
from repro.rng.mersenne import MT521_PARAMS

__all__ = ["PIPE_SWEEP_DEPTHS", "TRANSFER_BOUND_CONFIG", "run_pipeline"]

PIPE_SWEEP_DEPTHS = (2, 4, 8, 16, 32, 64)

#: Channel-pressure variant: four work-items, short bursts (setup
#: amortizes badly) and double traffic (priced + raw archive) keep the
#: single channel saturated — the regime the multi-channel split helps.
TRANSFER_BOUND_CONFIG = PricingPipelineConfig(
    n_work_items=4,
    kernel=GammaKernelConfig(mt_params=MT521_PARAMS, limit_main=128),
    burst_words=2,
)


def run_pipeline(
    config: PricingPipelineConfig | None = None,
) -> ExperimentResult:
    """Pipelined vs fused vs sequential, plus the channel-affinity split."""
    import dataclasses

    base = config or PricingPipelineConfig()

    pipelined = run_pricing_pipeline(base, mode="pipelined")
    fused = run_pricing_pipeline(base, mode="fused")
    sequential = run_pricing_pipeline(base, mode="sequential")
    if not (
        np.array_equal(pipelined.priced(), fused.priced())
        and np.array_equal(pipelined.raw(), fused.raw())
        and pipelined.aggregate_totals == fused.aggregate_totals
    ):  # pragma: no cover - equivalence is CI-tested; belt and braces
        raise AssertionError(
            "pipelined and fused runs diverged numerically"
        )

    tb = TRANSFER_BOUND_CONFIG
    one_ch = run_pricing_pipeline(tb, mode="pipelined")
    two_ch = run_pricing_pipeline(
        dataclasses.replace(tb, n_channels=2, channel_affinity=(0, 1)),
        mode="pipelined",
    )

    rows = []
    for label, result in (
        ("pipelined", pipelined),
        ("fused", fused),
        ("sequential", sequential),
        ("transfer-bound 1ch", one_ch),
        ("transfer-bound 2ch (affinity 0,1)", two_ch),
    ):
        rows.append(
            [
                label,
                result.cycles,
                f"{result.runtime_ms:.4f}",
                result.skipped_cycles,
                f"{result.portfolio_total:.6f}",
            ]
        )

    from repro.surrogate import pruned_pipe_depth_sweep

    sweep = pruned_pipe_depth_sweep(
        lambda depth: build_pricing_pipeline(base, pipe_depth=depth).runner,
        depths=PIPE_SWEEP_DEPTHS,
    )

    overlap = pipelined.cycles / sequential.cycles
    speedup = one_ch.cycles / two_ch.cycles
    return ExperimentResult(
        experiment="Pipe-connected pricing pipeline (3 regions)",
        headers=[
            "variant",
            "cycles",
            "runtime_ms",
            "skipped_cycles",
            "portfolio_total",
        ],
        rows=rows,
        series={
            "mode_cycles": {
                "pipelined": pipelined.cycles,
                "fused": fused.cycles,
                "sequential": sequential.cycles,
            },
            "channel_cycles": {
                "1ch": one_ch.cycles,
                "2ch": two_ch.cycles,
            },
            "pipe_depth_predicted": {
                str(d): sweep.predicted[d] for d in PIPE_SWEEP_DEPTHS
            },
        },
        notes=(
            f"pipelined/sequential makespan {overlap:.3f} (overlap hides "
            f"{1.0 - overlap:.0%}); second channel speedup {speedup:.2f}x "
            f"on the transfer-bound variant; pipelined == fused bit for "
            f"bit; recommended pipe depth {sweep.recommended_depth} "
            f"(simulated {len(sweep.simulated_depths)}/"
            f"{len(PIPE_SWEEP_DEPTHS)} depths, margin {sweep.margin:.3f})"
        ),
    )
