"""Process abstraction for the cycle-level dataflow co-simulation.

Each HLS dataflow function (``GammaRNG``, ``Transfer``, …) becomes a
:class:`Process`: an object advanced one clock cycle at a time by the
:class:`~repro.core.dataflow.DataflowRegion`.  A process reports whether
it made *progress* in a cycle — the region uses this for deadlock
detection — and whether it has *finished* its program.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.core.stream import Stream

__all__ = ["Process", "ProcessStats"]


@dataclass
class ProcessStats:
    """Per-process cycle accounting, reported by every simulation run."""

    cycles: int = 0  # cycles the process was live (not yet done)
    active_cycles: int = 0  # cycles with real work (an iteration issued)
    stall_cycles: int = 0  # cycles spent blocked on a stream or the bus
    iterations: int = 0  # loop-body executions issued
    extra: dict = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        """Fraction of live cycles doing useful work."""
        return self.active_cycles / self.cycles if self.cycles else 0.0


class Process(abc.ABC):
    """One dataflow function instance in the simulated region.

    Subclasses implement :meth:`tick`, which advances exactly one clock
    cycle and returns True when the cycle did useful work (False = the
    process stalled).  ``tick`` is never called again once :meth:`done`
    returns True.
    """

    def __init__(self, name: str):
        self.name = name
        self.stats = ProcessStats()

    @abc.abstractmethod
    def tick(self, cycle: int) -> bool:
        """Advance one clock cycle; return True if progress was made."""

    @abc.abstractmethod
    def done(self) -> bool:
        """True once the process has completed its program."""

    def inputs(self) -> tuple[Stream, ...]:
        """Streams this process consumes (for dataflow ordering checks)."""
        return ()

    def outputs(self) -> tuple[Stream, ...]:
        """Streams this process produces."""
        return ()

    def stall_reason(self) -> str | None:
        """Why the *next* tick would stall, if the process knows.

        Sampled by the instrumented region loop *before* ``tick()`` and
        consulted only when the cycle shows no progress and no FIFO
        poll failed — the cases the stream counters cannot explain
        (channel-grant waits, initiation-interval bubbles).  Values are
        the :mod:`repro.obs.stall` state names; ``None`` means "no
        specific reason" and classifies as a generic pipeline bubble.
        """
        return None

    def _account(self, progressed: bool) -> bool:
        """Bookkeeping helper subclasses call at the end of tick()."""
        self.stats.cycles += 1
        if progressed:
            self.stats.active_cycles += 1
        else:
            self.stats.stall_cycles += 1
        return progressed

    def __repr__(self) -> str:
        state = "done" if self.done() else "running"
        return f"{type(self).__name__}({self.name!r}, {state})"
