"""Process abstraction for the cycle-level dataflow co-simulation.

Each HLS dataflow function (``GammaRNG``, ``Transfer``, …) becomes a
:class:`Process`: an object advanced one clock cycle at a time by the
:class:`~repro.core.dataflow.DataflowRegion`.  A process reports whether
it made *progress* in a cycle — the region uses this for deadlock
detection — and whether it has *finished* its program.

Processes may additionally publish a :meth:`Process.next_event` hint
("no state change before cycle N") that lets the region's
cycle-skipping fast path jump over deterministic waits — initiation
interval bubbles, burst-grant waits, drained channels — in one step
while keeping the cycle accounting identical to the reference
one-cycle-at-a-time loop (see ``docs/simulator_fastpath.md``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.core.stream import Stream

__all__ = ["NO_SELF_EVENT", "Process", "ProcessStats"]

#: :meth:`Process.next_event` return value meaning "my ticks are pure
#: stall repeats for as long as nothing I observe (streams, channel
#: requests) changes state" — an unbounded but *conditional* guarantee.
NO_SELF_EVENT = float("inf")


@dataclass
class ProcessStats:
    """Per-process cycle accounting, reported by every simulation run.

    The three cycle buckets are disjoint and sum to ``cycles``:

    * ``active_cycles`` — real work issued (an iteration, a stream
      write, a burst grant);
    * ``stall_cycles`` — blocked with no progress: the tick returned
      False (empty/full stream, waiting on the shared channel);
    * ``pipeline_cycles`` — initiation-interval bubbles: time passes by
      design (the tick returns True for deadlock detection) but no work
      issues.  Matches the ``pipeline`` class of
      :mod:`repro.obs.stall`.
    """

    cycles: int = 0  # cycles the process was live (not yet done)
    active_cycles: int = 0  # cycles with real work (an iteration issued)
    stall_cycles: int = 0  # cycles spent blocked on a stream or the bus
    pipeline_cycles: int = 0  # II bubbles: time passing by design
    iterations: int = 0  # loop-body executions issued
    extra: dict = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        """Fraction of live cycles doing useful work."""
        return self.active_cycles / self.cycles if self.cycles else 0.0


class Process(abc.ABC):
    """One dataflow function instance in the simulated region.

    Subclasses implement :meth:`tick`, which advances exactly one clock
    cycle and returns True when the cycle did useful work (False = the
    process stalled).  ``tick`` is never called again once :meth:`done`
    returns True.  ``done`` is monotone: once True it stays True.
    """

    def __init__(self, name: str):
        self.name = name
        self.stats = ProcessStats()

    @abc.abstractmethod
    def tick(self, cycle: int) -> bool:
        """Advance one clock cycle; return True if progress was made."""

    @abc.abstractmethod
    def done(self) -> bool:
        """True once the process has completed its program."""

    def inputs(self) -> tuple[Stream, ...]:
        """Streams this process consumes (for dataflow ordering checks)."""
        return ()

    def outputs(self) -> tuple[Stream, ...]:
        """Streams this process produces."""
        return ()

    def stall_reason(self) -> str | None:
        """Why the *next* tick would stall, if the process knows.

        Sampled by the instrumented region loop *before* ``tick()`` and
        consulted only when the cycle shows no progress and no FIFO
        poll failed — the cases the stream counters cannot explain
        (channel-grant waits, initiation-interval bubbles).  Values are
        the :mod:`repro.obs.stall` state names; ``None`` means "no
        specific reason" and classifies as a generic pipeline bubble.
        """
        return None

    # -- cycle-skipping fast path hints --------------------------------------------

    def next_event(self, cycle: int) -> int | float | None:
        """Earliest future cycle at which this process might act.

        The contract powering the region's cycle-skipping fast path:

        * an ``int`` N (``> cycle``) — every tick from ``cycle`` up to
          (excluding) N is a pure repeat of the current stall/bubble
          accounting; at N the process may change state (its own timer
          fires: an II bubble drains, its burst's predicted completion
          is observed);
        * :data:`NO_SELF_EVENT` (``inf``) — pure repeats for as long as
          no stream or channel request this process observes changes
          state (e.g. blocked on a full/empty FIFO with no own timer);
        * ``None`` — no guarantee: the next tick may do real work, or
          the process cannot predict itself.  Disables skipping.

        The default is ``None``, so unknown :class:`Process` subclasses
        always take the reference one-cycle-at-a-time loop.  A subclass
        that overrides :meth:`tick` without revisiting this hint must
        return ``None`` (the built-in implementations guard on the
        exact ``tick`` identity for this reason).
        """
        return None

    def skip_cycles(self, cycle: int, count: int) -> None:
        """Apply ``count`` cycles of bulk stall accounting.

        Called by the fast path only inside a window validated by
        :meth:`next_event`; must leave this process (and its streams)
        in exactly the state ``count`` reference ticks would have.
        """
        raise RuntimeError(
            f"{type(self).__name__}({self.name!r}) advertised a skippable "
            "window via next_event() but does not implement skip_cycles()"
        )

    # -- bookkeeping helpers ---------------------------------------------------------

    def _account(self, progressed: bool) -> bool:
        """Bookkeeping helper subclasses call at the end of tick()."""
        self.stats.cycles += 1
        if progressed:
            self.stats.active_cycles += 1
        else:
            self.stats.stall_cycles += 1
        return progressed

    def _account_bubble(self) -> bool:
        """Account one initiation-interval bubble cycle.

        Bubbles are *time passing by design*: no work issues (so the
        cycle is not active) but the pipeline is not blocked either (so
        deadlock detection must see progress).  They land in the
        dedicated ``pipeline_cycles`` bucket and the tick reports
        progress — one consistent contract for both consumers.
        """
        self.stats.cycles += 1
        self.stats.pipeline_cycles += 1
        return True

    def __repr__(self) -> str:
        state = "done" if self.done() else "running"
        return f"{type(self).__name__}({self.name!r}, {state})"
