"""DATAFLOW region: cycle-level co-simulation of concurrent processes.

Section III-A: "The DATAFLOW pragma [11], [12] schedules the work-items
in parallel, under the constraint that each variable has a single
producer-consumer pair."  This module models that region:

* every :class:`~repro.core.stream.Stream` must have exactly one
  producing and one consuming process (validated at construction, the
  same check Vivado HLS performs),
* all processes advance in lock-step, one clock cycle per step, in
  topological (producer-before-consumer) order so that a token written
  in cycle *t* can be consumed in cycle *t* by a downstream process —
  matching the concurrent start semantics of the pragma ("all
  work-items are triggered at t0", Fig 3),
* a shared :class:`~repro.core.memory.MemoryChannel` (if attached) is
  ticked once per cycle after the processes,
* deadlock (no process progresses, none done) raises with a full state
  dump instead of hanging.

Runs additionally use a **cycle-skipping fast path**: after a cycle in
which no process progressed, the region asks every live process and
channel for a :meth:`~repro.core.process.Process.next_event` hint and,
when all agree the window is dead, jumps straight to the earliest
event while bulk-crediting the identical cycle accounting
(``docs/simulator_fastpath.md``).  Instrumented runs (tracer or
explicit attribution) skip too: a dead window provably repeats the
stall classification of the cycle before it, so the whole window is
emitted as one bulk :meth:`~repro.obs.stall.StallAttribution.skip_window`
span and the resulting trace/report is identical to the reference
loop's (the instrumented skip stops one cycle short of the event
horizon so the boundary cycle is classified by a real tick).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core.process import Process
from repro.core.stream import Stream
from repro.obs import get_tracer
from repro.obs import stall as _stall
from repro.obs.stall import StallAttribution, StallReport

__all__ = ["DataflowRegion", "DataflowError", "DeadlockError", "RegionReport"]


class DataflowError(ValueError):
    """Invalid region wiring (violates the single producer-consumer rule)."""


class DeadlockError(RuntimeError):
    """The region stopped making progress before all processes finished."""


#: Deprecated alias key for the first memory channel's stats (see
#: :class:`_ProcessStatsMap`).
LEGACY_CHANNEL_KEY = "__memory_channel__"


class _ProcessStatsMap(dict):
    """``RegionReport.process_stats`` mapping with a legacy alias.

    Channel stats live under indexed keys (``__memory_channel_0__``,
    ``__memory_channel_1__``, …).  The pre-multi-channel key
    ``__memory_channel__`` still *resolves* — to channel 0 — for old
    callers, but it is not stored: iteration, ``len`` and equality see
    each :class:`~repro.core.memory.ChannelStats` exactly once, so
    aggregations over ``process_stats.values()`` no longer double-count
    the first channel.

    The alias covers the whole mapping surface — ``[]``, ``get``,
    ``in``, ``pop``, ``setdefault`` — and :meth:`copy` returns another
    alias-aware map.  The one spot the alias cannot reach is a plain
    ``dict(process_stats)`` copy: CPython's dict-from-dict fast path
    copies stored items only, so the plain copy holds channel 0 exactly
    once, under its indexed key.
    """

    @staticmethod
    def _resolve(key):
        return "__memory_channel_0__" if key == LEGACY_CHANNEL_KEY else key

    def __missing__(self, key):
        if key == LEGACY_CHANNEL_KEY:
            return self["__memory_channel_0__"]
        raise KeyError(key)

    def __contains__(self, key) -> bool:
        if dict.__contains__(self, key):
            return True
        return key == LEGACY_CHANNEL_KEY and dict.__contains__(
            self, "__memory_channel_0__"
        )

    def get(self, key, default=None):
        try:
            return self[key]
        except KeyError:
            return default

    _POP_MISSING = object()

    def pop(self, key, default=_POP_MISSING):
        # popping the legacy alias pops the canonical key, so the alias
        # stops resolving afterwards (there is nothing left to alias)
        try:
            return dict.pop(self, self._resolve(key))
        except KeyError:
            if default is not self._POP_MISSING:
                return default
            raise KeyError(key) from None

    def setdefault(self, key, default=None):
        # an absent legacy key stores under the canonical indexed key;
        # a present one returns channel 0 without storing the alias
        return dict.setdefault(self, self._resolve(key), default)

    def copy(self) -> "_ProcessStatsMap":
        return _ProcessStatsMap(self)


@dataclass
class RegionReport:
    """Result of a region run."""

    cycles: int
    process_stats: dict[str, "object"] = field(default_factory=dict)
    stream_stats: dict[str, dict] = field(default_factory=dict)
    #: per-cycle stall attribution; only populated on instrumented runs
    #: (a tracer was active or an attribution was passed to ``run``)
    stall_report: StallReport | None = None

    def runtime_seconds(self, frequency_hz: float) -> float:
        """Convert the cycle count to wall time at a clock frequency."""
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        return self.cycles / frequency_hz

    def runtime_ms(self, frequency_hz: float) -> float:
        return 1e3 * self.runtime_seconds(frequency_hz)


class DataflowRegion:
    """A set of processes wired by streams, executed cycle by cycle."""

    def __init__(self, name: str = "dataflow"):
        self.name = name
        self._processes: list[Process] = []
        self._memory_channels: list = []
        self._validated = False
        #: cycles the last run jumped over instead of ticking
        self.skipped_cycles = 0

    @property
    def _memory_channel(self):
        """Back-compat single-channel view (None if absent)."""
        return self._memory_channels[0] if self._memory_channels else None

    # -- construction ------------------------------------------------------------

    def add(self, process: Process) -> Process:
        """Register a process; returns it for chaining."""
        if any(p.name == process.name for p in self._processes):
            raise DataflowError(f"duplicate process name {process.name!r}")
        self._processes.append(process)
        self._validated = False
        return process

    def attach_memory_channel(self, channel) -> None:
        """Attach a device-global-memory channel.

        The paper's board exposes one channel; calling this more than
        once models the "further customizations of the memory
        controller" extension the conclusion suggests — multiple ports
        ticked concurrently.
        """
        self._memory_channels.append(channel)

    @property
    def memory_channels(self) -> tuple:
        return tuple(self._memory_channels)

    @property
    def processes(self) -> tuple[Process, ...]:
        return tuple(self._processes)

    def _validate(self) -> list[Process]:
        """Enforce single producer/consumer per stream; topo-sort processes."""
        producers: dict[Stream, Process] = {}
        consumers: dict[Stream, Process] = {}
        for proc in self._processes:
            for s in proc.outputs():
                if s in producers:
                    raise DataflowError(
                        f"stream {s.name!r} has two producers: "
                        f"{producers[s].name!r} and {proc.name!r}"
                    )
                producers[s] = proc
            for s in proc.inputs():
                if s in consumers:
                    raise DataflowError(
                        f"stream {s.name!r} has two consumers: "
                        f"{consumers[s].name!r} and {proc.name!r}"
                    )
                consumers[s] = proc
        graph = nx.DiGraph()
        graph.add_nodes_from(range(len(self._processes)))
        index = {p: i for i, p in enumerate(self._processes)}
        for s, producer in producers.items():
            consumer = consumers.get(s)
            if consumer is not None:
                graph.add_edge(index[producer], index[consumer])
        try:
            order = list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible as exc:
            raise DataflowError(
                f"region {self.name!r} contains a stream cycle; DATAFLOW "
                "requires a feed-forward process network"
            ) from exc
        self._validated = True
        return [self._processes[i] for i in order]

    # -- execution ------------------------------------------------------------------

    def run(
        self,
        max_cycles: int = 100_000_000,
        tracer=None,
        attribution: StallAttribution | None = None,
        *,
        fast_path: bool | None = None,
    ) -> RegionReport:
        """Run until every process is done; returns the cycle report.

        Parameters
        ----------
        tracer:
            Explicit :class:`repro.obs.Tracer`; ``None`` resolves the
            global tracer (:func:`repro.obs.get_tracer`).  A disabled
            tracer keeps the run on the uninstrumented path.
        attribution:
            An externally owned :class:`~repro.obs.StallAttribution`
            (``trace_region`` passes one with lane capture); forces the
            instrumented path regardless of the tracer.
        fast_path:
            Enable the cycle-skipping fast path (default: on).
            ``False`` forces the reference one-cycle-at-a-time loop —
            the differential-equivalence suite runs both and asserts
            identical reports.  Instrumented runs skip as well,
            emitting each dead window as one bulk attribution span
            with a trace/report identical to the reference loop's.

        Raises
        ------
        DeadlockError
            If a full cycle passes with zero progress anywhere.
        RuntimeError
            If ``max_cycles`` elapse first (runaway guard).
        """
        if not self._processes:
            raise DataflowError("region has no processes")
        ordered = self._validate()
        if attribution is None:
            if tracer is None:
                tracer = get_tracer()
            if tracer.enabled:
                attribution = StallAttribution(self.name, tracer=tracer)
        self.skipped_cycles = 0
        fast = True if fast_path is None else fast_path
        if attribution is not None:
            return self._run_instrumented(
                ordered, max_cycles, attribution, fast=fast
            )
        cycle = 0
        live = [p for p in ordered if not p.done()]
        while live:
            if cycle >= max_cycles:
                raise RuntimeError(
                    f"region {self.name!r} exceeded {max_cycles} cycles"
                )
            proc_progress = False
            for proc in live:
                if proc.tick(cycle):
                    proc_progress = True
            progressed = proc_progress
            for channel in self._memory_channels:
                if channel.tick(cycle):
                    progressed = True
            if not progressed:
                raise DeadlockError(self._deadlock_message(cycle))
            cycle += 1
            live = [p for p in live if not p.done()]  # done() is monotone
            # probe for a dead window only after a cycle in which every
            # process stalled (channel-only progress) — active phases pay
            # one boolean per cycle, nothing more
            if fast and live and not proc_progress:
                span = self._skip_window(live, cycle)
                if span > max_cycles - cycle:
                    span = max_cycles - cycle  # stop exactly at the guard
                if span >= 2:
                    for proc in live:
                        proc.skip_cycles(cycle, span)
                    for channel in self._memory_channels:
                        channel.skip_cycles(cycle, span)
                    self.skipped_cycles += span
                    cycle += span
        return self._report(cycle)

    def _skip_window(self, live: list[Process], cycle: int) -> int:
        """Length of the provably dead window starting at ``cycle``.

        Asks every live process and channel for its
        :meth:`~repro.core.process.Process.next_event` hint.  Any
        ``None`` (no guarantee) disables skipping; an all-``inf`` answer
        means nothing self-times, so the next reference tick must decide
        (it is the one that can raise :class:`DeadlockError`).  A finite
        horizon is safe to jump to because within the window every
        process repeats its current stall/bubble accounting and at most
        the first channel completion lands — exactly at ``horizon - 1``,
        observed at ``horizon``.
        """
        horizon: float = float("inf")
        for proc in live:
            event = proc.next_event(cycle)
            if event is None:
                return 0
            if event < horizon:
                horizon = event
        for channel in self._memory_channels:
            event = channel.next_event(cycle)
            if event < horizon:
                horizon = event
        if horizon == float("inf"):
            return 0
        return int(horizon) - cycle

    def _run_instrumented(
        self,
        ordered: list[Process],
        max_cycles: int,
        attribution: StallAttribution,
        fast: bool = True,
    ) -> RegionReport:
        """The traced twin of :meth:`run`'s loop.

        Identical semantics (tick order, deadlock detection, runaway
        guard) plus a per-cycle classification of every process into the
        :mod:`repro.obs.stall` taxonomy, found by diffing the progress
        counters around ``tick()``:

        * ``active_cycles`` moved → compute;
        * an output stream's ``write_stalls`` moved → FIFO full;
        * an input stream's ``read_stalls`` moved → FIFO empty;
        * the process owns the burst draining on a channel → transfer;
        * otherwise the process's own :meth:`Process.stall_reason`
          (sampled *before* the tick) — channel-grant waits and
          initiation-interval bubbles classify themselves.

        Dead windows take the same cycle-skipping fast path as
        untraced runs, with one refinement: the skip stops one cycle
        *short* of the event horizon, because the boundary cycle is
        where classification changes (at a burst-completion tick the
        owner is no longer attributed ``transfer``) and must be
        observed by the reference code above, not replicated.  Inside
        the shortened window every live process repeats the state it
        was attributed on the cycle just before it — pure stalls
        re-poll the same full/empty stream, a queued engine keeps
        waiting for its grant, a draining burst keeps draining — so
        the whole window is attributed in one
        :meth:`StallAttribution.skip_window` call and the resulting
        trace and report are identical to the reference loop's.
        """
        channels = self._memory_channels
        cycle = 0
        while True:
            live = [p for p in ordered if not p.done()]
            if not live:
                break
            if cycle >= max_cycles:
                # no-arg close: spans end at the last recorded cycle on
                # every exit path (normal, runaway, deadlock) alike
                attribution.close()
                raise RuntimeError(
                    f"region {self.name!r} exceeded {max_cycles} cycles"
                )
            proc_progress = False
            states: dict[str, str] = {}
            pre: dict[str, tuple] = {}
            for proc in ordered:
                if proc.done():
                    states[proc.name] = _stall.DONE
                    continue
                pre[proc.name] = (
                    proc.stats.active_cycles,
                    proc.stall_reason(),
                    tuple(s.read_stalls for s in proc.inputs()),
                    tuple(s.write_stalls for s in proc.outputs()),
                )
                if proc.tick(cycle):
                    proc_progress = True
            progressed = proc_progress
            owners: set[str] = set()
            channels_busy: list[bool] = []
            for channel in channels:
                busy = channel.tick(cycle)
                if busy:
                    progressed = True
                channels_busy.append(busy)
                current = channel._current
                if current is not None:
                    owners.add(current.owner)
            for proc in ordered:
                if proc.name in states:
                    continue
                active0, reason, reads0, writes0 = pre[proc.name]
                if proc.name in owners:
                    states[proc.name] = _stall.TRANSFER
                elif proc.stats.active_cycles > active0:
                    states[proc.name] = _stall.COMPUTE
                elif any(
                    s.write_stalls > w0
                    for s, w0 in zip(proc.outputs(), writes0)
                ):
                    states[proc.name] = _stall.FIFO_FULL
                elif any(
                    s.read_stalls > r0
                    for s, r0 in zip(proc.inputs(), reads0)
                ):
                    states[proc.name] = _stall.FIFO_EMPTY
                elif reason is not None:
                    states[proc.name] = reason
                else:
                    states[proc.name] = _stall.PIPELINE
            attribution.record_cycle(cycle, states, channels_busy)
            if not progressed:
                attribution.close()
                raise DeadlockError(self._deadlock_message(cycle))
            cycle += 1
            # probe for a dead window after an all-stall cycle, exactly
            # like the untraced loop (no process finished this cycle, so
            # ``live`` is still current)
            if fast and not proc_progress:
                span = self._skip_window(live, cycle)
                if span > max_cycles - cycle:
                    span = max_cycles - cycle
                span -= 1  # the boundary cycle gets a classifying tick
                if span >= 2:
                    busy_before = [ch.stats.busy_cycles for ch in channels]
                    for proc in live:
                        proc.skip_cycles(cycle, span)
                    for channel in channels:
                        channel.skip_cycles(cycle, span)
                    attribution.skip_window(
                        cycle,
                        span,
                        states,
                        [
                            ch.stats.busy_cycles - before
                            for ch, before in zip(channels, busy_before)
                        ],
                    )
                    self.skipped_cycles += span
                    cycle += span
        attribution.close()
        report = self._report(cycle)
        report.stall_report = attribution.report()
        return report

    def _deadlock_message(self, cycle: int) -> str:
        lines = [f"deadlock in region {self.name!r} at cycle {cycle}:"]
        for p in self._processes:
            if not p.done():
                lines.append(f"  stuck: {p!r}")
                for s in p.inputs():
                    lines.append(f"    in  {s!r}")
                for s in p.outputs():
                    lines.append(f"    out {s!r}")
        for channel in self._memory_channels:
            lines.append(f"  channel: {channel!r}")
        return "\n".join(lines)

    def _report(self, cycles: int) -> RegionReport:
        streams: dict[str, dict] = {}
        for p in self._processes:
            for s in (*p.inputs(), *p.outputs()):
                streams[s.name] = {
                    "depth": s.depth,
                    "high_water": s.high_water,
                    "total_writes": s.total_writes,
                    "total_reads": s.total_reads,
                    "write_stalls": s.write_stalls,
                    "read_stalls": s.read_stalls,
                }
        stats = _ProcessStatsMap((p.name, p.stats) for p in self._processes)
        for i, channel in enumerate(self._memory_channels):
            stats[f"__memory_channel_{i}__"] = channel.stats
        # the legacy "__memory_channel__" key is a resolve-only alias of
        # channel 0 (see _ProcessStatsMap) — NOT stored, so iterating
        # process_stats counts each channel exactly once
        return RegionReport(
            cycles=cycles,
            process_stats=stats,
            stream_stats=streams,
        )
