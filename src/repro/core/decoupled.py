"""``DecoupledWorkItems`` — the paper's headline pattern (Listing 1).

Builds N fully decoupled work-items inside one dataflow region: per
work-item a :class:`~repro.core.kernel.GammaRNGProcess` (compute) wired
by a blocking stream to a :class:`~repro.core.transfer.TransferEngine`
(memory), all transfer engines sharing the single
:class:`~repro.core.memory.MemoryChannel` into device
:class:`~repro.core.memory.GlobalMemory`.

Each work-item receives its unique id at construction ("the same way
OpenCL would assign them in a .cl kernel") and its own pointer into the
combined device buffer (Section III-E-2).  Because every work-item is
its own pipeline, a data-dependent rejection in one never stalls any
other — Fig 2c versus Fig 2b.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataflow import DataflowRegion, RegionReport
from repro.core.kernel import GammaKernelConfig, GammaRNGProcess
from repro.core.memory import (
    GlobalMemory,
    MemoryChannel,
    MemoryChannelConfig,
)
from repro.core.stream import Stream
from repro.core.transfer import DummySource, TransferEngine
from repro.fixedpoint import FLOATS_PER_WORD
from repro.rng.icdf import IcdfFpga

__all__ = ["DecoupledConfig", "DecoupledResult", "DecoupledWorkItems"]

#: Default SDAccel kernel clock on the ADM-PCIE-7V3 (Section IV-A).
DEFAULT_FREQUENCY_HZ = 200e6


@dataclass(frozen=True)
class DecoupledConfig:
    """Region-level configuration of the decoupled work-items pattern."""

    n_work_items: int = 6
    kernel: GammaKernelConfig = field(default_factory=GammaKernelConfig)
    burst_words: int = 4  # LTRANSF
    stream_depth: int = 16
    channel: MemoryChannelConfig = field(default_factory=MemoryChannelConfig)
    frequency_hz: float = DEFAULT_FREQUENCY_HZ
    # the paper's board has ONE channel; >1 models the "customized
    # memory controller" extension its conclusion suggests
    n_channels: int = 1
    #: run each work-item's MAINLOOP math in vectorized numpy blocks
    #: (:mod:`repro.core.lanes`) — bit-identical results, fewer Python
    #: cycles per tick; marsaglia_bray only
    vector_lanes: bool = False

    def __post_init__(self):
        if self.n_work_items < 1:
            raise ValueError("need at least one work-item")
        if self.n_channels < 1:
            raise ValueError("need at least one memory channel")
        if self.vector_lanes and self.kernel.transform != "marsaglia_bray":
            raise ValueError(
                "vector_lanes supports the marsaglia_bray transform only "
                f"(got {self.kernel.transform!r})"
            )
        values_per_burst = self.burst_words * FLOATS_PER_WORD
        if self.kernel.limit_main % values_per_burst:
            raise ValueError(
                f"limit_main ({self.kernel.limit_main}) must be a multiple "
                f"of the values per burst ({values_per_burst}) so REPLOOP "
                "has a fixed trip count (Listing 4)"
            )

    @property
    def bursts_per_sector(self) -> int:
        return self.kernel.limit_main // (self.burst_words * FLOATS_PER_WORD)

    @property
    def words_per_item(self) -> int:
        """Device-memory block per work-item (blockOffset)."""
        return self.kernel.sectors * self.bursts_per_sector * self.burst_words

    @property
    def total_words(self) -> int:
        return self.words_per_item * self.n_work_items


@dataclass
class DecoupledResult:
    """Outcome of a decoupled-work-items run."""

    report: RegionReport
    config: DecoupledConfig
    memory: GlobalMemory
    kernels: list[GammaRNGProcess]
    engines: list[TransferEngine]

    @property
    def cycles(self) -> int:
        return self.report.cycles

    @property
    def runtime_ms(self) -> float:
        return self.report.runtime_ms(self.config.frequency_hz)

    @property
    def rejection_rate(self) -> float:
        """Pooled rejection rate across all work-items."""
        attempts = sum(k.attempts for k in self.kernels)
        accepts = sum(k.accepts for k in self.kernels)
        return 1.0 - accepts / attempts if attempts else 0.0

    def gammas(self, wid: int | None = None) -> np.ndarray:
        """Read the generated gamma RNs back from device memory.

        With ``wid=None`` all work-items' outputs are concatenated in
        work-item order (the single combined buffer of Section III-E-2).
        """
        cfg = self.config
        per_item = cfg.kernel.total_outputs
        if wid is None:
            return np.concatenate(
                [self.gammas(w) for w in range(cfg.n_work_items)]
            )
        if not 0 <= wid < cfg.n_work_items:
            raise IndexError(f"work-item id {wid} out of range")
        return self.memory.read_floats(wid * cfg.words_per_item, per_item)

    def throughput_rns_per_second(self) -> float:
        total = self.config.kernel.total_outputs * self.config.n_work_items
        return total / (self.cycles / self.config.frequency_hz)


class DecoupledWorkItems:
    """Builder/runner for the Listing 1 pattern.

    >>> cfg = DecoupledConfig(n_work_items=2,
    ...                       kernel=GammaKernelConfig(limit_main=64))
    >>> result = DecoupledWorkItems(cfg).run()
    >>> result.gammas().shape
    (128,)
    """

    def __init__(self, config: DecoupledConfig):
        self.config = config
        self.memory = GlobalMemory(config.total_words)
        self.channels = [
            MemoryChannel(config.channel, self.memory)
            for _ in range(config.n_channels)
        ]
        self.channel = self.channels[0]
        self.region = DataflowRegion("decoupled_work_items")
        for channel in self.channels:
            self.region.attach_memory_channel(channel)
        self.kernels: list[GammaRNGProcess] = []
        self.engines: list[TransferEngine] = []
        # one ICDF ROM shared by all work-items (a BRAM table per CU
        # would also work; sharing mirrors the resource report better)
        icdf = (
            IcdfFpga() if config.kernel.transform == "icdf_fpga" else None
        )
        if config.vector_lanes:
            from repro.core.lanes import VectorGammaRNGProcess as kernel_cls
        else:
            kernel_cls = GammaRNGProcess
        for wid in range(config.n_work_items):
            stream = Stream(f"gammaStream{wid}", depth=config.stream_depth)
            kernel = kernel_cls(
                f"GammaRNG{wid}", wid, config.kernel, stream, icdf_table=icdf
            )
            engine = TransferEngine(
                f"Transfer{wid}",
                wid,
                stream,
                self.channels[wid % config.n_channels],
                burst_words=config.burst_words,
                bursts_per_sector=config.bursts_per_sector,
                sectors=config.kernel.sectors,
                block_offset=config.words_per_item,
            )
            self.region.add(kernel)
            self.region.add(engine)
            self.kernels.append(kernel)
            self.engines.append(engine)

    def run(
        self,
        max_cycles: int = 100_000_000,
        *,
        fast_path: bool | None = None,
    ) -> DecoupledResult:
        """Run the region; ``fast_path`` passes through to
        :meth:`~repro.core.dataflow.DataflowRegion.run` (``False`` forces
        the reference one-cycle-at-a-time loop)."""
        report = self.region.run(max_cycles=max_cycles, fast_path=fast_path)
        return DecoupledResult(
            report=report,
            config=self.config,
            memory=self.memory,
            kernels=self.kernels,
            engines=self.engines,
        )


def build_transfer_only_region(
    n_work_items: int,
    values_per_item: int,
    burst_words: int,
    channel_config: MemoryChannelConfig | None = None,
    stream_depth: int = 16,
) -> tuple[DataflowRegion, GlobalMemory, MemoryChannel]:
    """Region for the Fig 7 experiment: dummy sources + transfer engines.

    "If we now remove the computations from our kernel, leaving only the
    transfers to device memory" — each work-item becomes a
    :class:`~repro.core.transfer.DummySource` feeding its engine.
    """
    values_per_burst = burst_words * FLOATS_PER_WORD
    if values_per_item % values_per_burst:
        raise ValueError(
            "values_per_item must be a multiple of the burst payload"
        )
    bursts = values_per_item // values_per_burst
    words_per_item = bursts * burst_words
    memory = GlobalMemory(words_per_item * n_work_items)
    channel = MemoryChannel(channel_config or MemoryChannelConfig(), memory)
    region = DataflowRegion("transfers_only")
    region.attach_memory_channel(channel)
    for wid in range(n_work_items):
        stream = Stream(f"dummy{wid}", depth=stream_depth)
        region.add(DummySource(f"Source{wid}", stream, values_per_item))
        region.add(
            TransferEngine(
                f"Transfer{wid}",
                wid,
                stream,
                channel,
                burst_words=burst_words,
                bursts_per_sector=bursts,
                sectors=1,
                block_offset=words_per_item,
            )
        )
    return region, memory, channel
