"""Schedule tracing: regenerate the Fig 3 work-item timeline.

Fig 3 shows how decoupled work-items start together at t0, then shift
in phase as their transfers serialize on the single memory channel —
"efficiently overlapping computation and transfers".  This module
records a per-cycle activity lane for every process in a region run and
renders the same C/T timeline as ASCII art.

Lane symbols
------------
``C``  compute progress (an active cycle of a kernel-side process)
``T``  the process owns the memory channel (its burst is draining)
``w``  stalled waiting (backpressure, empty stream, or channel queue)
``.``  finished
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dataflow import DataflowRegion, RegionReport
from repro.obs import get_tracer
from repro.obs.stall import StallAttribution

__all__ = ["ScheduleTrace", "trace_region"]


@dataclass
class ScheduleTrace:
    """Per-cycle, per-process activity lanes of one region run."""

    lanes: dict[str, list[str]] = field(default_factory=dict)
    report: RegionReport | None = None

    @property
    def cycles(self) -> int:
        return max((len(v) for v in self.lanes.values()), default=0)

    def lane(self, name: str) -> str:
        return "".join(self.lanes[name])

    def overlap_fraction(self) -> float:
        """Fraction of cycles where compute and a transfer coexist —
        the quantity Fig 3 is about (≈ 0 means serialized phases)."""
        if not self.lanes:
            return 0.0
        n = self.cycles
        both = 0
        for t in range(n):
            symbols = {
                lane[t] if t < len(lane) else "."
                for lane in self.lanes.values()
            }
            if "C" in symbols and "T" in symbols:
                both += 1
        return both / n if n else 0.0

    def phase_shift(self) -> dict[str, int]:
        """Cycle of each lane's first channel grant — Fig 3's t_X shift."""
        shifts = {}
        for name, lane in self.lanes.items():
            try:
                shifts[name] = lane.index("T")
            except ValueError:
                continue
        return shifts

    def render(self, max_width: int = 100, start: int = 0) -> str:
        """ASCII rendering of the (windowed) timeline."""
        lines = [f"cycle {start} .. {min(self.cycles, start + max_width)}"]
        width = max(len(n) for n in self.lanes) if self.lanes else 0
        for name, lane in self.lanes.items():
            window = "".join(lane[start : start + max_width])
            lines.append(f"{name.ljust(width)} |{window}|")
        return "\n".join(lines)


def trace_region(
    region: DataflowRegion, max_cycles: int = 1_000_000, tracer=None
) -> ScheduleTrace:
    """Run a region cycle by cycle, recording every process's activity.

    Equivalent to ``region.run()`` but returns the schedule trace along
    with the report.  The channel owner each cycle is marked ``T`` on
    the lane of the process that submitted the draining burst.

    Implemented on the instrumented region loop: a
    :class:`~repro.obs.StallAttribution` with lane capture classifies
    every cycle, so the run also yields the full stall report
    (``trace.report.stall_report``) and — when a tracer is active —
    the Chrome trace-event timeline.

    Passing an attribution pins the run to the reference
    one-cycle-at-a-time loop (the cycle-skipping fast path is never
    used for instrumented runs), so lanes cover every cycle exactly.
    """
    if tracer is None:
        tracer = get_tracer()
    attribution = StallAttribution(region.name, tracer=tracer, keep_lanes=True)
    report = region.run(max_cycles=max_cycles, attribution=attribution)
    return ScheduleTrace(lanes=attribution.lanes, report=report)
