"""Vectorized Monte Carlo lanes for the gamma kernel (bit-identical).

:class:`~repro.core.kernel.GammaRNGProcess` advances one MAINLOOP
iteration per Python ``tick()`` — faithful, but the per-iteration
Python cost dominates large sweeps.  This module batches the iteration
*mathematics* into numpy lane vectors while leaving the *cycle
semantics* (blocking writes, II bubbles, sector advances, fast-path
hints) untouched:

* :class:`GammaLaneStream` precomputes blocks of MAINLOOP iteration
  outcomes — ``(ok, wrote, value, bubble_cycles)`` records plus sector
  advances — using :meth:`~repro.rng.mersenne.MersenneTwister.generate`
  (documented to continue the scalar stream exactly) and closed-form
  replays of the delayed-counter exit condition;
* :class:`VectorGammaRNGProcess` is a drop-in
  :class:`~repro.core.kernel.GammaRNGProcess` whose ``tick`` consumes
  one precomputed record per cycle instead of running the scalar
  pipeline.

Bit-identity contract
---------------------
Every float is produced by the *same IEEE-754 double operations in the
same order* as the scalar path.  Elementwise ``+ - * /`` and
``np.sqrt`` on float64 arrays are bit-identical to their scalar
counterparts, but ``np.log`` and ``np.power`` are **not** guaranteed to
match libm — so the (rare) lanes that need a logarithm or the
``u2**(1/alpha)`` correction are evaluated with scalar ``math.log`` /
Python ``**`` exactly like the scalar kernel.  The differential suite
(``tests/core/test_vector_lanes.py``) asserts identical device memory,
reports, and RNG statistics across the paper configurations.

Gated twisters are replayed with peek semantics: a disabled step
outputs the *next unconsumed* word without advancing, so the uniform an
iteration sees is indexed by the exclusive running count of enabled
steps before it — no per-iteration Python calls required.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.core.kernel import GammaKernelConfig, GammaRNGProcess
from repro.core.stream import Stream
from repro.rng.gamma import marsaglia_tsang_constants
from repro.rng.icdf import IcdfFpga
from repro.rng.uniform import uint_to_float, uint_to_symmetric

__all__ = ["GammaLaneStream", "VectorGammaRNGProcess", "DEFAULT_BLOCK"]

#: MAINLOOP iterations precomputed per refill.
DEFAULT_BLOCK = 256

#: Sector-advance marker in the record stream (the exit-check tick that
#: consumes no RNG words).
_ADVANCE = object()


class _BufferedMT:
    """Peek-ahead window over one Mersenne-Twister's word stream.

    ``generate()`` advances the underlying twister in bulk; this buffer
    re-exposes the words with *peek/consume* semantics so gated
    (enable=False) steps can read the next unconsumed word without
    losing it — exactly what
    :meth:`~repro.rng.mersenne.MersenneTwister.next_u32` does one word
    at a time.
    """

    def __init__(self, mt):
        self._mt = mt
        self._buf = np.empty(0, dtype=np.uint32)
        self._pos = 0

    def peek(self, count: int) -> np.ndarray:
        """The next ``count`` unconsumed words (buffer refills as needed)."""
        available = self._buf.size - self._pos
        if available < count:
            fresh = self._mt.generate(max(count - available, DEFAULT_BLOCK))
            self._buf = np.concatenate([self._buf[self._pos :], fresh])
            self._pos = 0
        return self._buf[self._pos : self._pos + count]

    def consume(self, count: int) -> None:
        self._pos += count


class GammaLaneStream:
    """Block-vectorized replay of the Listing 2 MAINLOOP.

    Yields, via :meth:`pop`, one record per kernel tick:

    * ``(ok, wrote, value, bubbles)`` for a MAINLOOP iteration — the
      acceptance flag, the guarded-write flag, the scaled gamma (only
      when written), and the gated-MT bubble cycles of the iteration;
    * the sector-advance sentinel for each exit-check tick.

    The MAINLOOP exit condition is replayed in closed form: with the
    delayed counter the exit test at iteration ``i`` reads the counter
    value as of ``break_id + 1`` iterations earlier, so a sector runs
    exactly ``min(limit_max, k_hit + 1 + break_id + 1)`` iterations,
    where ``k_hit`` is the iteration producing the ``limit_main``-th
    accepted value (naive exit: ``min(limit_max, k_hit + 1)``).
    """

    def __init__(self, config: GammaKernelConfig, facades, block: int = DEFAULT_BLOCK):
        if config.transform != "marsaglia_bray":
            raise ValueError(
                "vectorized lanes support the marsaglia_bray transform "
                f"only (got {config.transform!r}); use the scalar kernel"
            )
        self._cfg = config
        self._facades = facades  # (norm_a, norm_b, reject, correct)
        self._bufs = [_BufferedMT(f._mt) for f in facades]
        self._block = block
        self._queue: deque = deque()
        self._bubble = facades[0].bubble_cycles
        self._delay = config.break_id + 1 if config.use_delayed_counter else 0
        self._sector = 0
        self._consts = marsaglia_tsang_constants(1.0 / config.sector_variances[0])
        self._scale = config.sector_variances[0]
        self._k = 0  # iterations executed in the current sector
        self._oks = 0  # accepted iterations in the current sector
        self._k_hit: int | None = None  # iteration of the limit-th accept
        self.finished = False

    # -- closed-form exit ----------------------------------------------------------

    def _exit_k(self) -> int:
        """Iterations the current sector executes before its exit tick."""
        cap = self._cfg.effective_limit_max
        if self._k_hit is None:
            return cap
        return min(cap, self._k_hit + 1 + self._delay)

    # -- block generation ----------------------------------------------------------

    def _refill(self) -> None:
        cfg = self._cfg
        exit_k = self._exit_k()
        if self._k >= exit_k:
            # the next tick observes the exit condition: sector advance
            self._queue.append(_ADVANCE)
            self._sector += 1
            if self._sector >= cfg.sectors:
                self.finished = True
                return
            variance = cfg.sector_variances[self._sector]
            self._consts = marsaglia_tsang_constants(1.0 / variance)
            self._scale = variance
            self._k = 0
            self._oks = 0
            self._k_hit = None
            return

        window = min(self._block, exit_k - self._k)
        consts = self._consts
        limit = cfg.limit_main

        # Marsaglia-Bray normal candidates over the two free-running MTs
        wa = self._bufs[0].peek(window)
        wb = self._bufs[1].peek(window)
        u1s = uint_to_symmetric(wa).astype(np.float64)
        u2s = uint_to_symmetric(wb).astype(np.float64)
        s = u1s * u1s + u2s * u2s
        n0_valid = (s < 1.0) & (s != 0.0)
        n0 = np.zeros(window, dtype=np.float64)
        valid_idx = np.nonzero(n0_valid)[0]
        if valid_idx.size:
            sv = s[valid_idx]
            # libm log per lane: np.log is not bit-identical to math.log
            logs = np.array([math.log(x) for x in sv.tolist()], dtype=np.float64)
            n0[valid_idx] = u1s[valid_idx] * np.sqrt((-2.0 * logs) / sv)

        # gated rejection uniforms: iteration j peeks the word indexed
        # by the count of enabled (valid-normal) steps before it
        cum_valid = np.cumsum(n0_valid)
        excl_valid = cum_valid - n0_valid
        rej_words = self._bufs[2].peek(int(excl_valid[-1]) + 1)
        u1 = uint_to_float(rej_words[excl_valid]).astype(np.float64)

        # Marsaglia-Tsang attempt, op-for-op as gamma_attempt()
        t = 1.0 + consts.c * n0
        v = t * t * t
        t_pos = t > 0.0
        g_valid = t_pos & (u1 < 1.0 - 0.0331 * (n0 * n0) * (n0 * n0))
        full_idx = np.nonzero(t_pos & ~g_valid)[0]
        if full_idx.size:
            lhs = np.array(
                [math.log(x) for x in u1[full_idx].tolist()], dtype=np.float64
            )
            logv = np.array(
                [math.log(x) for x in v[full_idx].tolist()], dtype=np.float64
            )
            xs = n0[full_idx]
            accept = lhs < 0.5 * xs * xs + consts.d * (1.0 - v[full_idx] + logv)
            g_valid[full_idx[accept]] = True
        ok = n0_valid & g_valid

        # sector exit bookkeeping: locate the limit-th accept, then cut
        cum_ok = np.cumsum(ok)
        if self._k_hit is None:
            needed = limit - self._oks
            if needed <= int(cum_ok[-1]):
                local = int(np.searchsorted(cum_ok, needed))
                self._k_hit = self._k + local
                exit_k = self._exit_k()
        executed = min(window, exit_k - self._k)
        ok_e = ok[:executed]
        valid_e = n0_valid[:executed]
        excl_ok = cum_ok[:executed] - ok_e

        # guarded write: counter (= accepts so far this sector) < limit
        wrote = ok_e & (self._oks + excl_ok < limit)
        values: list = [None] * executed
        write_idx = np.nonzero(wrote)[0]
        if write_idx.size:
            g_raw = consts.d * v[:executed]
            corr_words = self._bufs[3].peek(int(excl_ok[-1]) + 1)
            u2 = uint_to_float(corr_words[excl_ok[write_idx]])
            for j, i in enumerate(write_idx):
                gamma = float(g_raw[i])
                if consts.boosted:
                    # scalar pow: np.power is not bit-identical to libm
                    gamma = gamma * (float(u2[j]) ** consts.inv_alpha)
                values[i] = gamma * self._scale

        if self._bubble:
            bubbles = self._bubble * (
                (~valid_e).astype(np.int64) + (~ok_e).astype(np.int64)
            )
        else:
            bubbles = np.zeros(executed, dtype=np.int64)

        # commit exactly the words the executed iterations consumed
        n_valid = int(np.count_nonzero(valid_e))
        n_ok = int(np.count_nonzero(ok_e))
        self._bufs[0].consume(executed)
        self._bufs[1].consume(executed)
        self._bufs[2].consume(n_valid)
        self._bufs[3].consume(n_ok)
        norm_a, norm_b, reject, correct = self._facades
        norm_a.steps += executed
        norm_b.steps += executed
        reject.steps += executed
        reject.held += executed - n_valid
        correct.steps += executed
        correct.held += executed - n_ok
        self._k += executed
        self._oks += n_ok
        self._queue.extend(
            zip(ok_e.tolist(), wrote.tolist(), values, bubbles.tolist())
        )

    def pop(self):
        """The next tick's record (an iteration tuple or ``_ADVANCE``)."""
        while not self._queue:
            self._refill()
        return self._queue.popleft()


class VectorGammaRNGProcess(GammaRNGProcess):
    """Drop-in gamma work-item consuming precomputed lane records.

    Identical cycle accounting, stream traffic, statistics, and output
    values to :class:`~repro.core.kernel.GammaRNGProcess` — only the
    per-iteration mathematics is hoisted into
    :class:`GammaLaneStream` blocks.  Restricted to the
    ``marsaglia_bray`` transform (the paper's Table I FPGA design).
    """

    def __init__(
        self,
        name: str,
        wid: int,
        config: GammaKernelConfig,
        sink: Stream,
        icdf_table: IcdfFpga | None = None,
        block: int = DEFAULT_BLOCK,
    ):
        super().__init__(name, wid, config, sink, icdf_table)
        self._lanes = GammaLaneStream(
            config,
            (self.mt_norm_a, self.mt_norm_b, self.mt_reject, self.mt_correct),
            block=block,
        )
        # the overridden tick preserves the pending/stall-budget
        # semantics the inherited next_event/skip_cycles hints describe,
        # so the cycle-skipping fast path stays valid
        self._hintable = True

    def tick(self, cycle: int) -> bool:
        if self._done:
            return self._account(False)

        if self._pending is not None:
            if not self.sink.can_write(cycle):
                self._account(False)
                return False  # genuinely blocked; deadlock-detectable
            self.sink.write(self._pending)
            self._pending = None
            return self._account(True)

        if self._stall_budget > 0:
            self._stall_budget -= 1
            return self._account_bubble()

        record = self._lanes.pop()
        if record is _ADVANCE:
            self._sector += 1
            if self._sector >= self.config.sectors:
                self._done = True
                self.sink.close()
                return self._account(True)
            self._enter_sector(self._sector)
            return self._account(True)

        ok, wrote, value, bubbles = record
        self.attempts += 1
        self.stats.iterations += 1
        if wrote:
            self.accepts += 1
            self.produced.append(value)
            self.outputs_produced += 1
            if self.sink.can_write(cycle):
                self.sink.write(value)
            else:
                self._pending = value
        elif ok:
            self.overrun_iterations += 1
        self._k += 1
        self._stall_budget = self.config.ii - 1 + bubbles
        return self._account(True)
