"""Mapping NDRange kernels onto FPGA compute units (Section II-A/III-A).

The paper develops its approach "for the general case of .c kernels
launched as a Task, with guidelines on how to adapt it to the .cl
NDRange case":

* SDAccel maps each *work-group* of an NDRange kernel to one *compute
  unit*; inside a CU the work-items run down a single pipeline as
  nested for-loops;
* spatial parallelism comes from instantiating several CUs;
* the manual Task instantiation limits ``localSize`` to 1, while the
  NDRange form has flexible work-group granularity — "in either case,
  what directly affects the overall runtime is the number of pipelines
  (work-groups) instantiated in parallel".

This module is that guidance as executable code: it schedules an
NDRange across a given number of compute-unit pipelines and shows the
runtime equivalence of the two formulations at equal pipeline counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.opencl.ndrange import NDRange

__all__ = ["NDRangeMapping", "map_ndrange", "equivalent_task_form"]


@dataclass(frozen=True)
class NDRangeMapping:
    """Static schedule of an NDRange over N compute-unit pipelines."""

    ndrange: NDRange
    compute_units: int
    ii: int = 1
    pipeline_depth: int = 32  # fill/flush latency per work-group
    #: Task-form fusion (§III-A): the manually instantiated work-items
    #: run one long fused loop per pipeline, paying the fill/flush
    #: latency once instead of once per work-group.
    fused: bool = False

    def __post_init__(self):
        if self.compute_units < 1:
            raise ValueError("need at least one compute unit")
        if self.ii < 1:
            raise ValueError("II must be >= 1")

    @property
    def groups_per_cu(self) -> int:
        """Work-groups each CU executes back to back (ceil-balanced)."""
        return -(-self.ndrange.num_work_groups // self.compute_units)

    def assignments(self) -> dict[int, list[tuple[int, ...]]]:
        """Round-robin work-group → CU assignment."""
        out: dict[int, list[tuple[int, ...]]] = {
            cu: [] for cu in range(self.compute_units)
        }
        for i, group in enumerate(self.ndrange.work_groups()):
            out[i % self.compute_units].append(group)
        return out

    def cycles(self, iterations_per_item: int) -> int:
        """Total cycles: the busiest CU runs its groups sequentially,
        each group pipelining ``localSize * iterations`` items at II;
        in fused (Task) form the fill/flush is paid once per CU."""
        if iterations_per_item < 1:
            raise ValueError("iterations_per_item must be >= 1")
        body = self.ndrange.work_group_size * iterations_per_item * self.ii
        if self.fused:
            return self.groups_per_cu * body + self.pipeline_depth
        return self.groups_per_cu * (body + self.pipeline_depth)


def map_ndrange(
    ndrange: NDRange, compute_units: int, ii: int = 1
) -> NDRangeMapping:
    """Convenience constructor mirroring the SDAccel mapping rule."""
    return NDRangeMapping(ndrange=ndrange, compute_units=compute_units, ii=ii)


def equivalent_task_form(mapping: NDRangeMapping) -> NDRangeMapping:
    """The manually-instantiated Task equivalent (Section III-A).

    localSize collapses to 1 and every pipeline becomes one explicit
    work-item ("here we are directly instantiating each work-item in
    parallel inside a single Task"); the number of pipelines — the
    quantity that "directly affects the overall runtime" — is kept.
    """
    nd = mapping.ndrange
    return NDRangeMapping(
        ndrange=NDRange(nd.total_work_items, 1),
        compute_units=mapping.compute_units,
        ii=mapping.ii,
        pipeline_depth=mapping.pipeline_depth,
        fused=True,
    )
