"""Device global memory and the single shared memory channel.

Section III-D/III-E and Fig 3/Fig 7: every work-item owns a ``Transfer``
block that bursts 512-bit words to device global memory, but "the
transfers to memory can only occur one at the time on a single memory
channel".  The channel is therefore the shared resource whose
arbitration produces the phase-shifting of Fig 3 and whose burst
economics produce Fig 7.

Timing model of one burst of ``B`` words::

    setup_cycles  +  B * cycles_per_word

``setup_cycles`` covers AXI address-phase/arbitration overhead (paid per
burst — the reason longer bursts approach peak bandwidth in Fig 7);
``cycles_per_word`` is the steady-state beat rate of the 512-bit
interface including DDR inefficiency.  Defaults are calibrated in
:mod:`repro.harness.calibration` to land near the paper's measured
3.6-3.9 GB/s out of the 12.8 GB/s theoretical peak (200 MHz x 64 B).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.fixedpoint import FLOATS_PER_WORD, WORD_BITS, unpack_floats

__all__ = [
    "MemoryChannelConfig",
    "BurstRequest",
    "MemoryChannel",
    "GlobalMemory",
]


@dataclass(frozen=True)
class MemoryChannelConfig:
    """Timing parameters of the device-global-memory channel."""

    # defaults calibrated against §IV-E: at the 64-word default burst the
    # channel sustains 2.5 GB / 634 ms ≈ 3.94 GB/s, the paper's measured
    # Config3,4 figure (out of the 12.8 GB/s theoretical peak)
    setup_cycles: int = 80  # per-burst fixed overhead (address + arb)
    cycles_per_word: int = 2  # per-512-bit-beat steady-state cost
    width_bits: int = WORD_BITS

    def __post_init__(self):
        if self.setup_cycles < 0:
            raise ValueError("setup_cycles must be >= 0")
        if self.cycles_per_word < 1:
            raise ValueError("cycles_per_word must be >= 1")

    def burst_cycles(self, words: int) -> int:
        """Total channel occupancy of one burst of ``words`` words."""
        if words <= 0:
            raise ValueError("burst must contain at least one word")
        return self.setup_cycles + words * self.cycles_per_word

    def effective_bandwidth(
        self, burst_words: int, frequency_hz: float
    ) -> float:
        """Steady-state bytes/second at a given burst length (Fig 7 y-axis)."""
        bytes_per_burst = burst_words * self.width_bits // 8
        seconds = self.burst_cycles(burst_words) / frequency_hz
        return bytes_per_burst / seconds

    def peak_bandwidth(self, frequency_hz: float) -> float:
        """Zero-overhead bound: width * f / cycles_per_word."""
        return (self.width_bits // 8) * frequency_hz / self.cycles_per_word


@dataclass
class BurstRequest:
    """One in-flight burst write (the Transfer block's ``memcpy``)."""

    owner: str  # requesting work-item / engine name
    address: int  # destination offset in 512-bit words
    words: list  # payload (ints or ApUInt(512))
    submitted_cycle: int = 0
    started_cycle: int | None = None
    completed_cycle: int | None = None
    _remaining: int = field(default=0, repr=False)
    # absolute completion cycle predicted by MemoryChannel.predict_done
    # (exact under FIFO arbitration — later submissions queue behind)
    _predicted_done: int | None = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        return self.completed_cycle is not None

    @property
    def queue_latency(self) -> int | None:
        """Cycles spent waiting for the channel grant."""
        if self.started_cycle is None:
            return None
        return self.started_cycle - self.submitted_cycle


@dataclass
class ChannelStats:
    """Aggregate channel accounting for a region run."""

    bursts: int = 0
    words: int = 0
    busy_cycles: int = 0
    idle_cycles: int = 0
    max_queue_depth: int = 0

    @property
    def utilization(self) -> float:
        total = self.busy_cycles + self.idle_cycles
        return self.busy_cycles / total if total else 0.0


class MemoryChannel:
    """Single-port burst-write channel with FIFO arbitration.

    Transfer engines :meth:`submit` bursts and poll ``request.done``.
    The owning :class:`~repro.core.dataflow.DataflowRegion` ticks the
    channel once per cycle, after the processes.
    """

    def __init__(
        self,
        config: MemoryChannelConfig | None = None,
        memory: "GlobalMemory | None" = None,
    ):
        self.config = config or MemoryChannelConfig()
        self.memory = memory
        self._queue: deque[BurstRequest] = deque()
        self._current: BurstRequest | None = None
        self.stats = ChannelStats()

    def submit(self, request: BurstRequest) -> BurstRequest:
        """Enqueue a burst; it is granted in FIFO order."""
        self._queue.append(request)
        self.stats.max_queue_depth = max(
            self.stats.max_queue_depth, len(self._queue) + (1 if self._current else 0)
        )
        return request

    @property
    def busy(self) -> bool:
        return self._current is not None or bool(self._queue)

    def tick(self, cycle: int) -> bool:
        """Advance one cycle; returns True when the channel was busy."""
        if self._current is None:
            if not self._queue:
                self.stats.idle_cycles += 1
                return False
            self._current = self._queue.popleft()
            self._current.started_cycle = cycle
            self._current._remaining = self.config.burst_cycles(
                len(self._current.words)
            )
        self._current._remaining -= 1
        self.stats.busy_cycles += 1
        if self._current._remaining <= 0:
            req = self._current
            req.completed_cycle = cycle
            if self.memory is not None:
                self.memory.write_burst(req.address, req.words)
            self.stats.bursts += 1
            self.stats.words += len(req.words)
            self._current = None
        return True

    # -- cycle-skipping fast path --------------------------------------------------

    def next_event(self, cycle: int) -> int | float:
        """First future cycle at which a process could observe a change.

        The only channel state processes poll is ``request.done``, which
        flips in the tick that drains the last beat and is observed one
        cycle later — so the event is ``completion + 1`` of whichever
        burst finishes first.  An idle channel with an empty queue never
        self-generates an event (``inf``).  Exact because arbitration is
        FIFO: submissions during a skipped window are impossible (every
        producer is stalled) and later ones queue behind.
        """
        if self._current is not None:
            # draining burst: completes at cycle + _remaining - 1
            return cycle + self._current._remaining
        if self._queue:
            # grant next tick, drain, observe one cycle after completion
            return cycle + self.config.burst_cycles(len(self._queue[0].words))
        return float("inf")

    def predict_done(self, request: BurstRequest, cycle: int) -> int | None:
        """Absolute cycle in whose tick ``request`` finishes draining.

        Walks the FIFO queue once and caches the (immutable) prediction
        on every request it passes, so repeated polls are O(1).  Returns
        None for a request this channel does not hold.
        """
        if request._predicted_done is not None:
            return request._predicted_done
        prev_end = cycle - 1
        if self._current is not None:
            prev_end += self._current._remaining
            self._current._predicted_done = prev_end
        for queued in self._queue:
            prev_end += self.config.burst_cycles(len(queued.words))
            queued._predicted_done = prev_end
        return request._predicted_done

    def skip_cycles(self, cycle: int, count: int) -> None:
        """Advance ``count`` cycles in one step (no new submissions).

        Equivalent to ``count`` calls of :meth:`tick` starting at
        ``cycle``, in O(completed bursts) instead of O(cycles): grants,
        beat accounting, burst completions and memory writes land
        exactly as the reference loop would place them.
        """
        at = cycle
        end = cycle + count
        while at < end:
            if self._current is None:
                if not self._queue:
                    self.stats.idle_cycles += end - at
                    return
                self._current = self._queue.popleft()
                self._current.started_cycle = at
                self._current._remaining = self.config.burst_cycles(
                    len(self._current.words)
                )
            step = min(self._current._remaining, end - at)
            self._current._remaining -= step
            self.stats.busy_cycles += step
            at += step
            if self._current._remaining <= 0:
                req = self._current
                req.completed_cycle = at - 1
                if self.memory is not None:
                    self.memory.write_burst(req.address, req.words)
                self.stats.bursts += 1
                self.stats.words += len(req.words)
                self._current = None

    def __repr__(self) -> str:
        return (
            f"MemoryChannel(queue={len(self._queue)}, "
            f"current={self._current and self._current.owner})"
        )


class GlobalMemory:
    """Device global memory addressed in 512-bit words.

    Backing store is a flat ``uint32`` numpy array (16 lanes per word),
    so readbacks are views, not copies.  Models the single device-level
    buffer of Section III-E-2: every work-item writes into the same
    allocation at an offset derived from its work-item id.
    """

    LANES = FLOATS_PER_WORD

    def __init__(self, size_words: int):
        if size_words < 1:
            raise ValueError("memory must hold at least one word")
        self.size_words = size_words
        self._data = np.zeros(size_words * self.LANES, dtype=np.uint32)
        self.words_written = 0

    def write_word(self, address: int, word) -> None:
        """Store one 512-bit word at a word-aligned address.

        The 16-lane split is vectorized: lane ``i`` is bits
        ``[32*i, 32*i+32)`` of the word, which is exactly its
        little-endian uint32 serialization.
        """
        if not 0 <= address < self.size_words:
            raise IndexError(
                f"word address {address} out of range [0, {self.size_words})"
            )
        base = address * self.LANES
        self._data[base : base + self.LANES] = np.frombuffer(
            int(word).to_bytes(4 * self.LANES, "little"), dtype="<u4"
        )
        self.words_written += 1

    def write_burst(self, address: int, words) -> None:
        """Store consecutive words starting at ``address`` (the memcpy)."""
        for i, word in enumerate(words):
            self.write_word(address + i, word)

    def read_floats(self, address_words: int, count: int) -> np.ndarray:
        """Read back ``count`` float32 values starting at a word address."""
        base = address_words * self.LANES
        if base + count > self._data.size:
            raise IndexError("read beyond end of device memory")
        return self._data[base : base + count].view(np.float32).copy()

    def as_float_array(self) -> np.ndarray:
        """Whole memory viewed as float32 (host-side readback)."""
        return self._data.view(np.float32).copy()


# ---------------------------------------------------------------------------
# analytic fast-forward model (validated against the cycle simulation)
# ---------------------------------------------------------------------------


def transfer_only_cycles(
    values_per_item: int,
    n_work_items: int,
    burst_words: int,
    config: MemoryChannelConfig | None = None,
    pack_cycles_per_value: int = 1,
) -> int:
    """Closed-form cycle count of the transfers-only experiment (Fig 7).

    Each engine packs ``burst_words * 16`` values per burst (one value
    per cycle), then issues the burst.  In steady state the runtime is
    the larger of the two bounds:

    * channel bound — total bursts serialized on the single channel,
    * engine bound — one engine's pack+burst round trips (bursts from
      the other engines hide inside the pack phase).

    The form is exact when either bound dominates by ~2x; in the mixed
    regime the FIFO stagger between engines adds a small extra cost only
    the cycle simulation captures (tested in tests/core/test_memory.py).
    """
    cfg = config or MemoryChannelConfig()
    values_per_burst = burst_words * FLOATS_PER_WORD
    bursts_per_item = -(-values_per_item // values_per_burst)
    burst_cost = cfg.burst_cycles(burst_words)
    pack_cost = values_per_burst * pack_cycles_per_value
    channel_bound = n_work_items * bursts_per_item * burst_cost
    engine_bound = bursts_per_item * (pack_cost + burst_cost)
    # the first pack of every engine cannot overlap anything
    warmup = pack_cost
    return max(channel_bound + warmup, engine_bound)
