"""Core contribution: decoupled OpenCL work-items on FPGAs, as a
cycle-level dataflow simulation.

Public surface:

* :class:`~repro.core.stream.Stream` — ``hls::stream`` model,
* :class:`~repro.core.dataflow.DataflowRegion` — the DATAFLOW pragma,
* :class:`~repro.core.delayed_counter.DelayedCounter` — dynamic
  loop-exit workaround (Section III-B),
* :class:`~repro.core.mt_adapted.AdaptedMT` — enable-gated twister
  (Listing 3),
* :class:`~repro.core.kernel.GammaRNGProcess` — the test-case kernel
  (Listing 2),
* :class:`~repro.core.transfer.TransferEngine` — burst transfers
  (Listing 4),
* :class:`~repro.core.memory.MemoryChannel` / ``GlobalMemory`` — the
  shared device-memory port,
* :class:`~repro.core.decoupled.DecoupledWorkItems` — the N-work-item
  builder (Listing 1).
"""

from repro.core.stream import FifoStats, Stream, StreamEmpty, StreamFull
from repro.core.process import Process, ProcessStats
from repro.core.dataflow import (
    DataflowRegion,
    DataflowError,
    DeadlockError,
    RegionReport,
)
from repro.core.delayed_counter import DelayedCounter, NAIVE_EXIT_II
from repro.core.memory import (
    BurstRequest,
    GlobalMemory,
    MemoryChannel,
    MemoryChannelConfig,
    transfer_only_cycles,
)
from repro.core.transfer import DummySource, TransferEngine, WordPacker
from repro.core.mt_adapted import AdaptedMT, NaiveGatedMT
from repro.core.kernel import GammaKernelConfig, GammaRNGProcess, TRANSFORMS
from repro.core.decoupled import (
    DEFAULT_FREQUENCY_HZ,
    DecoupledConfig,
    DecoupledResult,
    DecoupledWorkItems,
    build_transfer_only_region,
)
from repro.core.pipes import (
    MultiRegionRunner,
    Pipe,
    PipeError,
    PipelineGraph,
    PipelineReport,
)
from repro.core.pricing import (
    AggregatingTransferEngine,
    PricingPipelineConfig,
    PricingProcess,
    PricingResult,
    build_fused_pricing_region,
    build_pricing_pipeline,
    run_pricing_pipeline,
)
from repro.core.schedule import ScheduleTrace, trace_region
from repro.core.hls_report import HlsReport, LoopInfo, synthesize_report
from repro.core.fifo_sizing import (
    DepthPoint,
    SizingResult,
    advise_stream_depth,
)
from repro.core.ndrange_map import (
    NDRangeMapping,
    equivalent_task_form,
    map_ndrange,
)

__all__ = [
    "Stream",
    "StreamEmpty",
    "StreamFull",
    "Process",
    "ProcessStats",
    "DataflowRegion",
    "DataflowError",
    "DeadlockError",
    "RegionReport",
    "DelayedCounter",
    "NAIVE_EXIT_II",
    "BurstRequest",
    "GlobalMemory",
    "MemoryChannel",
    "MemoryChannelConfig",
    "transfer_only_cycles",
    "DummySource",
    "TransferEngine",
    "WordPacker",
    "AdaptedMT",
    "NaiveGatedMT",
    "GammaKernelConfig",
    "GammaRNGProcess",
    "TRANSFORMS",
    "DecoupledConfig",
    "DecoupledResult",
    "DecoupledWorkItems",
    "DEFAULT_FREQUENCY_HZ",
    "build_transfer_only_region",
    "Pipe",
    "PipeError",
    "PipelineGraph",
    "PipelineReport",
    "MultiRegionRunner",
    "PricingProcess",
    "PricingPipelineConfig",
    "PricingResult",
    "AggregatingTransferEngine",
    "build_pricing_pipeline",
    "build_fused_pricing_region",
    "run_pricing_pipeline",
    "ScheduleTrace",
    "trace_region",
    "NDRangeMapping",
    "map_ndrange",
    "equivalent_task_form",
    "HlsReport",
    "LoopInfo",
    "synthesize_report",
    "DepthPoint",
    "SizingResult",
    "advise_stream_depth",
    "FifoStats",
]
