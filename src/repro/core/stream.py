"""Software model of the Vivado HLS ``hls::stream`` interface.

Section III-A: "we need the hls::stream interface [12] to introduce
blocking communication between generation (GammaRNG) and the
corresponding Transfer function".  An ``hls::stream`` is a bounded FIFO
with blocking semantics on both ends: a full stream back-pressures the
producer pipeline, an empty one stalls the consumer.

The cycle-level co-simulation (:mod:`repro.core.dataflow`) never calls
the blocking operations directly — processes poll :meth:`can_read` /
:meth:`can_write` and stall for a cycle when the FIFO refuses, exactly
as the synthesized pipeline would.  The counters kept here (high-water
mark, stall tallies) feed the FIFO-depth sizing analysis.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable

__all__ = ["FifoStats", "Stream", "StreamClosed", "StreamEmpty", "StreamFull"]


@dataclass(frozen=True)
class FifoStats:
    """Occupancy accounting snapshot of one bounded FIFO.

    Shared vocabulary between the hardware-level :class:`Stream` and the
    serving-level job queue (:class:`repro.engine.BoundedJobQueue`), so
    the same depth-sizing analysis (high-water mark vs capacity, stall
    tallies) applies at both layers.
    """

    name: str
    depth: int
    occupancy: int
    total_writes: int
    total_reads: int
    write_stalls: int  # producer found the FIFO full
    read_stalls: int  # consumer found the FIFO empty
    high_water: int

    @property
    def headroom(self) -> int:
        """Capacity never used — a sizing margin candidate."""
        return self.depth - self.high_water

    @property
    def utilization(self) -> float:
        """High-water mark as a fraction of capacity."""
        return self.high_water / self.depth

    def to_dict(self) -> dict:
        """Plain-dict form (JSON output, metrics snapshots)."""
        return {
            "name": self.name,
            "depth": self.depth,
            "occupancy": self.occupancy,
            "total_writes": self.total_writes,
            "total_reads": self.total_reads,
            "write_stalls": self.write_stalls,
            "read_stalls": self.read_stalls,
            "high_water": self.high_water,
            "headroom": self.headroom,
            "utilization": self.utilization,
        }


class StreamFull(RuntimeError):
    """Write attempted on a full stream (producer should have stalled)."""


class StreamEmpty(RuntimeError):
    """Read attempted on an empty stream (consumer should have stalled)."""


class StreamClosed(RuntimeError):
    """Write attempted on a stream whose producer declared completion."""


class Stream:
    """Bounded blocking FIFO with occupancy accounting.

    Parameters
    ----------
    name:
        Identifier used in dataflow wiring and error messages.
    depth:
        FIFO capacity; HLS defaults streams to a depth of 2 unless a
        ``#pragma HLS stream depth=N`` widens them.
    """

    def __init__(self, name: str, depth: int = 2):
        if depth < 1:
            raise ValueError(f"stream depth must be >= 1, got {depth}")
        self.name = name
        self.depth = depth
        self._fifo: deque[Any] = deque()
        self._closed = False
        # accounting
        self.total_writes = 0
        self.total_reads = 0
        self.write_stalls = 0  # producer found the FIFO full
        self.read_stalls = 0  # consumer found the FIFO empty
        self.high_water = 0
        # last cycle a stall was counted (poll-idempotence stamps)
        self._last_write_stall_cycle: int | None = None
        self._last_read_stall_cycle: int | None = None

    # -- state ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def occupancy(self) -> int:
        return len(self._fifo)

    def empty(self) -> bool:
        return not self._fifo

    def full(self) -> bool:
        return len(self._fifo) >= self.depth

    @property
    def closed(self) -> bool:
        return self._closed

    def drained(self) -> bool:
        """True once the producer closed the stream and the FIFO is empty."""
        return self._closed and not self._fifo

    @property
    def stats(self) -> FifoStats:
        """Accounting snapshot in the shared :class:`FifoStats` vocabulary."""
        return FifoStats(
            name=self.name,
            depth=self.depth,
            occupancy=self.occupancy,
            total_writes=self.total_writes,
            total_reads=self.total_reads,
            write_stalls=self.write_stalls,
            read_stalls=self.read_stalls,
            high_water=self.high_water,
        )

    # -- non-blocking poll interface (used by the cycle simulation) ---------------

    def can_write(self, cycle: int | None = None) -> bool:
        """Poll for write availability, counting a stall when full.

        The stall tallies feed the FIFO-sizing analysis and the stall
        attribution, both of which consume them as *per-cycle* counts.
        Passing the current ``cycle`` makes the counter poll-idempotent:
        a process polling twice in one tick counts a single stalled
        cycle.  Without a cycle (legacy callers) every failing poll
        counts, so single-poll discipline is on the caller.
        """
        if self.full():
            if cycle is None or cycle != self._last_write_stall_cycle:
                self.write_stalls += 1
                self._last_write_stall_cycle = cycle
            return False
        return True

    def can_read(self, cycle: int | None = None) -> bool:
        """Poll for read availability, counting a stall when empty.

        Same poll-idempotence contract as :meth:`can_write`.
        """
        if self.empty():
            if cycle is None or cycle != self._last_read_stall_cycle:
                self.read_stalls += 1
                self._last_read_stall_cycle = cycle
            return False
        return True

    # -- bulk stall crediting (cycle-skipping fast path) ---------------------------

    def credit_write_stalls(self, count: int, last_cycle: int | None = None) -> None:
        """Credit ``count`` write-stalled cycles in one step.

        Used by :class:`~repro.core.dataflow.DataflowRegion`'s fast path
        when a producer sits blocked on this full FIFO for a known
        window — equivalent to one failing :meth:`can_write` poll per
        skipped cycle.  ``last_cycle`` stamps the final skipped cycle so
        idempotence stays correct across the skip boundary.
        """
        self.write_stalls += count
        if last_cycle is not None:
            self._last_write_stall_cycle = last_cycle

    def credit_read_stalls(self, count: int, last_cycle: int | None = None) -> None:
        """Credit ``count`` read-stalled cycles in one step (see
        :meth:`credit_write_stalls`)."""
        self.read_stalls += count
        if last_cycle is not None:
            self._last_read_stall_cycle = last_cycle

    # -- data plane ----------------------------------------------------------------

    def write(self, value: Any) -> None:
        """Push one token; raises :class:`StreamFull` when the FIFO is full.

        The hardware stream *blocks* instead — processes must poll
        :meth:`can_write` first, so reaching the exception indicates a
        scheduling bug, not backpressure.
        """
        if self._closed:
            raise StreamClosed(f"stream {self.name!r} is closed")
        if self.full():
            raise StreamFull(
                f"stream {self.name!r} full (depth={self.depth}); "
                "producer must stall on can_write()"
            )
        self._fifo.append(value)
        self.total_writes += 1
        if len(self._fifo) > self.high_water:
            self.high_water = len(self._fifo)

    def read(self) -> Any:
        """Pop one token; raises :class:`StreamEmpty` on an empty FIFO."""
        if not self._fifo:
            raise StreamEmpty(
                f"stream {self.name!r} empty; consumer must stall on can_read()"
            )
        self.total_reads += 1
        return self._fifo.popleft()

    def peek(self) -> Any:
        """Front token without consuming it."""
        if not self._fifo:
            raise StreamEmpty(f"stream {self.name!r} empty; cannot peek")
        return self._fifo[0]

    def close(self) -> None:
        """Producer-side end-of-stream marker (no hardware equivalent —
        used by the simulation to let consumers terminate cleanly)."""
        self._closed = True

    def drain(self) -> Iterable[Any]:
        """Read out all remaining tokens (test/debug helper)."""
        while self._fifo:
            yield self.read()

    def __repr__(self) -> str:
        return (
            f"Stream({self.name!r}, depth={self.depth}, "
            f"occupancy={self.occupancy}, closed={self._closed})"
        )
