"""The test-case kernel: pipelined nested gamma RNG (Listing 2).

One :class:`GammaRNGProcess` is the cycle-level model of the paper's
``GammaRNG`` function — a single fully-pipelined block that per
MAINLOOP iteration:

1. shifts the delayed exit counter (``UpdateRegUI``),
2. produces a normal candidate via Marsaglia-Bray or an ICDF transform,
   with the feeding Mersenne-Twisters gated per Listing 3,
3. runs one Marsaglia-Tsang attempt with a gated rejection uniform,
4. always evaluates the alpha<1 correction with a gated third uniform,
5. writes the validated (and possibly corrected) gamma to the blocking
   output stream, guarded by ``counter < limitMain``.

The loop nest is ``SECLOOP`` over financial sectors around ``MAINLOOP``
over attempts; the MAINLOOP exit reads the *delayed* counter so the
pipeline sustains II=1 (Section III-B).  Setting
``use_delayed_counter=False`` models the naive exit (II rises to
:data:`~repro.core.delayed_counter.NAIVE_EXIT_II`), and
``adapted_mt=False`` models unmodified gated twisters (a pipeline
bubble per suppressed update) — the two ablations of DESIGN.md §6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.delayed_counter import NAIVE_EXIT_II, DelayedCounter
from repro.core.mt_adapted import AdaptedMT, NaiveGatedMT
from repro.core.process import NO_SELF_EVENT, Process
from repro.core.stream import Stream
from repro.rng.gamma import gamma_attempt, gamma_correct, marsaglia_tsang_constants
from repro.rng.icdf import IcdfFpga, icdf_cuda_style
from repro.rng.box_muller import box_muller_pair
from repro.rng.marsaglia_bray import marsaglia_bray_attempt
from repro.rng.mersenne import MTParams, MT19937_PARAMS
from repro.rng.uniform import uint_to_float, uint_to_symmetric

__all__ = ["GammaKernelConfig", "GammaRNGProcess", "TRANSFORMS"]


@lru_cache(maxsize=8)
def _mt_family(exponent: int) -> tuple[MTParams, ...]:
    """Four distinct maximal-period parameter sets for one exponent."""
    from repro.rng.dynamic_creation import find_mt_family

    return tuple(find_mt_family(exponent, count=4))

#: Supported uniform→normal transforms: the two Table I families, the
#: CUDA-style ICDF of §II-D3, and the Box-Muller baseline the paper
#: cites as the method Marsaglia-Bray avoids (rejection-free but heavy
#: on trigonometric cores).
TRANSFORMS = ("marsaglia_bray", "icdf_fpga", "icdf_cuda", "box_muller")


@dataclass(frozen=True)
class GammaKernelConfig:
    """Static configuration of one GammaRNG work-item.

    Parameters mirror Listing 2's interface: sector count and variances,
    the per-sector output quota ``limit_main``, the iteration safety cap
    ``limit_max``, and the design knobs under ablation.
    """

    transform: str = "marsaglia_bray"
    mt_params: MTParams = MT19937_PARAMS
    sector_variances: tuple[float, ...] = (1.39,)
    limit_main: int = 64  # accepted RNs per sector (limitMain)
    limit_max: int | None = None  # MAINLOOP hard cap (limitMax)
    break_id: int = 0
    use_delayed_counter: bool = True
    adapted_mt: bool = True
    seed: int = 20170529
    #: True gives every twister in the Fig 4 pipeline its OWN
    #: dynamically-created parameter set (paper §II-D2: "split into two
    #: parallel Mersenne-Twisters following [18]") instead of one
    #: parameter set at different seeds.  The family search runs once
    #: per exponent and is cached.
    mt_family: bool = False

    def __post_init__(self):
        if self.transform not in TRANSFORMS:
            raise ValueError(
                f"unknown transform {self.transform!r}; pick one of {TRANSFORMS}"
            )
        if not self.sector_variances:
            raise ValueError("at least one sector variance is required")
        if any(v <= 0 for v in self.sector_variances):
            raise ValueError("sector variances must be positive")
        if self.limit_main < 1:
            raise ValueError("limit_main must be >= 1")
        if self.limit_max is not None and self.limit_max < self.limit_main:
            raise ValueError("limit_max cannot be below limit_main")

    @property
    def sectors(self) -> int:
        return len(self.sector_variances)

    @property
    def effective_limit_max(self) -> int:
        """Default hard cap: generous headroom over the expected attempts."""
        return self.limit_max if self.limit_max is not None else self.limit_main * 16

    @property
    def total_outputs(self) -> int:
        return self.sectors * self.limit_main

    @property
    def ii(self) -> int:
        """Initiation interval implied by the exit-condition style."""
        return 1 if self.use_delayed_counter else NAIVE_EXIT_II


class GammaRNGProcess(Process):
    """Cycle-level Listing 2 work-item.

    Parameters
    ----------
    name, wid:
        Process identity; ``wid`` offsets the RNG seeds so decoupled
        work-items draw independent streams (the paper seeds each
        work-item's twisters with distinct dynamic-creation streams).
    config:
        Static kernel configuration.
    sink:
        Output ``hls::stream`` toward the paired Transfer engine.
    icdf_table:
        Optional shared :class:`~repro.rng.icdf.IcdfFpga` ROM (built once
        and reused across work-items, like the synthesized BRAM table).
    """

    def __init__(
        self,
        name: str,
        wid: int,
        config: GammaKernelConfig,
        sink: Stream,
        icdf_table: IcdfFpga | None = None,
    ):
        super().__init__(name)
        self.wid = wid
        self.config = config
        self.sink = sink
        mt_cls = AdaptedMT if config.adapted_mt else NaiveGatedMT
        base = config.seed + 7919 * wid
        # role-separated streams, one twister per uniform stream (Fig 4);
        # with mt_family each role gets a distinct dynamically-created
        # parameter set (ref [18]), otherwise distinct seeds suffice
        if config.mt_family:
            params = _mt_family(config.mt_params.exponent)
        else:
            params = (config.mt_params,) * 4
        self.mt_norm_a = mt_cls(params[0], seed=base + 1)
        self.mt_norm_b = mt_cls(params[1], seed=base + 2)
        self.mt_reject = mt_cls(params[2], seed=base + 3)
        self.mt_correct = mt_cls(params[3], seed=base + 4)
        self._icdf = icdf_table
        if config.transform == "icdf_fpga" and self._icdf is None:
            self._icdf = IcdfFpga()
        # loop state
        self._sector = 0
        self._k = 0
        self._counter = DelayedCounter(config.break_id)
        self._consts = marsaglia_tsang_constants(
            1.0 / config.sector_variances[0]
        )
        self._scale = config.sector_variances[0]
        self._done = False
        self._pending: float | None = None
        self._stall_budget = 0
        # statistics
        self.outputs_produced = 0
        self.attempts = 0
        self.accepts = 0
        self.overrun_iterations = 0
        self.produced: list[float] = []
        # fast-path hints describe THIS tick implementation; a subclass
        # overriding tick() falls back to the reference loop
        self._hintable = type(self).tick is GammaRNGProcess.tick

    # -- dataflow wiring -----------------------------------------------------------

    def outputs(self) -> tuple[Stream, ...]:
        return (self.sink,)

    def done(self) -> bool:
        return self._done

    def stall_reason(self) -> str | None:
        if self._stall_budget > 0:
            return "pipeline"  # II bubble / gated-MT flush cycle
        return None

    # -- cycle-skipping fast path ----------------------------------------------------

    def next_event(self, cycle: int) -> int | float | None:
        if not self._hintable or self._done:
            return None
        if self._pending is not None:
            if self.sink.full():
                return NO_SELF_EVENT  # frozen on the blocking write
            return None  # write lands next tick
        if self._stall_budget > 0:
            return cycle + self._stall_budget  # deterministic II/flush bubbles
        return None

    def skip_cycles(self, cycle: int, count: int) -> None:
        if self._pending is not None:
            # blocked write: one failing can_write() poll per cycle
            self.sink.credit_write_stalls(count, cycle + count - 1)
            self.stats.cycles += count
            self.stats.stall_cycles += count
            return
        self._stall_budget -= count
        self.stats.cycles += count
        self.stats.pipeline_cycles += count

    # -- helpers --------------------------------------------------------------------

    def _enter_sector(self, sector: int) -> None:
        variance = self.config.sector_variances[sector]
        self._consts = marsaglia_tsang_constants(1.0 / variance)
        self._scale = variance
        self._counter.reset()
        self._k = 0

    def _normal_candidate(self) -> tuple[float, bool]:
        """One uniform→normal attempt per the configured transform."""
        transform = self.config.transform
        if transform == "marsaglia_bray":
            u1 = uint_to_symmetric(self.mt_norm_a(True))
            u2 = uint_to_symmetric(self.mt_norm_b(True))
            return marsaglia_bray_attempt(u1, u2)
        if transform == "icdf_fpga":
            return self._icdf.evaluate(self.mt_norm_a(True))
        if transform == "box_muller":
            u1 = uint_to_float(self.mt_norm_a(True))
            u2 = uint_to_float(self.mt_norm_b(True))
            z0, _ = box_muller_pair(u1, u2)
            return z0, True
        # icdf_cuda: rejection-free
        u = uint_to_float(self.mt_norm_a(True))
        return icdf_cuda_style(u), True

    # -- the pipeline ------------------------------------------------------------------

    def tick(self, cycle: int) -> bool:
        if self._done:
            return self._account(False)

        # a completed iteration is waiting on a full output stream:
        # the whole pipeline freezes (hls::stream blocking write)
        if self._pending is not None:
            if not self.sink.can_write(cycle):
                self._account(False)
                return False  # genuinely blocked; deadlock-detectable
            self.sink.write(self._pending)
            self._pending = None
            return self._account(True)

        # II bubbles / naive-MT flush cycles: time passes by design,
        # not a deadlock — accounted in the dedicated pipeline bucket
        if self._stall_budget > 0:
            self._stall_budget -= 1
            return self._account_bubble()

        # MAINLOOP exit condition (evaluated at the top, Listing 2)
        cfg = self.config
        exit_counter = (
            self._counter.delayed if cfg.use_delayed_counter else self._counter.value
        )
        if self._k >= cfg.effective_limit_max or exit_counter >= cfg.limit_main:
            self._sector += 1
            if self._sector >= cfg.sectors:
                self._done = True
                self.sink.close()
                return self._account(True)
            self._enter_sector(self._sector)
            return self._account(True)

        # ---- one MAINLOOP iteration ----
        self._counter.shift()  # UpdateRegUI
        self.attempts += 1
        self.stats.iterations += 1

        n0, n0_valid = self._normal_candidate()
        u1 = uint_to_float(self.mt_reject(n0_valid))
        g_value, g_valid = gamma_attempt(n0, u1, self._consts)
        ok = n0_valid and g_valid
        u2 = uint_to_float(self.mt_correct(ok))
        corrected = gamma_correct(g_value, u2, self._consts)
        gamma = corrected if self._consts.boosted else g_value

        wrote = False
        if ok and self._counter.value < cfg.limit_main:
            self.accepts += 1
            value = gamma * self._scale
            self.produced.append(value)
            self.outputs_produced += 1
            self._counter.increment()
            if self.sink.can_write(cycle):
                self.sink.write(value)
            else:
                self._pending = value
            wrote = True
        elif ok:
            # iteration past the quota, still in flight because the exit
            # test reads the delayed counter — the guarded write drops it
            self.overrun_iterations += 1

        self._k += 1

        # pipeline-cost bookkeeping for the ablations
        stall = cfg.ii - 1
        if not cfg.adapted_mt:
            gates = (True, True, n0_valid, ok)  # norm MTs free-run
            bubbles = sum(
                mt.bubble_cycles
                for mt, g in zip(
                    (self.mt_norm_a, self.mt_norm_b, self.mt_reject, self.mt_correct),
                    gates,
                )
                if not g
            )
            stall += bubbles
        self._stall_budget = stall
        _ = wrote
        return self._account(True)

    # -- reporting ------------------------------------------------------------------

    @property
    def measured_rejection_rate(self) -> float:
        """Fraction of MAINLOOP iterations not yielding a valid output."""
        if self.attempts == 0:
            return 0.0
        return 1.0 - self.accepts / self.attempts
