"""HLS-style synthesis report for a decoupled-work-items design.

Produces the kind of console report Vivado HLS / SDAccel prints after
scheduling — loop initiation intervals, pipeline depths, stream widths,
per-instance resource estimates — for a :class:`DecoupledConfig`.  The
numbers come from the same models the experiments use (the delayed-
counter II analysis, the Table II resource vectors), so the report is a
design-review artifact, not decoration: the tests assert its claims
against the cycle simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.decoupled import DecoupledConfig
from repro.core.delayed_counter import NAIVE_EXIT_II
from repro.core.transfer import TransferEngine
from repro.fixedpoint import FLOATS_PER_WORD, WORD_BITS
from repro.resources.blocks import work_item_cost

__all__ = ["LoopInfo", "HlsReport", "synthesize_report"]

#: pipeline depth (latency) estimates per transform, in cycles — the
#: fill/flush cost of one MAINLOOP iteration's datapath
_PIPELINE_DEPTHS = {
    "marsaglia_bray": 38,  # log + sqrt + div chains dominate
    "icdf_fpga": 14,  # LZC + ROM + MAC
    "icdf_cuda": 46,  # log + 9-stage polynomial + sqrt tail
    "box_muller": 52,  # log + sqrt + sincos
}


@dataclass(frozen=True)
class LoopInfo:
    """One loop row of the report."""

    name: str
    trip_count: str
    ii: int
    depth: int
    pipelined: bool

    def row(self) -> list:
        return [
            self.name,
            self.trip_count,
            self.ii,
            self.depth,
            "yes" if self.pipelined else "no",
        ]


@dataclass
class HlsReport:
    """Complete synthesis report of one design point."""

    config: DecoupledConfig
    loops: list[LoopInfo]
    streams: list[dict]
    resources_per_item: dict
    resources_total: dict

    def main_loop(self) -> LoopInfo:
        return next(l for l in self.loops if l.name == "MAINLOOP")

    def render(self) -> str:
        from repro.harness.reporting import format_table

        k = self.config.kernel
        head = [
            "== Synthesis report: DecoupledWorkItems ==",
            f"  work-items (dataflow processes) : {self.config.n_work_items} x "
            "(GammaRNG + Transfer)",
            f"  transform                       : {k.transform}",
            f"  target                          : "
            f"{self.config.frequency_hz / 1e6:.0f} MHz",
        ]
        loops = format_table(
            ["loop", "trip count", "II", "depth", "pipelined"],
            [l.row() for l in self.loops],
            title="-- loops (per work-item)",
        )
        streams = format_table(
            ["stream", "width [bits]", "depth"],
            [[s["name"], s["width_bits"], s["depth"]] for s in self.streams],
            title="-- streams",
        )
        res = format_table(
            ["scope", "Slice", "DSP", "BRAM36"],
            [
                ["per work-item", *self.resources_per_item.values()],
                ["design total", *self.resources_total.values()],
            ],
            title="-- resource estimate",
        )
        return "\n".join([*head, "", loops, "", streams, "", res])


def synthesize_report(config: DecoupledConfig) -> HlsReport:
    """Schedule-and-estimate a design point without running it."""
    k = config.kernel
    main_ii = 1 if k.use_delayed_counter else NAIVE_EXIT_II
    if not k.adapted_mt:
        # a conditional state write inside the pipeline forces the
        # scheduler to assume the worst gating every iteration
        main_ii = max(main_ii, 1 + 1)
    depth = _PIPELINE_DEPTHS[k.transform]
    # the shipped design carries the DEPENDENCE-false pragma (Listing 4),
    # so TLOOP schedules at II=1; NAIVE_PACK_II documents the alternative
    pack_ii = 1
    assert pack_ii < TransferEngine.NAIVE_PACK_II
    loops = [
        LoopInfo("SECLOOP", str(k.sectors), ii=main_ii, depth=depth,
                 pipelined=False),
        LoopInfo(
            "MAINLOOP",
            f"{k.limit_main}..{k.effective_limit_max} (dynamic)",
            ii=main_ii,
            depth=depth,
            pipelined=True,
        ),
        LoopInfo(
            "TLOOP",
            str(config.burst_words * FLOATS_PER_WORD),
            ii=pack_ii,
            depth=4,
            pipelined=True,
        ),
    ]
    streams = [
        {
            "name": f"gammaStream{w}",
            "width_bits": 32,
            "depth": config.stream_depth,
        }
        for w in range(config.n_work_items)
    ]
    transform = (
        "marsaglia_bray" if k.transform == "marsaglia_bray" else "icdf"
    )
    mt = "mt19937" if k.mt_params.n >= 600 else "mt521"
    per_item = work_item_cost(transform, mt)
    per = {
        "Slice": round(per_item.slices),
        "DSP": round(per_item.dsp),
        "BRAM36": per_item.bram,
    }
    total = {
        key: value * config.n_work_items for key, value in per.items()
    }
    return HlsReport(
        config=config,
        loops=loops,
        streams=streams,
        resources_per_item=per,
        resources_total=total,
    )
