"""The delayed-counter workaround for dynamic loop-exit conditions.

Section III-B, the paper's second contribution: the exit condition of
``MAINLOOP`` depends on a ``counter`` incremented inside a divergent
branch of the *same* iteration.  A pipelined loop at II=1 cannot read
the just-written counter — the increment has not retired yet — so the
naive code forces the scheduler to serialize iterations (II > 1).

The workaround: read a *delayed* copy of the counter through a fully
partitioned shift register (``prevCounter``, updated by ``UpdateRegUI``)
indexed by ``breakId``::

    MAINLOOP: for (k = 0; (k < limitMax)
                   && (prevCounter[breakId] < limitMain); ++k) {
        #pragma HLS pipeline II=1
        UpdateRegUI(breakId, counter, prevCounter);
        ...
        if (ok && counter < limitMain) { out.write(g); ++counter; }
    }

The exit test then has no same-iteration dependency — it sees the value
the counter had ``breakId + 1`` iterations ago, which is pipeline-legal.
The cost: the loop overruns by up to ``breakId + 1`` iterations, so the
body must self-guard its side effects (``counter < limitMain`` above).
"The index is kept as low as possible, and here it suffices to use zero
(meaning a delay of one cycle)."
"""

from __future__ import annotations

__all__ = ["DelayedCounter", "NAIVE_EXIT_II"]

#: Initiation interval HLS reaches *without* the workaround: the
#: increment->compare recurrence spans two cycles on the target device,
#: doubling the per-iteration cost (used by the ablation benchmarks).
NAIVE_EXIT_II = 2


class DelayedCounter:
    """Counter whose externally visible value lags by ``break_id + 1`` steps.

    Models the paper's ``counter`` / ``prevCounter[breakId]`` pair:

    * :meth:`increment` — the in-pipeline ``++counter``,
    * :meth:`shift` — the per-iteration ``UpdateRegUI`` register shift,
    * :attr:`delayed` — the value the loop-exit condition reads,
    * :attr:`value` — the true architectural value (used by the body's
      self-guard ``counter < limitMain``).
    """

    def __init__(self, break_id: int = 0):
        if break_id < 0:
            raise ValueError(f"break_id must be >= 0, got {break_id}")
        self.break_id = break_id
        self._value = 0
        # prevCounter[0..break_id]: a completely partitioned shift register
        self._lanes = [0] * (break_id + 1)

    @property
    def value(self) -> int:
        """The true (undelayed) counter value."""
        return self._value

    @property
    def delayed(self) -> int:
        """``prevCounter[breakId]`` — the value break_id + 1 shifts ago."""
        return self._lanes[self.break_id]

    @property
    def delay(self) -> int:
        """Visibility lag in iterations (= break_id + 1)."""
        return self.break_id + 1

    def shift(self) -> None:
        """``UpdateRegUI``: push the current value into the delay line.

        Called once at the top of every loop iteration, *before* any
        increment of the same iteration — so increments become visible
        to the exit test exactly ``delay`` iterations later.
        """
        for i in range(self.break_id, 0, -1):
            self._lanes[i] = self._lanes[i - 1]
        self._lanes[0] = self._value

    def increment(self, amount: int = 1) -> None:
        """The divergent-branch ``++counter``."""
        self._value += amount

    def reset(self) -> None:
        """Re-arm for the next sector (SECLOOP re-entry)."""
        self._value = 0
        self._lanes = [0] * (self.break_id + 1)

    def __repr__(self) -> str:
        return (
            f"DelayedCounter(break_id={self.break_id}, value={self._value}, "
            f"delayed={self.delayed})"
        )
