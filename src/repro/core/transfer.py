"""The per-work-item ``Transfer`` block (Listing 4).

Each work-item pairs its ``GammaRNG`` generator with a Transfer engine
that (a) reads validated gamma RNs from the blocking stream one per
cycle, (b) packs them 16-to-a-word into ``ap_uint<512>`` registers
(``g512``), (c) collects ``LTRANSF`` words in a local ``transfBuf``, and
(d) flushes the buffer to device global memory as one burst (``memcpy``)
at an offset derived from the work-item id (device-level buffer
combining, Section III-E-2).

The engine is busy packing for ``16 * LTRANSF`` cycles per burst, during
which the *other* work-items' bursts drain on the shared channel — the
interleaving of Fig 3.
"""

from __future__ import annotations

import enum

from repro.core.memory import BurstRequest, MemoryChannel
from repro.core.process import NO_SELF_EVENT, Process
from repro.core.stream import Stream
from repro.fixedpoint import FLOATS_PER_WORD, WORD_BITS, float_to_bits
from repro.fixedpoint.ap_int import ApUInt

__all__ = ["TransferEngine", "DummySource", "WordPacker"]


class WordPacker:
    """The ``g512`` helper: accumulate float32 values into a 512-bit word.

    ``push`` returns ``(word, True)`` when the 16th lane completes a word
    (the paper's ``tFlag``), else ``(None, False)``.
    """

    def __init__(self):
        self._raw = 0
        self._lane = 0

    def push(self, value: float) -> tuple[ApUInt | None, bool]:
        bits = float_to_bits(value)
        self._raw |= bits << (32 * self._lane)
        self._lane += 1
        if self._lane == FLOATS_PER_WORD:
            word = ApUInt(WORD_BITS, self._raw)
            self._raw = 0
            self._lane = 0
            return word, True
        return None, False

    @property
    def lane(self) -> int:
        """Lanes filled in the currently forming word."""
        return self._lane


class _State(enum.Enum):
    PACK = "pack"
    WAIT_BURST = "wait_burst"
    DONE = "done"


class TransferEngine(Process):
    """Cycle-level model of Listing 4.

    Parameters
    ----------
    name, wid:
        Engine identity; ``wid`` selects the memory offset, mirroring
        ``offset = blockOffset * wid``.
    source:
        The gamma stream from the paired ``GammaRNG`` process.
    channel:
        The shared :class:`~repro.core.memory.MemoryChannel`.
    burst_words:
        ``LTRANSF`` — 512-bit words per burst.
    bursts_per_sector:
        ``limitRep`` — fixed trip count of ``REPLOOP``.
    sectors:
        ``limitSec`` trip count of ``SECLOOP``.
    block_offset:
        Words of device memory reserved per work-item.
    dependence_false:
        Models Listing 4's ``#pragma HLS DEPENDENCE variable=transfBuf
        false``: the tool cannot prove the transfBuf write of iteration
        i and the read of iteration i+1 touch different entries, so
        without the pragma the packing loop schedules at II=2.  True
        (the paper's design) keeps TLOOP at II=1.
    """

    #: TLOOP initiation interval without the DEPENDENCE-false pragma
    NAIVE_PACK_II = 2

    def __init__(
        self,
        name: str,
        wid: int,
        source: Stream,
        channel: MemoryChannel,
        burst_words: int,
        bursts_per_sector: int,
        sectors: int,
        block_offset: int,
        dependence_false: bool = True,
    ):
        super().__init__(name)
        if burst_words < 1:
            raise ValueError("burst_words must be >= 1")
        if bursts_per_sector < 1 or sectors < 1:
            raise ValueError("bursts_per_sector and sectors must be >= 1")
        needed = sectors * bursts_per_sector * burst_words
        if block_offset < needed:
            raise ValueError(
                f"block_offset {block_offset} cannot hold "
                f"{needed} words for work-item {wid}"
            )
        self.wid = wid
        self.source = source
        self.channel = channel
        self.burst_words = burst_words
        self.bursts_per_sector = bursts_per_sector
        self.sectors = sectors
        self.values_per_burst = burst_words * FLOATS_PER_WORD
        self._packer = WordPacker()
        self._buffer: list[ApUInt] = []  # transfBuf
        self._offset = block_offset * wid
        self._values_in_burst = 0
        self._burst_index = 0  # completed bursts overall
        self._total_bursts = sectors * bursts_per_sector
        self._state = _State.PACK
        self._pending: BurstRequest | None = None
        self.dependence_false = dependence_false
        self._pack_stall = 0
        # fast-path hints describe THIS tick implementation; a subclass
        # overriding tick() falls back to the reference loop
        self._hintable = type(self).tick is TransferEngine.tick

    def inputs(self) -> tuple[Stream, ...]:
        return (self.source,)

    def done(self) -> bool:
        return self._state is _State.DONE

    def stall_reason(self) -> str | None:
        if self._state is _State.WAIT_BURST:
            return "memory_channel"  # waiting for the shared-channel grant
        if self._pack_stall > 0:
            return "pipeline"  # TLOOP II bubble (DEPENDENCE-false ablation)
        return None

    def next_event(self, cycle: int) -> int | float | None:
        if not self._hintable:
            return None
        if self._state is _State.WAIT_BURST:
            pending = self._pending
            if pending is None or pending.done:
                return None  # grant bookkeeping happens next tick
            done_cycle = self.channel.predict_done(pending, cycle)
            if done_cycle is None:
                return None
            return done_cycle + 1  # completion observed one cycle later
        if self._state is _State.PACK:
            if self._pack_stall > 0:
                return cycle + self._pack_stall  # deterministic II bubble
            if self.source.empty():
                return NO_SELF_EVENT  # starved until the producer acts
        return None

    def skip_cycles(self, cycle: int, count: int) -> None:
        if self._state is _State.WAIT_BURST:
            self.stats.cycles += count
            self.stats.stall_cycles += count
            return
        if self._pack_stall > 0:
            self._pack_stall -= count
            self.stats.cycles += count
            self.stats.pipeline_cycles += count
            return
        # starved PACK: one failing can_read() poll per skipped cycle
        self.source.credit_read_stalls(count, cycle + count - 1)
        self.stats.cycles += count
        self.stats.stall_cycles += count

    def _ingest(self, value: float) -> float:
        """Observe/transform one value on its way into the packer.

        The hook subclasses override instead of :meth:`tick`: packing a
        value is combinational, so a subclass folding it into a running
        aggregate (``repro.core.pricing.AggregatingTransferEngine``)
        costs no extra cycles and — crucially — keeps the inherited
        ``tick`` identity, so the fast-path hints stay valid
        (``_hintable`` guards on ``tick``, not on this hook).
        """
        return value

    def tick(self, cycle: int) -> bool:
        if self._state is _State.WAIT_BURST:
            if self._pending is not None and self._pending.done:
                self._pending = None
                self._burst_index += 1
                if self._burst_index >= self._total_bursts:
                    self._state = _State.DONE
                else:
                    self._state = _State.PACK
                # grant/advance bookkeeping counts as progress
                return self._account(True)
            return self._account(False)

        # PACK state: one stream read per cycle (TLOOP at II=1 with the
        # DEPENDENCE-false pragma; II=2 without it)
        if self._pack_stall > 0:
            self._pack_stall -= 1
            return self._account_bubble()  # II bubble: time passes by design
        if not self.source.can_read(cycle):
            return self._account(False)
        value = self._ingest(self.source.read())
        if not self.dependence_false:
            self._pack_stall = self.NAIVE_PACK_II - 1
        self.stats.iterations += 1
        word, flag = self._packer.push(value)
        if flag:
            self._buffer.append(word)
        self._values_in_burst += 1
        if self._values_in_burst == self.values_per_burst:
            request = BurstRequest(
                owner=self.name,
                address=self._offset,
                words=self._buffer,
                submitted_cycle=cycle,
            )
            self.channel.submit(request)
            self._pending = request
            self._offset += self.burst_words
            self._buffer = []
            self._values_in_burst = 0
            self._state = _State.WAIT_BURST
        return self._account(True)

    @property
    def bursts_completed(self) -> int:
        return self._burst_index


class DummySource(Process):
    """Produces one dummy float per cycle — the transfers-only workload.

    Fig 7 is measured "if we now remove the computations from our kernel,
    leaving only the transfers to device memory ... (using dummy data)".
    """

    def __init__(self, name: str, sink: Stream, count: int, value: float = 1.0):
        super().__init__(name)
        if count < 0:
            raise ValueError("count must be >= 0")
        self.sink = sink
        self.remaining = count
        self.value = value
        self._hintable = type(self).tick is DummySource.tick

    def outputs(self) -> tuple[Stream, ...]:
        return (self.sink,)

    def done(self) -> bool:
        return self.remaining == 0

    def next_event(self, cycle: int) -> int | float | None:
        if not self._hintable:
            return None
        if self.remaining and self.sink.full():
            return NO_SELF_EVENT  # backpressured until the consumer reads
        return None

    def skip_cycles(self, cycle: int, count: int) -> None:
        # blocked on a full sink: one failing can_write() poll per cycle
        self.sink.credit_write_stalls(count, cycle + count - 1)
        self.stats.cycles += count
        self.stats.stall_cycles += count

    def tick(self, cycle: int) -> bool:
        if self.remaining == 0:
            return self._account(False)
        if not self.sink.can_write(cycle):
            return self._account(False)
        self.sink.write(self.value)
        self.remaining -= 1
        self.stats.iterations += 1
        return self._account(True)
