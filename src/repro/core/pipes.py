"""Inter-region pipes: compose DATAFLOW regions into one pipeline.

The paper stops at a single kernel region; MKPipe (PAPERS.md) and the
polyhedral-process-network line of work compose *multiple* kernels via
pipes with cross-kernel overlap.  This module generalizes
:class:`~repro.core.dataflow.DataflowRegion` the same way:

* a :class:`Pipe` is a :class:`~repro.core.stream.Stream` whose
  producer and consumer live in *different* regions — same bounded-FIFO
  blocking semantics, its own depth and stall accounting, but its
  endpoints are whole kernel regions rather than processes of one
  region (the OpenCL ``pipe`` / Intel FPGA channel construct);
* a :class:`PipelineGraph` wires regions together, enforcing the same
  single-producer/single-consumer rule *across* regions that the
  DATAFLOW pragma enforces within one, and topologically sorts the
  region DAG;
* a :class:`MultiRegionRunner` co-schedules every region on one shared
  cycle loop — producer regions and consumer regions overlap exactly
  like the processes inside one region do — with the cycle-skipping
  fast path composed across regions: a window is skipped only when
  *every* live process in *every* region and every memory channel
  agrees it is dead.

Memory channels are first-class at the pipeline level: each region
attaches the channel(s) its engines use (per-region channel affinity),
and a channel shared by two regions is ticked exactly once per cycle —
cross-region FIFO arbitration on the same port.  The combined
:class:`PipelineReport` rolls per-region reports, pipe stats and
graph-indexed channel stats into one record.

``MultiRegionRunner.run_sequential`` runs the same graph one region at
a time (each region to completion before its consumer starts) — the
no-overlap baseline the overlap benchmark compares against.  It needs
pipes deep enough to hold every in-flight token; an undersized pipe
deadlocks the producer region, which is the honest failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core.dataflow import (
    DataflowError,
    DataflowRegion,
    DeadlockError,
    RegionReport,
    _ProcessStatsMap,
)
from repro.core.process import Process
from repro.core.stream import Stream

__all__ = [
    "MultiRegionRunner",
    "Pipe",
    "PipeError",
    "PipelineGraph",
    "PipelineReport",
]


class PipeError(DataflowError):
    """Invalid pipeline wiring (pipe/stream used across the wrong scope)."""


class Pipe(Stream):
    """A stream whose producer and consumer live in different regions.

    Behaviorally identical to :class:`~repro.core.stream.Stream` (bounded
    FIFO, blocking poll semantics, stall accounting); the distinct type
    is how :class:`PipelineGraph` tells deliberate cross-region links
    from accidental ones — a plain ``Stream`` crossing regions is
    rejected, as is a ``Pipe`` with both ends in one region.
    """


@dataclass
class PipelineReport:
    """Combined result of a multi-region pipeline run."""

    #: total cycles of the run (pipelined: shared clock; sequential:
    #: sum of the per-region runs)
    cycles: int
    #: ``"pipelined"`` or ``"sequential"``
    mode: str
    #: per-region :class:`~repro.core.dataflow.RegionReport`, keyed by
    #: region name (each region's ``cycles`` is the cycle it finished)
    region_reports: dict[str, RegionReport] = field(default_factory=dict)
    #: cycle at which each region's last process finished
    region_done_cycles: dict[str, int] = field(default_factory=dict)
    #: stat snapshot per inter-region pipe (same shape as stream_stats)
    pipe_stats: dict[str, dict] = field(default_factory=dict)
    #: every process across every region plus graph-indexed channel
    #: stats (``__memory_channel_0__``, …) — channels shared between
    #: regions appear exactly once
    process_stats: dict[str, object] = field(default_factory=dict)

    @property
    def stream_stats(self) -> dict[str, dict]:
        """Every stream and pipe of the pipeline, merged across regions.

        The same shape :class:`RegionReport` exposes, so depth advisors
        built for single regions (``advise_stream_depth``) consume a
        pipeline report unchanged.
        """
        merged: dict[str, dict] = {}
        for report in self.region_reports.values():
            merged.update(report.stream_stats)
        merged.update(self.pipe_stats)
        return merged

    def runtime_seconds(self, frequency_hz: float) -> float:
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        return self.cycles / frequency_hz

    def runtime_ms(self, frequency_hz: float) -> float:
        return 1e3 * self.runtime_seconds(frequency_hz)


class PipelineGraph:
    """Regions wired by pipes, validated into a region DAG.

    The single producer-consumer rule extends across regions: every
    pipe has exactly one producing process (in one region) and one
    consuming process (in another).  Region-to-region edges derived
    from the pipes must form a feed-forward DAG, mirroring the
    DATAFLOW constraint one level up.
    """

    def __init__(self, name: str = "pipeline"):
        self.name = name
        self._regions: list[DataflowRegion] = []
        self._validated: tuple | None = None

    @property
    def regions(self) -> tuple[DataflowRegion, ...]:
        return tuple(self._regions)

    def add_region(self, region: DataflowRegion) -> DataflowRegion:
        """Register a region; returns it for chaining."""
        if any(r is region for r in self._regions):
            raise PipeError(f"region {region.name!r} added twice")
        if any(r.name == region.name for r in self._regions):
            raise PipeError(f"duplicate region name {region.name!r}")
        self._regions.append(region)
        self._validated = None
        return region

    # -- validation ----------------------------------------------------------------

    def _validate(self):
        """Validate wiring; returns (ordered regions, ordered processes,
        channels, pipes)."""
        if self._validated is not None:
            return self._validated
        if not self._regions:
            raise PipeError("pipeline has no regions")
        names: set[str] = set()
        region_order: dict[int, list[Process]] = {}
        for i, region in enumerate(self._regions):
            if not region.processes:
                raise PipeError(f"region {region.name!r} has no processes")
            region_order[i] = region._validate()
            for proc in region.processes:
                if proc.name in names:
                    raise PipeError(
                        f"duplicate process name {proc.name!r} across "
                        "regions"
                    )
                names.add(proc.name)
        producers: dict[Stream, int] = {}
        consumers: dict[Stream, int] = {}
        for i, region in enumerate(self._regions):
            for proc in region.processes:
                for s in proc.outputs():
                    if s in producers:
                        raise PipeError(
                            f"stream {s.name!r} produced in two regions"
                        )
                    producers[s] = i
                for s in proc.inputs():
                    if s in consumers:
                        raise PipeError(
                            f"stream {s.name!r} consumed in two regions"
                        )
                    consumers[s] = i
        graph = nx.DiGraph()
        graph.add_nodes_from(range(len(self._regions)))
        pipes: list[Pipe] = []
        for s, producer in producers.items():
            consumer = consumers.get(s)
            if consumer is None:
                if isinstance(s, Pipe):
                    raise PipeError(
                        f"pipe {s.name!r} has a producer (region "
                        f"{self._regions[producer].name!r}) but no "
                        "consumer region"
                    )
                continue
            if producer == consumer:
                if isinstance(s, Pipe):
                    raise PipeError(
                        f"pipe {s.name!r} has both ends inside region "
                        f"{self._regions[producer].name!r}; use a plain "
                        "Stream for intra-region links"
                    )
                continue
            if not isinstance(s, Pipe):
                raise PipeError(
                    f"stream {s.name!r} crosses regions "
                    f"{self._regions[producer].name!r} -> "
                    f"{self._regions[consumer].name!r}; inter-region "
                    "links must be Pipes"
                )
            pipes.append(s)
            graph.add_edge(producer, consumer)
        for s, consumer in consumers.items():
            if isinstance(s, Pipe) and s not in producers:
                raise PipeError(
                    f"pipe {s.name!r} has a consumer (region "
                    f"{self._regions[consumer].name!r}) but no producer "
                    "region"
                )
        try:
            order = list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible as exc:
            raise PipeError(
                f"pipeline {self.name!r} contains a region cycle; "
                "pipelines require a feed-forward region DAG"
            ) from exc
        ordered_regions = [self._regions[i] for i in order]
        ordered_processes = [
            p for i in order for p in region_order[i]
        ]
        # channels in region topo order, deduped by identity: a channel
        # two regions share (same port, cross-region arbitration) must
        # tick exactly once per cycle
        channels: list = []
        seen_channels: set[int] = set()
        for region in ordered_regions:
            for channel in region.memory_channels:
                if id(channel) not in seen_channels:
                    seen_channels.add(id(channel))
                    channels.append(channel)
        self._validated = (
            ordered_regions,
            ordered_processes,
            tuple(channels),
            tuple(pipes),
        )
        return self._validated

    @property
    def pipes(self) -> tuple[Pipe, ...]:
        return self._validate()[3]

    @property
    def memory_channels(self) -> tuple:
        """All channels across regions, deduped, in region topo order."""
        return self._validate()[2]


class MultiRegionRunner:
    """Co-schedule a :class:`PipelineGraph` on one shared cycle loop.

    The loop is :meth:`DataflowRegion.run` lifted to the pipeline:
    every live process across every region ticks once per cycle in
    region-topological then intra-region-topological order (so a token
    written into a pipe at cycle *t* is visible to the consumer region
    at cycle *t*), all channels tick after the processes, deadlock is
    detected across the whole graph, and the cycle-skipping fast path
    probes *all* regions' hints at once.
    """

    def __init__(self, graph: PipelineGraph):
        self.graph = graph
        #: cycles the last run jumped over instead of ticking
        self.skipped_cycles = 0

    # -- execution -----------------------------------------------------------------

    def run(
        self,
        max_cycles: int = 100_000_000,
        *,
        fast_path: bool | None = None,
    ) -> PipelineReport:
        """Run all regions concurrently until every process finishes.

        Same contract as :meth:`DataflowRegion.run`: raises
        :class:`DeadlockError` when a full cycle passes with zero
        progress anywhere in the pipeline, ``RuntimeError`` when
        ``max_cycles`` elapse, and ``fast_path=False`` forces the
        reference one-cycle-at-a-time loop (the differential suite
        asserts field-for-field identical :class:`PipelineReport`\\ s).
        """
        regions, ordered, channels, _pipes = self.graph._validate()
        self.skipped_cycles = 0
        fast = True if fast_path is None else fast_path
        cycle = 0
        live = [p for p in ordered if not p.done()]
        region_live = {
            r.name: sum(1 for p in r.processes if not p.done())
            for r in regions
        }
        region_done: dict[str, int] = {
            r.name: 0 for r in regions if region_live[r.name] == 0
        }
        while live:
            if cycle >= max_cycles:
                raise RuntimeError(
                    f"pipeline {self.graph.name!r} exceeded "
                    f"{max_cycles} cycles"
                )
            proc_progress = False
            for proc in live:
                if proc.tick(cycle):
                    proc_progress = True
            progressed = proc_progress
            for channel in channels:
                if channel.tick(cycle):
                    progressed = True
            if not progressed:
                raise DeadlockError(self._deadlock_message(cycle, channels))
            cycle += 1
            still = [p for p in live if not p.done()]
            if len(still) != len(live):
                finished = {id(p) for p in live} - {id(p) for p in still}
                for region in regions:
                    if region.name in region_done:
                        continue
                    done_here = sum(
                        1 for p in region.processes if id(p) in finished
                    )
                    if done_here:
                        region_live[region.name] -= done_here
                        if region_live[region.name] == 0:
                            region_done[region.name] = cycle
            live = still
            # probe for a dead window only after a cycle in which every
            # process in every region stalled (channel-only progress)
            if fast and live and not proc_progress:
                span = self._skip_window(live, cycle, channels)
                if span > max_cycles - cycle:
                    span = max_cycles - cycle  # stop exactly at the guard
                if span >= 2:
                    for proc in live:
                        proc.skip_cycles(cycle, span)
                    for channel in channels:
                        channel.skip_cycles(cycle, span)
                    self.skipped_cycles += span
                    cycle += span
        return self._report(cycle, region_done, mode="pipelined")

    def run_sequential(
        self,
        max_cycles: int = 100_000_000,
        *,
        fast_path: bool | None = None,
    ) -> PipelineReport:
        """Run each region to completion in topo order (no overlap).

        The makespan baseline: stage N+1 starts only after stage N has
        produced *everything*, so every pipe must be deep enough to
        hold its stage's full output — an undersized pipe deadlocks the
        producer region, surfacing the sizing error instead of silently
        overlapping.
        """
        regions, _ordered, _channels, _pipes = self.graph._validate()
        self.skipped_cycles = 0
        total = 0
        region_done: dict[str, int] = {}
        for region in regions:
            report = region.run(max_cycles=max_cycles, fast_path=fast_path)
            total += report.cycles
            region_done[region.name] = total
            self.skipped_cycles += region.skipped_cycles
        return self._report(total, region_done, mode="sequential")

    # -- internals ------------------------------------------------------------------

    def _skip_window(self, live: list[Process], cycle: int, channels) -> int:
        """Dead-window length starting at ``cycle``, across all regions.

        Identical contract to :meth:`DataflowRegion._skip_window`, with
        the horizon taken over every live process of every region and
        every (deduped) channel — the hints compose because each hint
        already means "nothing I observe changes", and during a window
        in which *no* process anywhere acts, nothing anywhere changes.
        """
        horizon: float = float("inf")
        for proc in live:
            event = proc.next_event(cycle)
            if event is None:
                return 0
            if event < horizon:
                horizon = event
        for channel in channels:
            event = channel.next_event(cycle)
            if event < horizon:
                horizon = event
        if horizon == float("inf"):
            return 0
        return int(horizon) - cycle

    def _deadlock_message(self, cycle: int, channels) -> str:
        lines = [
            f"deadlock in pipeline {self.graph.name!r} at cycle {cycle}:"
        ]
        for region in self.graph.regions:
            stuck = [p for p in region.processes if not p.done()]
            if not stuck:
                continue
            lines.append(f"  region {region.name!r}:")
            for p in stuck:
                lines.append(f"    stuck: {p!r}")
                for s in p.inputs():
                    lines.append(f"      in  {s!r}")
                for s in p.outputs():
                    lines.append(f"      out {s!r}")
        for channel in channels:
            lines.append(f"  channel: {channel!r}")
        return "\n".join(lines)

    def _report(
        self, cycles: int, region_done: dict[str, int], mode: str
    ) -> PipelineReport:
        regions, _ordered, channels, pipes = self.graph._validate()
        region_reports = {
            r.name: r._report(region_done.get(r.name, cycles))
            for r in regions
        }
        stats = _ProcessStatsMap(
            (p.name, p.stats) for r in regions for p in r.processes
        )
        for i, channel in enumerate(channels):
            stats[f"__memory_channel_{i}__"] = channel.stats
        pipe_stats = {
            pipe.name: {
                "depth": pipe.depth,
                "high_water": pipe.high_water,
                "total_writes": pipe.total_writes,
                "total_reads": pipe.total_reads,
                "write_stalls": pipe.write_stalls,
                "read_stalls": pipe.read_stalls,
            }
            for pipe in pipes
        }
        return PipelineReport(
            cycles=cycles,
            mode=mode,
            region_reports=region_reports,
            region_done_cycles=dict(region_done),
            pipe_stats=pipe_stats,
            process_stats=stats,
        )
