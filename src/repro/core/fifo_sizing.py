"""Stream (FIFO) depth sizing from simulation statistics.

HLS streams default to a depth of 2; undersized FIFOs turn the Fig 3
overlap into lockstep-like stalling, oversized ones burn BRAM (the
Table II budget).  This advisor runs a region at candidate depths and
reports, per stream, the observed high-water mark, the producer's
backpressure stalls and the runtime — then recommends the smallest
depth within a chosen slowdown tolerance of the deepest configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.dataflow import RegionReport

__all__ = ["DepthPoint", "SizingResult", "advise_stream_depth"]


@dataclass(frozen=True)
class DepthPoint:
    """Measurements at one candidate depth."""

    depth: int
    cycles: int
    max_high_water: int
    total_write_stalls: int


@dataclass
class SizingResult:
    """Sweep outcome plus the recommendation."""

    points: list[DepthPoint]
    recommended_depth: int
    tolerance: float

    def table(self) -> list[list]:
        return [
            [p.depth, p.cycles, p.max_high_water, p.total_write_stalls]
            for p in self.points
        ]


def advise_stream_depth(
    build_region: Callable[[int], "object"],
    depths: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    tolerance: float = 0.02,
) -> SizingResult:
    """Sweep FIFO depths and recommend the smallest adequate one.

    Parameters
    ----------
    build_region:
        ``build_region(depth) -> DataflowRegion`` — must construct a
        fresh region whose streams all use the candidate depth.
    depths:
        Candidate depths, ascending.
    tolerance:
        Acceptable runtime slack vs the deepest candidate (e.g. 0.02 =
        within 2 %).
    """
    if not depths or list(depths) != sorted(set(depths)):
        raise ValueError("depths must be ascending and unique")
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    points: list[DepthPoint] = []
    for depth in depths:
        region = build_region(depth)
        report: RegionReport = region.run()
        highs = [s["high_water"] for s in report.stream_stats.values()]
        stalls = [s["write_stalls"] for s in report.stream_stats.values()]
        points.append(
            DepthPoint(
                depth=depth,
                cycles=report.cycles,
                max_high_water=max(highs, default=0),
                total_write_stalls=sum(stalls),
            )
        )
    best_cycles = points[-1].cycles
    recommended = points[-1].depth
    for p in points:
        if p.cycles <= best_cycles * (1.0 + tolerance):
            recommended = p.depth
            break
    return SizingResult(
        points=points, recommended_depth=recommended, tolerance=tolerance
    )
