"""Adapted Mersenne-Twister blocks for the pipelined kernel (Listing 3).

The paper's third trick: the three Mersenne-Twisters inside the gamma
pipeline must "stop" whenever an upstream rejection would otherwise
discard one of their outputs — but a *conditionally executed* state
update inside an II=1 pipeline creates a loop-carried dependency the
scheduler cannot hide.  The adapted implementation instead lets the
block "run continuously, using an external flag to enable the internal
state update": the output is computed every cycle, and the state index
advances only when the flag is set.

Two models are provided:

* :class:`AdaptedMT` — the paper's design; gating is free (II stays 1).
* :class:`NaiveGatedMT` — the unmodified block, for the ablation
  benchmark: every *disabled* step forces a pipeline bubble, so the
  effective cost of a gated step is ``1 + bubble_cycles``.
"""

from __future__ import annotations

from repro.rng.mersenne import MersenneTwister, MTParams, MT19937_PARAMS

__all__ = ["AdaptedMT", "NaiveGatedMT"]


class AdaptedMT:
    """Enable-gated Mersenne-Twister with II=1 regardless of the gate.

    Thin stateful façade over :class:`~repro.rng.mersenne.MersenneTwister`
    that also counts enabled/held steps for the throughput reports.
    """

    #: extra pipeline cycles a gated (enable=False) step costs — none,
    #: which is the whole point of the Listing 3 modification
    bubble_cycles = 0

    def __init__(self, params: MTParams = MT19937_PARAMS, seed: int = 5489):
        self._mt = MersenneTwister(params, seed=seed)
        self.steps = 0
        self.held = 0

    def __call__(self, enable: bool) -> int:
        """One pipeline step: always outputs; advances state iff enabled."""
        self.steps += 1
        if not enable:
            self.held += 1
        return self._mt.next_u32(enable=enable)

    @property
    def params(self) -> MTParams:
        return self._mt.params

    @property
    def hold_fraction(self) -> float:
        """Fraction of steps with the state update suppressed."""
        return self.held / self.steps if self.steps else 0.0


class NaiveGatedMT(AdaptedMT):
    """Unmodified Mersenne-Twister gated by conditional execution.

    Functionally identical output stream, but each *disabled* step models
    the pipeline flush/bubble the conditional state write provokes; the
    kernel adds :attr:`bubble_cycles` stall cycles whenever it gates this
    block.  Used only by the ablation bench — the paper's design never
    pays this.
    """

    bubble_cycles = 1
