"""Three-stage pricing pipeline: RNG region → pricing region → aggregation.

The paper's kernel ends at device memory: gamma variates stream from
``GammaRNG`` into ``Transfer`` engines.  The natural next step its
conclusion gestures at — and the MKPipe line of work (PAPERS.md) makes
explicit — is *consuming* those variates in further kernels connected
by pipes.  This module builds that workload three ways from one
configuration:

* **pipelined** — three :class:`~repro.core.dataflow.DataflowRegion`\\ s
  (RNG, pricing, aggregation) joined by :class:`~repro.core.pipes.Pipe`\\ s
  and co-scheduled by a :class:`~repro.core.pipes.MultiRegionRunner`,
  so stage N+1 consumes tokens while stage N is still producing;
* **fused** — the identical process network inside ONE region (the
  all-in-one-kernel formulation), the numerical-equivalence oracle:
  same processes, same streams-as-plain-``Stream``, same memory layout,
  so device memory and every aggregate must match the pipelined run
  bit for bit;
* **sequential** — each region runs to completion before the next
  starts (host-orchestrated kernel-after-kernel), the no-overlap
  makespan baseline the overlap benchmark divides by.

Per work-item the stages are:

1. :class:`~repro.core.kernel.GammaRNGProcess` streams validated gamma
   variates (the per-sector variance is the sector's volatility);
2. :class:`PricingProcess` reads each variate, prices a call-style
   payoff ``discount * max(gamma - strike, 0)``, and forks the result:
   the price goes down the priced pipe, the raw variate down a local
   stream for archival (the tee is why pricing is its own region —
   one producer, two consumers downstream);
3. an :class:`AggregatingTransferEngine` bursts the priced values to
   device memory while folding them into a running portfolio sum, and
   a plain :class:`~repro.core.transfer.TransferEngine` in the pricing
   region archives the raw variates alongside.

Memory channels are assigned per region via
:attr:`PricingPipelineConfig.channel_affinity`: with ``n_channels=1``
both archival and aggregation traffic arbitrate on one port (the
paper's board); with ``n_channels=2`` and affinity ``(0, 1)`` each
region owns a port — the multi-channel split EXPERIMENTS.md measures
at ~2x on transfer-bound configurations, here promoted to first-class
pipeline configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataflow import DataflowRegion, RegionReport
from repro.core.decoupled import DEFAULT_FREQUENCY_HZ
from repro.core.kernel import GammaKernelConfig, GammaRNGProcess
from repro.core.memory import (
    GlobalMemory,
    MemoryChannel,
    MemoryChannelConfig,
)
from repro.core.pipes import (
    MultiRegionRunner,
    Pipe,
    PipelineGraph,
    PipelineReport,
)
from repro.core.process import NO_SELF_EVENT, Process
from repro.core.stream import Stream
from repro.core.transfer import TransferEngine
from repro.fixedpoint import FLOATS_PER_WORD

__all__ = [
    "AggregatingTransferEngine",
    "PricingPipelineConfig",
    "PricingProcess",
    "PricingResult",
    "build_fused_pricing_region",
    "build_pricing_pipeline",
    "run_pricing_pipeline",
]


class PricingProcess(Process):
    """Price each gamma variate and tee price + raw variate downstream.

    One value per cycle at II=1: read the variate, evaluate the payoff
    combinationally, write the price to ``priced_sink`` and the
    untouched variate to ``raw_sink``.  Either sink refusing leaves the
    value pending (the blocking ``hls::stream`` write freezes the
    pipeline), flushed on later cycles before anything new is read.

    Parameters
    ----------
    name, wid:
        Process identity.
    source:
        Gamma variates from the RNG stage (a Pipe when pipelined).
    priced_sink:
        Priced payoffs toward the aggregation stage.
    raw_sink:
        Raw variates toward the archival engine.
    count:
        Values to process before declaring done (closes both sinks).
    strike, discount:
        Payoff parameters: ``discount * max(value - strike, 0)``.
    """

    def __init__(
        self,
        name: str,
        wid: int,
        source: Stream,
        priced_sink: Stream,
        raw_sink: Stream,
        count: int,
        strike: float = 1.0,
        discount: float = 0.97,
    ):
        super().__init__(name)
        if count < 1:
            raise ValueError("count must be >= 1")
        self.wid = wid
        self.source = source
        self.priced_sink = priced_sink
        self.raw_sink = raw_sink
        self.count = count
        self.strike = strike
        self.discount = discount
        self._emitted = 0
        self._pending: list[tuple[Stream, float]] = []
        self._done = False
        self.prices: list[float] = []
        # fast-path hints describe THIS tick implementation; a subclass
        # overriding tick() falls back to the reference loop
        self._hintable = type(self).tick is PricingProcess.tick

    def inputs(self) -> tuple[Stream, ...]:
        return (self.source,)

    def outputs(self) -> tuple[Stream, ...]:
        return (self.priced_sink, self.raw_sink)

    def done(self) -> bool:
        return self._done

    def price(self, value: float) -> float:
        """The per-variate payoff (combinational in hardware terms)."""
        return self.discount * max(value - self.strike, 0.0)

    # -- cycle-skipping fast path --------------------------------------------------

    def next_event(self, cycle: int) -> int | float | None:
        if not self._hintable or self._done:
            return None
        if self._pending:
            if all(sink.full() for sink, _ in self._pending):
                return NO_SELF_EVENT  # frozen on the blocking writes
            return None  # a flush lands next tick
        if self._emitted >= self.count:
            return None  # done-transition next tick
        if self.source.empty():
            if self.source.drained():
                return None  # early-close transition next tick
            return NO_SELF_EVENT  # starved until the producer acts
        return None

    def skip_cycles(self, cycle: int, count: int) -> None:
        if self._pending:
            # blocked writes: one failing can_write() poll per pending
            # sink per cycle (the sinks are distinct — at most one
            # in-flight value per sink)
            for sink, _ in self._pending:
                sink.credit_write_stalls(count, cycle + count - 1)
            self.stats.cycles += count
            self.stats.stall_cycles += count
            return
        # starved: one failing can_read() poll per skipped cycle
        self.source.credit_read_stalls(count, cycle + count - 1)
        self.stats.cycles += count
        self.stats.stall_cycles += count

    # -- the pipeline --------------------------------------------------------------

    def tick(self, cycle: int) -> bool:
        if self._done:
            return self._account(False)

        # flush values frozen on full sinks before reading anything new
        if self._pending:
            flushed = False
            still: list[tuple[Stream, float]] = []
            for sink, value in self._pending:
                if sink.can_write(cycle):
                    sink.write(value)
                    flushed = True
                else:
                    still.append((sink, value))
            self._pending = still
            return self._account(flushed)

        # quota met, or the producer closed early (limit_max capped it):
        # declare done and propagate the close downstream
        if self._emitted >= self.count or self.source.drained():
            self._done = True
            self.priced_sink.close()
            self.raw_sink.close()
            return self._account(True)

        if not self.source.can_read(cycle):
            return self._account(False)
        value = self.source.read()
        priced = self.price(value)
        self.prices.append(priced)
        self._emitted += 1
        self.stats.iterations += 1
        for sink, token in (
            (self.priced_sink, priced),
            (self.raw_sink, value),
        ):
            if sink.can_write(cycle):
                sink.write(token)
            else:
                self._pending.append((sink, token))
        return self._account(True)


class AggregatingTransferEngine(TransferEngine):
    """Transfer engine that folds each value into a running sum.

    Overrides only the :meth:`~repro.core.transfer.TransferEngine._ingest`
    hook — the aggregation is combinational alongside the pack, so the
    cycle behavior (and therefore the inherited fast-path hints, which
    guard on ``tick`` identity) is untouched.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.total = 0.0
        self.values = 0

    def _ingest(self, value: float) -> float:
        self.total += value
        self.values += 1
        return value


@dataclass(frozen=True)
class PricingPipelineConfig:
    """Static configuration of the three-stage pricing workload."""

    n_work_items: int = 2
    kernel: GammaKernelConfig = field(
        default_factory=lambda: GammaKernelConfig(limit_main=64)
    )
    burst_words: int = 4  # LTRANSF of both archival and aggregation engines
    #: depth of the inter-region pipes (gamma and priced)
    pipe_depth: int = 16
    #: depth of the intra-region raw-archive stream
    stream_depth: int = 16
    channel: MemoryChannelConfig = field(default_factory=MemoryChannelConfig)
    n_channels: int = 1
    #: channel index per memory-using region: ``(pricing_archive,
    #: aggregation)`` — ``(0, 0)`` shares one port across regions,
    #: ``(0, 1)`` with ``n_channels=2`` gives each region its own
    channel_affinity: tuple[int, int] = (0, 0)
    strike: float = 1.0
    discount: float = 0.97
    frequency_hz: float = DEFAULT_FREQUENCY_HZ

    def __post_init__(self):
        if self.n_work_items < 1:
            raise ValueError("need at least one work-item")
        if self.n_channels < 1:
            raise ValueError("need at least one memory channel")
        if self.pipe_depth < 1:
            raise ValueError("pipe_depth must be >= 1")
        if len(self.channel_affinity) != 2:
            raise ValueError(
                "channel_affinity must name (pricing, aggregation) channels"
            )
        if any(
            not 0 <= idx < self.n_channels for idx in self.channel_affinity
        ):
            raise ValueError(
                f"channel_affinity {self.channel_affinity} out of range for "
                f"{self.n_channels} channel(s)"
            )
        values_per_burst = self.burst_words * FLOATS_PER_WORD
        if self.kernel.limit_main % values_per_burst:
            raise ValueError(
                f"limit_main ({self.kernel.limit_main}) must be a multiple "
                f"of the values per burst ({values_per_burst})"
            )

    @property
    def bursts_per_sector(self) -> int:
        return self.kernel.limit_main // (self.burst_words * FLOATS_PER_WORD)

    @property
    def words_per_item(self) -> int:
        """Device-memory block per engine (blockOffset)."""
        return self.kernel.sectors * self.bursts_per_sector * self.burst_words

    @property
    def total_words(self) -> int:
        """Priced block (front half) + raw-archive block (back half)."""
        return 2 * self.n_work_items * self.words_per_item

    @property
    def outputs_per_item(self) -> int:
        return self.kernel.total_outputs

    @property
    def sequential_pipe_depth(self) -> int:
        """Pipe depth that lets :meth:`MultiRegionRunner.run_sequential`
        complete: each stage's full output must fit in its pipe."""
        return max(self.pipe_depth, self.outputs_per_item)


@dataclass
class _PipelineBuild:
    """All the live objects of one built pipeline (any mode)."""

    config: PricingPipelineConfig
    memory: GlobalMemory
    channels: list[MemoryChannel]
    kernels: list[GammaRNGProcess]
    pricers: list[PricingProcess]
    aggregate_engines: list[AggregatingTransferEngine]
    archive_engines: list[TransferEngine]
    graph: PipelineGraph | None = None
    region: DataflowRegion | None = None

    @property
    def runner(self) -> MultiRegionRunner:
        if self.graph is None:
            raise ValueError("fused build has no pipeline graph")
        return MultiRegionRunner(self.graph)


def _build(
    config: PricingPipelineConfig,
    *,
    pipelined: bool,
    pipe_depth: int | None = None,
) -> _PipelineBuild:
    depth = config.pipe_depth if pipe_depth is None else pipe_depth
    link_cls = Pipe if pipelined else Stream
    memory = GlobalMemory(config.total_words)
    channels = [
        MemoryChannel(config.channel, memory)
        for _ in range(config.n_channels)
    ]
    archive_channel = channels[config.channel_affinity[0]]
    aggregate_channel = channels[config.channel_affinity[1]]

    kernels: list[GammaRNGProcess] = []
    pricers: list[PricingProcess] = []
    aggregate_engines: list[AggregatingTransferEngine] = []
    archive_engines: list[TransferEngine] = []
    for wid in range(config.n_work_items):
        gamma = link_cls(f"gammaPipe{wid}", depth=depth)
        priced = link_cls(f"pricedPipe{wid}", depth=depth)
        raw = Stream(f"rawStream{wid}", depth=config.stream_depth)
        kernels.append(
            GammaRNGProcess(f"GammaRNG{wid}", wid, config.kernel, gamma)
        )
        pricers.append(
            PricingProcess(
                f"Pricer{wid}",
                wid,
                gamma,
                priced,
                raw,
                count=config.outputs_per_item,
                strike=config.strike,
                discount=config.discount,
            )
        )
        # priced payoffs land in the front half of device memory …
        aggregate_engines.append(
            AggregatingTransferEngine(
                f"Aggregate{wid}",
                wid,
                priced,
                aggregate_channel,
                burst_words=config.burst_words,
                bursts_per_sector=config.bursts_per_sector,
                sectors=config.kernel.sectors,
                block_offset=config.words_per_item,
            )
        )
        # … raw variates in the back half (wid offset past all priced)
        archive_engines.append(
            TransferEngine(
                f"Archive{wid}",
                config.n_work_items + wid,
                raw,
                archive_channel,
                burst_words=config.burst_words,
                bursts_per_sector=config.bursts_per_sector,
                sectors=config.kernel.sectors,
                block_offset=config.words_per_item,
            )
        )

    build = _PipelineBuild(
        config=config,
        memory=memory,
        channels=channels,
        kernels=kernels,
        pricers=pricers,
        aggregate_engines=aggregate_engines,
        archive_engines=archive_engines,
    )
    if pipelined:
        graph = PipelineGraph("pricing_pipeline")
        rng = DataflowRegion("rng")
        for kernel in kernels:
            rng.add(kernel)
        pricing = DataflowRegion("pricing")
        for pricer, archive in zip(pricers, archive_engines):
            pricing.add(pricer)
            pricing.add(archive)
        pricing.attach_memory_channel(archive_channel)
        aggregation = DataflowRegion("aggregation")
        for engine in aggregate_engines:
            aggregation.add(engine)
        aggregation.attach_memory_channel(aggregate_channel)
        graph.add_region(rng)
        graph.add_region(pricing)
        graph.add_region(aggregation)
        build.graph = graph
    else:
        region = DataflowRegion("pricing_fused")
        for procs in (kernels, pricers, aggregate_engines, archive_engines):
            for proc in procs:
                region.add(proc)
        seen: set[int] = set()
        for channel in (archive_channel, aggregate_channel):
            if id(channel) not in seen:
                seen.add(id(channel))
                region.attach_memory_channel(channel)
        build.region = region
    return build


def build_pricing_pipeline(
    config: PricingPipelineConfig, *, pipe_depth: int | None = None
) -> _PipelineBuild:
    """Three pipe-connected regions ready for a :class:`MultiRegionRunner`.

    ``pipe_depth`` overrides the config's inter-region pipe depth (the
    sequential baseline needs :attr:`~PricingPipelineConfig.sequential_pipe_depth`).
    """
    return _build(config, pipelined=True, pipe_depth=pipe_depth)


def build_fused_pricing_region(
    config: PricingPipelineConfig,
) -> _PipelineBuild:
    """The identical process network inside one DATAFLOW region.

    Same processes, same FIFO depths, same memory layout — only the
    region structure differs, so every numeric output must match the
    pipelined run exactly (the equivalence oracle in tests/core).
    """
    return _build(config, pipelined=False)


@dataclass
class PricingResult:
    """Outcome of one pricing-pipeline run (any mode)."""

    mode: str  # "pipelined" | "sequential" | "fused"
    config: PricingPipelineConfig
    report: "PipelineReport | RegionReport"
    build: _PipelineBuild
    skipped_cycles: int

    @property
    def cycles(self) -> int:
        return self.report.cycles

    @property
    def runtime_ms(self) -> float:
        return self.report.runtime_ms(self.config.frequency_hz)

    @property
    def memory(self) -> GlobalMemory:
        return self.build.memory

    def priced(self, wid: int | None = None) -> np.ndarray:
        """Priced payoffs read back from device memory (front half)."""
        cfg = self.config
        if wid is None:
            return np.concatenate(
                [self.priced(w) for w in range(cfg.n_work_items)]
            )
        if not 0 <= wid < cfg.n_work_items:
            raise IndexError(f"work-item id {wid} out of range")
        return self.memory.read_floats(
            wid * cfg.words_per_item, cfg.outputs_per_item
        )

    def raw(self, wid: int | None = None) -> np.ndarray:
        """Archived raw variates read back from device memory (back half)."""
        cfg = self.config
        if wid is None:
            return np.concatenate(
                [self.raw(w) for w in range(cfg.n_work_items)]
            )
        if not 0 <= wid < cfg.n_work_items:
            raise IndexError(f"work-item id {wid} out of range")
        return self.memory.read_floats(
            (cfg.n_work_items + wid) * cfg.words_per_item,
            cfg.outputs_per_item,
        )

    @property
    def aggregate_totals(self) -> list[float]:
        """Per-work-item running portfolio sums (full-precision doubles,
        folded in stream order by the aggregation engines)."""
        return [e.total for e in self.build.aggregate_engines]

    @property
    def portfolio_total(self) -> float:
        return sum(self.aggregate_totals)


def run_pricing_pipeline(
    config: PricingPipelineConfig,
    mode: str = "pipelined",
    max_cycles: int = 100_000_000,
    *,
    fast_path: bool | None = None,
) -> PricingResult:
    """Build and run the workload in one of the three modes.

    ``"pipelined"`` co-schedules the three regions on one clock;
    ``"sequential"`` runs them one at a time with pipes deepened to
    :attr:`~PricingPipelineConfig.sequential_pipe_depth` (the honest
    no-overlap baseline needs every in-flight token to fit);
    ``"fused"`` runs the identical network as one region.
    """
    if mode == "fused":
        build = build_fused_pricing_region(config)
        report = build.region.run(max_cycles=max_cycles, fast_path=fast_path)
        skipped = build.region.skipped_cycles
    elif mode in ("pipelined", "sequential"):
        depth = (
            config.sequential_pipe_depth if mode == "sequential" else None
        )
        build = build_pricing_pipeline(config, pipe_depth=depth)
        runner = build.runner
        if mode == "sequential":
            report = runner.run_sequential(
                max_cycles=max_cycles, fast_path=fast_path
            )
        else:
            report = runner.run(max_cycles=max_cycles, fast_path=fast_path)
        skipped = runner.skipped_cycles
    else:
        raise ValueError(
            f"unknown mode {mode!r}; pick pipelined, sequential or fused"
        )
    return PricingResult(
        mode=mode,
        config=config,
        report=report,
        build=build,
        skipped_cycles=skipped,
    )
