"""`serve-bench` and `chaos`: engine throughput and resilience drivers.

``run_serve_bench`` builds a deterministic mix of gamma-draw jobs and
runs them twice —

1. **serial** — one device, one job per transaction (the host behaviour
   every pre-engine experiment in this repo uses), then
2. **engine** — bounded admission, batching, N device workers —

and reports job throughput on the modeled device timeline (jobs per
simulated device-second of makespan), which is deterministic and
directly comparable: the same job set, the same timing models, only the
serving architecture differs.  This is the host-level rerun of the
paper's core claim: keeping every pipeline busy and amortizing fixed
transaction costs moves the bound from per-request latency to sustained
throughput.

``run_chaos`` runs the same job mix through a seeded
:class:`~repro.engine.resilience.FaultPlan` — one worker killed
mid-run, a fraction of batches wedged, a fraction of jobs failed — and
reports how the resilience layer (deadlines, retries, circuit
breakers) kept every job terminating with a result or a typed error.
Both drivers accept ``faults`` as a :class:`FaultPlan`, a plan dict, or
a path to a plan JSON file (the ``--faults PLAN.json`` CLI hook).
"""

from __future__ import annotations

import os

from repro.engine.engine import ExecutionEngine, JobFailed, serial_baseline
from repro.engine.jobs import GammaJob, Job
from repro.engine.queue import EngineError
from repro.engine.resilience import (
    FaultPlan,
    FaultRule,
    JobDeadlineExceeded,
    RetryPolicy,
    WorkerFault,
)
from repro.harness.experiments import ExperimentResult

__all__ = [
    "default_chaos_plan",
    "make_job_mix",
    "run_chaos",
    "run_serve_bench",
]

#: environment hook the CI chaos job uses to pin the plan seed
CHAOS_SEED_ENV = "REPRO_CHAOS_SEED"
_DEFAULT_CHAOS_SEED = 20170529


def _resolve_plan(faults) -> FaultPlan | None:
    """Accept a FaultPlan, a plan dict, or a path to a plan JSON file."""
    if faults is None or isinstance(faults, FaultPlan):
        return faults
    if isinstance(faults, dict):
        return FaultPlan.from_dict(faults)
    if isinstance(faults, (str, os.PathLike)):
        return FaultPlan.from_json(os.fspath(faults))
    raise TypeError(
        f"faults must be a FaultPlan, dict or path, got {type(faults).__name__}"
    )


def make_job_mix(
    n_jobs: int = 64,
    n_samples: int = 2048,
    config: str = "Config1",
    variances: tuple[float, ...] = (1.39, 0.35),
    base_seed: int = 20170529,
) -> list[Job]:
    """A deterministic job mix: ``n_jobs`` gamma draws over the variances.

    Alternating variances produce several batch keys, so the bench
    exercises coalescing (same-key runs merge) and key separation
    (different keys never share a batch).
    """
    return [
        GammaJob(
            config=config,
            variance=variances[i % len(variances)],
            n_samples=n_samples,
            seed=base_seed + i,
        )
        for i in range(n_jobs)
    ]


def run_serve_bench(
    n_jobs: int = 64,
    n_samples: int = 2048,
    n_workers: int = 2,
    max_batch: int = 8,
    policy: str = "fifo",
    queue_depth: int = 64,
    faults=None,
    deadline_s: float | None = None,
    retry: RetryPolicy | None = None,
) -> ExperimentResult:
    """Serial vs engine throughput on the same deterministic job mix.

    With ``faults`` (a :class:`FaultPlan`, plan dict, or plan-JSON
    path) and/or ``deadline_s`` the engine half runs under injected
    faults and per-job deadlines: failed and shed jobs are counted
    instead of raising, and the payload determinism check covers the
    jobs that did complete.
    """
    plan = _resolve_plan(faults)
    serial_jobs = make_job_mix(n_jobs, n_samples)
    engine_jobs = make_job_mix(n_jobs, n_samples)

    serial = serial_baseline(serial_jobs)

    engine = ExecutionEngine(
        n_workers=n_workers,
        queue_depth=queue_depth,
        max_batch=max_batch,
        policy=policy,
        faults=plan,
        default_deadline_s=deadline_s,
        retry=retry,
    )
    failed: dict[str, int] = {}
    with engine:
        if plan is None and deadline_s is None:
            results = engine.run(engine_jobs)
        else:
            handles = [engine.submit(job) for job in engine_jobs]
            results = []
            for handle in handles:
                try:
                    results.append(handle.result(timeout=120.0))
                except EngineError as exc:
                    kind = type(exc).__name__
                    failed[kind] = failed.get(kind, 0) + 1
    stats = engine.stats()

    # determinism spot-check: same seeds => identical payloads
    import numpy as np

    by_id = {r.job_id: r.payload for r in results}
    for s_job, e_job in zip(serial_jobs, engine_jobs):
        if e_job.job_id not in by_id:
            continue  # failed/shed under the fault plan
        if not np.array_equal(s_job.compute(), by_id[e_job.job_id]):
            raise AssertionError(
                "engine payload diverged from the serial payload "
                f"for seed {e_job.seed}"
            )

    speedup = (
        stats.modeled_throughput_jps / serial.modeled_throughput_jps
        if serial.modeled_throughput_jps
        else float("inf")
    )
    rows = [
        [
            "serial",
            1,
            1,
            serial.jobs_completed,
            round(1e3 * serial.modeled_makespan_s, 2),
            round(serial.modeled_throughput_jps, 1),
            1.0,
        ],
        [
            f"engine ({policy})",
            n_workers,
            max_batch,
            stats.jobs_completed,
            round(1e3 * stats.modeled_makespan_s, 2),
            round(stats.modeled_throughput_jps, 1),
            round(speedup, 2),
        ],
    ]
    return ExperimentResult(
        experiment=(
            f"serve-bench: {n_jobs} jobs x {n_samples} gammas, "
            f"{n_workers} devices, batch<= {max_batch}"
        ),
        headers=[
            "mode", "devices", "max batch", "jobs",
            "modeled makespan [ms]", "jobs/s (modeled)", "speedup",
        ],
        rows=rows,
        series={
            "engine": {
                "batches": stats.batches,
                "mean_batch_occupancy": stats.mean_batch_occupancy,
                "queue_high_water": stats.queue.high_water,
                "submit_stalls": stats.queue.write_stalls,
            },
            "engine_stats": stats.to_dict(),
            "serial_stats": serial.to_dict(),
            "metrics": engine.metrics.snapshot(),
            "failed": dict(failed),
        },
        notes=stats.render(),
    )


def default_chaos_plan(seed: int | None = None) -> FaultPlan:
    """The acceptance scenario: kill one of three workers mid-run,
    wedge ~5% of batches briefly, fail ~5% of jobs.

    ``seed`` defaults to the ``REPRO_CHAOS_SEED`` environment variable
    (the CI pin) and then to a fixed constant, so a bare ``python -m
    repro chaos`` replays the same faults every time.
    """
    if seed is None:
        seed = int(os.environ.get(CHAOS_SEED_ENV, _DEFAULT_CHAOS_SEED))
    return FaultPlan(
        rules=[
            # one worker dies after two batches and stays dead
            FaultRule(scope="worker", mode="kill", match="w1", after_batches=2),
            # ~5% of batch attempts wedge briefly (interruptible)
            FaultRule(scope="batch", mode="wedge", probability=0.05, wedge_s=0.15),
            # ~5% of jobs fail wherever they run (keyed on the job seed)
            FaultRule(scope="job", mode="fail", probability=0.05),
        ],
        seed=seed,
    )


def run_chaos(
    n_jobs: int = 96,
    n_samples: int = 1024,
    n_workers: int = 3,
    max_batch: int = 8,
    queue_depth: int = 64,
    deadline_s: float = 20.0,
    faults=None,
    seed: int | None = None,
) -> ExperimentResult:
    """The `chaos` experiment: the engine under a seeded fault plan.

    Runs the serve-bench job mix on three workers while the plan kills
    one mid-run, wedges a fraction of batches and fails a fraction of
    jobs, then reports how every job terminated — completed (possibly
    after retries on a surviving worker), typed injected failure, or
    deadline shed — plus the retry counts and per-worker breaker
    trajectories.  Nothing hangs: that is the property the chaos test
    suite asserts on this driver.
    """
    plan = _resolve_plan(faults)
    if plan is None:
        plan = default_chaos_plan(seed)
        scenario = "kill w1 mid-run, 5% wedge, 5% job fail"
    else:
        scenario = f"custom plan, {len(plan.rules)} rules"
    jobs = make_job_mix(n_jobs, n_samples)
    engine = ExecutionEngine(
        n_workers=n_workers,
        queue_depth=queue_depth,
        max_batch=max_batch,
        policy="least-loaded",
        faults=plan,
        default_deadline_s=deadline_s,
        breaker_config={"failure_threshold": 2, "cooldown_s": 0.2},
    )
    outcomes = {"completed": 0, "injected_fault": 0, "deadline_shed": 0, "other_error": 0}
    with engine:
        handles = []
        for job in jobs:
            try:
                handles.append(engine.submit(job))
            except EngineError:
                outcomes["other_error"] += 1
        for handle in handles:
            try:
                handle.result(timeout=60.0)
                outcomes["completed"] += 1
            except JobDeadlineExceeded:
                outcomes["deadline_shed"] += 1
            except WorkerFault:
                outcomes["injected_fault"] += 1
            except (JobFailed, EngineError):
                outcomes["other_error"] += 1
    stats = engine.stats()

    terminated = sum(outcomes.values())
    rows = [
        [
            n_jobs,
            terminated,
            outcomes["completed"],
            outcomes["injected_fault"],
            outcomes["deadline_shed"],
            outcomes["other_error"],
            stats.retries,
            sum(
                snap.get("times_opened", 0)
                for snap in stats.breakers.values()
            ),
        ]
    ]
    return ExperimentResult(
        experiment=(
            f"chaos: {n_jobs} jobs, {n_workers} workers, fault-plan "
            f"seed {plan.seed} ({scenario})"
        ),
        headers=[
            "jobs", "terminated", "completed", "injected fault",
            "deadline shed", "other", "retries", "breakers opened",
        ],
        rows=rows,
        series={
            "outcomes": dict(outcomes),
            "faults_injected": dict(stats.faults_injected),
            "breakers": {
                name: dict(snap) for name, snap in stats.breakers.items()
            },
            "engine_stats": stats.to_dict(),
            "metrics": engine.metrics.snapshot(),
            "plan": plan.to_dict(),
        },
        notes=stats.render(),
    )
