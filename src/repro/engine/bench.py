"""`serve-bench`: the engine vs serial one-job-at-a-time execution.

Builds a deterministic mix of gamma-draw jobs, runs them twice —

1. **serial** — one device, one job per transaction (the host behaviour
   every pre-engine experiment in this repo uses), then
2. **engine** — bounded admission, batching, N device workers —

and reports job throughput on the modeled device timeline (jobs per
simulated device-second of makespan), which is deterministic and
directly comparable: the same job set, the same timing models, only the
serving architecture differs.  This is the host-level rerun of the
paper's core claim: keeping every pipeline busy and amortizing fixed
transaction costs moves the bound from per-request latency to sustained
throughput.
"""

from __future__ import annotations

from repro.engine.engine import ExecutionEngine, serial_baseline
from repro.engine.jobs import GammaJob, Job
from repro.harness.experiments import ExperimentResult

__all__ = ["make_job_mix", "run_serve_bench"]


def make_job_mix(
    n_jobs: int = 64,
    n_samples: int = 2048,
    config: str = "Config1",
    variances: tuple[float, ...] = (1.39, 0.35),
    base_seed: int = 20170529,
) -> list[Job]:
    """A deterministic job mix: ``n_jobs`` gamma draws over the variances.

    Alternating variances produce several batch keys, so the bench
    exercises coalescing (same-key runs merge) and key separation
    (different keys never share a batch).
    """
    return [
        GammaJob(
            config=config,
            variance=variances[i % len(variances)],
            n_samples=n_samples,
            seed=base_seed + i,
        )
        for i in range(n_jobs)
    ]


def run_serve_bench(
    n_jobs: int = 64,
    n_samples: int = 2048,
    n_workers: int = 2,
    max_batch: int = 8,
    policy: str = "fifo",
    queue_depth: int = 64,
) -> ExperimentResult:
    """Serial vs engine throughput on the same deterministic job mix."""
    serial_jobs = make_job_mix(n_jobs, n_samples)
    engine_jobs = make_job_mix(n_jobs, n_samples)

    serial = serial_baseline(serial_jobs)

    engine = ExecutionEngine(
        n_workers=n_workers,
        queue_depth=queue_depth,
        max_batch=max_batch,
        policy=policy,
    )
    with engine:
        results = engine.run(engine_jobs)
    stats = engine.stats()

    # determinism spot-check: same seeds => identical payloads
    import numpy as np

    by_id = {r.job_id: r.payload for r in results}
    for s_job, e_job in zip(serial_jobs, engine_jobs):
        if not np.array_equal(s_job.compute(), by_id[e_job.job_id]):
            raise AssertionError(
                "engine payload diverged from the serial payload "
                f"for seed {e_job.seed}"
            )

    speedup = (
        stats.modeled_throughput_jps / serial.modeled_throughput_jps
        if serial.modeled_throughput_jps
        else float("inf")
    )
    rows = [
        [
            "serial",
            1,
            1,
            serial.jobs_completed,
            round(1e3 * serial.modeled_makespan_s, 2),
            round(serial.modeled_throughput_jps, 1),
            1.0,
        ],
        [
            f"engine ({policy})",
            n_workers,
            max_batch,
            stats.jobs_completed,
            round(1e3 * stats.modeled_makespan_s, 2),
            round(stats.modeled_throughput_jps, 1),
            round(speedup, 2),
        ],
    ]
    return ExperimentResult(
        experiment=(
            f"serve-bench: {n_jobs} jobs x {n_samples} gammas, "
            f"{n_workers} devices, batch<= {max_batch}"
        ),
        headers=[
            "mode", "devices", "max batch", "jobs",
            "modeled makespan [ms]", "jobs/s (modeled)", "speedup",
        ],
        rows=rows,
        series={
            "engine": {
                "batches": stats.batches,
                "mean_batch_occupancy": stats.mean_batch_occupancy,
                "queue_high_water": stats.queue.high_water,
                "submit_stalls": stats.queue.write_stalls,
            },
            "engine_stats": stats.to_dict(),
            "serial_stats": serial.to_dict(),
            "metrics": engine.metrics.snapshot(),
        },
        notes=stats.render(),
    )
