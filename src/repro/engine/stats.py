"""Engine accounting: per-job latency records and the aggregate report.

Every completed job contributes one :class:`JobRecord` (queue wait,
service, total latency, batch occupancy, worker, modeled device time);
:class:`EngineStats` aggregates them together with the bounded queue's
:class:`repro.core.FifoStats` snapshot and each worker's simulated
device timeline.  Throughput comes in two flavours:

* **wall throughput** — jobs per real second, what a load generator
  observes;
* **modeled throughput** — jobs per simulated device-second of the
  busiest worker (the makespan on the modeled hardware), which is what
  the paper's timing models predict and what the benchmark asserts on
  (deterministic, immune to host scheduling noise).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.core.stream import FifoStats
from repro.obs.percentiles import summarize as _summarize

__all__ = ["JobRecord", "WorkerStats", "EngineStats", "summarize"]


@dataclass(frozen=True)
class JobRecord:
    """Latency/accounting record of one completed job."""

    job_id: int
    worker: str
    batch_id: int
    batch_size: int
    queue_wait_s: float
    service_s: float
    total_s: float
    device_seconds: float


@dataclass(frozen=True)
class WorkerStats:
    """One device worker's share of the run."""

    name: str
    device: str
    jobs: int
    batches: int
    device_busy_s: float  # simulated device-timeline occupancy


@dataclass
class EngineStats:
    """Aggregate report of one engine run."""

    jobs_completed: int
    jobs_shed: int
    batches: int
    mean_batch_occupancy: float
    max_batch_occupancy: int
    queue_wait_s: dict[str, float]  # mean/p50/p95/p99/max over jobs
    service_s: dict[str, float]
    total_s: dict[str, float]
    wall_seconds: float
    modeled_makespan_s: float  # busiest worker's simulated timeline
    modeled_device_seconds: float  # summed over all workers
    queue: FifoStats
    jobs_deadline_shed: int = 0  # handles failed with JobDeadlineExceeded
    retries: int = 0  # job re-dispatches after worker faults
    breakers: dict = field(default_factory=dict)  # worker -> breaker snapshot
    faults_injected: dict = field(default_factory=dict)  # mode -> count
    workers: list[WorkerStats] = field(default_factory=list)
    records: list[JobRecord] = field(default_factory=list)
    #: slowest-K completed jobs with their trace ids (traced runs only):
    #: [{total_s, job_id, trace_id, worker, batch_id}], slowest first —
    #: the debuggable handle behind a BENCH p99 row
    latency_exemplars: list[dict] = field(default_factory=list)
    #: head-sampling rate of the request log that produced the
    #: exemplars (None = request tracing was off)
    trace_sampling: float | None = None

    # -- derived ----------------------------------------------------------------

    @property
    def wall_throughput_jps(self) -> float:
        """Jobs per real second."""
        return self.jobs_completed / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def modeled_throughput_jps(self) -> float:
        """Jobs per simulated device-second of makespan (deterministic)."""
        if not self.modeled_makespan_s:
            return 0.0
        return self.jobs_completed / self.modeled_makespan_s

    def to_dict(self, include_records: bool = False) -> dict:
        """Plain-dict form for ``--json`` output and trace/metrics sinks.

        Per-job records are omitted unless asked for — they dominate the
        payload size and most consumers only want the aggregates.
        """
        out = {
            "jobs_completed": self.jobs_completed,
            "jobs_shed": self.jobs_shed,
            "batches": self.batches,
            "mean_batch_occupancy": self.mean_batch_occupancy,
            "max_batch_occupancy": self.max_batch_occupancy,
            "queue_wait_s": dict(self.queue_wait_s),
            "service_s": dict(self.service_s),
            "total_s": dict(self.total_s),
            "wall_seconds": self.wall_seconds,
            "modeled_makespan_s": self.modeled_makespan_s,
            "modeled_device_seconds": self.modeled_device_seconds,
            "wall_throughput_jps": self.wall_throughput_jps,
            "modeled_throughput_jps": self.modeled_throughput_jps,
            "queue": self.queue.to_dict(),
            "jobs_deadline_shed": self.jobs_deadline_shed,
            "retries": self.retries,
            "breakers": {name: dict(snap) for name, snap in self.breakers.items()},
            "faults_injected": dict(self.faults_injected),
            "workers": [asdict(w) for w in self.workers],
            "latency_exemplars": [dict(e) for e in self.latency_exemplars],
            "trace_sampling": self.trace_sampling,
        }
        if include_records:
            out["records"] = [asdict(r) for r in self.records]
        return out

    def render(self) -> str:
        lines = [
            f"jobs: {self.jobs_completed} completed, {self.jobs_shed} shed, "
            f"{self.batches} batches "
            f"(occupancy mean {self.mean_batch_occupancy:.2f}, "
            f"max {self.max_batch_occupancy})",
            f"queue: depth {self.queue.depth}, "
            f"high-water {self.queue.high_water}, "
            f"submit stalls {self.queue.write_stalls}, "
            f"empty polls {self.queue.read_stalls}",
            f"latency [ms]: wait {1e3 * self.queue_wait_s['mean']:.2f} "
            f"(p95 {1e3 * self.queue_wait_s['p95']:.2f}, "
            f"p99 {1e3 * self.queue_wait_s.get('p99', 0.0):.2f}), "
            f"service {1e3 * self.service_s['mean']:.2f}, "
            f"total {1e3 * self.total_s['mean']:.2f} "
            f"(p99 {1e3 * self.total_s.get('p99', 0.0):.2f})",
            f"modeled: makespan {1e3 * self.modeled_makespan_s:.2f} ms, "
            f"throughput {self.modeled_throughput_jps:.1f} jobs/s",
        ]
        if self.jobs_deadline_shed or self.retries or self.faults_injected:
            faults = (
                ", ".join(
                    f"{mode} x{count}"
                    for mode, count in sorted(self.faults_injected.items())
                )
                or "none"
            )
            lines.append(
                f"resilience: {self.jobs_deadline_shed} deadline shed, "
                f"{self.retries} retries, faults injected: {faults}"
            )
        for name, snap in sorted(self.breakers.items()):
            if not snap.get("transitions"):
                continue
            lines.append(
                f"  breaker {name}: {snap.get('state')}, "
                f"opened {snap.get('times_opened', 0)}x, "
                f"{snap.get('failures', 0)} failures / "
                f"{snap.get('successes', 0)} successes"
            )
        for w in self.workers:
            lines.append(
                f"  worker {w.name} [{w.device}]: {w.jobs} jobs in "
                f"{w.batches} batches, device busy "
                f"{1e3 * w.device_busy_s:.2f} ms"
            )
        return "\n".join(lines)


def summarize(values: list[float]) -> dict[str, float]:
    """mean/p50/p95/p99/max summary of a latency series (empty-safe).

    Delegates to the shared interpolated-percentile estimator in
    :mod:`repro.obs.percentiles`: ``p50`` is the true median (the old
    upper-median index was biased high on even-length series) and
    ``p95`` interpolates instead of rounding up to the maximum on short
    series (``int(0.95 * n)`` hit the max for any ``n <= 20``).
    """
    return _summarize(values)
