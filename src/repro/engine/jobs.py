"""Simulation jobs: the engine's unit of admission and batching.

A *job* is one self-contained simulation request — "draw N gamma
variates under Table I configuration X", "price this CreditRisk+
portfolio" — carrying its own deterministic seed.  Jobs are the serving
layer's analogue of the paper's work-items: independent streams of work
that the engine keeps decoupled (each computes from its own seed, so
results never depend on scheduling) while sharing the device resources
behind bounded FIFOs.

Each job exposes three facets the engine needs:

* :meth:`Job.batch_key` — jobs with equal keys are *compatible* and may
  be coalesced into one device batch, mirroring how §III-E combines the
  per-work-item buffers into one device buffer;
* :meth:`Job.compute` — the functional payload, a pure function of the
  job's seed (this is what makes results reproducible regardless of
  worker count);
* :meth:`Job.device_seconds` — the modeled kernel time this job
  occupies on the worker's device model, which drives the simulated
  device timeline and the throughput accounting.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Hashable

import numpy as np

from repro.devices import FixedArchitectureModel, FpgaModel, measured_path_rates
from repro.finance.montecarlo import MonteCarloEngine
from repro.finance.portfolio import Portfolio
from repro.harness.configs import CONFIGURATIONS
from repro.rng.gamma import gamma_samples

__all__ = ["Job", "GammaJob", "PortfolioJob", "JobResult"]

_job_ids = itertools.count(1)
_job_ids_lock = threading.Lock()


def _next_job_id() -> int:
    with _job_ids_lock:
        return next(_job_ids)


@dataclass
class Job:
    """Base class: one simulation request with a deterministic seed.

    Subclasses define the payload.  ``job_id`` is assigned automatically
    and unique per process; ``seed`` fully determines :meth:`compute`.

    ``deadline_s`` is the job's end-to-end latency budget, measured
    from admission: once it elapses the job is shed with the typed
    :class:`repro.engine.resilience.JobDeadlineExceeded` wherever it
    happens to be — waiting in the queue, lingering in a partial batch,
    or dispatched to a wedged worker — instead of occupying capacity.
    ``None`` (the default) means no deadline.  The engine stamps the
    absolute ``deadline_at`` (monotonic seconds) at admission; every
    later stage compares against that single value, so the budget never
    resets as the job moves through the pipeline.
    """

    seed: int = 7
    deadline_s: float | None = None
    job_id: int = field(default_factory=_next_job_id, init=False)
    #: absolute monotonic deadline, stamped by the engine at admission
    deadline_at: float | None = field(default=None, init=False, compare=False)
    #: per-request :class:`repro.obs.TraceContext`, attached by the
    #: admission gateway when request tracing is on (None = untraced;
    #: every pipeline hop guards on that one attribute)
    trace: object | None = field(
        default=None, init=False, compare=False, repr=False
    )

    # -- engine contract -----------------------------------------------------------

    def expired(self, now: float | None = None) -> bool:
        """True once the admission-stamped deadline has passed."""
        if self.deadline_at is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline_at

    def batch_key(self) -> Hashable:
        """Coalescing key: equal keys may share one device batch."""
        raise NotImplementedError

    def compute(self) -> Any:
        """Functional payload; must depend only on the job's fields."""
        raise NotImplementedError

    def device_seconds(self, model: FpgaModel | FixedArchitectureModel) -> float:
        """Modeled kernel-execution time on the worker's device model."""
        raise NotImplementedError

    def result_bytes(self) -> int:
        """Device→host readback volume (drives the PCIe timeline)."""
        raise NotImplementedError


@dataclass
class GammaJob(Job):
    """Draw ``n_samples`` gamma variates for one CreditRisk+ sector.

    Parameters
    ----------
    config:
        Table I configuration name; selects the transform whose measured
        rejection rate sets the modeled attempt count.
    variance:
        Sector variance ``v`` (shape ``1/v``, scale ``v``, so E = 1).
    n_samples:
        Output count for this job.
    """

    config: str = "Config1"
    variance: float = 1.39
    n_samples: int = 4096

    def __post_init__(self):
        if self.n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        if self.variance <= 0.0:
            raise ValueError("variance must be positive")
        if self.config not in CONFIGURATIONS:
            raise ValueError(f"unknown configuration {self.config!r}")

    def batch_key(self) -> Hashable:
        return ("gamma", self.config, self.variance)

    def rejection_rate(self) -> float:
        cfg = CONFIGURATIONS[self.config]
        key = (
            "marsaglia_bray"
            if cfg.transform == "marsaglia_bray"
            else "icdf_fpga"
        )
        return 1.0 - measured_path_rates(key, self.variance).combined_accept

    def compute(self) -> np.ndarray:
        return gamma_samples(
            1.0 / self.variance,
            self.n_samples,
            scale=self.variance,
            seed=self.seed,
        ).astype(np.float32)

    def device_seconds(self, model: FpgaModel | FixedArchitectureModel) -> float:
        if isinstance(model, FpgaModel):
            return model.estimate(
                self.n_samples, 1, self.rejection_rate()
            ).seconds
        # fixed platforms: scale the calibrated full-workload estimate is
        # overkill for a single sector draw; bill pipeline attempts at
        # the device clock as a first-order stand-in
        attempts = self.n_samples * (1.0 + self.rejection_rate())
        return attempts / model.device.frequency_hz

    def result_bytes(self) -> int:
        return self.n_samples * 4


@dataclass
class PortfolioJob(Job):
    """Run a CreditRisk+ Monte-Carlo portfolio simulation.

    The sector factors come from the job's own deterministic draw (the
    role the FPGA pipeline plays in the examples); the loss engine is
    :class:`repro.finance.MonteCarloEngine`.

    Parameters
    ----------
    portfolio:
        Obligors and sector universe.
    scenarios:
        Monte-Carlo scenario count.
    portfolio_key:
        Label used for batching: jobs sharing a label (same portfolio
        shape) may coalesce.
    """

    portfolio: Portfolio | None = None
    scenarios: int = 1024
    portfolio_key: str = "default"

    def __post_init__(self):
        if self.portfolio is None:
            raise ValueError("PortfolioJob requires a portfolio")
        if self.scenarios < 1:
            raise ValueError("need at least one scenario")

    def batch_key(self) -> Hashable:
        return ("portfolio", self.portfolio_key)

    def compute(self):
        engine = MonteCarloEngine(self.portfolio, seed=self.seed)
        return engine.run(scenarios=self.scenarios)

    def device_seconds(self, model: FpgaModel | FixedArchitectureModel) -> float:
        sectors = len(self.portfolio.sectors)
        draws = self.scenarios * sectors
        rejection = 1.0 - measured_path_rates(
            "marsaglia_bray", self.portfolio.sectors[0].variance
        ).combined_accept
        if isinstance(model, FpgaModel):
            return model.estimate(draws, sectors, rejection).seconds
        attempts = draws * (1.0 + rejection)
        return attempts / model.device.frequency_hz

    def result_bytes(self) -> int:
        return self.scenarios * 8  # one float64 loss per scenario


@dataclass
class JobResult:
    """Completed job: payload plus the latency/accounting record."""

    job_id: int
    payload: Any
    worker: str
    batch_id: int
    batch_size: int
    queue_wait_s: float  # wall time from submit to batch pickup
    service_s: float  # wall time inside the worker
    total_s: float  # wall time from submit to completion
    device_seconds: float  # modeled device-timeline share of this job
