"""Bounded job queue with backpressure — ``hls::stream`` at the serving layer.

Section III-A introduces blocking bounded FIFOs between decoupled
pipeline stages: a full stream back-pressures the producer, an empty one
stalls the consumer.  The engine admits jobs through the same contract.
A full queue either *blocks* the submitting thread (the hardware
semantics) or *sheds* it with the typed :class:`JobQueueFull` error (the
serving-layer policy a load balancer needs), and the accounting — high
water, stall tallies — lands in the same :class:`repro.core.FifoStats`
dataclass the hardware streams report, so FIFO depth sizing analysis
works identically at both layers.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Hashable

from repro.core.stream import FifoStats
from repro.engine.jobs import Job

__all__ = [
    "BoundedJobQueue",
    "EngineError",
    "JobQueueClosed",
    "JobQueueFull",
    "SubmitTimeout",
]


class EngineError(RuntimeError):
    """Base class of all typed engine errors."""


class JobQueueFull(EngineError):
    """Admission shed: the bounded queue was full under the shed policy."""


class JobQueueClosed(EngineError):
    """Submit after shutdown began (the queue no longer admits work)."""


class SubmitTimeout(EngineError):
    """Blocking admission exceeded its timeout while the queue was full."""


class BoundedJobQueue:
    """Thread-safe bounded FIFO of :class:`Job` entries.

    Parameters
    ----------
    depth:
        Capacity; submissions beyond it experience backpressure.
    name:
        Identifier in stats and error messages.
    """

    def __init__(self, depth: int = 64, name: str = "job_queue"):
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        self.name = name
        self.depth = depth
        self._fifo: deque[Job] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        # accounting (FifoStats vocabulary)
        self.total_writes = 0
        self.total_reads = 0
        self.write_stalls = 0
        self.read_stalls = 0
        self.high_water = 0
        # observability (attach_tracer wires these)
        self.tracer = None
        self._track = None

    def attach_tracer(
        self, tracer, process: str = "engine", thread: str = "admission"
    ) -> None:
        """Emit occupancy counters and shed instants through ``tracer``."""
        self.tracer = tracer
        self._track = tracer.track(process, thread) if tracer.enabled else None

    def _emit_occupancy(self) -> None:
        if self._track is not None:
            self.tracer.counter(
                self._track, "queue_occupancy",
                {"occupancy": len(self._fifo)},
            )

    # -- state ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._fifo)

    @property
    def occupancy(self) -> int:
        return len(self)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def stats(self) -> FifoStats:
        """Snapshot in the shared FIFO-accounting vocabulary."""
        with self._lock:
            return FifoStats(
                name=self.name,
                depth=self.depth,
                occupancy=len(self._fifo),
                total_writes=self.total_writes,
                total_reads=self.total_reads,
                write_stalls=self.write_stalls,
                read_stalls=self.read_stalls,
                high_water=self.high_water,
            )

    # -- producer side ----------------------------------------------------------

    def put(
        self,
        job: Job,
        block: bool = True,
        timeout: float | None = None,
    ) -> None:
        """Admit one job.

        With ``block=True`` a full queue stalls the caller until space
        frees (raising :class:`SubmitTimeout` after ``timeout`` seconds);
        with ``block=False`` it sheds immediately with
        :class:`JobQueueFull`.  Either way the stall is tallied — that is
        the backpressure signal queue-depth sizing reads.
        """
        with self._not_full:
            if self._closed:
                raise JobQueueClosed(f"queue {self.name!r} is closed")
            if len(self._fifo) >= self.depth:
                self.write_stalls += 1
                if not block:
                    if self._track is not None:
                        self.tracer.instant(
                            self._track, "shed",
                            args={"job_id": job.job_id},
                        )
                    raise JobQueueFull(
                        f"queue {self.name!r} full (depth={self.depth}); "
                        "admission shed"
                    )
                deadline = (
                    None if timeout is None else time.monotonic() + timeout
                )
                while len(self._fifo) >= self.depth:
                    # closed wins over an expired timeout: a submitter
                    # racing shutdown sees JobQueueClosed, never a
                    # SubmitTimeout that misreports the queue's state
                    if self._closed:
                        raise JobQueueClosed(
                            f"queue {self.name!r} is closed"
                        )
                    remaining = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        raise SubmitTimeout(
                            f"queue {self.name!r} stayed full for "
                            f"{timeout:.3f}s"
                        )
                    self._not_full.wait(remaining)
                if self._closed:
                    raise JobQueueClosed(f"queue {self.name!r} is closed")
            self._fifo.append(job)
            self.total_writes += 1
            if len(self._fifo) > self.high_water:
                self.high_water = len(self._fifo)
            self._emit_occupancy()
            self._not_empty.notify()

    def close(self) -> None:
        """Stop admitting; pending jobs remain readable (graceful drain).

        Both conditions are notified so that producers blocked in
        :meth:`put` raise :class:`JobQueueClosed` promptly and
        consumers blocked in :meth:`get_batch`/:meth:`get_matching`
        return immediately — nobody hangs until their timeout.
        """
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    # -- consumer side ----------------------------------------------------------

    def get_batch(
        self,
        max_size: int = 1,
        timeout: float | None = None,
    ) -> list[Job]:
        """Pop a batch of *compatible* jobs (equal :meth:`Job.batch_key`).

        Takes the head job, then coalesces up to ``max_size - 1`` more
        jobs with the same key, scanning in FIFO order — the serving
        analogue of §III-E device-level buffer combining: compatible
        requests merge into one device transaction.  Jobs with other
        keys keep their relative order.

        Returns ``[]`` once the queue is closed and drained, or when
        ``timeout`` elapses with nothing available (an empty poll is
        tallied as a read stall, mirroring ``Stream.can_read``).
        """
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        with self._not_empty:
            if not self._fifo:
                if self._closed:
                    return []
                self.read_stalls += 1
                # monotonic deadline (the same pattern as put): each
                # spurious or irrelevant wakeup resumes the *remaining*
                # wait instead of restarting the full timeout, and an
                # early wakeup with nothing available keeps waiting
                # instead of returning a premature empty poll
                deadline = (
                    None if timeout is None else time.monotonic() + timeout
                )
                while not self._fifo and not self._closed:
                    remaining = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        return []
                    self._not_empty.wait(remaining)
                if not self._fifo:
                    return []
            head = self._fifo.popleft()
            batch = [head]
            if max_size > 1:
                key: Hashable = head.batch_key()
                keep: deque[Job] = deque()
                while self._fifo and len(batch) < max_size:
                    job = self._fifo.popleft()
                    if job.batch_key() == key:
                        batch.append(job)
                    else:
                        keep.append(job)
                keep.extend(self._fifo)
                self._fifo = keep
            self.total_reads += len(batch)
            self._emit_occupancy()
            self._not_full.notify_all()
            return batch

    def get_matching(
        self,
        key: Hashable,
        max_size: int,
        timeout: float | None = None,
    ) -> list[Job]:
        """Pop up to ``max_size`` jobs whose batch key equals ``key``.

        Unlike :meth:`get_batch` this never disturbs non-matching jobs
        (the head included) — it is the linger path: top up an open
        batch with late-arriving compatible work.  Returns ``[]`` when
        nothing compatible shows up within ``timeout``.
        """
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        with self._not_empty:
            matched = self._take_matching(key, max_size)
            if not matched and not self._closed:
                self.read_stalls += 1
                # monotonic-deadline retry loop: wakeups for
                # non-matching jobs (or spurious ones) resume the
                # remaining wait rather than restarting the timeout or
                # giving up early with a premature empty result
                deadline = (
                    None if timeout is None else time.monotonic() + timeout
                )
                while not matched and not self._closed:
                    remaining = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        break
                    self._not_empty.wait(remaining)
                    matched = self._take_matching(key, max_size)
            if matched:
                self.total_reads += len(matched)
                self._emit_occupancy()
                self._not_full.notify_all()
            return matched

    def _take_matching(self, key: Hashable, max_size: int) -> list[Job]:
        matched: list[Job] = []
        keep: deque[Job] = deque()
        while self._fifo and len(matched) < max_size:
            job = self._fifo.popleft()
            if job.batch_key() == key:
                matched.append(job)
            else:
                keep.append(job)
        keep.extend(self._fifo)
        self._fifo = keep
        return matched
