"""repro.engine — concurrent multi-device execution engine.

The serving layer of the reproduction: accepts simulation jobs, admits
them through a bounded queue with backpressure (``hls::stream``
semantics at the serving layer, §III-A), coalesces compatible jobs into
device batches (§III-E combining applied to requests), and dispatches
batches across a pool of simulated device workers under a pluggable
scheduling policy.  See ``docs/engine.md`` for the architecture.

* :mod:`repro.engine.jobs` — job types and results,
* :mod:`repro.engine.queue` — the bounded admission queue,
* :mod:`repro.engine.batcher` — request coalescing,
* :mod:`repro.engine.pool` — device workers and scheduling policies,
* :mod:`repro.engine.engine` — the orchestrating ExecutionEngine,
* :mod:`repro.engine.resilience` — fault injection, deadlines,
  retries and circuit breakers (see ``docs/resilience.md``),
* :mod:`repro.engine.stats` — latency/throughput accounting,
* :mod:`repro.engine.bench` — the `serve-bench` and `chaos` drivers.
"""

from repro.engine.batcher import Batch, Batcher
from repro.engine.bench import (
    default_chaos_plan,
    make_job_mix,
    run_chaos,
    run_serve_bench,
)
from repro.engine.engine import (
    ExecutionEngine,
    JobFailed,
    JobHandle,
    serial_baseline,
)
from repro.engine.jobs import GammaJob, Job, JobResult, PortfolioJob
from repro.engine.pool import (
    BatchOutcome,
    DeviceWorker,
    SchedulingPolicy,
    WorkerPool,
    make_policy,
)
from repro.engine.queue import (
    BoundedJobQueue,
    EngineError,
    JobQueueClosed,
    JobQueueFull,
    SubmitTimeout,
)
from repro.engine.resilience import (
    CircuitBreaker,
    FaultPlan,
    FaultRule,
    InjectedFault,
    JobDeadlineExceeded,
    ManualClock,
    RetryPolicy,
    TimerThread,
    WorkerFault,
)
from repro.engine.stats import EngineStats, JobRecord, WorkerStats

__all__ = [
    "Batch",
    "Batcher",
    "BatchOutcome",
    "BoundedJobQueue",
    "CircuitBreaker",
    "DeviceWorker",
    "EngineError",
    "EngineStats",
    "ExecutionEngine",
    "FaultPlan",
    "FaultRule",
    "GammaJob",
    "InjectedFault",
    "Job",
    "JobDeadlineExceeded",
    "JobFailed",
    "JobHandle",
    "JobQueueClosed",
    "JobQueueFull",
    "JobRecord",
    "JobResult",
    "ManualClock",
    "PortfolioJob",
    "RetryPolicy",
    "SchedulingPolicy",
    "SubmitTimeout",
    "TimerThread",
    "WorkerFault",
    "WorkerPool",
    "WorkerStats",
    "default_chaos_plan",
    "make_job_mix",
    "make_policy",
    "run_chaos",
    "run_serve_bench",
    "serial_baseline",
]
