"""Request coalescing: compatible jobs merge into one device batch.

The paper's §III-E weighs N per-work-item buffers (N PCIe round trips)
against one combined device buffer (a single read request) and picks the
latter.  The batcher applies the same economics one level up: jobs whose
:meth:`~repro.engine.jobs.Job.batch_key` match are drained from the
bounded queue together and dispatched as *one* device transaction — one
kernel enqueue, one readback — so the per-request fixed costs (kernel
launch, PCIe latency) amortize across the batch.

An optional *linger* keeps the batcher waiting briefly for more
compatible work when the queue runs dry, trading a bounded latency add
for better occupancy — the knob every serving system exposes.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.engine.jobs import Job
from repro.engine.queue import BoundedJobQueue

__all__ = ["Batch", "Batcher"]

_batch_ids = itertools.count(1)
_batch_ids_lock = threading.Lock()


@dataclass
class Batch:
    """One coalesced device transaction.

    ``attempt`` counts dispatches of this job set (1 = first try;
    retries of a failed attempt re-batch with ``attempt + 1``), and
    ``avoid`` names workers a retry must steer away from (the ones
    that already failed it).
    """

    jobs: list[Job]
    attempt: int = 1
    avoid: frozenset[str] = frozenset()
    batch_id: int = field(
        default_factory=lambda: _next_batch_id(), init=False
    )

    def __post_init__(self):
        if not self.jobs:
            raise ValueError("a batch needs at least one job")

    @property
    def key(self) -> Hashable:
        return self.jobs[0].batch_key()

    @property
    def size(self) -> int:
        return len(self.jobs)

    def result_bytes(self) -> int:
        return sum(job.result_bytes() for job in self.jobs)


def _next_batch_id() -> int:
    with _batch_ids_lock:
        return next(_batch_ids)


class Batcher:
    """Drains a :class:`BoundedJobQueue` into :class:`Batch` objects.

    Parameters
    ----------
    queue:
        The admission queue to drain.
    max_batch:
        Occupancy ceiling per batch; 1 disables coalescing (the serial
        one-job-per-transaction baseline).
    linger_s:
        After a partial drain, wait up to this long for more compatible
        jobs before dispatching (0 disables lingering).  A lingering
        batch never waits past the earliest deadline of the jobs it
        already holds.
    on_expired:
        Called (from the dispatcher thread) with each job whose
        deadline passed while it waited in the queue; expired jobs are
        shed here instead of occupying a batch slot and device time.
    """

    def __init__(
        self,
        queue: BoundedJobQueue,
        max_batch: int = 8,
        linger_s: float = 0.0,
        on_expired: Callable[[Job], None] | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if linger_s < 0:
            raise ValueError("linger_s must be >= 0")
        self.queue = queue
        self.max_batch = max_batch
        self.linger_s = linger_s
        self.on_expired = on_expired
        self.tracer = None
        self._track = None

    def attach_tracer(
        self, tracer, process: str = "engine", thread: str = "batcher"
    ) -> None:
        """Emit a batch-formed instant per coalesced batch."""
        self.tracer = tracer
        self._track = tracer.track(process, thread) if tracer.enabled else None

    def _drop_expired(self, jobs: list[Job]) -> list[Job]:
        """Shed deadline-expired jobs; return the still-live ones."""
        now = time.monotonic()
        live = []
        for job in jobs:
            if job.expired(now):
                if self.on_expired is not None:
                    self.on_expired(job)
            else:
                live.append(job)
        return live

    def next_batch(self, timeout: float | None = 0.1) -> Batch | None:
        """The next coalesced batch, or None when nothing is available.

        Returns None on a timeout with an empty queue, once the queue
        is closed and fully drained (the shutdown signal the dispatcher
        loop watches for), and when everything drained this round had
        already expired (the jobs are shed via ``on_expired`` rather
        than occupying batch slots).
        """
        jobs = self.queue.get_batch(self.max_batch, timeout=timeout)
        if not jobs:
            return None
        jobs = self._drop_expired(jobs)
        if not jobs:
            return None
        if self.linger_s > 0 and len(jobs) < self.max_batch:
            key = jobs[0].batch_key()
            deadline = time.monotonic() + self.linger_s
            # lingering must not push the jobs already on board past
            # their own deadlines
            job_deadlines = [
                j.deadline_at for j in jobs if j.deadline_at is not None
            ]
            if job_deadlines:
                deadline = min(deadline, min(job_deadlines))
            while len(jobs) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                more = self.queue.get_matching(
                    key, self.max_batch - len(jobs), timeout=remaining
                )
                if not more:
                    break
                jobs.extend(self._drop_expired(more))
        batch = Batch(jobs=jobs)
        if self._track is not None:
            self.tracer.instant(
                self._track, "batch_formed",
                args={
                    "batch_id": batch.batch_id,
                    "size": batch.size,
                    "key": str(batch.key),
                },
            )
        return batch
