"""Device worker pool: N simulated accelerators behind one dispatcher.

Each :class:`DeviceWorker` wraps one :class:`repro.harness.KernelSession`
— its own OpenCL context, in-order command queue and device timing model
(:class:`~repro.devices.FpgaModel` for FPGA workers,
:class:`~repro.devices.FixedArchitectureModel` for CPU/GPU/PHI) — and
runs on its own host thread, exactly the decoupled-work-item picture
lifted one level: independent engines fed from bounded FIFOs, stalling
when starved, never interfering with each other's state.

A batch executes as one device transaction on the worker's simulated
timeline: a single kernel enqueue covering every job in the batch
followed by a single combined readback (§III-E device-level combining),
so the per-transaction fixed costs — kernel launch, PCIe round-trip
latency — amortize across the batch occupancy.

The dispatcher chooses the worker per batch through a pluggable
:class:`SchedulingPolicy`:

* ``fifo`` — batches land in a shared run queue; the first worker to go
  idle takes the oldest batch (work-conserving, no placement smarts);
* ``least-loaded`` — the batch goes to the worker whose modeled device
  timeline has the smallest backlog;
* ``device-affinity`` — the batch key hashes to a fixed worker, keeping
  a configuration's jobs on one device (warm state, stable batching).
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.devices import FixedArchitectureModel, FpgaModel
from repro.engine.batcher import Batch
from repro.engine.jobs import Job
from repro.engine.resilience import CircuitBreaker, JobDeadlineExceeded
from repro.harness.configs import CONFIGURATIONS, Configuration
from repro.harness.session import KernelSession
from repro.obs import get_tracer
from repro.opencl import KernelHandle, MemFlag

__all__ = [
    "BatchOutcome",
    "DeviceWorker",
    "SchedulingPolicy",
    "WorkerPool",
    "make_policy",
]


@dataclass
class BatchOutcome:
    """What one batch execution produced, per job plus batch totals."""

    batch: Batch
    worker: str
    payloads: list[Any]  # aligned with batch.jobs
    errors: list[BaseException | None]  # aligned with batch.jobs
    device_seconds: list[float]  # modeled per-job kernel time
    batch_device_seconds: float  # modeled timeline advance of the batch
    service_wall_s: float  # host wall time inside the worker
    #: set when the *worker* (not a job) failed the attempt — the
    #: retryable family the circuit breaker counts
    worker_fault: BaseException | None = None


class DeviceWorker:
    """One simulated accelerator plus the thread that drives it."""

    def __init__(
        self,
        name: str,
        device_name: str = "FPGA",
        config: str | Configuration = "Config1",
    ):
        self.name = name
        self.device_name = device_name
        self.configuration = (
            CONFIGURATIONS[config] if isinstance(config, str) else config
        )
        self.session = KernelSession(device_name, self.configuration)
        if device_name == "FPGA":
            self.model: FpgaModel | FixedArchitectureModel = FpgaModel(
                n_work_items=self.configuration.fpga_work_items
            )
        else:
            self.model = FixedArchitectureModel(
                self.session.context.platform.device(device_name)
            )
        self.jobs_done = 0
        self.batches_done = 0
        self._timeline_lock = threading.Lock()
        #: explicit tracer override; None resolves the global tracer at
        #: execute() time (so `--trace` reaches pre-built workers too)
        self.tracer = None
        #: optional :class:`repro.engine.resilience.FaultPlan`; the
        #: engine wires its plan into every worker it manages
        self.fault_plan = None

    # -- modeled timeline --------------------------------------------------------

    @property
    def device_busy_s(self) -> float:
        """Simulated device-timeline occupancy so far."""
        with self._timeline_lock:
            return self.session.queue.now

    def estimate_batch_seconds(self, batch: Batch) -> float:
        """Modeled cost of a batch on *this* worker (dispatch heuristic)."""
        return sum(job.device_seconds(self.model) for job in batch.jobs)

    # -- execution ---------------------------------------------------------------

    def execute(self, batch: Batch) -> BatchOutcome:
        """Run one batch: compute payloads, advance the device timeline.

        Raises :class:`~repro.engine.resilience.WorkerFault` (via the
        fault plan) when the *worker* fails the whole attempt; job-level
        failures and per-job deadline misses stay isolated in the
        outcome's ``errors``.
        """
        tracer = self.tracer if self.tracer is not None else get_tracer()
        wall0 = time.monotonic()
        if self.fault_plan is not None:
            # may raise InjectedFault (fail/kill), sleep (latency) or
            # hang until released/expired (wedge)
            self.fault_plan.before_batch(self.name, batch, self.batches_done)
        payloads: list[Any] = []
        errors: list[BaseException | None] = []
        device_seconds: list[float] = []
        for job in batch.jobs:
            if job.expired():
                # the deadline passed between dispatch and device
                # execution: shed instead of burning device time
                payloads.append(None)
                device_seconds.append(0.0)
                errors.append(
                    JobDeadlineExceeded(
                        f"job {job.job_id} expired before device "
                        f"execution on worker {self.name!r}"
                    )
                )
                continue
            injected = (
                None
                if self.fault_plan is None
                else self.fault_plan.job_fault(self.name, job)
            )
            if injected is not None:
                payloads.append(None)
                device_seconds.append(0.0)
                errors.append(injected)
                continue
            try:
                payloads.append(job.compute())
                device_seconds.append(job.device_seconds(self.model))
                errors.append(None)
            except Exception as exc:  # job-level fault isolation
                payloads.append(None)
                device_seconds.append(0.0)
                errors.append(exc)
        kernel_s = sum(device_seconds)
        with self._timeline_lock:
            queue = self.session.queue
            t0 = queue.now
            first_event = len(queue.events)
            kernel = KernelHandle(
                name=f"batch{batch.batch_id}_{self.configuration.name}",
                body=None,
                time_model=lambda device, ndrange, **args: kernel_s,
            )
            queue.enqueue_task(kernel)
            nbytes = max(4, -(-batch.result_bytes() // 4) * 4)
            buffer = self.session.context.create_buffer(
                f"batch{batch.batch_id}_result", nbytes, MemFlag.WRITE_ONLY
            )
            queue.enqueue_read_buffer(buffer)
            batch_device_s = queue.finish() - t0
            if tracer.enabled:
                # per-command spans of this batch on the modeled timeline
                queue.export_trace(
                    tracer,
                    process="devices (modeled)",
                    thread=f"{self.name} [{self.device_name}]",
                    events=queue.events[first_event:],
                )
        self.jobs_done += batch.size
        self.batches_done += 1
        if tracer.enabled:
            tracer.complete(
                tracer.track("engine", f"worker:{self.name}"),
                f"batch{batch.batch_id}",
                ts_us=tracer.wall_us(wall0),
                dur_us=(time.monotonic() - wall0) * 1e6,
                args={
                    "jobs": batch.size,
                    "key": str(batch.key),
                    "attempt": batch.attempt,
                },
            )
        return BatchOutcome(
            batch=batch,
            worker=self.name,
            payloads=payloads,
            errors=errors,
            device_seconds=device_seconds,
            batch_device_seconds=batch_device_s,
            service_wall_s=time.monotonic() - wall0,
        )


# ---------------------------------------------------------------------------
# scheduling policies
# ---------------------------------------------------------------------------


class SchedulingPolicy:
    """Chooses the worker for a batch; None means the shared FIFO."""

    name = "base"

    def select(
        self,
        batch: Batch,
        workers: list[DeviceWorker],
        pending_seconds: dict[str, float],
    ) -> DeviceWorker | None:
        raise NotImplementedError


class FifoPolicy(SchedulingPolicy):
    """Shared run queue: the first idle worker takes the oldest batch."""

    name = "fifo"

    def select(self, batch, workers, pending_seconds):
        return None


class LeastLoadedPolicy(SchedulingPolicy):
    """Send the batch to the smallest modeled backlog."""

    name = "least-loaded"

    def select(self, batch, workers, pending_seconds):
        return min(
            workers,
            key=lambda w: w.device_busy_s + pending_seconds[w.name],
        )


class DeviceAffinityPolicy(SchedulingPolicy):
    """Pin each batch key to one worker via a stable hash."""

    name = "device-affinity"

    def select(self, batch, workers, pending_seconds):
        digest = zlib.crc32(repr(batch.key).encode())
        return workers[digest % len(workers)]


_POLICIES = {
    p.name: p for p in (FifoPolicy, LeastLoadedPolicy, DeviceAffinityPolicy)
}


def make_policy(policy: str | SchedulingPolicy) -> SchedulingPolicy:
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return _POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {policy!r}; "
            f"known: {sorted(_POLICIES)}"
        ) from None


# ---------------------------------------------------------------------------
# the pool
# ---------------------------------------------------------------------------


class WorkerPool:
    """Worker threads pulling batches from per-worker and shared inboxes.

    Parameters
    ----------
    workers:
        The device workers (>= 1).
    policy:
        Scheduling policy name or instance.
    on_batch:
        Callback invoked (from the worker thread) with each
        :class:`BatchOutcome`.
    max_inflight:
        Cap on dispatched-but-unfinished batches; :meth:`dispatch`
        blocks at the cap, propagating backpressure to the admission
        queue instead of buffering unboundedly (default: 2 per worker).
    breakers:
        Optional per-worker :class:`repro.engine.resilience.CircuitBreaker`
        map.  When present, every policy consults it: dispatch places
        batches only on workers whose breaker admits them (``fifo``
        workers additionally self-gate at shared-queue pickup), worker
        faults are recorded as failures, successful batches as
        successes.  A batch with no admitting worker waits in the
        shared queue until a breaker half-opens.
    """

    def __init__(
        self,
        workers: list[DeviceWorker],
        policy: str | SchedulingPolicy = "fifo",
        on_batch: Callable[[BatchOutcome], None] | None = None,
        max_inflight: int | None = None,
        breakers: dict[str, CircuitBreaker] | None = None,
    ):
        if not workers:
            raise ValueError("pool needs at least one worker")
        names = [w.name for w in workers]
        if len(set(names)) != len(names):
            raise ValueError(f"worker names must be unique, got {names}")
        self.workers = workers
        self.policy = make_policy(policy)
        self.on_batch = on_batch
        self.max_inflight = (
            2 * len(workers) if max_inflight is None else max_inflight
        )
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if breakers is not None:
            unknown = set(breakers) - {w.name for w in workers}
            if unknown:
                raise ValueError(
                    f"breakers for unknown workers: {sorted(unknown)}"
                )
        self.breakers = breakers or {}
        self._auto_inflight = max_inflight is None
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._shared: deque[Batch] = deque()
        self._private: dict[str, deque[Batch]] = {w.name: deque() for w in workers}
        self._pending_seconds: dict[str, float] = {w.name: 0.0 for w in workers}
        #: names drained out of scheduling by :meth:`remove_worker`;
        #: their stats stay visible through :attr:`workers`
        self._retiring: set[str] = set()
        self._started = False
        # batch_id -> (worker name, estimate) for batches counted in
        # _pending_seconds; the estimate is released at batch completion
        # (not pickup), so in-execution work stays visible to the
        # least-loaded policy
        self._counted: dict[int, tuple[str, float]] = {}
        self._inflight = 0
        self._idle = threading.Condition(self._lock)
        self._stopping = False
        self._threads: list[threading.Thread] = []
        self.tracer = None
        self._track = None

    def attach_tracer(
        self, tracer, process: str = "engine", thread: str = "dispatcher"
    ) -> None:
        """Emit a dispatch instant per batch handed to a worker."""
        self.tracer = tracer
        self._track = tracer.track(process, thread) if tracer.enabled else None

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("pool already started")
        self._started = True
        for worker in self.workers:
            t = threading.Thread(
                target=self._run_worker,
                args=(worker,),
                name=f"repro-engine-{worker.name}",
                daemon=True,
            )
            self._threads.append(t)
            t.start()

    # -- elastic capacity (the autoscaler's hooks) -------------------------------

    @property
    def active_workers(self) -> list[DeviceWorker]:
        """Workers still eligible for new batches (retired ones excluded)."""
        with self._lock:
            return [w for w in self.workers if w.name not in self._retiring]

    @property
    def n_active(self) -> int:
        return len(self.active_workers)

    def add_worker(
        self, worker: DeviceWorker, breaker: CircuitBreaker | None = None
    ) -> None:
        """Grow the pool by one worker, mid-run or before start.

        The worker gets its own inbox and — when the pool is already
        running — its own thread immediately; with the default
        (auto-sized) inflight cap the cap grows with the pool so added
        capacity is actually reachable.
        """
        with self._lock:
            if any(w.name == worker.name for w in self.workers):
                raise ValueError(f"worker name {worker.name!r} already in pool")
            self.workers.append(worker)
            self._private[worker.name] = deque()
            self._pending_seconds[worker.name] = 0.0
            if breaker is not None:
                self.breakers[worker.name] = breaker
            if self._auto_inflight:
                self.max_inflight = 2 * (
                    len(self.workers) - len(self._retiring)
                )
            started = self._started
            self._work_ready.notify_all()
        if started:
            t = threading.Thread(
                target=self._run_worker,
                args=(worker,),
                name=f"repro-engine-{worker.name}",
                daemon=True,
            )
            self._threads.append(t)
            t.start()

    def remove_worker(self, name: str) -> None:
        """Retire one worker: it finishes its current batch, then exits.

        Batches already in its private inbox fall back to the shared
        queue (another worker picks them up), its accumulated stats stay
        visible through :attr:`workers`, and at least one active worker
        always remains.
        """
        with self._lock:
            names = {w.name for w in self.workers}
            if name not in names:
                raise ValueError(f"no worker named {name!r}")
            if name in self._retiring:
                return
            if len(names - self._retiring) <= 1:
                raise ValueError("cannot retire the last active worker")
            self._retiring.add(name)
            # re-home its queued batches so nothing strands
            leftovers = self._private[name]
            while leftovers:
                self._shared.append(leftovers.popleft())
            if self._auto_inflight:
                self.max_inflight = max(
                    1, 2 * (len(self.workers) - len(self._retiring))
                )
            self._work_ready.notify_all()

    def _admitting(self, worker: DeviceWorker) -> bool:
        breaker = self.breakers.get(worker.name)
        return breaker is None or breaker.can_admit()

    def _select_target(self, batch: Batch) -> DeviceWorker | None:
        """Pick the batch's worker, consulting avoid-set and breakers.

        Retries (``batch.avoid`` non-empty) go least-loaded among the
        admitting non-avoided workers — the whole point is a *different*
        device.  If every worker's breaker refuses, the batch falls to
        the shared queue, where workers self-gate and the first breaker
        to half-open picks it up as a probe.
        """
        active = [w for w in self.workers if w.name not in self._retiring]
        candidates = [w for w in active if w.name not in batch.avoid]
        if not candidates:  # every worker already failed it: relax avoid
            candidates = active
        admitting = [w for w in candidates if self._admitting(w)]
        if not admitting:
            return None
        if batch.avoid:
            return min(
                admitting,
                key=lambda w: w.device_busy_s + self._pending_seconds[w.name],
            )
        return self.policy.select(
            batch, admitting, dict(self._pending_seconds)
        )

    def dispatch(self, batch: Batch, wait_capacity: bool = True) -> None:
        """Hand a batch to the policy-selected inbox.

        Blocks while ``max_inflight`` batches are outstanding — the
        pool-side half of the backpressure chain (worker slots fill →
        dispatch stalls → admission queue fills → submitters stall or
        shed).  Retry re-dispatches pass ``wait_capacity=False``: the
        jobs were already admitted once and counted against the cap,
        and the retry path must never block the timer thread.
        """
        with self._lock:
            while (
                wait_capacity
                and self._inflight >= self.max_inflight
                and not self._stopping
            ):
                self._idle.wait(0.5)
            target = self._select_target(batch)
            if target is None:
                self._shared.append(batch)
            else:
                self._private[target.name].append(batch)
                estimate = target.estimate_batch_seconds(batch)
                self._pending_seconds[target.name] += estimate
                self._counted[batch.batch_id] = (target.name, estimate)
            self._inflight += 1
            self._work_ready.notify_all()
        if self._track is not None:
            self.tracer.instant(
                self._track, "dispatch",
                args={
                    "batch_id": batch.batch_id,
                    "size": batch.size,
                    "attempt": batch.attempt,
                    "target": target.name if target is not None else "shared",
                },
            )

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until every dispatched batch completed (graceful drain)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def stop(self, timeout: float | None = 10.0) -> None:
        """Stop the worker threads (pending batches still drain first)."""
        with self._lock:
            self._stopping = True
            self._work_ready.notify_all()
        for t in self._threads:
            t.join(timeout)

    # -- worker loop -------------------------------------------------------------

    def _take(self, worker: DeviceWorker) -> Batch | None:
        """Next batch for this worker: private inbox first, then shared.

        Shared-queue pickup is breaker-gated: an open breaker keeps
        this worker from taking batches (they wait for another worker
        or for this breaker's cooldown), and a half-open one admits
        only its probe quota — the ``fifo`` policy's consultation of
        the breaker.
        """
        breaker = self.breakers.get(worker.name)
        with self._work_ready:
            while True:
                private = self._private[worker.name]
                if private:
                    return private.popleft()
                if worker.name in self._retiring:
                    return None  # retired and drained: the thread exits
                if self._shared and (breaker is None or breaker.admit()):
                    return self._shared.popleft()
                if self._stopping:
                    return None
                self._work_ready.wait(0.5)

    def _run_worker(self, worker: DeviceWorker) -> None:
        while True:
            batch = self._take(worker)
            if batch is None:
                return
            try:
                outcome = worker.execute(batch)
            except Exception as exc:  # worker-level fault: fail the batch
                outcome = BatchOutcome(
                    batch=batch,
                    worker=worker.name,
                    payloads=[None] * batch.size,
                    errors=[exc] * batch.size,
                    device_seconds=[0.0] * batch.size,
                    batch_device_seconds=0.0,
                    service_wall_s=0.0,
                    worker_fault=exc,
                )
            breaker = self.breakers.get(worker.name)
            if breaker is not None:
                if outcome.worker_fault is not None:
                    breaker.record_failure()
                else:
                    breaker.record_success()
            if self.on_batch is not None:
                self.on_batch(outcome)
            with self._idle:
                counted = self._counted.pop(batch.batch_id, None)
                if counted is not None:
                    name, estimate = counted
                    self._pending_seconds[name] -= estimate
                self._inflight -= 1
                self._idle.notify_all()
